"""The streaming detection pipeline bench behind ``BENCH_streaming.json``.

The streaming pipeline (docs/STREAMING.md) promises bounded per-event
work: every PacketIn / FlowRemoved / flow-stats event folds into
incremental feature state and is scored by the registered online
learners without any model retrain on the hot path.  This bench
quantifies and gates that promise:

* ``sustained_events_per_sec`` — synthetic PacketIn events driven
  straight through a pipeline + sliding-window detector (gate:
  >= 10,000 events/s);
* ``event_latency_p99_ms`` — per-event wall-clock fold+score latency
  percentiles, p50/p95/p99 reported (gate: p99 < 2 ms — bounded, no
  per-event retrain);
* ``parity`` — the portscan (and, in full mode, DDoS) scenario run
  through both the batch and streaming paths; streaming recall must
  land within ``STREAMING_RECALL_TOLERANCE`` of batch recall;
* ``determinism`` — two identical same-seed runs must produce
  byte-identical alert streams.

Runs standalone (``python benchmarks/bench_streaming.py [--quick]
[--output PATH]``, exit 1 on gate failure) and under pytest (quick
workload).  The standalone run writes the ``BENCH_streaming.json``
artifact CI uploads; a full run's output is committed at the repo root.
"""

import argparse
import json
import sys

from repro.controller.events import EventBus, PacketInEvent
from repro.ml.online import SlidingWindowDetector
from repro.openflow.messages import PacketIn
from repro.streaming import StreamingDetectorManager, StreamingPipeline
from repro.streaming.scenarios import (
    STREAMING_RECALL_TOLERANCE,
    run_streaming_scenario,
)
from repro.telemetry.clocks import Stopwatch

#: Minimum sustained fold+score rate over synthetic PacketIn events.
MIN_EVENTS_PER_SEC = 10_000.0
#: Hot-path latency ceiling: p99 of one event's fold+score wall time.
MAX_P99_MS = 2.0

QUICK_EVENTS = 20_000
FULL_EVENTS = 200_000
#: Distinct (src, dst, port) flows the synthetic stream cycles through —
#: large enough that the state tables keep churning new entries.
SYNTHETIC_FLOWS = 2_000


def _build_pipeline():
    """A standalone pipeline + detector fed by a private event bus."""
    bus = EventBus()
    pipeline = StreamingPipeline()
    detectors = StreamingDetectorManager()
    detectors.register_detector(
        "bench_fanout",
        SlidingWindowDetector(column=0, threshold=64.0, window=16, min_hits=4),
        features=["SRC_FLOW_FANOUT"],
        cooldown=1.0,
    )
    pipeline.add_sink(detectors.on_event)
    pipeline.attach_instance(0, bus)
    return bus, pipeline, detectors


def _synthetic_event(i):
    """One PacketIn event from a rotating population of synthetic flows."""
    flow = i % SYNTHETIC_FLOWS
    src = flow % 64
    headers = {
        "ip_src": f"10.1.{src}.{flow % 250}",
        "ip_dst": f"10.2.0.{flow % 200}",
        "ip_proto": 6,
        "tcp_src": 40_000 + flow % 1_000,
        "tcp_dst": 1_000 + flow % 5_000,
    }
    return PacketInEvent(
        instance_id=0,
        dpid=1 + flow % 3,
        time=i * 1e-4,
        message=PacketIn(dpid=1 + flow % 3, headers=headers, total_len=120),
    )


def _measure_throughput(n_events):
    """Sustained events/s through the full bus→fold→score path."""
    bus, pipeline, detectors = _build_pipeline()
    events = [_synthetic_event(i) for i in range(n_events)]
    watch = Stopwatch()
    for event in events:
        bus.publish(event)
    elapsed = watch.elapsed()
    assert pipeline.events_processed == n_events
    return n_events / elapsed, detectors


def _measure_latency(n_events):
    """Per-event fold+score wall latency percentiles (milliseconds)."""
    bus, pipeline, _ = _build_pipeline()
    events = [_synthetic_event(i) for i in range(n_events)]
    samples = []
    for event in events:
        watch = Stopwatch()
        bus.publish(event)
        samples.append(watch.elapsed())
    samples.sort()

    def pct(p):
        index = min(len(samples) - 1, int(p * len(samples)))
        return samples[index] * 1e3

    return {"p50_ms": pct(0.50), "p95_ms": pct(0.95), "p99_ms": pct(0.99)}


def _parity_row(scenario):
    result = run_streaming_scenario(scenario)
    drop = result.batch_recall - result.streaming_recall
    return {
        "metric": f"recall_parity_{scenario}",
        "value": round(result.streaming_recall, 4),
        "gate": f">= batch ({result.batch_recall:.3f}) - "
                f"{STREAMING_RECALL_TOLERANCE}",
        "passed": (
            result.streaming_detected
            and drop <= STREAMING_RECALL_TOLERANCE
        ),
    }, result


def _determinism_row():
    first = run_streaming_scenario("portscan")
    second = run_streaming_scenario("portscan")
    identical = first.alert_stream_json == second.alert_stream_json
    return {
        "metric": "alert_stream_determinism",
        "value": first.alert_stream_digest[:16],
        "gate": "two same-seed runs byte-identical",
        "passed": identical and len(first.alert_stream_json) > 2,
    }


# -- assembly ----------------------------------------------------------------


def run_report(quick=False):
    """Run every phase; returns the artifact dict (``passed`` included)."""
    n_events = QUICK_EVENTS if quick else FULL_EVENTS
    events_per_sec, detectors = _measure_throughput(n_events)
    latency = _measure_latency(min(n_events, 50_000))

    rows = [
        {"metric": "sustained_events_per_sec",
         "value": round(events_per_sec, 1),
         "gate": f">= {MIN_EVENTS_PER_SEC:,.0f}",
         "passed": events_per_sec >= MIN_EVENTS_PER_SEC},
        {"metric": "event_latency_p99_ms",
         "value": round(latency["p99_ms"], 4),
         "gate": f"< {MAX_P99_MS}",
         "passed": latency["p99_ms"] < MAX_P99_MS},
    ]
    scenarios = ("portscan",) if quick else ("portscan", "ddos")
    parity_meta = {}
    for scenario in scenarios:
        row, result = _parity_row(scenario)
        rows.append(row)
        parity_meta[scenario] = {
            "batch_recall": round(result.batch_recall, 4),
            "streaming_recall": round(result.streaming_recall, 4),
            "batch_detected": result.batch_detected,
            "streaming_detected": result.streaming_detected,
            "events_processed": result.events_processed,
            "alerts_emitted": result.alerts_emitted,
        }
    rows.append(_determinism_row())

    meta = {
        "quick": quick,
        "synthetic_events": n_events,
        "synthetic_flows": SYNTHETIC_FLOWS,
        "latency_ms": {k: round(v, 4) for k, v in latency.items()},
        "bench_detector_alerts": len(detectors.alerts),
        "recall_tolerance": STREAMING_RECALL_TOLERANCE,
        "parity": parity_meta,
    }
    return {
        "bench": "streaming",
        "meta": meta,
        "rows": rows,
        "passed": all(row["passed"] for row in rows),
    }


# -- pytest entry points -----------------------------------------------------


def test_streaming_bench_quick(recorder):
    report = run_report(quick=True)
    recorder.set_meta(**{
        key: value for key, value in report["meta"].items()
        if key not in ("parity", "latency_ms")
    })
    for row in report["rows"]:
        recorder.add_row(**row)
    recorder.print_table("streaming pipeline (quick)")
    failures = [row["metric"] for row in report["rows"] if not row["passed"]]
    assert report["passed"], failures


# -- standalone entry point --------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small synthetic stream, portscan-only parity (CI smoke mode)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_streaming.json",
        help="where to write the JSON artifact "
             "(default: ./BENCH_streaming.json)",
    )
    args = parser.parse_args(argv)
    report = run_report(quick=args.quick)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")
    width = max(len(row["metric"]) for row in report["rows"])
    for row in report["rows"]:
        verdict = "ok " if row["passed"] else "FAIL"
        print(f"  {verdict} {row['metric']:{width}s} "
              f"{row['value']!s:>16} (gate {row['gate']})")
    print("PASSED" if report["passed"] else "FAILED")
    return 0 if report["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
