"""Table VIII — usability via source lines of code.

Paper: the Athena DDoS detector takes 45 SLoC (K-Means) / 42 (logistic
regression) vs ~825/851 on Spark and ~817/829 on Hama — about 5%.

The bench counts effective SLoC (non-blank, non-comment, non-docstring) of

* the Athena application function (the Application 1 pseudocode rendered
  against the real NB API), vs
* the hand-rolled pipelines in ``repro.baselines.raw_ddos`` that implement
  identical functionality directly on the storage and compute substrates
  (this repo's equivalent of writing the job on Spark).

It also runs both implementations on the same dataset to prove the SLoC
comparison is between *functionally equivalent* programs.
"""

import inspect

import pytest

from repro.apps.ddos import ddos_detector_application
from repro.baselines.raw_ddos import (
    RawDDoSKMeansJob,
    RawDDoSLogisticJob,
    raw_kmeans_source_lines,
    raw_logistic_source_lines,
)
from repro.compute import ComputeCluster
from repro.controller import ControllerCluster
from repro.core import AthenaDeployment
from repro.dataplane.topologies import linear_topology
from repro.distdb import DatabaseCluster
from repro.workloads.ddos import DDoSDatasetGenerator, DDoSDatasetSpec

PAPER = {
    ("kmeans", "athena"): 45,
    ("kmeans", "raw"): 825,
    ("logistic", "athena"): 42,
    ("logistic", "raw"): 851,
}


def _effective_sloc(obj) -> int:
    source = inspect.getsource(obj)
    count = 0
    in_doc = False
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith(('"""', "'''")):
            if not (len(stripped) > 3 and stripped.endswith(('"""', "'''"))):
                in_doc = not in_doc
            continue
        if in_doc:
            continue
        count += 1
    return count


def test_table8_sloc(benchmark, recorder):
    athena_sloc = benchmark(lambda: _effective_sloc(ddos_detector_application))
    raw_kmeans = raw_kmeans_source_lines()
    raw_logistic = raw_logistic_source_lines()

    recorder.add_row(
        detector="K-Means",
        paper_athena=PAPER[("kmeans", "athena")],
        measured_athena=athena_sloc,
        paper_spark=PAPER[("kmeans", "raw")],
        measured_raw=raw_kmeans,
        paper_ratio=f"{PAPER[('kmeans', 'athena')] / PAPER[('kmeans', 'raw')]:.1%}",
        measured_ratio=f"{athena_sloc / raw_kmeans:.1%}",
    )
    recorder.add_row(
        detector="Logistic Regression",
        paper_athena=PAPER[("logistic", "athena")],
        measured_athena=athena_sloc,
        paper_spark=PAPER[("logistic", "raw")],
        measured_raw=raw_logistic,
        paper_ratio=f"{PAPER[('logistic', 'athena')] / PAPER[('logistic', 'raw')]:.1%}",
        measured_ratio=f"{athena_sloc / raw_logistic:.1%}",
    )
    recorder.print_table("Table VIII: SLoC of the DDoS detector per platform")

    # The paper's shape: the Athena app is a small fraction of the raw job.
    assert athena_sloc < 50
    assert raw_kmeans > 250
    assert athena_sloc / raw_kmeans < 0.15
    assert athena_sloc / raw_logistic < 0.25


def test_table8_functional_equivalence(benchmark, recorder):
    """Both SLoC-counted programs really do the same job."""
    generator = DDoSDatasetGenerator(DDoSDatasetSpec(scale=0.0008))
    documents = generator.generate()
    train, test = generator.train_test_split(documents)

    topo = linear_topology(n_switches=2)
    cluster = ControllerCluster(topo.network, n_instances=1)
    cluster.adopt_all()
    athena = AthenaDeployment(cluster)
    athena.feature_manager.publish_documents(documents)

    def run_athena():
        return ddos_detector_application(
            athena.northbound,
            params={"k": 8, "max_iterations": 10, "runs": 2, "seed": 1},
        )

    _model, athena_summary = benchmark.pedantic(run_athena, rounds=1, iterations=1)

    raw_job = RawDDoSKMeansJob(
        DatabaseCluster(n_shards=1, replication=1), ComputeCluster(2), seed=1
    )
    raw_job.train(0.0, 1800.0, documents=train)
    raw_report = raw_job.validate(1800.0, 3600.0, documents=test)

    recorder.add_row(
        implementation="Athena app",
        detection_rate=athena_summary.detection_rate,
        false_alarm_rate=athena_summary.false_alarm_rate,
    )
    recorder.add_row(
        implementation="Raw (Spark-style) job",
        detection_rate=raw_report.detection_rate,
        false_alarm_rate=raw_report.false_alarm_rate,
    )
    recorder.print_table("Table VIII companion: functional equivalence")
    assert athena_summary.detection_rate > 0.97
    assert raw_report.detection_rate > 0.97
