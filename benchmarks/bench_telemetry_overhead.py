"""Telemetry overhead — disabled-mode instrumentation is nearly free.

The telemetry subsystem promises that with ``ATHENA_TELEMETRY`` off (the
default) every instrumented hot path costs one no-op method call per
event: the registry hands out the shared :data:`NULL_INSTRUMENT`, whose
``inc``/``observe``/``time`` touch no clocks and allocate nothing.

This bench quantifies that promise on the hottest instrumented path in
the stack — southbound PACKET_IN dispatch — and asserts the disabled-mode
budget: the null-instrument calls a dispatch makes account for less than
5% of the per-event cost.  (The bound is generous; measured ratios are
typically well under 1%.)
"""

import pytest

from repro.cbench.harness import CbenchHarness
from repro.telemetry import NULL_INSTRUMENT, MetricsRegistry, get_telemetry
from repro.telemetry.clocks import Stopwatch

#: Disabled instrumentation may cost at most this fraction of a dispatch.
MAX_DISABLED_OVERHEAD = 0.05

#: Upper bound on instrument touches per PACKET_IN dispatch: the
#: controller instance counts the inbound message and the packet-in, the
#: responder's FLOW_MOD reply counts the outbound message, and the
#: feature path (when Athena is attached) adds a handful more.  Ten is a
#: deliberate overestimate.
TOUCHES_PER_EVENT = 10

NULL_CALLS = 200_000
DISPATCH_EVENTS = 4_000


def _null_call_cost() -> float:
    """Wall seconds per NULL_INSTRUMENT.inc() call."""
    instrument = NULL_INSTRUMENT.labels(mode="bench")  # labels() -> self
    watch = Stopwatch()
    for _ in range(NULL_CALLS):
        instrument.inc()
    return watch.elapsed() / NULL_CALLS


def test_disabled_registry_returns_null(recorder):
    """Sanity: with telemetry off, every factory yields the singleton."""
    registry = MetricsRegistry(enabled=False)
    assert registry.counter("athena_bench_a_total") is NULL_INSTRUMENT
    assert registry.gauge("athena_bench_b") is NULL_INSTRUMENT
    assert registry.histogram("athena_bench_c_seconds") is NULL_INSTRUMENT
    # The ambient runtime registry is disabled in the bench environment
    # (ATHENA_TELEMETRY unset), so the dispatch path below exercises the
    # null fast path.
    assert not get_telemetry().registry.enabled
    recorder.add_row(check="disabled factories return NULL_INSTRUMENT", ok=True)


def test_disabled_overhead_budget(benchmark, recorder):
    harness = CbenchHarness(n_switches=8, match_pool=128)
    # Warm both paths, then take the median of three measurements each.
    null_costs = sorted(_null_call_cost() for _ in range(3))
    null_cost = null_costs[1]

    def measure():
        return harness.measure_event_cost("without", n_events=DISPATCH_EVENTS)

    measure()
    event_costs = sorted(measure() for _ in range(3))
    event_cost = benchmark.pedantic(
        lambda: event_costs[1], rounds=1, iterations=1
    )

    overhead = TOUCHES_PER_EVENT * null_cost / event_cost
    recorder.set_meta(
        null_call_ns=null_cost * 1e9,
        dispatch_event_us=event_cost * 1e6,
        touches_per_event=TOUCHES_PER_EVENT,
        budget=f"{MAX_DISABLED_OVERHEAD:.0%}",
    )
    recorder.add_row(
        metric="disabled telemetry share of dispatch cost",
        measured=f"{overhead:.3%}",
        budget=f"< {MAX_DISABLED_OVERHEAD:.0%}",
    )
    recorder.print_table("Telemetry: disabled-mode overhead budget")
    assert overhead < MAX_DISABLED_OVERHEAD
