"""Ablations of the design choices DESIGN.md calls out.

Not a paper table — these benches justify choices the paper makes
implicitly:

* **feature categories** — how much of the DDoS detector's quality comes
  from each Table I category (protocol-centric only, + combination,
  + stateful);
* **single vs distributed execution** — the Attack Detector's dataset-size
  switch (Section III-A1C);
* **monitoring fidelity** — the Resource Manager's coverage/overhead
  trade-off (Section III-A2D);
* **distribution-cost constants** — sensitivity of the Figure 10 curve to
  the compute cluster's fixed-cost model.
"""

import pytest

from repro.compute import ClusterConfig, ComputeCluster, PartitionedDataset
from repro.controller import ControllerCluster
from repro.core import AthenaDeployment, GenerateQuery
from repro.core.algorithm import GenerateAlgorithm
from repro.core.preprocessor import GeneratePreprocessor
from repro.core.southbound import AttackDetector
from repro.dataplane.topologies import linear_topology
from repro.ml.metrics import detection_rate, false_alarm_rate
from repro.workloads.ddos import DDOS_FEATURES, DDoSDatasetGenerator, DDoSDatasetSpec

#: Table I category of each DDoS tuple feature.
PROTOCOL_ONLY = [
    "FLOW_PACKET_COUNT",
    "FLOW_BYTE_COUNT",
    "FLOW_DURATION_SEC",
    "FLOW_DURATION_N_SEC",
]
WITH_COMBINATION = PROTOCOL_ONLY + [
    "FLOW_BYTE_PER_PACKET",
    "FLOW_PACKET_PER_DURATION",
    "FLOW_BYTE_PER_DURATION",
]
FULL_TUPLE = DDOS_FEATURES  # adds the stateful PAIR_FLOW* and fan-in


@pytest.fixture(scope="module")
def dataset():
    generator = DDoSDatasetGenerator(DDoSDatasetSpec(scale=0.002))
    documents = generator.generate()
    return generator.train_test_split(documents)


def _evaluate(features, train, test):
    from repro.core.detector_manager import DetectorManager
    from repro.core.feature_manager import FeatureManager
    from repro.distdb import DatabaseCluster

    manager = DetectorManager(
        FeatureManager(DatabaseCluster(n_shards=1, replication=1)),
        AttackDetector(ComputeCluster(2)),
    )
    preprocessor = GeneratePreprocessor(
        normalization="minmax", marking="label", features=list(features)
    )
    model = manager.generate_detection_model(
        GenerateQuery(),
        preprocessor,
        GenerateAlgorithm("kmeans", k=8, max_iterations=15, runs=2, seed=1),
        documents=train,
    )
    summary = manager.validate_features(
        GenerateQuery(), preprocessor, model, documents=test
    )
    return summary.detection_rate, summary.false_alarm_rate


def test_ablation_feature_categories(benchmark, dataset, recorder):
    train, test = dataset
    results = {}
    for name, features in (
        ("protocol-centric only", PROTOCOL_ONLY),
        ("+ combination", WITH_COMBINATION),
        ("+ stateful (full 10-tuple)", FULL_TUPLE),
    ):
        if name.startswith("+ stateful"):
            results[name] = benchmark.pedantic(
                lambda: _evaluate(FULL_TUPLE, train, test),
                rounds=1,
                iterations=1,
            )
        else:
            results[name] = _evaluate(features, train, test)
        recorder.add_row(
            feature_set=name,
            n_features=len(features),
            detection_rate=results[name][0],
            false_alarm_rate=results[name][1],
        )
    recorder.print_table("Ablation: Table I feature categories (DDoS K-Means)")
    full_dr, full_far = results["+ stateful (full 10-tuple)"]
    proto_dr, proto_far = results["protocol-centric only"]
    # The stateful pair-flow features are what separate floods from flash
    # crowds: the full tuple must dominate protocol-only on at least one
    # metric without losing on the other.
    assert full_dr >= proto_dr - 0.01
    assert full_far <= proto_far + 0.01
    assert (full_dr - proto_dr) + (proto_far - full_far) > 0.01


def test_ablation_single_vs_distributed(benchmark, dataset, recorder):
    """The Attack Detector's size-based execution switch."""
    import numpy as np

    train, _ = dataset
    matrix = np.random.default_rng(0).normal(size=(30_000, 10))
    from repro.ml.kmeans import KMeans

    detector = AttackDetector(
        ComputeCluster(4, config=ClusterConfig(t_setup=0.5)),
        distributed_threshold=50_000,
    )
    small = matrix[:1_000]
    model = KMeans(k=4, max_iterations=5, seed=0).fit(small)
    # Label clusters so the model can produce verdicts.
    model.label_clusters(small, (small[:, 0] > 1.0).astype(float))

    def validate(rows):
        return detector.run_validation(model, rows)

    _, small_report = benchmark.pedantic(
        lambda: validate(small), rounds=1, iterations=1
    )
    _, large_report = validate(np.vstack([matrix] * 2))
    recorder.add_row(
        dataset_rows=len(small),
        execution="single instance",
        job_report=small_report is None,
    )
    recorder.add_row(
        dataset_rows=60_000,
        execution="distributed",
        job_report=large_report is not None,
    )
    recorder.print_table("Ablation: single vs distributed execution switch")
    # Small datasets stay local (no distribution cost), large ones ship out.
    assert small_report is None
    assert large_report is not None
    assert detector.jobs_local >= 1 and detector.jobs_distributed >= 1


def test_ablation_monitoring_fidelity(benchmark, recorder):
    """Resource Manager: fewer monitored switches => fewer features."""
    from repro.workloads.flows import FlowSpec, TrafficSchedule

    counts = {}
    for label, keep in (("all switches", None), ("half", {1, 2}), ("one", {1})):
        topo = linear_topology(n_switches=4, hosts_per_switch=1)
        cluster = ControllerCluster(topo.network, n_instances=1)
        cluster.adopt_all()
        from repro.controller import ReactiveForwarding

        forwarding = ReactiveForwarding()
        forwarding.activate(cluster)
        athena = AthenaDeployment(cluster, athena_poll_interval=1.0)
        athena.start()
        if keep is not None:
            athena.resource_manager.set_monitored_switches(keep)
        schedule = TrafficSchedule(topo.network)
        schedule.prime_arp()

        def drive(topo=topo, schedule=schedule):
            schedule.add_flow(
                FlowSpec(src_host="h1", dst_host="h4", rate_pps=20.0,
                         start=topo.network.sim.now, duration=4.0,
                         bidirectional=True)
            )
            topo.network.sim.run(until=topo.network.sim.now + 6.0)

        if label == "all switches":
            benchmark.pedantic(drive, rounds=1, iterations=1)
        else:
            drive()
        counts[label] = athena.total_features_generated()
        recorder.add_row(
            fidelity=label, features_generated=counts[label]
        )
    recorder.print_table("Ablation: Resource Manager monitoring fidelity")
    assert counts["all switches"] > counts["half"] > counts["one"] > 0


def test_ablation_distribution_cost_model(benchmark, recorder):
    """Sensitivity of the Figure 10 ratio to the fixed-cost constants."""
    import numpy as np

    matrix = np.random.default_rng(1).normal(size=(60_000, 10))

    def heavy_map(part):
        total = 0.0
        for _ in range(30):
            total += float(np.abs(np.tanh(part)).sum())
        return total

    def ratio_for(t_setup):
        times = {}
        for n_workers in (1, 6):
            compute = ComputeCluster(
                n_workers,
                config=ClusterConfig(t_setup=t_setup, work_scale=10.0),
            )
            # Equal partition count for both node counts, so only the
            # parallelism and the fixed costs differ.
            ds = PartitionedDataset.from_matrix(matrix, 12)
            best = None
            for _attempt in range(3):
                report = compute.run_map(ds, map_fn=heavy_map, reduce_fn=sum)
                if best is None or report.makespan_seconds < best:
                    best = report.makespan_seconds
            times[n_workers] = best
        return times[6] / times[1]

    ratios = {}
    for t_setup in (0.0, 0.12, 0.9):
        ratios[t_setup] = (
            benchmark.pedantic(lambda: ratio_for(0.12), rounds=1, iterations=1)
            if t_setup == 0.12
            else ratio_for(t_setup)
        )
        recorder.add_row(
            t_setup_s=t_setup, t6_over_t1=f"{ratios[t_setup]:.1%}",
        )
    recorder.print_table("Ablation: T(6)/T(1) vs fixed distribution cost")
    # More fixed cost flattens the curve (the ratio grows toward 1).
    assert ratios[0.0] < ratios[0.12] < ratios[0.9]
