"""Figure 6 — the DDoS detector testing summary.

Paper: 37,370,466 entries (9.38M benign / 28.0M malicious; 25,559 / 166,213
unique flows), K-Means K=8 / 20 iterations / 5 runs, Detection Rate
0.99237, False Alarm Rate 0.04470, with a per-cluster benign/malicious
composition table.

The bench replays a 1/200-scale dataset with the same class mix through the
real NB API (GenerateDetectionModel + ValidateFeatures) and times the full
validation; the summary prints in the paper's exact layout.
"""

import pytest

from repro.apps.ddos import DDoSDetectorApp
from repro.controller import ControllerCluster
from repro.core import AthenaDeployment
from repro.dataplane.topologies import linear_topology
from repro.workloads.ddos import DDoSDatasetGenerator, DDoSDatasetSpec

PAPER_DETECTION_RATE = 0.9923666756231502
PAPER_FALSE_ALARM_RATE = 0.0446994234548171
SCALE = 0.005


@pytest.fixture(scope="module")
def environment():
    generator = DDoSDatasetGenerator(DDoSDatasetSpec(scale=SCALE))
    documents = generator.generate()
    train, test = generator.train_test_split(documents)
    topo = linear_topology(n_switches=2)
    cluster = ControllerCluster(topo.network, n_instances=1)
    cluster.adopt_all()
    athena = AthenaDeployment(cluster)
    app = DDoSDetectorApp()
    athena.register_app(app)
    return app, athena, train, test


def test_fig6_ddos_detection(benchmark, environment, recorder):
    app, athena, train, test = environment

    summary = benchmark.pedantic(
        lambda: app.run_batch(train_documents=train, test_documents=test),
        rounds=1,
        iterations=1,
    )
    print()
    print(athena.ui_manager.show(summary))

    recorder.set_meta(
        scale=SCALE,
        total_entries=summary.total_entries,
        cluster_info=summary.cluster_info,
    )
    recorder.add_row(
        metric="Detection Rate",
        paper=PAPER_DETECTION_RATE,
        measured=summary.detection_rate,
    )
    recorder.add_row(
        metric="False Alarm Rate",
        paper=PAPER_FALSE_ALARM_RATE,
        measured=summary.false_alarm_rate,
    )
    # The paper validates the full dataset; here half is held out for
    # testing, so the comparable count is scale x 0.5 of the paper's.
    recorder.add_row(
        metric="Benign entries",
        paper=9_375_848 * SCALE * 0.5,
        measured=summary.benign_entries,
    )
    recorder.add_row(
        metric="Malicious entries",
        paper=27_994_618 * SCALE * 0.5,
        measured=summary.malicious_entries,
    )
    for cluster_report in summary.clusters:
        recorder.add_row(
            metric=f"Cluster #{cluster_report.cluster_id}",
            paper="(composition varies)",
            measured=(
                f"benign={cluster_report.benign_entries}, "
                f"malicious={cluster_report.malicious_entries}, "
                f"labelled_malicious={cluster_report.is_malicious}"
            ),
        )
    recorder.print_table("Figure 6: DDoS detector output (paper vs measured)")

    # Shape assertions: the paper's headline numbers within tight bands.
    assert summary.detection_rate == pytest.approx(PAPER_DETECTION_RATE, abs=0.01)
    assert summary.false_alarm_rate == pytest.approx(
        PAPER_FALSE_ALARM_RATE, abs=0.015
    )
    # Mixed clusters exist (the paper's cluster #0 has both classes).
    assert any(
        c.benign_entries > 0 and c.malicious_entries > 0 for c in summary.clusters
    )


def test_fig6_som_baseline_comparison(benchmark, environment, recorder):
    """[10]'s SOM on the same data: works, but below Athena's K-Means."""
    from repro.baselines.braga import BragaSOMDetector

    app, athena, train, test = environment
    detector = BragaSOMDetector(rows=3, cols=3, epochs=3, seed=2)
    benchmark.pedantic(
        lambda: detector.train(train, max_rows=5000), rounds=1, iterations=1
    )
    dr, far = detector.evaluate(test)
    recorder.add_row(metric="SOM detection rate", paper="(not reported)", measured=dr)
    recorder.add_row(metric="SOM false alarm rate", paper="(not reported)", measured=far)
    assert dr > 0.9
