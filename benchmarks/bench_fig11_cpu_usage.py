"""Figure 11 — average CPU usage while handling flow events.

Paper: CPU load grows with the offered flow-event rate; ONOS with Athena
saturates at about 140K flows/s, where the basic ONOS instance sits at
about 31% utilisation — i.e. Athena's per-event cost is roughly 3x the
bare controller's, so it saturates roughly 3x earlier.

The bench measures real per-event CPU cost with and without Athena —
each measurement run lands in the harness's telemetry histogram
(``athena_cbench_event_cpu_seconds``) and the bench reads the mean back
out — maps offered rates to utilisation on the paper's six cores, and
reports both curves plus the saturation points.
"""

import pytest

from repro.cbench.harness import CbenchHarness, cpu_usage_curve, saturation_rate

#: The paper's observation: basic ONOS at the Athena saturation point.
PAPER_BASE_UTILISATION_AT_SATURATION = 31.0
N_CORES = 6


@pytest.fixture(scope="module")
def event_costs():
    harness = CbenchHarness(n_switches=8, match_pool=128)
    # Three measurement runs per mode feed the harness's telemetry
    # histogram; the bench reads the mean back from the registry rather
    # than keeping a private list of samples.
    for mode in ("without", "with"):
        for _ in range(3):
            harness.measure_event_cost(mode, n_events=6000)
    return {
        "without": harness.event_cost_mean("without"),
        "with": harness.event_cost_mean("with"),
    }


def test_fig11_cpu_usage(benchmark, event_costs, recorder):
    harness = CbenchHarness(n_switches=8, match_pool=128)
    benchmark.pedantic(
        lambda: harness.measure_event_cost("with", n_events=3000),
        rounds=1,
        iterations=1,
    )
    cost_without = event_costs["without"]
    cost_with = event_costs["with"]
    athena_saturation = saturation_rate(cost_with, n_cores=N_CORES)
    base_saturation = saturation_rate(cost_without, n_cores=N_CORES)
    # Sweep rates up to just beyond Athena's saturation point.
    rates = [athena_saturation * fraction for fraction in
             (0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0, 1.1)]
    curve_with = dict(cpu_usage_curve(rates, cost_with, n_cores=N_CORES))
    curve_without = dict(cpu_usage_curve(rates, cost_without, n_cores=N_CORES))
    for rate in rates:
        recorder.add_row(
            flow_events_per_s=round(rate),
            cpu_without_athena=f"{curve_without[rate]:.1f}%",
            cpu_with_athena=f"{curve_with[rate]:.1f}%",
        )
    base_at_saturation = min(
        100.0, athena_saturation * cost_without / N_CORES * 100.0
    )
    recorder.set_meta(
        per_event_cost_without_us=cost_without * 1e6,
        per_event_cost_with_us=cost_with * 1e6,
        athena_saturation_rate=round(athena_saturation),
        base_saturation_rate=round(base_saturation),
        paper_base_util_at_athena_saturation=f"{PAPER_BASE_UTILISATION_AT_SATURATION}%",
        measured_base_util_at_athena_saturation=f"{base_at_saturation:.1f}%",
    )
    recorder.print_table("Figure 11: CPU usage vs flow-event rate")

    # Shape: Athena always costs more CPU and saturates earlier.
    assert cost_with > cost_without
    assert athena_saturation < base_saturation
    # Paper band: bare controller at ~31% when Athena saturates — i.e.
    # Athena's per-event cost is roughly 2-5x the bare controller's.
    ratio = cost_with / cost_without
    assert 1.5 < ratio < 6.0
    # Both curves are monotone non-decreasing and capped at 100%.
    with_values = [curve_with[rate] for rate in rates]
    assert with_values == sorted(with_values)
    assert with_values[-1] == 100.0
