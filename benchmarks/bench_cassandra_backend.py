"""Section VII-C (discussion) — replacing MongoDB with a Cassandra-style store.

The paper's closing performance observation: "the performance overhead of
our system primarily originates from MongoDB related operations.  To boost
Athena's performance, we will consider replacing MongoDB with a
high-performance database like Cassandra."

This bench implements and measures that future-work item: the Cbench
throughput experiment of Table IX re-run with
:class:`repro.distdb.columnstore.ColumnStoreCluster` (log-structured
appends, no secondary indexes, pointer-copy replication) in place of the
Mongo-style document store.
"""

import statistics

import pytest

from repro.cbench.harness import CbenchHarness

ROUNDS = 6
ROUND_SECONDS = 0.35


@pytest.fixture(scope="module")
def measurements():
    measured = {}
    harnesses = {
        "mongo": CbenchHarness(n_switches=8, match_pool=128, db_backend="mongo"),
        "cassandra": CbenchHarness(
            n_switches=8, match_pool=128, db_backend="cassandra"
        ),
    }
    # Interleaved rounds so host drift hits both backends equally.
    rates = {("mongo", "with"): [], ("cassandra", "with"): [], ("mongo", "without"): []}
    for _round in range(ROUNDS):
        for backend, harness in harnesses.items():
            rates[(backend, "with")].append(
                harness.run_throughput("with", duration_seconds=ROUND_SECONDS)
                .responses_per_second
            )
        rates[("mongo", "without")].append(
            harnesses["mongo"]
            .run_throughput("without", duration_seconds=ROUND_SECONDS)
            .responses_per_second
        )
    return {key: statistics.mean(values) for key, values in rates.items()}


def test_cassandra_backend_reduces_overhead(benchmark, measurements, recorder):
    harness = CbenchHarness(n_switches=8, match_pool=128, db_backend="cassandra")
    benchmark.pedantic(
        lambda: harness.run_throughput("with", duration_seconds=ROUND_SECONDS),
        rounds=1,
        iterations=1,
    )
    baseline = measurements[("mongo", "without")]
    mongo_overhead = 1.0 - measurements[("mongo", "with")] / baseline
    cassandra_overhead = 1.0 - measurements[("cassandra", "with")] / baseline

    recorder.add_row(
        backend="Mongo-style document store (paper's MongoDB 3.2)",
        throughput=round(measurements[("mongo", "with")]),
        overhead=f"{mongo_overhead:.1%}",
    )
    recorder.add_row(
        backend="Cassandra-style column store (paper's proposal)",
        throughput=round(measurements[("cassandra", "with")]),
        overhead=f"{cassandra_overhead:.1%}",
    )
    recorder.set_meta(
        baseline_without_athena=round(baseline),
        overhead_reduction=f"{mongo_overhead - cassandra_overhead:.1%}",
    )
    recorder.print_table(
        "Section VII-C: Cbench overhead by database backend"
    )

    # The proposed replacement must actually reduce the overhead.
    assert cassandra_overhead < mongo_overhead - 0.05


def test_cassandra_backend_query_compatible(benchmark, recorder):
    """The swap is transparent: the DDoS app runs unchanged on it."""
    from repro.apps.ddos import ddos_detector_application
    from repro.controller import ControllerCluster
    from repro.core import AthenaDeployment
    from repro.dataplane.topologies import linear_topology
    from repro.distdb import ColumnStoreCluster
    from repro.workloads.ddos import DDoSDatasetGenerator, DDoSDatasetSpec

    documents = DDoSDatasetGenerator(DDoSDatasetSpec(scale=0.0008)).generate()
    topo = linear_topology(n_switches=2)
    cluster = ControllerCluster(topo.network, n_instances=1)
    cluster.adopt_all()
    athena = AthenaDeployment(cluster, database=ColumnStoreCluster(n_nodes=3))
    athena.feature_manager.publish_documents(documents)

    def run():
        return ddos_detector_application(
            athena.northbound,
            params={"k": 8, "max_iterations": 10, "runs": 2, "seed": 1},
        )

    _model, summary = benchmark.pedantic(run, rounds=1, iterations=1)
    recorder.add_row(
        metric="DDoS DR on column store", measured=summary.detection_rate
    )
    recorder.add_row(
        metric="DDoS FAR on column store", measured=summary.false_alarm_rate
    )
    assert summary.detection_rate > 0.97
