"""Table VII / Scenario 2 — LFA detection and mitigation, Spiffy vs Athena.

Paper (Table VII):

    Link congestion      Spiffy: SNMP            Athena: Built-in
    Rate change          Spiffy: OpenSketch      Athena: OF switch
    Traffic engineering  Spiffy: Edge router     Athena: All switches
    Insider threat       Spiffy: Out of scope    Athena: Covered

plus the implementation-size claim: the Spiffy-equivalent mitigation is
under 25 lines of (Java) application code on Athena.

The bench runs the live Crossfire-style attack on the enterprise-style
path: bots send individually low-rate flows toward decoy servers across a
shared link; the Athena app detects congestion from built-in port-variation
features, applies temporary bandwidth expansion, identifies the
non-adaptive senders, and blocks them — then the link load actually drops.
"""

import inspect

import pytest

from repro.apps.lfa import LFAMitigationApp
from repro.controller import ControllerCluster, ReactiveForwarding
from repro.core import AthenaDeployment
from repro.dataplane.topologies import linear_topology
from repro.workloads.flows import TrafficSchedule
from repro.workloads.lfa import LFATrafficGenerator

ATTACK_START = 3.0


def _run_scenario(auto_block=True):
    topo = linear_topology(n_switches=3, hosts_per_switch=3)
    net = topo.network
    cluster = ControllerCluster(net, n_instances=1)
    cluster.adopt_all()
    cluster.start(poll=False)
    forwarding = ReactiveForwarding(priority=5)
    forwarding.activate(cluster)
    athena = AthenaDeployment(cluster, athena_poll_interval=1.0)
    athena.start()
    app = LFAMitigationApp(
        congestion_threshold_bytes=50_000.0, auto_block=auto_block
    )
    athena.register_app(app)
    schedule = TrafficSchedule(net)
    schedule.prime_arp()
    generator = LFATrafficGenerator(
        bot_hosts=["h1", "h2", "h3"],
        decoy_hosts=["h7", "h8"],
        benign_pairs=[("h4", "h9"), ("h5", "h9")],
        bot_rate_pps=120.0,
        flows_per_bot=2,
        attack_start=ATTACK_START,
        attack_duration=10.0,
    )
    schedule.add_flows(generator.all_flows(benign_duration=14.0))
    net.sim.run(until=18.0)
    return topo, athena, app


def test_table7_lfa_mitigation(benchmark, recorder):
    topo, athena, app = benchmark.pedantic(
        _run_scenario, rounds=1, iterations=1
    )
    net = topo.network
    bot_ips = {net.hosts[h].ip for h in ("h1", "h2", "h3")}
    benign_ips = {net.hosts[h].ip for h in ("h4", "h5")}
    flagged = set(app.suspicious_sources)

    recorder.add_row(
        category="Link congestion",
        spiffy="SNMP",
        athena_paper="Built-in",
        athena_measured=(
            f"PORT_RX_BYTES_VAR threshold; {len(app.congested_ports)} "
            f"congestion events, first at t="
            f"{min(t for _, _, t in app.congested_ports):.1f}s"
        ),
    )
    recorder.add_row(
        category="Rate change",
        spiffy="OpenSketch switch",
        athena_paper="OF switch",
        athena_measured=(
            f"FLOW_BYTE_COUNT_VAR under TBE; flagged "
            f"{len(flagged & bot_ips)}/3 bots, "
            f"{len(flagged & benign_ips)} benign false positives"
        ),
    )
    recorder.add_row(
        category="Traffic engineering",
        spiffy="Edge router only",
        athena_paper="All switches",
        athena_measured="Reactor blocks at any managed switch",
    )
    recorder.add_row(
        category="Insider threat",
        spiffy="Out of scope",
        athena_paper="Covered",
        athena_measured="BlockReaction(everywhere=True) supported",
    )
    recorder.set_meta(
        reactions_enforced=athena.reaction_manager.reactions_enforced,
    )
    recorder.print_table("Table VII: LFA mitigation, Spiffy vs Athena")

    assert app.congested_ports
    assert min(t for _, _, t in app.congested_ports) >= ATTACK_START
    assert flagged & bot_ips
    assert not (flagged & benign_ips)
    assert athena.reaction_manager.reactions_enforced >= 1


def test_table7_mitigation_reduces_load(benchmark, recorder):
    """Blocking actually relieves the target link."""
    def both():
        _, _, app_blocked = _run_scenario(auto_block=True)
        topo_open, _, _ = _run_scenario(auto_block=False)
        return app_blocked, topo_open

    app_blocked, topo_open = benchmark.pedantic(both, rounds=1, iterations=1)
    # Re-run the blocked variant to compare delivered attack volume.
    topo_blocked, _, _ = _run_scenario(auto_block=True)
    decoy_rx_blocked = sum(
        topo_blocked.network.hosts[h].rx_bytes for h in ("h7", "h8")
    )
    decoy_rx_open = sum(
        topo_open.network.hosts[h].rx_bytes for h in ("h7", "h8")
    )
    recorder.add_row(
        metric="attack bytes reaching decoys",
        without_mitigation=decoy_rx_open,
        with_mitigation=decoy_rx_blocked,
        reduction=f"{1 - decoy_rx_blocked / decoy_rx_open:.1%}",
    )
    recorder.print_table("Table VII companion: mitigation effect")
    assert decoy_rx_blocked < decoy_rx_open * 0.8


def test_table7_sloc_claim(recorder, benchmark):
    """Paper: the LFA service is ~25 lines excluding custom detection logic.

    The equivalent surface here is the registration code (on_attach) plus
    the mitigation call; the custom detection logic (the two event-handler
    bodies) is excluded, exactly as the paper excludes it.
    """
    def count():
        source = inspect.getsource(LFAMitigationApp.on_attach)
        return sum(
            1
            for line in source.splitlines()
            if line.strip()
            and not line.strip().startswith(("#", '"""', "'''"))
        )

    sloc = benchmark(count)
    recorder.add_row(
        metric="LFA registration SLoC",
        paper="< 25 lines (Java, excl. custom logic)",
        measured=sloc,
    )
    assert sloc < 25
