"""The sketch-path scale bench behind ``BENCH_sketch.json``.

Exercises the ``ATHENA_SKETCH`` feature path (docs/SKETCH.md) on the
million-flow workload of :mod:`repro.workloads.sketchscale` and gates
the three claims the sketch scope makes:

* ``sketch_ingest_throughput`` — flow observations/sec through
  :class:`~repro.sketch.features.SketchFeatureState` (two Count-Min
  adds, two HyperLogLog adds, one Bloom probe per event), gated against
  an absolute floor — the pure-python sketches must keep up with the
  simulator's event rates;
* ``memory_sublinear`` — tracemalloc peak of the sketch path over the
  full ~1M-distinct-flow stream vs the exact path's measured
  bytes-per-flow extrapolated to the same flow count (the exact state
  is measured on a single-window prefix, where every flow is live at
  once, as a production flow table would hold them).  Gate: the sketch
  peak stays at or under 25% of the exact extrapolation (>= 4x
  flows-per-MB);
* ``ddos_recall`` / ``portscan_recall`` — threshold detection fed from
  sketch features alone vs the same detection on exact features: recall
  must come within ``SKETCH_RECALL_TOLERANCE`` (0.25) of the exact
  path (the equivalence verdict is the gate);
* ``determinism`` — two same-seed runs must produce byte-identical
  sketch-state serialisations and identical alert-stream sha256
  digests (the equivalence verdict is the gate).

Runs standalone (``python benchmarks/bench_sketch.py [--quick]
[--output PATH]``, exit 1 on gate failure) and under pytest (quick
workload).  The standalone run writes the ``BENCH_sketch.json`` artifact
CI uploads; a full run's output is committed at the repo root.
"""

import argparse
import sys
import tracemalloc

from repro.perf import BenchResult, HotpathReport, measure_throughput
from repro.sketch.features import ExactWindowState, SketchFeatureState
from repro.sketch.scenarios import (
    SKETCH_RECALL_TOLERANCE,
    run_sketch_scenario,
)
from repro.workloads.sketchscale import SketchScaleGenerator, SketchScaleSpec

# Full mode replays the headline workload: ~1M distinct flows over a
# 100k-host pool; quick/CI mode scales down two orders of magnitude.
FULL_SPEC = dict(n_flows=1_000_000, n_hosts=100_000, n_switches=8, n_windows=8)
QUICK_SPEC = dict(n_flows=50_000, n_hosts=5_000, n_switches=8, n_windows=6)

#: Absolute ingest floors (observations/sec) for the throughput gate;
#: the committed full run measures ~50k ev/s on the reference box.
FULL_FLOOR = 15_000.0
QUICK_FLOOR = 8_000.0

#: Events used by the throughput measurement and the exact-path
#: bytes-per-flow prefix.
FULL_SAMPLE = 200_000
QUICK_SAMPLE = 20_000


def _spec(quick, scenario="ddos", seed=7):
    shape = QUICK_SPEC if quick else FULL_SPEC
    return SketchScaleSpec(scenario=scenario, seed=seed, **shape)


def _sample_chunks(spec, n_events):
    """The first ``n_events`` observations of the stream, materialised."""
    generator = SketchScaleGenerator(spec)
    chunks, total = [], 0
    for chunk in generator.chunks():
        chunks.append(chunk)
        total += len(chunk)
        if total >= n_events:
            break
    return generator, chunks, total


# -- ingest throughput -------------------------------------------------------


def _bench_throughput(quick):
    spec = _spec(quick)
    n_events = QUICK_SAMPLE if quick else FULL_SAMPLE
    generator, chunks, total = _sample_chunks(spec, n_events)

    def run_ingest():
        state = SketchFeatureState(seed=spec.seed)
        for chunk in chunks:
            generator.feed_chunk(state, chunk)

    floor = QUICK_FLOOR if quick else FULL_FLOOR
    rounds = 2 if quick else 3
    measured = measure_throughput(run_ingest, total, rounds=rounds)
    return BenchResult(
        name="sketch_ingest_throughput",
        fast_ops_per_sec=measured,
        slow_ops_per_sec=floor,
        n_ops=total,
        equivalent=True,
        unit="events/s",
        detail={
            "floor_events_per_sec": floor,
            "structures_per_event": "2xCMS add, 2xHLL add, 1xBloom probe",
        },
    )


# -- memory: sublinear vs exact extrapolation --------------------------------


def _bench_memory(quick):
    spec = _spec(quick)
    mb = 1024 * 1024

    # Sketch path: peak over the FULL stream (all windows, attacks included).
    generator = SketchScaleGenerator(spec)
    tracemalloc.start()
    state = SketchFeatureState(seed=spec.seed)
    n_events = 0
    for chunk in generator.chunks():
        generator.feed_chunk(state, chunk)
        n_events += len(chunk)
    sketch_resident = state.nbytes()
    _, sketch_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del state

    # Exact path: bytes/flow measured on a single-window prefix (every
    # flow live at once), extrapolated to the full distinct-flow count.
    prefix_events = QUICK_SAMPLE if quick else FULL_SAMPLE
    generator, chunks, prefix = _sample_chunks(spec, prefix_events)
    tracemalloc.start()
    exact = ExactWindowState(seed=spec.seed)
    for chunk in chunks:
        generator.feed_chunk(exact, chunk)
    _, exact_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    distinct_flows = sum(len(s.flows) for s in exact._switches.values())
    exact_bytes_per_flow = exact_peak / max(1, distinct_flows)
    exact_extrapolated = exact_bytes_per_flow * spec.n_flows
    del exact

    return BenchResult(
        name="memory_sublinear",
        fast_ops_per_sec=spec.n_flows / (sketch_peak / mb),
        slow_ops_per_sec=spec.n_flows / (exact_extrapolated / mb),
        n_ops=n_events,
        equivalent=True,
        unit="flows/MB",
        detail={
            "sketch_peak_mb": round(sketch_peak / mb, 2),
            "sketch_resident_mb": round(sketch_resident / mb, 2),
            "exact_prefix_events": prefix,
            "exact_prefix_flows": distinct_flows,
            "exact_bytes_per_flow": round(exact_bytes_per_flow, 1),
            "exact_extrapolated_mb": round(exact_extrapolated / mb, 2),
            "sketch_over_exact": round(sketch_peak / exact_extrapolated, 4),
        },
    )


# -- detection recall: sketch vs exact ---------------------------------------


def _bench_recall(scenario, quick, sketch_outcome=None):
    spec = _spec(quick, scenario=scenario)
    sketch = sketch_outcome or run_sketch_scenario(spec, use_sketch=True)
    exact = run_sketch_scenario(spec, use_sketch=False)
    drift = abs(sketch.recall - exact.recall)
    return (
        BenchResult(
            name=f"{scenario}_recall",
            fast_ops_per_sec=sketch.recall,
            slow_ops_per_sec=exact.recall,
            n_ops=sketch.n_documents,
            equivalent=drift <= SKETCH_RECALL_TOLERANCE,
            unit="recall",
            detail={
                "sketch_recall": round(sketch.recall, 4),
                "exact_recall": round(exact.recall, 4),
                "drift": round(drift, 4),
                "tolerance": SKETCH_RECALL_TOLERANCE,
                "sketch_false_alarm_rate": round(sketch.false_alarm_rate, 4),
                "threshold": round(sketch.threshold, 2),
                "attack_cells": sketch.n_attack_cells,
            },
        ),
        sketch,
    )


# -- determinism: same seed, same bytes --------------------------------------


def _bench_determinism(quick, first):
    spec = _spec(quick, scenario=first.scenario)
    second = run_sketch_scenario(spec, use_sketch=True)
    identical = (
        first.state_digest == second.state_digest
        and first.alert_digest == second.alert_digest
    )
    return BenchResult(
        name="determinism",
        fast_ops_per_sec=1.0,
        slow_ops_per_sec=1.0,
        n_ops=2,
        equivalent=identical,
        unit="runs",
        detail={
            "state_digest": first.state_digest,
            "alert_digest": first.alert_digest,
            "rerun_state_digest": second.state_digest,
            "rerun_alert_digest": second.alert_digest,
        },
    )


# -- assembly ----------------------------------------------------------------


def run_report(quick=False):
    report = HotpathReport(quick=quick, bench="sketch")
    report.add(_bench_throughput(quick), min_speedup=1.0)
    # Sublinearity needs scale to show: at the quick flow count the fixed
    # sketch cost dominates, so the 4x (<= 25% of exact) gate applies to
    # the full run only — the committed artifact measures ~60x.
    report.add(_bench_memory(quick), min_speedup=None if quick else 4.0)
    ddos_result, ddos_outcome = _bench_recall("ddos", quick)
    report.add(ddos_result)
    portscan_result, _ = _bench_recall("portscan", quick)
    report.add(portscan_result)
    report.add(_bench_determinism(quick, ddos_outcome))
    spec = _spec(quick)
    for result in report.results:
        result.detail.setdefault("n_flows", spec.n_flows)
        result.detail.setdefault("n_hosts", spec.n_hosts)
    return report


# -- pytest entry points -----------------------------------------------------


def test_sketch_quick(recorder):
    report = run_report(quick=True)
    recorder.set_meta(quick=True)
    for result in report.results:
        recorder.add_row(
            name=result.name,
            unit=result.unit,
            fast_ops_per_sec=round(result.fast_ops_per_sec, 1),
            slow_ops_per_sec=round(result.slow_ops_per_sec, 1),
            speedup=round(result.speedup, 2),
            equivalent=result.equivalent,
        )
    recorder.print_table("sketch scale sweep (quick)")
    assert report.passed, report.failures()


# -- standalone entry point --------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workloads + relaxed gates (CI smoke mode)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_sketch.json",
        help="where to write the JSON artifact (default: ./BENCH_sketch.json)",
    )
    args = parser.parse_args(argv)
    report = run_report(quick=args.quick)
    report.write(args.output)
    report.print_summary()
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
