"""Table VI — the DDoS test environment, Athena vs Braga et al. [10].

Paper row (Athena): 18 OF switches (6 physical, 12 OVS), 48 links,
3 controller instances, 10-tuple features, K-Means.
Paper row ([10]):   3 OF switches, 3 links, 1 instance, 6-tuple, SOM.

The bench builds both environments for real (switches, links, controller
domains) and times construction of the Athena-scale one.
"""

from repro.baselines.braga import BRAGA_FEATURES
from repro.controller import ControllerCluster
from repro.dataplane.topologies import braga_topology, enterprise_topology
from repro.workloads.ddos import DDOS_FEATURES


def _build_athena_environment():
    topo = enterprise_topology()
    cluster = ControllerCluster(topo.network, n_instances=3)
    cluster.adopt_domains(topo.domains)
    return topo, cluster


def test_table6_environment(benchmark, recorder):
    topo, cluster = benchmark.pedantic(
        _build_athena_environment, rounds=3, iterations=1
    )
    summary = topo.network.summary()
    braga = braga_topology()
    braga_summary = braga.network.summary()

    recorder.add_row(
        category="Switch",
        paper_braga="3 OF switches",
        measured_braga=f"{braga_summary['switches']} OF switches",
        paper_athena="18 OF switches (6 physical, 12 OVS)",
        measured_athena=(
            f"{summary['switches']} OF switches "
            f"({summary['physical_switches']} physical, "
            f"{summary['ovs_switches']} OVS)"
        ),
    )
    recorder.add_row(
        category="Link",
        paper_braga="3 links",
        measured_braga=str(len(list(braga.network.switch_links()))),
        paper_athena="48 links",
        measured_athena=str(len(list(topo.network.switch_links()))),
    )
    recorder.add_row(
        category="Controller",
        paper_braga="1 instance",
        measured_braga=str(len(braga.domains)),
        paper_athena="3 instances",
        measured_athena=str(len(cluster.instances)),
    )
    recorder.add_row(
        category="Feature",
        paper_braga="6-tuples",
        measured_braga=f"{len(BRAGA_FEATURES)}-tuples",
        paper_athena="10-tuples",
        measured_athena=f"{len(DDOS_FEATURES)}-tuples",
    )
    recorder.add_row(
        category="Algorithm",
        paper_braga="SOM",
        measured_braga="SOM (repro.ml.som)",
        paper_athena="K-Means",
        measured_athena="K-Means (repro.ml.kmeans)",
    )
    recorder.print_table("Table VI: test environment comparison")

    assert summary["switches"] == 18
    assert summary["physical_switches"] == 6
    assert summary["ovs_switches"] == 12
    assert len(list(topo.network.switch_links())) == 48
    assert len(cluster.instances) == 3
    assert len(DDOS_FEATURES) == 10
    assert len(BRAGA_FEATURES) == 6
