"""Table IX — Cbench flow-install throughput with and without Athena.

Paper (responses/s over 50 rounds):

    without          MIN 773,618   MAX 883,376   AVG 831,366
    with             MIN 107,245   MAX 610,724   AVG 389,584   (-53.13% avg)
    with (no DB)     MIN 631,647   MAX 686,227   AVG 658,514   (-20.79% avg)

Absolute rates depend on the host (the paper ran a tuned ONOS on a Xeon;
this is a Python control loop), so the reproduced quantity is the *relative
overhead*: Athena's feature extraction costs a modest fraction without
database writes and the majority of the slowdown comes from DB operations.
"""

import statistics

import pytest

from repro.cbench.harness import CbenchHarness

ROUNDS = 8
ROUND_SECONDS = 0.4

PAPER = {
    "without": {"min": 773_618, "max": 883_376, "avg": 831_366},
    "with": {"min": 107_245, "max": 610_724, "avg": 389_584},
    "with_no_db": {"min": 631_647, "max": 686_227, "avg": 658_514},
}


@pytest.fixture(scope="module")
def harness():
    return CbenchHarness(n_switches=8, match_pool=128)


@pytest.fixture(scope="module")
def results(harness):
    # Interleave modes round-by-round so host drift (frequency scaling, GC)
    # hits every configuration equally.
    measured = {mode: [] for mode in ("without", "with_no_db", "with")}
    for _round in range(ROUNDS):
        for mode in measured:
            result = harness.run_throughput(
                mode, duration_seconds=ROUND_SECONDS
            )
            measured[mode].append(result.responses_per_second)
    return measured


def test_table9_cbench(benchmark, harness, results, recorder):
    # The timed quantity: one full 'without' throughput round.
    benchmark.pedantic(
        lambda: harness.run_throughput("without", duration_seconds=ROUND_SECONDS),
        rounds=2,
        iterations=1,
    )
    averages = {mode: statistics.mean(rates) for mode, rates in results.items()}
    # Cross-check against the harness's own telemetry: every response any
    # round counted is also in athena_cbench_responses_total, so the
    # registry must report at least as many as the measured rounds saw.
    counted = {
        (sample.get("labels") or {}).get("mode"): sample["value"]
        for metric in harness.snapshot()
        if metric["name"] == "athena_cbench_responses_total"
        for sample in metric["samples"]
    }
    for mode, rates in results.items():
        assert counted.get(mode, 0) >= sum(rates) * ROUND_SECONDS * 0.99
    for mode in ("without", "with", "with_no_db"):
        rates = results[mode]
        overhead = 1.0 - averages[mode] / averages["without"]
        paper_overhead = 1.0 - PAPER[mode]["avg"] / PAPER["without"]["avg"]
        recorder.add_row(
            mode=mode,
            paper_min=PAPER[mode]["min"],
            paper_avg=PAPER[mode]["avg"],
            measured_min=round(min(rates)),
            measured_max=round(max(rates)),
            measured_avg=round(averages[mode]),
            paper_overhead=f"{paper_overhead:.1%}",
            measured_overhead=f"{overhead:.1%}",
        )
    recorder.set_meta(rounds=ROUNDS, round_seconds=ROUND_SECONDS)
    recorder.print_table("Table IX: Cbench throughput (paper vs measured)")

    # Shape assertions.
    assert averages["without"] > averages["with_no_db"] > averages["with"]
    overhead_with = 1.0 - averages["with"] / averages["without"]
    overhead_no_db = 1.0 - averages["with_no_db"] / averages["without"]
    # Paper: 53.1% / 20.8%. Bands keep the ordering and rough magnitude.
    assert 0.30 < overhead_with < 0.75
    assert 0.10 < overhead_no_db < 0.50
    # The majority of the extra cost comes from DB operations.
    assert overhead_with > overhead_no_db * 1.2


def test_table9_db_ops_dominate(results, recorder, benchmark):
    """Section VII-C's discussion: overhead primarily from DB operations."""
    harness = CbenchHarness(n_switches=4, match_pool=64)

    def db_share():
        without = harness.measure_event_cost("without", n_events=4000)
        no_db = harness.measure_event_cost("with_no_db", n_events=4000)
        with_db = harness.measure_event_cost("with", n_events=4000)
        athena_cost = with_db - without
        db_cost = with_db - no_db
        return db_cost / athena_cost if athena_cost > 0 else 0.0

    share = benchmark.pedantic(db_share, rounds=1, iterations=1)
    recorder.add_row(
        metric="DB share of Athena per-event overhead",
        paper="primary source (Sec. VII-C)",
        measured=f"{share:.1%}",
    )
    assert share > 0.3
