"""Figure 10 — DDoS validation time vs number of compute nodes.

Paper: total testing time over the 37.37M-entry (50GB) dataset decreases
linearly as compute nodes are added; with six nodes the total test time is
~27.6% of the single-node time, and the Athena-hosted application stays
within ~10% of the same job written directly on Spark.

The bench validates a 1/100-scale dataset on compute clusters of 1..6
workers.  Per-task execution is measured for real; the cluster's makespan
model multiplies measured task time by ``work_scale = 1/scale`` so each
worker is occupied as long as it would be on the full-size dataset, while
scheduling/broadcast/collection costs stay constant — exactly the
composition that produces the paper's curve.
"""

import pytest

from repro.apps.ddos import DDoSDetectorApp
from repro.baselines.raw_ddos import RawDDoSKMeansJob
from repro.compute import ClusterConfig, ComputeCluster
from repro.controller import ControllerCluster
from repro.core import AthenaDeployment
from repro.dataplane.topologies import linear_topology
from repro.distdb import DatabaseCluster
from repro.workloads.ddos import DDoSDatasetGenerator, DDoSDatasetSpec

SCALE = 0.01
NODE_COUNTS = (1, 2, 3, 4, 5, 6)
PAPER_T6_OVER_T1 = 0.276


@pytest.fixture(scope="module")
def dataset():
    generator = DDoSDatasetGenerator(DDoSDatasetSpec(scale=SCALE))
    documents = generator.generate()
    return generator.train_test_split(documents)


def _cluster_config() -> ClusterConfig:
    """Distribution-cost constants calibrated to the paper's Spark 1.6 job.

    The paper's T(6)/T(1) = 27.6% implies fixed job costs of roughly 13% of
    the single-node work; these constants (documented in DESIGN.md and
    ablated in bench_ablations) put the fixed part in that regime for the
    measured per-task times of this dataset.
    """
    return ClusterConfig(
        t_setup=0.12,
        t_broadcast=0.02,
        t_collect=0.002,
        work_scale=1.0 / SCALE,
    )


#: Runs per configuration; the minimum filters scheduler/GC jitter, which
#: the work_scale multiplier would otherwise amplify.
RUNS_PER_POINT = 3


def _athena_total_time(train, test, n_workers: int) -> float:
    topo = linear_topology(n_switches=2)
    controller = ControllerCluster(topo.network, n_instances=1)
    controller.adopt_all()
    compute = ComputeCluster(n_workers, config=_cluster_config())
    athena = AthenaDeployment(
        controller, compute=compute, distributed_threshold=1000
    )
    app = DDoSDetectorApp(params={"k": 8, "max_iterations": 10, "runs": 1, "seed": 1})
    athena.register_app(app)
    best = None
    for _attempt in range(RUNS_PER_POINT):
        summary = app.run_batch(train_documents=train, test_documents=test)
        report = athena.detector_manager.last_job_report
        assert report is not None, "validation must run distributed"
        assert summary.total_entries == len(test)
        if best is None or report.makespan_seconds < best:
            best = report.makespan_seconds
    return best


def _raw_total_time(train, test, n_workers: int) -> float:
    compute = ComputeCluster(n_workers, config=_cluster_config())
    job = RawDDoSKMeansJob(
        DatabaseCluster(n_shards=1, replication=1),
        compute,
        k=8,
        max_iterations=10,
        seed=1,
    )
    job.train(0.0, 1800.0, documents=train)
    best = None
    for _attempt in range(RUNS_PER_POINT):
        report = job.validate(1800.0, 3600.0, documents=test)
        if best is None or report.makespan_seconds < best:
            best = report.makespan_seconds
    return best


def test_fig10_scalability(benchmark, dataset, recorder):
    train, test = dataset
    athena_times = {}
    raw_times = {}
    # Warm-up: fault in numpy kernels and allocator pools before timing.
    _athena_total_time(train, test, 2)
    for n_workers in NODE_COUNTS:
        if n_workers == 6:
            athena_times[n_workers] = benchmark.pedantic(
                lambda: _athena_total_time(train, test, 6),
                rounds=1,
                iterations=1,
            )
        else:
            athena_times[n_workers] = _athena_total_time(train, test, n_workers)
        raw_times[n_workers] = _raw_total_time(train, test, n_workers)

    for n_workers in NODE_COUNTS:
        overhead = athena_times[n_workers] / raw_times[n_workers] - 1.0
        recorder.add_row(
            compute_nodes=n_workers,
            athena_makespan_s=athena_times[n_workers],
            raw_spark_style_s=raw_times[n_workers],
            athena_overhead=f"{overhead:+.1%}",
            t_over_t1=f"{athena_times[n_workers] / athena_times[1]:.1%}",
        )
    ratio = athena_times[6] / athena_times[1]
    recorder.set_meta(
        scale=SCALE,
        test_entries=len(test),
        paper_t6_over_t1=f"{PAPER_T6_OVER_T1:.1%}",
        measured_t6_over_t1=f"{ratio:.1%}",
    )
    recorder.print_table("Figure 10: total test time vs compute nodes")

    times = [athena_times[n] for n in NODE_COUNTS]
    # Monotone decrease (the paper's 'linear decrease'), with 5% jitter
    # tolerance at the flat end of the curve.
    assert all(b < a * 1.05 for a, b in zip(times, times[1:]))
    assert times[2] < times[0]
    # Six nodes land near the paper's 27.6% of single-node time.
    assert 0.15 < ratio < 0.45
    # Athena stays close to the raw implementation (paper: under 10%).
    for n_workers in NODE_COUNTS:
        assert athena_times[n_workers] / raw_times[n_workers] < 1.25
