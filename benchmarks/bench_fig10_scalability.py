"""Figure 10 — DDoS validation time vs number of compute nodes.

Paper: total testing time over the 37.37M-entry (50GB) dataset decreases
linearly as compute nodes are added; with six nodes the total test time is
~27.6% of the single-node time, and the Athena-hosted application stays
within ~10% of the same job written directly on Spark.

The bench validates a 1/100-scale dataset on compute clusters of 1..6
workers.  Per-task execution is measured for real; the cluster's makespan
model multiplies measured task time by ``work_scale = 1/scale`` so each
worker is occupied as long as it would be on the full-size dataset, while
scheduling/broadcast/collection costs stay constant — exactly the
composition that produces the paper's curve.
"""

import pytest

from repro.apps.ddos import DDoSDetectorApp
from repro.baselines.raw_ddos import RawDDoSKMeansJob
from repro.compute import ClusterConfig, ComputeCluster
from repro.controller import ControllerCluster
from repro.core import AthenaDeployment
from repro.dataplane.topologies import linear_topology
from repro.distdb import DatabaseCluster
from repro.workloads.ddos import DDoSDatasetGenerator, DDoSDatasetSpec

SCALE = 0.01
NODE_COUNTS = (1, 2, 3, 4, 5, 6)
PAPER_T6_OVER_T1 = 0.276


@pytest.fixture(scope="module")
def dataset():
    generator = DDoSDatasetGenerator(DDoSDatasetSpec(scale=SCALE))
    documents = generator.generate()
    return generator.train_test_split(documents)


def _cluster_config() -> ClusterConfig:
    """Distribution-cost constants calibrated to the paper's Spark 1.6 job.

    The paper's T(6)/T(1) = 27.6% implies fixed job costs of roughly 13% of
    the single-node work; these constants (documented in DESIGN.md and
    ablated in bench_ablations) put the fixed part in that regime for the
    measured per-task times of this dataset.
    """
    return ClusterConfig(
        t_setup=0.12,
        t_broadcast=0.02,
        t_collect=0.002,
        work_scale=1.0 / SCALE,
    )


#: Runs per configuration; the minimum filters scheduler/GC jitter, which
#: the work_scale multiplier would otherwise amplify.
RUNS_PER_POINT = 3


def _athena_total_time(train, test, n_workers: int) -> float:
    topo = linear_topology(n_switches=2)
    controller = ControllerCluster(topo.network, n_instances=1)
    controller.adopt_all()
    compute = ComputeCluster(n_workers, config=_cluster_config())
    athena = AthenaDeployment(
        controller, compute=compute, distributed_threshold=1000
    )
    app = DDoSDetectorApp(params={"k": 8, "max_iterations": 10, "runs": 1, "seed": 1})
    athena.register_app(app)
    best = None
    for _attempt in range(RUNS_PER_POINT):
        summary = app.run_batch(train_documents=train, test_documents=test)
        report = athena.detector_manager.last_job_report
        assert report is not None, "validation must run distributed"
        assert summary.total_entries == len(test)
        if best is None or report.makespan_seconds < best:
            best = report.makespan_seconds
    return best


def _raw_total_time(train, test, n_workers: int) -> float:
    compute = ComputeCluster(n_workers, config=_cluster_config())
    job = RawDDoSKMeansJob(
        DatabaseCluster(n_shards=1, replication=1),
        compute,
        k=8,
        max_iterations=10,
        seed=1,
    )
    job.train(0.0, 1800.0, documents=train)
    best = None
    for _attempt in range(RUNS_PER_POINT):
        report = job.validate(1800.0, 3600.0, documents=test)
        if best is None or report.makespan_seconds < best:
            best = report.makespan_seconds
    return best


def test_fig10_scalability(benchmark, dataset, recorder):
    train, test = dataset
    athena_times = {}
    raw_times = {}
    # Warm-up: fault in numpy kernels and allocator pools before timing.
    _athena_total_time(train, test, 2)
    for n_workers in NODE_COUNTS:
        if n_workers == 6:
            athena_times[n_workers] = benchmark.pedantic(
                lambda: _athena_total_time(train, test, 6),
                rounds=1,
                iterations=1,
            )
        else:
            athena_times[n_workers] = _athena_total_time(train, test, n_workers)
        raw_times[n_workers] = _raw_total_time(train, test, n_workers)

    for n_workers in NODE_COUNTS:
        overhead = athena_times[n_workers] / raw_times[n_workers] - 1.0
        recorder.add_row(
            compute_nodes=n_workers,
            athena_makespan_s=athena_times[n_workers],
            raw_spark_style_s=raw_times[n_workers],
            athena_overhead=f"{overhead:+.1%}",
            t_over_t1=f"{athena_times[n_workers] / athena_times[1]:.1%}",
        )
    ratio = athena_times[6] / athena_times[1]
    recorder.set_meta(
        scale=SCALE,
        test_entries=len(test),
        paper_t6_over_t1=f"{PAPER_T6_OVER_T1:.1%}",
        measured_t6_over_t1=f"{ratio:.1%}",
    )
    recorder.print_table("Figure 10: total test time vs compute nodes")

    times = [athena_times[n] for n in NODE_COUNTS]
    # Monotone decrease (the paper's 'linear decrease'), with 5% jitter
    # tolerance at the flat end of the curve.
    assert all(b < a * 1.05 for a, b in zip(times, times[1:]))
    assert times[2] < times[0]
    # Six nodes land near the paper's 27.6% of single-node time.
    assert 0.15 < ratio < 0.45
    # Athena stays close to the raw implementation (paper: under 10%).
    for n_workers in NODE_COUNTS:
        assert athena_times[n_workers] / raw_times[n_workers] < 1.25


# -- measured wall clock on the process backend -------------------------------

PROCESS_WORKER_COUNTS = (1, 2, 4)
#: Fixed partition count so every configuration runs the identical task
#: graph; only the worker count (and therefore real parallelism) varies.
WALLCLOCK_PARTITIONS = 8


def _wallclock_workload():
    """A training workload heavy enough for real speedup to show.

    K-Means over a ~240k x 16 matrix: each round's map tasks dominate the
    per-round IPC (one chunk per worker; partitions are fork-inherited,
    so nothing but centers and partials moves per round).
    """
    import numpy as np

    rng = np.random.default_rng(42)
    return rng.normal(size=(240_000, 16))


def _train_wallclock(matrix, n_workers: int, backend: str):
    from repro.compute import PartitionedDataset
    from repro.ml.kmeans import KMeans

    cluster = ComputeCluster(n_workers, backend=backend)
    dataset = PartitionedDataset.from_matrix(matrix, WALLCLOCK_PARTITIONS)
    model = KMeans(k=12, max_iterations=12, epsilon=0.0, seed=9)
    model.fit_distributed(cluster, dataset)
    return model, model.last_job_report


def test_fig10_measured_wallclock(benchmark, recorder):
    """Real elapsed training time, serial vs process x worker count."""
    import os

    matrix = _wallclock_workload()
    serial_model, serial_report = benchmark.pedantic(
        lambda: _train_wallclock(matrix, 1, "serial"), rounds=1, iterations=1
    )
    recorder.add_row(
        backend="serial", workers=1,
        wall_s=serial_report.wall_seconds,
        modeled_makespan_s=serial_report.makespan_seconds,
        fallback_tasks=serial_report.fallback_tasks,
    )
    wall = {}
    for n_workers in PROCESS_WORKER_COUNTS:
        model, report = _train_wallclock(matrix, n_workers, "process")
        assert report.backend == "process"
        # The pool really ran every task and trained the same model.
        assert report.fallback_tasks == 0
        assert (model.centers == serial_model.centers).all()
        wall[n_workers] = report.wall_seconds
        recorder.add_row(
            backend="process", workers=n_workers,
            wall_s=report.wall_seconds,
            modeled_makespan_s=report.makespan_seconds,
            fallback_tasks=report.fallback_tasks,
        )
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    speedup = wall[1] / wall[4]
    recorder.set_meta(
        matrix_shape=f"{matrix.shape[0]}x{matrix.shape[1]}",
        partitions=WALLCLOCK_PARTITIONS,
        cpus_available=cpus,
        speedup_1_to_4=f"{speedup:.2f}x",
    )
    recorder.print_table(
        "Figure 10 (measured): K-Means training wall clock vs process workers"
    )
    if cpus >= 4:
        # With real cores behind the pool, 4 workers must beat 1 clearly.
        assert speedup > 1.5, (
            f"expected >1.5x speedup from 1 to 4 process workers on a "
            f"{cpus}-CPU machine, measured {speedup:.2f}x"
        )
