"""The hot-path regression bench behind ``BENCH_hotpath.json``.

Measures the three layers the hot-path overhaul touched (docs/PERF.md),
each fast-vs-reference on identical workloads, and asserts equivalence
before reporting a speedup:

* ``exact_match_lookup`` — packets/sec through a 1k-entry flow table
  whose probes hit the exact-match hash index (gate: >= 5x full mode,
  >= 1x quick/CI mode);
* ``indexed_find`` — docs/sec delivered from a 50k-document collection
  via the compound ``(feature_scope, switch_id)`` index and zero-copy
  reads (gate: >= 2x full mode);
* ``match_predicate`` — matches/sec of one compiled predicate vs the
  introspecting reference (ungated; context for the other two).

Runs standalone (``python benchmarks/bench_hotpath.py [--quick]
[--output PATH]``, exit 1 on gate failure) and under pytest (quick
workload).  The standalone run writes the ``BENCH_hotpath.json``
artifact CI uploads; a full run's output is committed at the repo root.
"""

import argparse
import sys

from repro.dataplane.flowtable import FlowTable
from repro.distdb.collection import Collection
from repro.openflow.flow import FlowEntry
from repro.openflow.match import Match
from repro.perf import (
    BenchResult,
    HotpathReport,
    fast_path_scope,
    measure_throughput,
)

# -- deterministic workloads (no RNG: the same data every run) -------------

_SCOPES = ("flow_stats", "port_stats", "conn_rate", "pair_flow")


def _flow_headers(i):
    """A concrete 11-field header dict for flow number ``i``."""
    return {
        "in_port": (i % 8) + 1,
        "eth_src": f"00:00:00:00:{(i >> 8) & 0xFF:02x}:{i & 0xFF:02x}",
        "eth_dst": f"00:00:00:01:{((i * 7) >> 8) & 0xFF:02x}:{(i * 7) & 0xFF:02x}",
        "eth_type": 0x0800,
        "vlan_id": i % 4,
        "ip_src": f"10.0.{(i >> 8) & 0xFF}.{i & 0xFF}",
        "ip_dst": f"10.1.{(i >> 8) & 0xFF}.{i & 0xFF}",
        "ip_proto": 6,
        "ip_tos": 0,
        "tcp_src": 1024 + (i % 1024),
        "tcp_dst": 80 if i % 2 == 0 else 443,
    }


def _miss_headers(i):
    """Headers matching neither an exact entry nor any wildcard."""
    return {
        "in_port": 9,
        "eth_src": f"00:00:00:02:00:{i & 0xFF:02x}",
        "eth_dst": "ff:ff:ff:ff:ff:ff",
        "eth_type": 0x0806,
    }


def _build_table(fast_path, n_exact):
    table = FlowTable(fast_path=fast_path)
    for i in range(n_exact):
        entry = FlowEntry(
            match=Match.exact_from_headers(_flow_headers(i)), priority=100
        )
        table.insert(entry, now=0.0)
    # Wildcards around the exact tier: one that outranks the exact entries
    # (shadows every odd flow), and several below them.
    wildcards = [
        (Match(eth_type=0x0800, ip_proto=6, tcp_dst=443), 200),
        (Match(eth_type=0x0800, ip_proto=17), 50),
        (Match(eth_type=0x0800, ip_proto=6), 40),
        (Match(in_port=1), 5),
        (Match(in_port=2), 5),
        (Match(in_port=3), 5),
    ]
    for match, priority in wildcards:
        table.insert(FlowEntry(match=match, priority=priority), now=0.0)
    return table


def _winner_signature(entry):
    if entry is None:
        return None
    return (entry.priority, entry.match.key_tuple())


def _bench_exact_match(quick):
    n_exact = 300 if quick else 1000
    n_probes = 150 if quick else 500
    probes = [_flow_headers(i * 2 % n_exact) for i in range(n_probes)]
    probes += [_miss_headers(i) for i in range(n_probes // 5)]
    fast_table = _build_table(True, n_exact)
    slow_table = _build_table(False, n_exact)

    with fast_path_scope(True):
        fast_winners = [_winner_signature(fast_table.lookup(h)) for h in probes]
    with fast_path_scope(False):
        slow_winners = [_winner_signature(slow_table.lookup(h)) for h in probes]
    equivalent = fast_winners == slow_winners

    fast_repeat = 10 if quick else 40

    def run_fast():
        with fast_path_scope(True):
            lookup = fast_table.lookup
            for _ in range(fast_repeat):
                for headers in probes:
                    lookup(headers)

    def run_slow():
        with fast_path_scope(False):
            lookup = slow_table.lookup
            for headers in probes:
                lookup(headers)

    rounds = 2 if quick else 3
    return BenchResult(
        name="exact_match_lookup",
        fast_ops_per_sec=measure_throughput(
            run_fast, len(probes) * fast_repeat, rounds=rounds
        ),
        slow_ops_per_sec=measure_throughput(run_slow, len(probes), rounds=rounds),
        n_ops=len(probes),
        equivalent=equivalent,
        unit="lookups/s",
        detail={"table_entries": len(fast_table), "probes": len(probes)},
    )


def _feature_doc(i):
    return {
        "feature_scope": _SCOPES[i % 4],
        "switch_id": i % 64,
        "ip_src": f"10.0.{(i >> 8) & 0xFF}.{i & 0xFF}",
        "packet_count": (i * 37) % 10007,
        "byte_count": (i * 911) % 1000003,
        "window": i % 16,
    }


def _feature_queries(n_queries):
    return [
        {
            "filter": {
                "$and": [
                    {"feature_scope": _SCOPES[q % 4]},
                    {"switch_id": (q * 11) % 64},
                ]
            },
            "sort": [("packet_count", -1)],
            "limit": 10,
        }
        for q in range(n_queries)
    ]


def _run_queries(collection, queries):
    batches = []
    for query in queries:
        batches.append(
            collection.find(
                query["filter"], sort=query["sort"], limit=query["limit"]
            )
        )
    return batches


def _bench_indexed_find(quick):
    n_docs = 4000 if quick else 50_000
    n_queries = 6 if quick else 8
    collection = Collection("features")
    collection.create_index("switch_id")
    collection.create_index("feature_scope", "switch_id")
    collection.insert_many(_feature_doc(i) for i in range(n_docs))
    queries = _feature_queries(n_queries)

    with fast_path_scope(True):
        read_before = collection.bytes_read
        fast_batches = _run_queries(collection, queries)
        fast_bytes = collection.bytes_read - read_before
    with fast_path_scope(False):
        read_before = collection.bytes_read
        slow_batches = _run_queries(collection, queries)
        slow_bytes = collection.bytes_read - read_before
    equivalent = fast_batches == slow_batches and fast_bytes == slow_bytes
    docs_returned = sum(len(batch) for batch in fast_batches)

    fast_repeat = 10 if quick else 50

    def run_fast():
        with fast_path_scope(True):
            for _ in range(fast_repeat):
                _run_queries(collection, queries)

    def run_slow():
        with fast_path_scope(False):
            _run_queries(collection, queries)

    rounds = 2 if quick else 3
    return BenchResult(
        name="indexed_find",
        fast_ops_per_sec=measure_throughput(
            run_fast, docs_returned * fast_repeat, rounds=rounds
        ),
        slow_ops_per_sec=measure_throughput(run_slow, docs_returned, rounds=rounds),
        n_ops=docs_returned,
        equivalent=equivalent,
        unit="docs/s",
        detail={
            "collection_docs": n_docs,
            "queries": n_queries,
            "bytes_read_per_batch": fast_bytes,
        },
    )


def _bench_match_predicate(quick):
    match = Match(
        eth_type=0x0800, ip_src="10.0.0.1", ip_dst="10.1.0.1", ip_proto=6, tcp_dst=80
    )
    hit = _flow_headers(0) | {"ip_src": "10.0.0.1", "ip_dst": "10.1.0.1"}
    miss = _flow_headers(1)
    n = 5_000 if quick else 50_000

    with fast_path_scope(True):
        fast_verdicts = (match.matches(hit), match.matches(miss))
    with fast_path_scope(False):
        slow_verdicts = (match.matches(hit), match.matches(miss))

    def run(enabled):
        def body():
            with fast_path_scope(enabled):
                matches = match.matches
                for _ in range(n // 2):
                    matches(hit)
                    matches(miss)

        return body

    rounds = 2 if quick else 3
    return BenchResult(
        name="match_predicate",
        fast_ops_per_sec=measure_throughput(run(True), n, rounds=rounds),
        slow_ops_per_sec=measure_throughput(run(False), n, rounds=rounds),
        n_ops=n,
        equivalent=fast_verdicts == slow_verdicts == (True, False),
        unit="matches/s",
    )


# -- assembly ----------------------------------------------------------------


def run_report(quick=False):
    report = HotpathReport(quick=quick)
    report.add(_bench_exact_match(quick), min_speedup=1.0 if quick else 5.0)
    report.add(_bench_indexed_find(quick), min_speedup=None if quick else 2.0)
    report.add(_bench_match_predicate(quick))
    return report


# -- pytest entry points -----------------------------------------------------


def test_hotpath_quick(recorder):
    report = run_report(quick=True)
    recorder.set_meta(quick=True)
    for result in report.results:
        recorder.add_row(
            name=result.name,
            unit=result.unit,
            fast_ops_per_sec=round(result.fast_ops_per_sec, 1),
            slow_ops_per_sec=round(result.slow_ops_per_sec, 1),
            speedup=round(result.speedup, 2),
            equivalent=result.equivalent,
        )
    recorder.print_table("hot-path overhaul (quick)")
    assert report.passed, report.failures()


# -- standalone entry point --------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workloads + relaxed gates (CI smoke mode)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_hotpath.json",
        help="where to write the JSON artifact (default: ./BENCH_hotpath.json)",
    )
    args = parser.parse_args(argv)
    report = run_report(quick=args.quick)
    report.write(args.output)
    report.print_summary()
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
