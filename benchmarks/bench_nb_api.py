"""The northbound serving-tier load bench behind ``BENCH_nb_api.json``.

The serving tier promises that heavy client traffic rides on the
version-keyed response cache instead of the detection loop (docs/API.md):
once a response is rendered at the current state version, every repeat is
one dict lookup, and conditional polls collapse to 304s.  This bench
quantifies that promise cbench-style and gates it two ways:

* ``cached_throughput`` — queries/sec over a warmed route mix, single
  client and 4 concurrent clients (gate: >= 1,000 q/s — measured rates
  are typically two orders above the gate);
* ``modeled_perturbation`` — the detection-loop wall-clock share a
  sustained 1,000 q/s offered load would steal: ``target_qps x
  seconds_per_cached_query`` (gate: < 5%), the same budget discipline as
  ``bench_telemetry_overhead``;
* ``measured_perturbation`` (full mode only) — the detection scenario is
  re-run while 4 paced client threads drive ~1,000 q/s against it;
  best-of-3 wall-clock ratio vs the unloaded run (gate: < 5%).

Runs standalone (``python benchmarks/bench_nb_api.py [--quick]
[--output PATH]``, exit 1 on gate failure) and under pytest (quick
workload).  The standalone run writes the ``BENCH_nb_api.json`` artifact
CI uploads; a full run's output is committed at the repo root.
"""

import argparse
import json
import sys
import threading

from repro import telemetry
from repro.northbound import LocalClient, NorthboundAPI, build_demo_stack
from repro.telemetry.clocks import Stopwatch

#: Offered load the perturbation model assumes (and the paced threads drive).
TARGET_QPS = 1000.0
#: Detection wall-clock share the serving tier may cost at TARGET_QPS.
MAX_PERTURBATION = 0.05
#: Minimum cached-query service rate, single-client.
MIN_QPS = 1000.0

#: The route mix every throughput phase cycles through — the endpoints a
#: polling dashboard hits, cheap and expensive alike.
ROUTES = (
    "/api/status",
    "/api/features?limit=20",
    "/api/alerts",
    "/api/models",
    "/api/health",
    "/api/switches",
    "/api/switches/1/flows?limit=5",
)

#: Scenario shape for the measured-perturbation phase: long enough that
#: the unloaded run takes ~1s of wall clock, so a ~1,000 q/s offered load
#: amounts to thousands of queries per attempt.
FULL_HORIZON = 30.0
FULL_RATE_PPS = 600.0
QUICK_HORIZON = 8.0
QUICK_RATE_PPS = 150.0


def _build_serving_stack(horizon, rate_pps):
    """A finished detection run plus its API, with run wall-clock."""
    stack = build_demo_stack(horizon=horizon, attack_rate_pps=rate_pps)
    watch = Stopwatch()
    stack.run(until=horizon)
    run_seconds = watch.elapsed()
    stack.enforce_block()
    return stack, NorthboundAPI(stack.athena), run_seconds


def _warm(client):
    for route in ROUTES:
        client.get(route)


def _measure_cached_qps(client, n_queries):
    """(queries/sec, seconds/query) over the warmed route mix."""
    _warm(client)
    watch = Stopwatch()
    for i in range(n_queries):
        client.get(ROUTES[i % len(ROUTES)])
    elapsed = watch.elapsed()
    return n_queries / elapsed, elapsed / n_queries


def _measure_304_qps(client, n_queries):
    """Conditional-poll rate: every request carries a current ETag."""
    etag = client.get("/api/status").etag
    headers = {"If-None-Match": etag}
    watch = Stopwatch()
    for _ in range(n_queries):
        client.get("/api/status", headers=headers)
    return n_queries / watch.elapsed()


def _measure_threaded_qps(app, n_threads, per_thread):
    """Aggregate q/s with ``n_threads`` unpaced concurrent clients."""
    barrier = threading.Barrier(n_threads + 1)

    def worker():
        client = LocalClient(app)
        _warm(client)
        barrier.wait()
        for i in range(per_thread):
            client.get(ROUTES[i % len(ROUTES)])

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    barrier.wait()
    watch = Stopwatch()
    for thread in threads:
        thread.join()
    return n_threads * per_thread / watch.elapsed()


class _PacedClients:
    """Background clients offering ~TARGET_QPS against an app, until stopped.

    Each client polls in bursts — a sweep of queries every ``poll_period``
    seconds, like a dashboard refreshing all its panels at once — rather
    than one query per wakeup.  The offered rate is the same; the burst
    shape keeps thread wakeups (each of which preempts the CPU-bound
    detection loop for a GIL handoff) at tens per second instead of
    thousands.
    """

    def __init__(self, app, n_threads=4, target_qps=TARGET_QPS,
                 poll_period=0.05):
        self._stop = threading.Event()
        self._period = poll_period
        self._burst = max(1, round(target_qps * poll_period / n_threads))
        self._app = app
        self.queries_served = 0
        self._lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._run, daemon=True)
            for _ in range(n_threads)
        ]

    def _run(self):
        client = LocalClient(self._app)
        pacer = threading.Event()  # never set: wait() is the pace timer
        served = 0
        while not self._stop.is_set():
            for i in range(self._burst):
                client.get(ROUTES[(served + i) % len(ROUTES)])
            served += self._burst
            pacer.wait(self._period)
        with self._lock:
            self.queries_served += served

    def __enter__(self):
        for thread in self._threads:
            thread.start()
        return self

    def __exit__(self, *exc_info):
        self._stop.set()
        for thread in self._threads:
            thread.join()
        return False


def _measure_perturbation(attempts=3):
    """Best-of-N measured slowdown of the detection run under offered load.

    Each attempt runs the identical scenario twice — unloaded, then with
    paced clients querying throughout — and compares wall clocks.  The
    minimum ratio across attempts is the estimate (scheduler noise only
    ever inflates a ratio, never deflates it).
    """
    best = None
    total_queries = 0
    for _ in range(attempts):
        _, _, unloaded = _build_serving_stack(FULL_HORIZON, FULL_RATE_PPS)
        stack = build_demo_stack(
            horizon=FULL_HORIZON, attack_rate_pps=FULL_RATE_PPS
        )
        app = NorthboundAPI(stack.athena)
        _warm(LocalClient(app))
        with _PacedClients(app) as clients:
            watch = Stopwatch()
            stack.run(until=FULL_HORIZON)
            loaded = watch.elapsed()
        total_queries += clients.queries_served
        ratio = loaded / unloaded - 1.0
        best = ratio if best is None else min(best, ratio)
    return best, total_queries


def _cache_counters():
    snapshot = telemetry.get_telemetry().snapshot()
    wanted = {
        "athena_nb_api_cache_hits_total",
        "athena_nb_api_not_modified_total",
    }
    totals = {}
    for row in snapshot["metrics"]:
        if row["name"] in wanted:
            totals[row["name"]] = sum(
                sample["value"] for sample in row["samples"]
            )
    return totals


# -- assembly ----------------------------------------------------------------


def run_report(quick=False):
    """Run every phase; returns the artifact dict (``passed`` included)."""
    telemetry.configure(enabled=True)
    n_queries = 2_000 if quick else 20_000
    horizon = QUICK_HORIZON if quick else FULL_HORIZON
    rate = QUICK_RATE_PPS if quick else FULL_RATE_PPS
    _, app, _ = _build_serving_stack(horizon, rate)
    client = LocalClient(app)

    qps, per_query = _measure_cached_qps(client, n_queries)
    qps_304 = _measure_304_qps(client, n_queries)
    threaded_qps = _measure_threaded_qps(
        app, n_threads=4, per_thread=n_queries // 4
    )
    modeled = TARGET_QPS * per_query

    rows = [
        {"metric": "cached_qps_single_client", "value": round(qps, 1),
         "gate": f">= {MIN_QPS:,.0f}", "passed": qps >= MIN_QPS},
        {"metric": "cached_qps_4_clients", "value": round(threaded_qps, 1),
         "gate": f">= {MIN_QPS:,.0f}", "passed": threaded_qps >= MIN_QPS},
        {"metric": "conditional_304_qps", "value": round(qps_304, 1),
         "gate": f">= {MIN_QPS:,.0f}", "passed": qps_304 >= MIN_QPS},
        {"metric": "modeled_perturbation_at_target_qps",
         "value": round(modeled, 5),
         "gate": f"< {MAX_PERTURBATION}", "passed": modeled < MAX_PERTURBATION},
    ]
    meta = {
        "quick": quick,
        "target_qps": TARGET_QPS,
        "route_mix": list(ROUTES),
        "queries_per_phase": n_queries,
        "cached_query_us": round(per_query * 1e6, 2),
        "cache_counters": _cache_counters(),
    }
    if not quick:
        measured, concurrent_queries = _measure_perturbation()
        meta["concurrent_queries_driven"] = concurrent_queries
        rows.append(
            {"metric": "measured_perturbation_under_load",
             "value": round(measured, 5),
             "gate": f"< {MAX_PERTURBATION}",
             "passed": measured < MAX_PERTURBATION}
        )
    return {
        "bench": "nb_api",
        "meta": meta,
        "rows": rows,
        "passed": all(row["passed"] for row in rows),
    }


# -- pytest entry points -----------------------------------------------------


def test_nb_api_load_quick(recorder):
    report = run_report(quick=True)
    recorder.set_meta(**{
        key: value for key, value in report["meta"].items()
        if key != "route_mix"
    })
    for row in report["rows"]:
        recorder.add_row(**row)
    recorder.print_table("northbound API load (quick)")
    telemetry.reset_telemetry()
    failures = [row["metric"] for row in report["rows"] if not row["passed"]]
    assert report["passed"], failures


# -- standalone entry point --------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workloads, no measured-perturbation phase (CI smoke mode)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_nb_api.json",
        help="where to write the JSON artifact (default: ./BENCH_nb_api.json)",
    )
    args = parser.parse_args(argv)
    report = run_report(quick=args.quick)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")
    width = max(len(row["metric"]) for row in report["rows"])
    for row in report["rows"]:
        verdict = "ok " if row["passed"] else "FAIL"
        print(f"  {verdict} {row['metric']:{width}s} "
              f"{row['value']:>12,} (gate {row['gate']})")
    print("PASSED" if report["passed"] else "FAILED")
    return 0 if report["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
