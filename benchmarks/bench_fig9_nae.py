"""Figure 9 — the NAE monitor's coarse-grained analysis view.

Paper: per-switch packet counts aggregated by app id, switch id, and
timestamp over the Figure 8 topology; a sawtooth from soft-timeout rule
expiry; after the security app activates (03:58 in the paper's clock), it
takes over most traffic flows and the load balancer loses forwarding
control, so one path saturates while the other starves — reported as an
SLA-violation alert on the operator UI.

The bench runs the full live scenario: Figure 8 topology, load-balancer +
security applications with conflicting priorities, FTP-dominated client
workload, security app activated mid-run, NAE monitor watching switches 6
and 3 through AddEventHandler.
"""

import collections

import pytest

from repro.apps.nae import NAEMonitorApp
from repro.controller import (
    ControllerCluster,
    LoadBalancerApp,
    ReactiveForwarding,
    SecurityRedirectApp,
)
from repro.core import AthenaDeployment
from repro.dataplane.topologies import nae_topology
from repro.workloads.flows import TrafficSchedule
from repro.workloads.nae import NAEWorkload

ACTIVATION_TIME = 30.0
HORIZON = 70.0


def _run_scenario():
    topo = nae_topology(clients_per_edge=2)
    net = topo.network
    cluster = ControllerCluster(net, n_instances=1)
    cluster.adopt_all()
    cluster.start(poll=False)
    ftp_ip = net.hosts["ftp"].ip
    web_ip = net.hosts["web"].ip
    forwarding = ReactiveForwarding(priority=5)
    forwarding.activate(cluster)
    balancer = LoadBalancerApp(
        server_ips=[ftp_ip, web_ip], priority=20, idle_timeout=4.0
    )
    balancer.activate(cluster)
    security = SecurityRedirectApp(
        security_dpid=6, inspect_ports=(20, 21), priority=30
    )
    athena = AthenaDeployment(cluster, athena_poll_interval=2.5)
    athena.start()
    monitor = NAEMonitorApp(monitored_switches=(6, 3), bucket_seconds=5.0)
    athena.register_app(monitor)
    schedule = TrafficSchedule(net)
    schedule.prime_arp(0.0)
    workload = NAEWorkload(
        clients=topo.roles["clients"], duration=60.0, ftp_fraction=0.8
    )
    schedule.add_flows(workload.flows())
    net.sim.at(ACTIVATION_TIME, lambda: security.activate(cluster))
    net.sim.run(until=HORIZON)
    return athena, monitor


def test_fig9_nae_monitor(benchmark, recorder):
    athena, monitor = benchmark.pedantic(_run_scenario, rounds=1, iterations=1)

    print()
    print(monitor.show())

    per_phase = collections.defaultdict(float)
    for row in monitor.results_rows():
        phase = "pre" if row["timestamp"] < ACTIVATION_TIME else "post"
        per_phase[(phase, row["switch_id"])] += row["value"]
    pre_total = per_phase[("pre", 3)] + per_phase[("pre", 6)]
    post_total = per_phase[("post", 3)] + per_phase[("post", 6)]
    pre_share_s6 = per_phase[("pre", 6)] / pre_total
    post_share_s6 = per_phase[("post", 6)] / post_total

    recorder.add_row(
        phase="before security app",
        paper="traffic evenly distributed by LB",
        s3_packets=round(per_phase[("pre", 3)]),
        s6_packets=round(per_phase[("pre", 6)]),
        s6_share=f"{pre_share_s6:.1%}",
    )
    recorder.add_row(
        phase="after security app",
        paper="security app takes over most flows",
        s3_packets=round(per_phase[("post", 3)]),
        s6_packets=round(per_phase[("post", 6)]),
        s6_share=f"{post_share_s6:.1%}",
    )
    recorder.set_meta(
        activation_time=ACTIVATION_TIME,
        violations=len(monitor.violations),
        first_violation=(
            min(v["time"] for v in monitor.violations)
            if monitor.violations
            else None
        ),
        alerts=len(athena.ui_manager.alerts),
    )
    recorder.print_table("Figure 9: NAE per-switch traffic, pre/post takeover")

    # Balanced before, saturated after — the paper's effect.
    assert 0.35 < pre_share_s6 < 0.65
    assert post_share_s6 > 0.8
    # SLA violations begin only at/after the security app activation.
    assert monitor.violations
    assert min(v["time"] for v in monitor.violations) >= ACTIVATION_TIME
    # The operator UI received the alert.
    assert any(a["source"] == monitor.name for a in athena.ui_manager.alerts)


def test_fig9_sawtooth(benchmark, recorder):
    """The sawtooth: per-bucket counts rise and fall with rule expiry."""
    athena, monitor = benchmark.pedantic(_run_scenario, rounds=1, iterations=1)
    series = collections.defaultdict(float)
    for row in monitor.results_rows():
        if row["timestamp"] < ACTIVATION_TIME:
            series[row["timestamp"]] += row["value"]
    values = [series[t] for t in sorted(series)]
    rises = sum(1 for a, b in zip(values, values[1:]) if b > a)
    falls = sum(1 for a, b in zip(values, values[1:]) if b < a)
    recorder.add_row(
        metric="pre-activation buckets", rises=rises, falls=falls,
        paper="sawtooth from soft-timeout expiry",
    )
    recorder.print_table("Figure 9 companion: sawtooth structure")
    assert rises >= 1 and falls >= 1
