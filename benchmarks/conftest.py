"""Shared benchmark machinery.

Every bench regenerates one of the paper's tables or figures.  Besides the
pytest-benchmark timing, each bench records its reproduced rows/series into
``benchmarks/results/<name>.json`` and prints a paper-vs-measured table, so
EXPERIMENTS.md can be refreshed from a single run.
"""

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


class ResultRecorder:
    """Collects rows for one experiment and persists them as JSON."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.rows = []
        self.meta = {}

    def add_row(self, **fields) -> None:
        self.rows.append(fields)

    def set_meta(self, **fields) -> None:
        self.meta.update(fields)

    def save(self) -> pathlib.Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.name}.json"
        with open(path, "w") as handle:
            json.dump({"meta": self.meta, "rows": self.rows}, handle, indent=2)
        return path

    def print_table(self, title: str) -> None:
        print(f"\n=== {title} ===")
        if self.meta:
            for key, value in self.meta.items():
                print(f"  {key}: {value}")
        if not self.rows:
            return
        columns = list(self.rows[0].keys())
        widths = {
            c: max(len(c), *(len(self._fmt(r.get(c))) for r in self.rows))
            for c in columns
        }
        header = "  ".join(c.ljust(widths[c]) for c in columns)
        print(header)
        print("-" * len(header))
        for row in self.rows:
            print(
                "  ".join(self._fmt(row.get(c)).ljust(widths[c]) for c in columns)
            )

    @staticmethod
    def _fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:,.4g}"
        return str(value)


@pytest.fixture
def recorder(request):
    """Per-test result recorder named after the module and test."""
    module = request.module.__name__.replace("bench_", "")
    test = request.node.name.replace("test_", "")
    name = module if module == test else f"{module}__{test}"
    rec = ResultRecorder(name)
    yield rec
    rec.save()
