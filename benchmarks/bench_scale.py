"""The Fig-10 scale sweep behind ``BENCH_scale.json``.

Exercises the columnar batch feature path (docs/PERF.md, docs/COMPUTE.md)
on the DDoS flow-record dataset at paper scale and proves the three
claims the ``ATHENA_COLUMNAR`` flag makes, each fast-vs-reference on
identical stores with equivalence asserted before a speedup is reported:

* ``batch_extraction`` — rows/sec from the sharded store to a
  model-ready (matrix, marks) pair: ``request_frame`` +
  ``transform_frame`` vs ``request_features`` + the per-row document
  transform, byte-identical outputs (gate: >= 5x full mode, >= 1x
  quick/CI mode);
* ``worker_scale_modeled`` — the Fig-10 curve for extraction itself:
  chunked frame extraction dispatched over 1/2/4/8 compute workers with
  the calibrated distribution-cost model and ``work_scale = 1/scale``
  occupying workers as the 37.37M-entry dataset would.  Gate: the 1 -> 8
  worker makespan ratio stays near-linear (>= 4x full, >= 3x quick);
* ``worker_scale_wallclock`` — the same sweep measured for real on the
  process execution backend (gate >= 1.5x from 1 to 4 workers, applied
  only when >= 4 CPUs are actually available; the CPU count is recorded
  either way);
* ``memory_ceiling`` — rows per MB of tracemalloc peak for one
  extraction: column arrays over shared document references vs the
  copied-document path (gate: frame path >= 2x denser, full mode);
* ``insert_many_batch`` — docs/sec into the column store, one routed
  batch vs a per-document insert loop (ungated context; stores must end
  identical);
* ``detection_equivalence`` — the full DDoS batch detection run twice on
  one frozen store, ``ATHENA_COLUMNAR`` off then on: predictions,
  confusion counts, and cluster reports must be byte-identical
  (ungated; the equivalence verdict itself is the gate).

Runs standalone (``python benchmarks/bench_scale.py [--quick]
[--output PATH]``, exit 1 on gate failure) and under pytest (quick
workload).  The standalone run writes the ``BENCH_scale.json`` artifact
CI uploads; a full run's output is committed at the repo root.
"""

import argparse
import os
import sys
import tracemalloc

import numpy as np

from repro.compute import ClusterConfig, ComputeCluster, PartitionedDataset
from repro.controller import ControllerCluster
from repro.core import AthenaDeployment
from repro.core.feature_manager import FEATURE_COLLECTION, FeatureManager
from repro.core.preprocessor import GeneratePreprocessor
from repro.core.query import GenerateQuery
from repro.dataplane.topologies import linear_topology
from repro.distdb import ColumnStoreCluster, DatabaseCluster
from repro.distdb.frame import ChunkExtractor, assemble_chunks
from repro.perf import BenchResult, HotpathReport, columnar_scope, measure_throughput
from repro.telemetry.clocks import Stopwatch
from repro.workloads.ddos import DDOS_FEATURES, DDoSDatasetGenerator, DDoSDatasetSpec

# Paper dataset: 37,370,466 flow entries.  The full sweep replays a
# 0.054 slice (~2.02M entries, the multi-million tier the frame path is
# for); quick/CI mode replays 0.004 (~150k).
FULL_SCALE = 0.054
QUICK_SCALE = 0.004

# The dual-path detection run retrains K-Means twice, so it uses the
# Fig-10 validation scale rather than the extraction-sweep scale.
FULL_DETECT_SCALE = 0.01
QUICK_DETECT_SCALE = 0.002

WORKER_COUNTS = (1, 2, 4, 8)
WALLCLOCK_WORKERS = (1, 2, 4)
N_PARTITIONS = 8
N_SHARDS = 4


def _train_query():
    return GenerateQuery("feature_scope == flow").time_window(0.0, 1800.0)


def _preprocessor():
    return GeneratePreprocessor(
        normalization="minmax",
        weights={"PAIR_FLOW": 1.5, "PAIR_FLOW_RATIO": 1.5},
        marking="label",
        features=DDOS_FEATURES,
    )


def _build_store(scale):
    """One sharded store holding the replayed dataset; built exactly once.

    Feature documents carry no ``_id``, so shard routing falls back to
    object identity — every comparison below therefore runs both paths
    over this single frozen store rather than re-populating.
    """
    generator = DDoSDatasetGenerator(DDoSDatasetSpec(scale=scale))
    documents = generator.generate()
    database = DatabaseCluster(n_shards=N_SHARDS, shard_key="switch_id")
    manager = FeatureManager(database, store_features=True)
    manager.publish_documents(documents)
    return database, manager, len(documents)


# -- batch extraction: store -> model-ready (matrix, marks) ------------------


def _bench_batch_extraction(manager, quick):
    query = _train_query()
    preprocessor = _preprocessor()
    preprocessor.fit(manager.request_features(query))

    slow_docs = manager.request_features(query)
    slow_matrix, slow_marks, _ = preprocessor.transform(slow_docs)
    frame = manager.request_frame(query)
    fast_matrix, fast_marks, kept = preprocessor.transform_frame(frame)
    equivalent = (
        fast_matrix.tobytes() == slow_matrix.tobytes()
        and fast_marks.tobytes() == slow_marks.tobytes()
        and kept.copy_documents() == slow_docs
    )
    n_rows = len(slow_docs)

    def run_fast():
        preprocessor.transform_frame(manager.request_frame(query))

    def run_slow():
        preprocessor.transform(manager.request_features(query))

    rounds = 2 if quick else 3
    return BenchResult(
        name="batch_extraction",
        fast_ops_per_sec=measure_throughput(run_fast, n_rows, rounds=rounds),
        slow_ops_per_sec=measure_throughput(run_slow, n_rows, rounds=rounds),
        n_ops=n_rows,
        equivalent=equivalent,
        unit="rows/s",
        detail={"features": len(DDOS_FEATURES), "shards": N_SHARDS},
    )


# -- worker scale-down -------------------------------------------------------


def _extraction_partitions(database, filter_):
    """The shard candidate lists rebalanced to the sweep's task count."""
    partitions = [p for p in database.shard_candidates(FEATURE_COLLECTION, filter_) if p]
    rebalanced = []
    per_shard = max(1, N_PARTITIONS // max(1, len(partitions)))
    for part in partitions:
        splits = PartitionedDataset.from_records(part, per_shard).partitions
        rebalanced.extend(s for s in splits if s)
    return rebalanced or [[]]


def _sweep_config(scale):
    """Fig-10 distribution-cost constants (see bench_fig10_scalability)."""
    return ClusterConfig(
        t_setup=0.12, t_broadcast=0.02, t_collect=0.002, work_scale=1.0 / scale
    )


def _bench_worker_scale_modeled(database, manager, scale, quick):
    query = _train_query()
    filter_ = query.to_db_filter() or None
    columns = tuple(DDOS_FEATURES) + ("label",)
    partitions = _extraction_partitions(database, filter_)
    dataset = PartitionedDataset(partitions)
    extractor = ChunkExtractor(columns, filter_)
    reference = manager.request_frame(query, columns=list(columns))

    makespans = {}
    equivalent = True
    for n_workers in WORKER_COUNTS:
        compute = ComputeCluster(n_workers, config=_sweep_config(scale))
        report = compute.run_map(dataset, extractor)
        frame = assemble_chunks(report.result, partitions)
        equivalent = equivalent and (
            frame.to_matrix(DDOS_FEATURES).tobytes()
            == reference.to_matrix(DDOS_FEATURES).tobytes()
            and frame.documents() == reference.documents()
        )
        makespans[n_workers] = report.makespan_seconds
    # The public API drives the same parallel path end to end.
    api_frame = manager.request_frame(
        query,
        columns=list(columns),
        compute=ComputeCluster(4, config=_sweep_config(scale)),
        n_partitions=N_PARTITIONS,
    )
    equivalent = equivalent and api_frame.documents() == reference.documents()

    n_rows = reference.n_rows
    first, last = WORKER_COUNTS[0], WORKER_COUNTS[-1]
    return BenchResult(
        name="worker_scale_modeled",
        fast_ops_per_sec=n_rows / makespans[last],
        slow_ops_per_sec=n_rows / makespans[first],
        n_ops=n_rows,
        equivalent=equivalent,
        unit="rows/s",
        detail={
            "work_scale": round(1.0 / scale, 2),
            "partitions": len(partitions),
            "makespan_seconds": {
                str(w): round(makespans[w], 4) for w in WORKER_COUNTS
            },
            "t_last_over_t1": round(makespans[last] / makespans[first], 4),
        },
    )


def _bench_worker_scale_wallclock(database, quick):
    filter_ = _train_query().to_db_filter() or None
    columns = tuple(DDOS_FEATURES) + ("label",)
    partitions = _extraction_partitions(database, filter_)
    dataset = PartitionedDataset(partitions)
    extractor = ChunkExtractor(columns, filter_)

    walls = {}
    reference_bytes = None
    equivalent = True
    for n_workers in WALLCLOCK_WORKERS:
        compute = ComputeCluster(n_workers, backend="process")
        report = compute.run_map(dataset, extractor)
        equivalent = equivalent and report.fallback_tasks == 0
        frame_bytes = assemble_chunks(report.result, partitions).to_matrix(
            DDOS_FEATURES
        ).tobytes()
        if reference_bytes is None:
            reference_bytes = frame_bytes
        equivalent = equivalent and frame_bytes == reference_bytes
        walls[n_workers] = report.wall_seconds
    cpus = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else (os.cpu_count() or 1)
    )
    n_rows = sum(len(p) for p in partitions)
    first, last = WALLCLOCK_WORKERS[0], WALLCLOCK_WORKERS[-1]
    result = BenchResult(
        name="worker_scale_wallclock",
        fast_ops_per_sec=n_rows / walls[last] if walls[last] > 0 else float("inf"),
        slow_ops_per_sec=n_rows / walls[first] if walls[first] > 0 else float("inf"),
        n_ops=n_rows,
        equivalent=equivalent,
        unit="rows/s",
        detail={
            "backend": "process",
            "cpus_available": cpus,
            "gated": cpus >= 4,
            "wall_seconds": {str(w): round(walls[w], 4) for w in WALLCLOCK_WORKERS},
        },
    )
    return result, cpus


# -- memory ceiling ----------------------------------------------------------


def _bench_memory_ceiling(database, manager, quick):
    query = _train_query()
    filter_ = query.to_db_filter() or None
    preprocessor = _preprocessor()
    preprocessor.fit(manager.request_features(query))
    columns = tuple(DDOS_FEATURES) + ("label",)

    tracemalloc.start()
    frame = database.find_frame(FEATURE_COLLECTION, filter_, columns=columns)
    fast_out = preprocessor.transform_frame(frame)
    _, fast_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    fast_bytes = fast_out[0].tobytes()
    n_rows = frame.n_rows
    del frame, fast_out

    tracemalloc.start()
    docs = database.find(FEATURE_COLLECTION, filter_)
    slow_out = preprocessor.transform(docs)
    _, slow_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    equivalent = slow_out[0].tobytes() == fast_bytes
    del docs, slow_out

    mb = 1024 * 1024
    return BenchResult(
        name="memory_ceiling",
        fast_ops_per_sec=n_rows / (fast_peak / mb),
        slow_ops_per_sec=n_rows / (slow_peak / mb),
        n_ops=n_rows,
        equivalent=equivalent,
        unit="rows/MB",
        detail={
            "fast_peak_mb": round(fast_peak / mb, 1),
            "slow_peak_mb": round(slow_peak / mb, 1),
            "fast_bytes_per_row": round(fast_peak / n_rows, 1),
            "slow_bytes_per_row": round(slow_peak / n_rows, 1),
        },
    )


# -- batched column-store ingest ---------------------------------------------


def _bench_insert_many(quick):
    n_docs = 10_000 if quick else 100_000
    generator = DDoSDatasetGenerator(DDoSDatasetSpec(scale=0.0003 if quick else 0.003))
    docs = generator.generate()[:n_docs]
    n_docs = len(docs)

    batch_store = ColumnStoreCluster(n_nodes=3)
    batch_store.insert_many("features", [dict(d) for d in docs])
    loop_store = ColumnStoreCluster(n_nodes=3)
    for doc in docs:
        loop_store.insert_one("features", dict(doc))
    equivalent = (
        batch_store.writes == loop_store.writes
        and batch_store.find("features", None) == loop_store.find("features", None)
    )

    def run_batch():
        ColumnStoreCluster(n_nodes=3).insert_many(
            "features", [dict(d) for d in docs]
        )

    def run_loop():
        store = ColumnStoreCluster(n_nodes=3)
        for doc in docs:
            store.insert_one("features", dict(doc))

    rounds = 2 if quick else 3
    return BenchResult(
        name="insert_many_batch",
        fast_ops_per_sec=measure_throughput(run_batch, n_docs, rounds=rounds),
        slow_ops_per_sec=measure_throughput(run_loop, n_docs, rounds=rounds),
        n_ops=n_docs,
        equivalent=equivalent,
        unit="docs/s",
        detail={"nodes": 3, "replication": 2},
    )


# -- dual-path detection on one frozen store ---------------------------------


def _timed_detection(app, test_documents, enabled):
    with columnar_scope(enabled):
        watch = Stopwatch()
        summary = app.run_batch(test_documents=test_documents)
        elapsed = watch.elapsed()
    return summary, elapsed


def _bench_detection_equivalence(quick):
    scale = QUICK_DETECT_SCALE if quick else FULL_DETECT_SCALE
    generator = DDoSDatasetGenerator(DDoSDatasetSpec(scale=scale))
    train, test = generator.train_test_split(generator.generate())

    topo = linear_topology(n_switches=2)
    controller = ControllerCluster(topo.network, n_instances=1)
    controller.adopt_all()
    athena = AthenaDeployment(
        controller,
        database=DatabaseCluster(n_shards=N_SHARDS, shard_key="switch_id"),
        compute=ComputeCluster(4),
        distributed_threshold=1000,
    )
    from repro.apps.ddos import DDoSDetectorApp

    app = DDoSDetectorApp(params={"k": 8, "max_iterations": 10, "runs": 1, "seed": 1})
    athena.register_app(app)
    # Freeze the store once; training reads it through whichever path the
    # flag selects, validation consumes the same pre-fetched test split.
    athena.feature_manager.publish_documents(train)

    doc_summary, doc_elapsed = _timed_detection(app, test, enabled=False)
    col_summary, col_elapsed = _timed_detection(app, test, enabled=True)
    equivalent = (
        np.array_equal(doc_summary.predictions, col_summary.predictions)
        and doc_summary.to_dict() == col_summary.to_dict()
        and doc_summary.clusters == col_summary.clusters
    )
    n_rows = doc_summary.total_entries
    return BenchResult(
        name="detection_equivalence",
        fast_ops_per_sec=n_rows / col_elapsed if col_elapsed > 0 else float("inf"),
        slow_ops_per_sec=n_rows / doc_elapsed if doc_elapsed > 0 else float("inf"),
        n_ops=n_rows,
        equivalent=equivalent,
        unit="entries/s",
        detail={
            "scale": scale,
            "train_entries": len(train),
            "detection_rate": round(doc_summary.detection_rate, 4),
            "false_alarm_rate": round(doc_summary.false_alarm_rate, 4),
        },
    )


# -- assembly ----------------------------------------------------------------


def run_report(quick=False):
    scale = QUICK_SCALE if quick else FULL_SCALE
    report = HotpathReport(quick=quick, bench="scale")
    database, manager, n_rows = _build_store(scale)
    report.add(
        _bench_batch_extraction(manager, quick),
        min_speedup=1.0 if quick else 5.0,
    )
    report.add(
        _bench_worker_scale_modeled(database, manager, scale, quick),
        min_speedup=3.0 if quick else 4.0,
    )
    wallclock, cpus = _bench_worker_scale_wallclock(database, quick)
    report.add(wallclock, min_speedup=1.5 if cpus >= 4 else None)
    report.add(
        _bench_memory_ceiling(database, manager, quick),
        # Measured on the committed run: ~456 B/row frame-path peak vs
        # ~720 B/row for the document path (~1.6x more rows per MB); the
        # gate sits under that with headroom for allocator noise.
        min_speedup=None if quick else 1.4,
    )
    del database, manager
    report.add(_bench_insert_many(quick))
    report.add(_bench_detection_equivalence(quick))
    for result in report.results:
        result.detail.setdefault("dataset_rows", n_rows)
    return report


# -- pytest entry points -----------------------------------------------------


def test_scale_quick(recorder):
    report = run_report(quick=True)
    recorder.set_meta(quick=True)
    for result in report.results:
        recorder.add_row(
            name=result.name,
            unit=result.unit,
            fast_ops_per_sec=round(result.fast_ops_per_sec, 1),
            slow_ops_per_sec=round(result.slow_ops_per_sec, 1),
            speedup=round(result.speedup, 2),
            equivalent=result.equivalent,
        )
    recorder.print_table("columnar scale sweep (quick)")
    assert report.passed, report.failures()


# -- standalone entry point --------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workloads + relaxed gates (CI smoke mode)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_scale.json",
        help="where to write the JSON artifact (default: ./BENCH_scale.json)",
    )
    args = parser.parse_args(argv)
    report = run_report(quick=args.quick)
    report.write(args.output)
    report.print_summary()
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
