"""Tests for the OpenFlow switch model."""

import pytest

from repro.dataplane.switch import OpenFlowSwitch
from repro.dataplane.packet import Packet
from repro.errors import DataPlaneError
from repro.openflow import (
    ActionDrop,
    ActionOutput,
    ActionSetIpDst,
    AggregateStatsRequest,
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    FlowStatsReply,
    FlowStatsRequest,
    Match,
    PacketIn,
    PacketOut,
    PortStatsReply,
    PortStatsRequest,
    PortStatus,
    TableStatsReply,
    TableStatsRequest,
)


@pytest.fixture
def switch():
    sw = OpenFlowSwitch(dpid=1, name="s1")
    sw.add_port(1)
    sw.add_port(2)
    sw.add_port(3)
    return sw


@pytest.fixture
def channel(switch):
    messages = []
    switch.connect_controller(messages.append)
    return messages


@pytest.fixture
def transmitted(switch):
    out = []
    switch.attach_transmitter(
        lambda sw, port, packet, now: out.append((port, packet))
    )
    return out


def _packet(**headers):
    defaults = {"eth_src": "aa:00:00:00:00:01", "eth_dst": "aa:00:00:00:00:02"}
    defaults.update(headers)
    return Packet(headers=defaults, size=100)


def _install(switch, match, actions, priority=10, **kw):
    switch.handle_message(
        FlowMod(command=FlowModCommand.ADD, match=match, priority=priority,
                actions=actions, **kw),
        now=0.0,
    )


class TestPacketPath:
    def test_miss_punts_packet_in(self, switch, channel):
        switch.receive_packet(1, _packet(), now=0.0)
        assert len(channel) == 1
        assert isinstance(channel[0], PacketIn)
        assert channel[0].in_port == 1
        assert channel[0].dpid == 1

    def test_hit_forwards_and_counts(self, switch, channel, transmitted):
        _install(switch, Match(), [ActionOutput(port=2)])
        switch.receive_packet(1, _packet(), now=1.0)
        assert transmitted == [(2, transmitted[0][1])]
        entry = switch.table.entries[0]
        assert entry.stats.packet_count == 1
        assert entry.stats.byte_count == 100
        assert switch.ports[1].counters.rx_packets == 1
        assert switch.ports[2].counters.tx_packets == 1
        assert channel == []

    def test_drop_action(self, switch, transmitted):
        _install(switch, Match(), [ActionDrop()])
        switch.receive_packet(1, _packet(), now=0.0)
        assert transmitted == []
        assert switch.packets_dropped == 1

    def test_empty_action_list_drops(self, switch, transmitted):
        _install(switch, Match(), [])
        switch.receive_packet(1, _packet(), now=0.0)
        assert transmitted == []
        assert switch.packets_dropped == 1

    def test_flood_excludes_ingress(self, switch, transmitted):
        from repro.types import OFPP_FLOOD

        _install(switch, Match(), [ActionOutput(port=OFPP_FLOOD)])
        switch.receive_packet(1, _packet(), now=0.0)
        assert sorted(port for port, _ in transmitted) == [2, 3]

    def test_header_rewrite(self, switch, transmitted):
        _install(
            switch,
            Match(),
            [ActionSetIpDst(ip="10.9.9.9"), ActionOutput(port=2)],
        )
        switch.receive_packet(1, _packet(ip_dst="10.0.0.1"), now=0.0)
        assert transmitted[0][1].headers["ip_dst"] == "10.9.9.9"

    def test_down_port_drops_rx(self, switch, channel):
        switch.ports[1].up = False
        switch.receive_packet(1, _packet(), now=0.0)
        assert channel == []
        assert switch.ports[1].counters.rx_dropped == 1

    def test_unknown_port_raises(self, switch):
        with pytest.raises(DataPlaneError):
            switch.receive_packet(99, _packet(), now=0.0)


class TestBufferRelease:
    def test_flow_mod_with_buffer_forwards_pending(self, switch, channel, transmitted):
        switch.receive_packet(1, _packet(ip_src="10.0.0.1"), now=0.0)
        buffer_id = channel[0].buffer_id
        switch.handle_message(
            FlowMod(
                command=FlowModCommand.ADD,
                match=Match(),
                actions=[ActionOutput(port=2)],
                buffer_id=buffer_id,
            ),
            now=0.1,
        )
        assert len(transmitted) == 1
        assert switch.table.entries[0].stats.packet_count == 1

    def test_packet_out_releases_buffer(self, switch, channel, transmitted):
        switch.receive_packet(1, _packet(), now=0.0)
        buffer_id = channel[0].buffer_id
        switch.handle_message(
            PacketOut(buffer_id=buffer_id, actions=[ActionOutput(port=3)]),
            now=0.1,
        )
        assert transmitted == [(3, transmitted[0][1])]

    def test_packet_out_without_buffer_synthesises(self, switch, transmitted):
        switch.handle_message(
            PacketOut(
                buffer_id=-1,
                actions=[ActionOutput(port=2)],
                headers={"eth_src": "aa:00:00:00:00:09"},
                total_len=80,
            ),
            now=0.0,
        )
        assert len(transmitted) == 1
        assert transmitted[0][1].size == 80


class TestControlPath:
    def test_echo(self, switch, channel):
        switch.handle_message(EchoRequest(xid=55), now=0.0)
        assert isinstance(channel[0], EchoReply)
        assert channel[0].xid == 55

    def test_barrier(self, switch, channel):
        switch.handle_message(BarrierRequest(xid=9), now=0.0)
        assert isinstance(channel[0], BarrierReply)

    def test_features(self, switch, channel):
        switch.handle_message(FeaturesRequest(), now=0.0)
        reply = channel[0]
        assert isinstance(reply, FeaturesReply)
        assert reply.ports == [1, 2, 3]

    def test_delete_notifies_flow_removed(self, switch, channel):
        _install(switch, Match(ip_src="10.0.0.1"), [ActionOutput(port=2)])
        switch.handle_message(
            FlowMod(command=FlowModCommand.DELETE, match=Match()), now=1.0
        )
        removed = [m for m in channel if isinstance(m, FlowRemoved)]
        assert len(removed) == 1

    def test_port_status_emitted(self, switch, channel):
        switch.set_port_state(2, up=False)
        assert isinstance(channel[0], PortStatus)
        assert channel[0].link_up is False
        # Idempotent: no duplicate event.
        switch.set_port_state(2, up=False)
        assert len(channel) == 1


class TestStats:
    def test_flow_stats(self, switch, channel, transmitted):
        _install(switch, Match(ip_src="10.0.0.1"), [ActionOutput(port=2)], app_id="fwd")
        switch.receive_packet(1, _packet(ip_src="10.0.0.1"), now=1.0)
        switch.handle_message(FlowStatsRequest(match=Match(), xid=77), now=2.0)
        reply = [m for m in channel if isinstance(m, FlowStatsReply)][0]
        assert reply.xid == 77
        assert len(reply.entries) == 1
        assert reply.entries[0].packet_count == 1
        assert reply.entries[0].app_id == "fwd"
        assert reply.entries[0].duration_sec == 2.0

    def test_flow_stats_filtered(self, switch, channel):
        _install(switch, Match(ip_src="10.0.0.1"), [])
        _install(switch, Match(ip_src="10.0.0.2"), [])
        switch.handle_message(
            FlowStatsRequest(match=Match(ip_src="10.0.0.1")), now=0.0
        )
        reply = [m for m in channel if isinstance(m, FlowStatsReply)][0]
        assert len(reply.entries) == 1

    def test_port_stats_all(self, switch, channel, transmitted):
        _install(switch, Match(), [ActionOutput(port=2)])
        switch.receive_packet(1, _packet(), now=0.0)
        switch.handle_message(PortStatsRequest(), now=1.0)
        reply = [m for m in channel if isinstance(m, PortStatsReply)][0]
        assert [e.port_no for e in reply.entries] == [1, 2, 3]
        assert reply.entries[0].rx_packets == 1
        assert reply.entries[1].tx_packets == 1

    def test_port_stats_single(self, switch, channel):
        switch.handle_message(PortStatsRequest(port_no=2), now=0.0)
        reply = [m for m in channel if isinstance(m, PortStatsReply)][0]
        assert len(reply.entries) == 1

    def test_aggregate_stats(self, switch, channel, transmitted):
        _install(switch, Match(ip_src="10.0.0.1"), [ActionOutput(port=2)])
        switch.receive_packet(1, _packet(ip_src="10.0.0.1"), now=0.0)
        switch.receive_packet(1, _packet(ip_src="10.0.0.1"), now=0.1)
        switch.handle_message(AggregateStatsRequest(match=Match()), now=1.0)
        reply = channel[-1]
        assert reply.packet_count == 2
        assert reply.flow_count == 1

    def test_table_stats(self, switch, channel):
        _install(switch, Match(ip_src="10.0.0.1"), [])
        switch.handle_message(TableStatsRequest(), now=0.0)
        reply = [m for m in channel if isinstance(m, TableStatsReply)][0]
        assert reply.entries[0].active_count == 1


class TestExpiry:
    def test_expire_flows_notifies(self, switch, channel):
        _install(
            switch, Match(ip_src="10.0.0.1"), [ActionOutput(port=2)],
            idle_timeout=1.0,
        )
        assert switch.expire_flows(0.5) == 0
        assert switch.expire_flows(2.0) == 1
        removed = [m for m in channel if isinstance(m, FlowRemoved)]
        assert len(removed) == 1
        assert switch.flow_count() == 0
