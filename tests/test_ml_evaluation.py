"""Tests for the ML evaluation utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MLError
from repro.ml import KMeans, LogisticRegression
from repro.ml.evaluation import (
    auc_score,
    cross_validate,
    k_fold_indices,
    operating_point,
    roc_curve,
    train_test_split,
)


def _blobs(seed=0, n0=120, n1=80, sep=3.0):
    rng = np.random.default_rng(seed)
    X = np.vstack([rng.normal(0, 1, (n0, 3)), rng.normal(sep, 1, (n1, 3))])
    y = np.r_[np.zeros(n0), np.ones(n1)]
    order = rng.permutation(len(y))
    return X[order], y[order]


class TestSplits:
    def test_sizes(self):
        X, y = _blobs()
        Xtr, ytr, Xte, yte = train_test_split(X, y, test_fraction=0.25, seed=1)
        assert len(Xte) == pytest.approx(0.25 * len(X), abs=2)
        assert len(Xtr) + len(Xte) == len(X)

    def test_stratified_preserves_balance(self):
        X, y = _blobs()
        _, ytr, _, yte = train_test_split(X, y, test_fraction=0.3, seed=2)
        assert ytr.mean() == pytest.approx(yte.mean(), abs=0.05)

    def test_invalid_fraction(self):
        X, y = _blobs()
        with pytest.raises(MLError):
            train_test_split(X, y, test_fraction=1.5)

    def test_k_fold_partitions(self):
        folds = k_fold_indices(100, 5, seed=3)
        assert len(folds) == 5
        combined = np.sort(np.concatenate(folds))
        assert (combined == np.arange(100)).all()

    def test_k_fold_validation(self):
        with pytest.raises(MLError):
            k_fold_indices(10, 1)
        with pytest.raises(MLError):
            k_fold_indices(3, 5)


class TestCrossValidation:
    def test_supervised(self):
        X, y = _blobs()
        result = cross_validate(
            lambda: LogisticRegression(), X, y, k=4, seed=0
        )
        assert len(result.fold_scores) == 4
        assert result.mean("accuracy") > 0.95
        assert result.std("accuracy") < 0.1

    def test_clustering_with_labelling(self):
        X, y = _blobs(sep=6.0)
        result = cross_validate(
            lambda: KMeans(k=2, seed=1), X, y, k=3, seed=0,
            needs_cluster_labelling=True,
        )
        assert result.mean("detection_rate") > 0.95


class TestRoc:
    def test_perfect_separation(self):
        y = np.array([0, 0, 0, 1, 1, 1])
        scores = np.array([0.1, 0.2, 0.3, 0.8, 0.9, 0.95])
        assert auc_score(y, scores) == pytest.approx(1.0)

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 4000)
        scores = rng.random(4000)
        assert auc_score(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_curve_monotone(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 200)
        scores = rng.random(200) + y * 0.3
        fpr, tpr, thresholds = roc_curve(y, scores)
        assert (np.diff(fpr) >= 0).all()
        assert (np.diff(tpr) >= 0).all()
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert (np.diff(thresholds) <= 0).all()

    def test_single_class_rejected(self):
        with pytest.raises(MLError):
            roc_curve([1, 1, 1], [0.1, 0.2, 0.3])

    def test_classifier_scores_give_high_auc(self):
        X, y = _blobs()
        model = LogisticRegression().fit(X[:150], y[:150])
        assert auc_score(y[150:], model.decision_scores(X[150:])) > 0.98

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=999))
    def test_auc_bounded_property(self, seed):
        rng = np.random.default_rng(seed)
        y = np.r_[np.zeros(10), np.ones(10)]
        scores = rng.random(20)
        assert 0.0 <= auc_score(y, scores) <= 1.0


class TestOperatingPoint:
    def test_respects_far_budget(self):
        X, y = _blobs(sep=2.0)
        model = LogisticRegression().fit(X[:150], y[:150])
        scores = model.decision_scores(X[150:])
        threshold, dr, far = operating_point(y[150:], scores, 0.05)
        assert far <= 0.05
        predictions = (scores >= threshold).astype(float)
        from repro.ml.metrics import false_alarm_rate

        assert false_alarm_rate(y[150:], predictions) == pytest.approx(far)

    def test_infeasible_budget_raises(self):
        # Scores that cannot reach FAR 0 without flagging nothing exist,
        # but a negative budget is always infeasible except at tpr=0...
        y = np.array([0, 1, 0, 1])
        scores = np.array([0.9, 0.1, 0.8, 0.2])  # inverted scores
        threshold, dr, far = operating_point(y, scores, 0.0)
        # The only FAR=0 point flags nothing: DR 0.
        assert dr == 0.0
