"""Focused tests for the LB and security-redirect controller apps."""

import collections

import pytest

from repro.controller import (
    ControllerCluster,
    LoadBalancerApp,
    ReactiveForwarding,
    SecurityRedirectApp,
)
from repro.dataplane.packet import Packet, flow_headers
from repro.dataplane.topologies import nae_topology
from repro.workloads.flows import FlowSpec, TrafficSchedule


@pytest.fixture
def stack():
    topo = nae_topology(clients_per_edge=1)
    cluster = ControllerCluster(topo.network, n_instances=1)
    cluster.adopt_all()
    cluster.start(poll=False)
    forwarding = ReactiveForwarding(priority=5)
    forwarding.activate(cluster)
    schedule = TrafficSchedule(topo.network)
    schedule.prime_arp()
    topo.network.sim.run(until=0.5)
    return topo, cluster, schedule


def _server_ips(topo):
    return topo.network.hosts["ftp"].ip, topo.network.hosts["web"].ip


class TestLoadBalancerApp:
    def test_alternate_paths_used(self, stack):
        topo, cluster, schedule = stack
        ftp_ip, web_ip = _server_ips(topo)
        balancer = LoadBalancerApp(server_ips=[ftp_ip, web_ip],
                                   priority=20, idle_timeout=3.0)
        balancer.activate(cluster)
        # Several distinct flows toward the FTP server.
        for idx in range(6):
            schedule.add_flow(
                FlowSpec(src_host="h1", dst_host="ftp", sport=42000 + idx,
                         dport=2100 + idx, rate_pps=5.0, start=1.0 + idx * 0.2,
                         duration=3.0)
            )
        topo.network.sim.run(until=6.0)
        # Both candidate paths carry rules: S3 (alternate) and S6 (security).
        s3_rules = cluster.flow_rules.rules_of(3, app_id="lb")
        s6_rules = cluster.flow_rules.rules_of(6, app_id="lb")
        assert s3_rules and s6_rules

    def test_ignores_non_server_traffic(self, stack):
        topo, cluster, schedule = stack
        ftp_ip, web_ip = _server_ips(topo)
        balancer = LoadBalancerApp(server_ips=[ftp_ip], priority=20)
        balancer.activate(cluster)
        # Client-to-client flow: only plain forwarding should handle it.
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h2", rate_pps=5.0,
                     start=1.0, duration=2.0)
        )
        topo.network.sim.run(until=4.0)
        assert balancer.rules_installed == 0

    def test_balances_return_traffic(self, stack):
        topo, cluster, schedule = stack
        ftp_ip, web_ip = _server_ips(topo)
        balancer = LoadBalancerApp(server_ips=[ftp_ip], priority=20)
        balancer.activate(cluster)
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="ftp", sport=42000, dport=21,
                     rate_pps=10.0, start=1.0, duration=3.0,
                     bidirectional=True)
        )
        topo.network.sim.run(until=5.0)
        # The reverse direction (ip_src == server) was handled by the LB.
        reverse_rules = [
            record
            for dpid in topo.network.switches
            for record in cluster.flow_rules.rules_of(dpid, app_id="lb")
            if record.match.ip_src == ftp_ip
        ]
        assert reverse_rules

    def test_deactivate(self, stack):
        topo, cluster, schedule = stack
        ftp_ip, _ = _server_ips(topo)
        balancer = LoadBalancerApp(server_ips=[ftp_ip], priority=20)
        balancer.activate(cluster)
        balancer.deactivate()
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="ftp", sport=43000, dport=21,
                     rate_pps=5.0, start=1.0, duration=2.0)
        )
        topo.network.sim.run(until=4.0)
        assert balancer.rules_installed == 0


class TestSecurityRedirectApp:
    def test_ftp_pinned_through_security_switch(self, stack):
        topo, cluster, schedule = stack
        security = SecurityRedirectApp(security_dpid=6,
                                       inspect_ports=(20, 21), priority=30)
        security.activate(cluster)
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="ftp", sport=44000, dport=21,
                     rate_pps=10.0, start=1.0, duration=3.0)
        )
        topo.network.sim.run(until=5.0)
        # The flow's rules traverse S6 (and S7 behind it).
        s6_rules = cluster.flow_rules.rules_of(6, app_id="security")
        s7_rules = cluster.flow_rules.rules_of(7, app_id="security")
        assert s6_rules and s7_rules
        # And S6 actually forwarded the packets.
        assert topo.network.switches[6].packets_forwarded > 0
        assert topo.network.hosts["ftp"].rx_packets > 0

    def test_web_traffic_not_redirected(self, stack):
        topo, cluster, schedule = stack
        security = SecurityRedirectApp(security_dpid=6,
                                       inspect_ports=(20, 21), priority=30)
        security.activate(cluster)
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="web", sport=45000, dport=80,
                     rate_pps=10.0, start=1.0, duration=2.0)
        )
        topo.network.sim.run(until=4.0)
        assert security.rules_installed == 0
        assert topo.network.hosts["web"].rx_packets > 0

    def test_priority_beats_lb_in_flow_table(self, stack):
        """When both apps install rules for the same FTP flow, the
        security app's higher priority wins the data-plane lookup."""
        topo, cluster, schedule = stack
        ftp_ip, web_ip = _server_ips(topo)
        balancer = LoadBalancerApp(server_ips=[ftp_ip, web_ip],
                                   priority=20, idle_timeout=30.0)
        balancer.activate(cluster)
        security = SecurityRedirectApp(security_dpid=6,
                                       inspect_ports=(20, 21), priority=30)
        security.activate(cluster)
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="ftp", sport=46000, dport=21,
                     rate_pps=10.0, start=1.0, duration=3.0)
        )
        topo.network.sim.run(until=5.0)
        # Look up the winning entry for the flow's headers at S2.
        h1 = topo.network.hosts["h1"]
        ftp = topo.network.hosts["ftp"]
        headers = flow_headers(h1.mac, ftp.mac, h1.ip, ftp.ip,
                               proto=6, sport=46000, dport=21)
        headers["in_port"] = 1
        winner = topo.network.switches[2].table.lookup(dict(headers))
        assert winner is not None
        assert winner.app_id == "security"

    def test_reverse_ftp_also_inspected(self, stack):
        topo, cluster, schedule = stack
        security = SecurityRedirectApp(security_dpid=6,
                                       inspect_ports=(20, 21), priority=30)
        security.activate(cluster)
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="ftp", sport=47000, dport=21,
                     rate_pps=10.0, start=1.0, duration=3.0,
                     bidirectional=True)
        )
        topo.network.sim.run(until=5.0)
        ftp_ip, _ = _server_ips(topo)
        reverse_rules = [
            record
            for record in cluster.flow_rules.rules_of(6, app_id="security")
            if record.match.ip_src == ftp_ip
        ]
        assert reverse_rules
