"""Acceptance tests for athena-lint (the ``repro.cli lint`` command).

Covers the contract from the issue: the shipped tree lints clean, a
fixture with a wall-clock call or an unknown feature name fails with a
``file:line`` finding, the JSON reporter is schema-stable, and both the
inline-directive and pyproject suppression layers work.
"""

import io
import json
import os
import re
import textwrap

import pytest

from repro.analysis import (
    JsonReporter,
    LintEngine,
    TextReporter,
    default_checkers,
    find_pyproject,
    load_config,
)
from repro.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture
def in_repo_root(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)


class TestSelfCheck:
    def test_shipped_tree_lints_clean(self, in_repo_root, capsys):
        """The headline acceptance criterion: exit 0 over the repo."""
        assert main(["lint", "src/repro", "examples", "benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("ATH101", "ATH201", "ATH301", "ATH401"):
            assert rule in out


class TestFixtureFailures:
    def test_wall_clock_fixture_fails_with_file_line(self, tmp_path, capsys):
        bad = tmp_path / "bad_clock.py"
        bad.write_text(
            textwrap.dedent(
                """
                import time

                def stamp():
                    return time.time()
                """
            )
        )
        assert main(["lint", str(bad), "--no-config"]) == 1
        out = capsys.readouterr().out
        assert re.search(r"bad_clock\.py:5:\d+ \[ATH101\]", out)

    def test_unknown_feature_fixture_fails_with_suggestion(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "bad_feature.py"
        bad.write_text(
            'DDOS_FEATURES = ["FLOW_PACKET_COUNT", "FLOW_PAKET_COUNT"]\n'
        )
        assert main(["lint", str(bad), "--no-config"]) == 1
        out = capsys.readouterr().out
        assert re.search(r"bad_feature\.py:1:\d+ \[ATH201\]", out)
        assert "did you mean 'FLOW_PACKET_COUNT'" in out

    def test_warnings_do_not_fail_the_run(self, tmp_path, capsys):
        warn = tmp_path / "warn_only.py"
        warn.write_text('query.where("switch_idx", "==", 3)\n')
        assert main(["lint", str(warn), "--no-config"]) == 0
        out = capsys.readouterr().out
        assert "[ATH202] warning" in out

    def test_syntax_error_fails_the_run(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        assert main(["lint", str(broken), "--no-config"]) == 1
        assert "parse error" in capsys.readouterr().out


class TestSuppression:
    def test_inline_disable_silences_the_line(self, tmp_path, capsys):
        src = tmp_path / "suppressed.py"
        src.write_text(
            "import time\n"
            "t = time.time()  # athena-lint: disable=ATH101\n"
        )
        assert main(["lint", str(src), "--no-config"]) == 0

    def test_bare_disable_silences_every_rule_on_the_line(self, tmp_path):
        src = tmp_path / "suppressed.py"
        src.write_text(
            "import time\n"
            "t = time.time()  # athena-lint: disable\n"
        )
        assert main(["lint", str(src), "--no-config"]) == 0

    def test_disable_file_silences_the_family(self, tmp_path):
        src = tmp_path / "suppressed.py"
        src.write_text(
            "# athena-lint: disable-file=ATH1\n"
            "import time\n"
            "t = time.time()\n"
            "u = time.time_ns()\n"
        )
        assert main(["lint", str(src), "--no-config"]) == 0

    def test_unrelated_rule_still_fires(self, tmp_path, capsys):
        src = tmp_path / "partial.py"
        src.write_text(
            "import time\n"
            "t = time.time()  # athena-lint: disable=ATH201\n"
        )
        assert main(["lint", str(src), "--no-config"]) == 1
        assert "ATH101" in capsys.readouterr().out


class TestPyprojectConfig:
    def test_repo_config_disables_determinism_in_benchmarks(self):
        config = load_config(os.path.join(REPO_ROOT, "pyproject.toml"))
        assert config.is_rule_disabled("benchmarks/bench_compute.py", "ATH101")
        assert not config.is_rule_disabled("src/repro/cli.py", "ATH101")

    def test_exclude_skips_files(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "bad.py").write_text("import time\nt = time.time()\n")
        (tmp_path / "pyproject.toml").write_text(
            '[tool.athena-lint]\nexclude = ["pkg"]\n'
        )
        config = load_config(str(tmp_path / "pyproject.toml"))
        engine = LintEngine(default_checkers(), config=config, root=str(tmp_path))
        report = engine.run([str(pkg)])
        assert report.files_skipped == 1
        assert report.files_checked == 0
        assert not report.failed

    def test_find_pyproject_walks_upward(self):
        found = find_pyproject(os.path.join(REPO_ROOT, "src", "repro"))
        assert found == os.path.join(REPO_ROOT, "pyproject.toml")


class TestJsonReporter:
    """The JSON shape is a v1 contract — CI consumes it."""

    TOP_KEYS = {"schema_version", "summary", "parse_errors", "findings"}
    SUMMARY_KEYS = {"files_checked", "files_skipped", "errors", "warnings",
                    "by_rule"}
    FINDING_KEYS = {"path", "line", "col", "rule", "severity", "message",
                    "checker"}

    def _report_for(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        engine = LintEngine(default_checkers(), root=str(tmp_path))
        return engine.run([str(bad)])

    def test_schema_is_stable(self, tmp_path):
        payload = JsonReporter().to_dict(self._report_for(tmp_path))
        assert payload["schema_version"] == 1
        assert set(payload) == self.TOP_KEYS
        assert set(payload["summary"]) == self.SUMMARY_KEYS
        assert payload["findings"], "fixture must produce a finding"
        for finding in payload["findings"]:
            assert set(finding) == self.FINDING_KEYS
        assert payload["summary"]["by_rule"] == {"ATH101": 1}

    def test_cli_json_output_parses(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main(["lint", str(bad), "--format", "json", "--no-config"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == self.TOP_KEYS
        assert payload["summary"]["errors"] == 1

    def test_reporters_take_injectable_streams(self, tmp_path):
        report = self._report_for(tmp_path)
        text_sink, json_sink = io.StringIO(), io.StringIO()
        TextReporter(stream=text_sink).report(report)
        JsonReporter(stream=json_sink).report(report)
        assert "[ATH101]" in text_sink.getvalue()
        assert json.loads(json_sink.getvalue())["schema_version"] == 1
