"""Drift tests: docs/NORTHBOUND.md and docs/API.md against the code.

Both pages declare themselves *generated-checked*: their tables are
hand-written prose, but these tests introspect the real objects —
``AthenaNorthbound``, the algorithm registry, the feature catalog, and
``NorthboundAPI.routes`` — and fail on any mismatch, so the docs cannot
silently rot when the code moves.
"""

import inspect
import re
from pathlib import Path

import pytest

from repro.core.features.catalog import FEATURE_CATALOG
from repro.core.northbound import AthenaNorthbound
from repro.ml import registry as ml_registry
from repro.northbound import NorthboundAPI

REPO_ROOT = Path(__file__).resolve().parent.parent
NORTHBOUND_MD = REPO_ROOT / "docs" / "NORTHBOUND.md"
API_MD = REPO_ROOT / "docs" / "API.md"

_TABLE_ROW = re.compile(r"^\|\s*`([^`]+)`\s*\|")


def _section(path: Path, heading: str) -> str:
    """The text of one ``## heading`` section (up to the next ``## ``)."""
    text = path.read_text(encoding="utf-8")
    marker = f"## {heading}"
    start = text.index(marker)
    end = text.find("\n## ", start + len(marker))
    return text[start:end] if end != -1 else text[start:]


def _documented_signature(fn) -> str:
    """Render a bound method's signature the way NORTHBOUND.md writes it."""
    sig = str(inspect.signature(fn))
    sig = sig.replace("(self, ", "(").replace("(self)", "()")
    # `from __future__ import annotations` stringifies hints; the docs
    # show them unquoted.
    return sig.replace("'", "")


def _core_function_rows():
    """(paper, python, signature) triples from the NORTHBOUND.md table."""
    rows = []
    pattern = re.compile(r"^\|\s*`([^`]+)`\s*\|\s*`([^`]+)`\s*\|\s*`([^`]+)`\s*\|")
    for line in _section(NORTHBOUND_MD, "The core functions").splitlines():
        match = pattern.match(line)
        if match and match.group(1) != "Paper name":
            rows.append(match.groups())
    return rows


def test_core_function_table_matches_class():
    rows = _core_function_rows()
    documented_paper_names = [paper for paper, _, _ in rows]
    assert documented_paper_names == AthenaNorthbound.core_api_names(), (
        "NORTHBOUND.md core-function table does not list exactly the "
        "paper-name aliases on AthenaNorthbound (sorted)"
    )
    for paper, python, signature in rows:
        fn = getattr(AthenaNorthbound, paper)
        assert fn.__name__ == python, (
            f"NORTHBOUND.md says {paper} -> {python}, code says {fn.__name__}"
        )
        assert getattr(AthenaNorthbound, python) is fn, (
            f"{paper} and {python} must be the same function"
        )
        expected = _documented_signature(fn)
        assert signature == expected, (
            f"NORTHBOUND.md signature for {paper} drifted:\n"
            f"  documented: {signature}\n"
            f"  actual:     {expected}"
        )


def test_algorithm_table_matches_registry():
    rows = []
    pattern = re.compile(r"^\|\s*`([^`]+)`\s*\|\s*([\w-]+)\s*\|")
    for line in _section(NORTHBOUND_MD, "The algorithm registry").splitlines():
        match = pattern.match(line)
        if match and match.group(1) != "Algorithm":
            rows.append(match.groups())
    documented = {name: category for name, category in rows}
    registered = {
        name: ml_registry.category_of(name)
        for name in ml_registry.list_algorithms()
    }
    assert documented == registered, (
        "NORTHBOUND.md algorithm table drifted from repro.ml.registry"
    )
    assert [name for name, _ in rows] == sorted(documented), (
        "NORTHBOUND.md algorithm table must be sorted by name"
    )


def _catalog_counts(attr):
    counts = {}
    for definition in FEATURE_CATALOG.values():
        key = getattr(definition, attr).value
        counts[key] = counts.get(key, 0) + 1
    return counts


def test_feature_scope_table_matches_catalog():
    section = _section(NORTHBOUND_MD, "Feature scopes")
    documented = {
        scope: int(count)
        for scope, count in re.findall(
            r"^\|\s*`(\w+)`\s*\|\s*(\d+)\s*\|", section, re.MULTILINE
        )
    }
    assert documented == _catalog_counts("scope"), (
        "NORTHBOUND.md scope table drifted from the feature catalog"
    )
    assert f"Table I, {len(FEATURE_CATALOG)} features" in section, (
        "NORTHBOUND.md total feature count drifted"
    )


def test_feature_category_counts_match_catalog():
    section = _section(NORTHBOUND_MD, "Feature scopes")
    documented = {
        category: int(count)
        for category, count in re.findall(r"`([\w-]+)`\s*\((\d+)\)", section)
    }
    assert documented == _catalog_counts("category"), (
        "NORTHBOUND.md category counts drifted from the feature catalog"
    )


def test_api_route_table_matches_app():
    app = NorthboundAPI(None)  # deployment only touched per-request
    served = [route.pattern for route in app.routes]
    documented = []
    for line in _section(API_MD, "Routes").splitlines():
        match = _TABLE_ROW.match(line)
        if match:
            documented.append(match.group(1))
    assert documented == served, (
        "docs/API.md Routes table drifted from NorthboundAPI.routes:\n"
        f"  documented: {documented}\n"
        f"  served:     {served}"
    )


def test_api_route_params_documented():
    app = NorthboundAPI(None)
    section = _section(API_MD, "Routes")
    by_pattern = {}
    for line in section.splitlines():
        match = _TABLE_ROW.match(line)
        if match:
            by_pattern[match.group(1)] = line
    for route in app.routes:
        row = by_pattern[route.pattern]
        for param in route.params:
            assert f"`{param}`" in row, (
                f"docs/API.md Routes row for {route.pattern} is missing "
                f"parameter `{param}`"
            )


def test_error_code_table_matches_errors_module():
    """Every status mapping in the API is documented by its stable code."""
    from repro.northbound.api import ERROR_STATUS

    section = _section(API_MD, "Error envelope")
    rows = [line for line in section.splitlines() if line.startswith("|")]
    for exc_class, status in ERROR_STATUS:
        # A class maps either by its exact code (`db.query`) or as a
        # documented prefix family (`db.*`) in a row with its status.
        tokens = (f"`{exc_class.code}`", f"`{exc_class.code}.*`")
        matching = [
            row for row in rows
            if f" {status} " in row and any(tok in row for tok in tokens)
        ]
        assert matching, (
            f"docs/API.md error table has no row mapping code "
            f"{exc_class.code!r} (or {exc_class.code}.*) to status {status}"
        )


@pytest.mark.parametrize("page", [NORTHBOUND_MD, API_MD], ids=lambda p: p.name)
def test_generated_checked_banner(page):
    # Each page must declare that this test suite guards it.
    assert "test_docs_northbound.py" in page.read_text(encoding="utf-8")
