"""Tests for LLDP-based link discovery."""

import pytest

from repro.controller import ControllerCluster, ReactiveForwarding
from repro.controller.discovery import LinkDiscoveryService
from repro.controller.topology import TopologyService
from repro.dataplane.topologies import (
    enterprise_topology,
    linear_topology,
    nae_topology,
)


def _bare_cluster(topo):
    """A cluster whose topology service starts empty (no omniscient sync)."""
    cluster = ControllerCluster(topo.network, n_instances=1)
    cluster.adopt_all()
    cluster.topology = TopologyService()  # discard the synced view
    # Host service must share the new topology instance.
    from repro.controller.hosts import HostService

    cluster.hosts = HostService(cluster.topology)
    return cluster


class TestLLDPDiscovery:
    def test_discovers_linear_topology(self):
        topo = linear_topology(n_switches=4)
        cluster = _bare_cluster(topo)
        discovery = LinkDiscoveryService(cluster)
        discovery.probe_all()
        topo.network.sim.run(until=0.5)
        assert cluster.topology.link_count() == 3
        assert cluster.topology.shortest_path(1, 4) == [1, 2, 3, 4]

    def test_discovers_enterprise_topology(self):
        topo = enterprise_topology(hosts_per_edge=0)
        cluster = _bare_cluster(topo)
        discovery = LinkDiscoveryService(cluster)
        discovery.probe_all()
        topo.network.sim.run(until=0.5)
        assert cluster.topology.link_count() == 48
        assert cluster.topology.switch_count() == 18

    def test_matches_omniscient_sync(self):
        topo = nae_topology()
        cluster = _bare_cluster(topo)
        discovery = LinkDiscoveryService(cluster)
        discovery.probe_all()
        topo.network.sim.run(until=0.5)
        reference = TopologyService()
        reference.sync_from_network(topo.network)
        assert cluster.topology.link_count() == reference.link_count()
        for a in topo.network.switches:
            for b in topo.network.switches:
                discovered = cluster.topology.shortest_path(a, b)
                expected = reference.shortest_path(a, b)
                if expected is None:
                    assert discovered is None
                else:
                    assert discovered is not None
                    assert len(discovered) == len(expected)

    def test_port_mapping_correct(self):
        topo = linear_topology(n_switches=3)
        cluster = _bare_cluster(topo)
        LinkDiscoveryService(cluster).probe_all()
        topo.network.sim.run(until=0.5)
        reference = TopologyService()
        reference.sync_from_network(topo.network)
        assert cluster.topology.port_toward(1, 2) == reference.port_toward(1, 2)
        assert cluster.topology.port_toward(2, 3) == reference.port_toward(2, 3)

    def test_idempotent_probing(self):
        topo = linear_topology(n_switches=3)
        cluster = _bare_cluster(topo)
        discovery = LinkDiscoveryService(cluster)
        discovery.probe_all()
        topo.network.sim.run(until=0.5)
        first = discovery.links_discovered
        discovery.probe_all()
        topo.network.sim.run(until=1.0)
        assert discovery.links_discovered == first

    def test_periodic_probing(self):
        topo = linear_topology(n_switches=2)
        cluster = _bare_cluster(topo)
        discovery = LinkDiscoveryService(cluster)
        discovery.start(interval=1.0)
        topo.network.sim.run(until=3.5)
        assert discovery.probes_sent >= 3 * 3  # >= 3 rounds over 3 ports
        assert cluster.topology.link_count() == 1

    def test_probes_do_not_pollute_host_table(self):
        topo = linear_topology(n_switches=2, hosts_per_switch=1)
        cluster = _bare_cluster(topo)
        LinkDiscoveryService(cluster).probe_all()
        topo.network.sim.run(until=0.5)
        assert cluster.hosts.host_count() == 0

    def test_forwarding_ignores_lldp(self):
        topo = linear_topology(n_switches=2, hosts_per_switch=1)
        cluster = _bare_cluster(topo)
        forwarding = ReactiveForwarding()
        forwarding.activate(cluster)
        LinkDiscoveryService(cluster).probe_all()
        topo.network.sim.run(until=0.5)
        assert forwarding.flooded == 0
        assert forwarding.paths_installed == 0

    def test_discovery_enables_correct_forwarding(self):
        """End-to-end: LLDP-discovered topology drives real forwarding."""
        from repro.workloads.flows import FlowSpec, TrafficSchedule

        topo = linear_topology(n_switches=3, hosts_per_switch=1)
        cluster = _bare_cluster(topo)
        discovery = LinkDiscoveryService(cluster)
        forwarding = ReactiveForwarding()
        forwarding.activate(cluster)
        discovery.probe_all()
        topo.network.sim.run(until=0.5)
        schedule = TrafficSchedule(topo.network)
        schedule.prime_arp(topo.network.sim.now)
        topo.network.sim.run(until=1.0)
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h3", rate_pps=10.0,
                     start=1.5, duration=2.0)
        )
        topo.network.sim.run(until=5.0)
        assert topo.network.hosts["h3"].rx_packets >= 20  # flow + broadcasts
