"""Tests for the three use-case applications (Section V)."""

import collections

import pytest

from repro.apps.ddos import DDoSDetectorApp, ddos_detector_application
from repro.apps.lfa import LFAMitigationApp
from repro.apps.nae import NAEMonitorApp
from repro.controller import (
    ControllerCluster,
    LoadBalancerApp,
    ReactiveForwarding,
    SecurityRedirectApp,
)
from repro.core import AthenaDeployment
from repro.core.query import GenerateQuery
from repro.dataplane.topologies import linear_topology, nae_topology
from repro.workloads.ddos import DDoSDatasetGenerator, DDoSDatasetSpec
from repro.workloads.flows import FlowSpec, TrafficSchedule
from repro.workloads.lfa import LFATrafficGenerator
from repro.workloads.nae import NAEWorkload


def _deployment(topo, poll_interval=2.0, apps=()):
    cluster = ControllerCluster(topo.network, n_instances=1)
    cluster.adopt_all()
    cluster.start(poll=False)
    fwd = ReactiveForwarding(priority=5)
    fwd.activate(cluster)
    athena = AthenaDeployment(cluster, athena_poll_interval=poll_interval)
    athena.start()
    for app in apps:
        athena.register_app(app)
    return cluster, athena, fwd


@pytest.fixture(scope="module")
def ddos_dataset():
    generator = DDoSDatasetGenerator(DDoSDatasetSpec(scale=0.001))
    documents = generator.generate()
    return generator, documents


class TestDDoSDetector:
    def test_kmeans_matches_paper_band(self, ddos_dataset):
        """Figure 6: DR 99.23%, FAR 4.46% (bands: DR > 98%, FAR < 7%)."""
        generator, documents = ddos_dataset
        train, test = generator.train_test_split(documents)
        topo = linear_topology(n_switches=2)
        cluster, athena, _ = _deployment(topo)
        app = DDoSDetectorApp()
        athena.register_app(app)
        summary = app.run_batch(train_documents=train, test_documents=test)
        assert summary.detection_rate > 0.98
        assert summary.false_alarm_rate < 0.07
        assert summary.clusters
        assert any(c.is_malicious for c in summary.clusters)

    def test_pseudocode_function_runs_via_store(self, ddos_dataset):
        generator, documents = ddos_dataset
        topo = linear_topology(n_switches=2)
        cluster, athena, _ = _deployment(topo)
        athena.feature_manager.publish_documents(documents)
        model, summary = ddos_detector_application(
            athena.northbound,
            params={"k": 8, "max_iterations": 10, "runs": 2, "seed": 1},
        )
        assert summary.total_entries > 0
        assert summary.detection_rate > 0.9
        rendered = athena.ui_manager.last_output()
        assert "Detection Rate" in rendered

    def test_logistic_variant(self, ddos_dataset):
        generator, documents = ddos_dataset
        train, test = generator.train_test_split(documents)
        topo = linear_topology(n_switches=2)
        cluster, athena, _ = _deployment(topo)
        app = DDoSDetectorApp(algorithm="logistic_regression", params={})
        athena.register_app(app)
        summary = app.run_batch(train_documents=train, test_documents=test)
        assert summary.detection_rate > 0.98

    def test_mitigation_blocks_flagged_sources(self, ddos_dataset):
        generator, documents = ddos_dataset
        train, test = generator.train_test_split(documents)
        topo = linear_topology(n_switches=2)
        cluster, athena, _ = _deployment(topo)
        app = DDoSDetectorApp(block_on_detection=True)
        athena.register_app(app)
        app.run_batch(train_documents=train, test_documents=test)
        assert app.blocked_sources
        assert athena.reaction_manager.reactions_enforced == 1


class TestLFAMitigation:
    def _run(self, auto_block=True):
        topo = linear_topology(n_switches=3, hosts_per_switch=3)
        cluster, athena, _ = _deployment(topo, poll_interval=1.0)
        app = LFAMitigationApp(
            congestion_threshold_bytes=50_000.0, auto_block=auto_block
        )
        athena.register_app(app)
        net = topo.network
        schedule = TrafficSchedule(net)
        schedule.prime_arp()
        bots = ["h1", "h2", "h3"]
        decoys = ["h7", "h8"]
        generator = LFATrafficGenerator(
            bot_hosts=bots,
            decoy_hosts=decoys,
            benign_pairs=[("h4", "h9"), ("h5", "h9")],
            bot_rate_pps=120.0,
            flows_per_bot=2,
            attack_start=3.0,
            attack_duration=8.0,
        )
        schedule.add_flows(generator.all_flows(benign_duration=12.0))
        net.sim.run(until=16.0)
        return topo, athena, app

    def test_congestion_detected(self):
        topo, athena, app = self._run()
        assert app.congested_ports
        # Congestion appears only after the attack starts at t=3.
        assert min(t for _, _, t in app.congested_ports) >= 3.0

    def test_bots_identified_not_benign(self):
        topo, athena, app = self._run()
        bot_ips = {topo.network.hosts[h].ip for h in ("h1", "h2", "h3")}
        benign_ips = {topo.network.hosts[h].ip for h in ("h4", "h5")}
        flagged = set(app.suspicious_sources)
        assert flagged & bot_ips
        assert not (flagged & benign_ips)

    def test_auto_block_installs_rules(self):
        topo, athena, app = self._run(auto_block=True)
        assert athena.reaction_manager.reactions_enforced >= 1

    def test_manual_block(self):
        topo, athena, app = self._run(auto_block=False)
        assert athena.reaction_manager.reactions_enforced == 0
        if app.suspicious_sources:
            assert app.block_suspicious() >= 1

    def test_detach_removes_handlers(self):
        topo, athena, app = self._run()
        before = athena.feature_manager.delivery_table_size()
        athena.unregister_app(app.name)
        assert athena.feature_manager.delivery_table_size() == before - 2


class TestNAEMonitor:
    @pytest.fixture(scope="class")
    def nae_run(self):
        topo = nae_topology(clients_per_edge=2)
        net = topo.network
        cluster = ControllerCluster(net, n_instances=1)
        cluster.adopt_all()
        cluster.start(poll=False)
        ftp_ip = net.hosts["ftp"].ip
        web_ip = net.hosts["web"].ip
        fwd = ReactiveForwarding(priority=5)
        fwd.activate(cluster)
        lb = LoadBalancerApp(
            server_ips=[ftp_ip, web_ip], priority=20, idle_timeout=4.0
        )
        lb.activate(cluster)
        security = SecurityRedirectApp(
            security_dpid=6, inspect_ports=(20, 21), priority=30
        )
        athena = AthenaDeployment(cluster, athena_poll_interval=2.5)
        athena.start()
        monitor = NAEMonitorApp(monitored_switches=(6, 3), bucket_seconds=5.0)
        athena.register_app(monitor)
        schedule = TrafficSchedule(net)
        schedule.prime_arp(0.0)
        workload = NAEWorkload(
            clients=topo.roles["clients"], duration=60.0, ftp_fraction=0.8
        )
        schedule.add_flows(workload.flows())
        net.sim.at(30.0, lambda: security.activate(cluster))
        net.sim.run(until=70.0)
        return topo, athena, monitor, lb, security

    def test_balanced_before_security_app(self, nae_run):
        _topo, _athena, monitor, _lb, _security = nae_run
        pre = collections.defaultdict(float)
        for row in monitor.results_rows():
            if row["timestamp"] < 30.0:
                pre[row["switch_id"]] += row["value"]
        share = max(pre.values()) / sum(pre.values())
        assert share < 0.6  # evenly distributed under the LB

    def test_security_app_takes_over(self, nae_run):
        """Figure 9: after activation the security path dominates."""
        _topo, _athena, monitor, _lb, _security = nae_run
        post = collections.defaultdict(float)
        for row in monitor.results_rows():
            if row["timestamp"] >= 35.0:
                post[row["switch_id"]] += row["value"]
        assert post[6] > post[3] * 3

    def test_violations_only_after_activation(self, nae_run):
        _topo, _athena, monitor, _lb, _security = nae_run
        assert monitor.violations
        assert min(v["time"] for v in monitor.violations) >= 30.0

    def test_alerts_raised_to_ui(self, nae_run):
        _topo, athena, monitor, _lb, _security = nae_run
        assert any(
            alert["source"] == monitor.name for alert in athena.ui_manager.alerts
        )

    def test_chart_renders(self, nae_run):
        _topo, _athena, monitor, _lb, _security = nae_run
        chart = monitor.show()
        assert "t=[" in chart

    def test_rules_attributed_per_app(self, nae_run):
        topo, athena, _monitor, lb, security = nae_run
        docs = athena.northbound.request_features(
            GenerateQuery("feature_scope == flow && switch_id == 6")
        )
        app_ids = {d.get("app_id") for d in docs}
        assert "security" in app_ids
