"""Tests for the workload and dataset generators."""

import numpy as np
import pytest

from repro.dataplane.topologies import linear_topology
from repro.errors import ReproError
from repro.workloads.ddos import (
    DDOS_FEATURES,
    DDoSDatasetGenerator,
    DDoSDatasetSpec,
    PAPER_BENIGN_ENTRIES,
    PAPER_MALICIOUS_ENTRIES,
)
from repro.workloads.flows import FlowSpec, TrafficSchedule
from repro.workloads.lfa import LFATrafficGenerator
from repro.workloads.nae import NAEWorkload


class TestDDoSDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        generator = DDoSDatasetGenerator(DDoSDatasetSpec(scale=0.0005))
        return generator, generator.generate()

    def test_mix_matches_paper(self, dataset):
        _, docs = dataset
        benign = sum(1 for d in docs if d["label"] == 0)
        malicious = len(docs) - benign
        expected_ratio = PAPER_MALICIOUS_ENTRIES / PAPER_BENIGN_ENTRIES
        assert malicious / benign == pytest.approx(expected_ratio, rel=0.01)

    def test_all_ten_features_present(self, dataset):
        _, docs = dataset
        for feature in DDOS_FEATURES:
            assert feature in docs[0]

    def test_flash_fraction_exact(self, dataset):
        _, docs = dataset
        benign = [d for d in docs if d["label"] == 0]
        flash = [d for d in benign if d["PAIR_FLOW"] == 0.0]
        assert len(flash) / len(benign) == pytest.approx(0.0446, abs=0.005)

    def test_stealth_fraction_exact(self, dataset):
        _, docs = dataset
        malicious = [d for d in docs if d["label"] == 1]
        stealth = [d for d in malicious if d["PAIR_FLOW"] == 1.0]
        assert len(stealth) / len(malicious) == pytest.approx(0.0077, abs=0.003)

    def test_deterministic(self):
        spec = DDoSDatasetSpec(scale=0.0002, seed=5)
        docs_a = DDoSDatasetGenerator(spec).generate()
        docs_b = DDoSDatasetGenerator(spec).generate()
        assert docs_a == docs_b

    def test_different_seeds_differ(self):
        a = DDoSDatasetGenerator(DDoSDatasetSpec(scale=0.0002, seed=1)).generate()
        b = DDoSDatasetGenerator(DDoSDatasetSpec(scale=0.0002, seed=2)).generate()
        assert a != b

    def test_timestamps_sorted(self, dataset):
        _, docs = dataset
        stamps = [d["timestamp"] for d in docs]
        assert stamps == sorted(stamps)

    def test_split_preserves_mix(self, dataset):
        generator, docs = dataset
        train, test = generator.train_test_split(docs)
        assert len(train) + len(test) == len(docs)
        train_malicious = sum(d["label"] for d in train) / len(train)
        test_malicious = sum(d["label"] for d in test) / len(test)
        assert train_malicious == pytest.approx(test_malicious, abs=0.02)

    def test_attack_targets_single_victim(self, dataset):
        _, docs = dataset
        malicious_dsts = {d["ip_dst"] for d in docs if d["label"] == 1}
        assert len(malicious_dsts) == 1

    def test_scaling(self):
        small = DDoSDatasetGenerator(DDoSDatasetSpec(scale=0.0002)).generate()
        large = DDoSDatasetGenerator(DDoSDatasetSpec(scale=0.0004)).generate()
        assert len(large) == pytest.approx(2 * len(small), rel=0.01)


class TestTrafficSchedule:
    def test_packet_count_matches_rate(self):
        topo = linear_topology(n_switches=2, hosts_per_switch=1)
        schedule = TrafficSchedule(topo.network)
        scheduled = schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h2", rate_pps=10.0, duration=5.0)
        )
        assert scheduled == 50

    def test_bidirectional_adds_reverse(self):
        topo = linear_topology(n_switches=2, hosts_per_switch=1)
        schedule = TrafficSchedule(topo.network)
        scheduled = schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h2", rate_pps=10.0,
                     duration=2.0, bidirectional=True)
        )
        assert scheduled == 40

    def test_rate_growth_increases_packets(self):
        topo = linear_topology(n_switches=2, hosts_per_switch=1)
        schedule = TrafficSchedule(topo.network)
        flat = schedule._packet_times(
            FlowSpec(src_host="h1", dst_host="h2", rate_pps=10.0, duration=4.0)
        )
        growing = schedule._packet_times(
            FlowSpec(src_host="h1", dst_host="h2", rate_pps=10.0,
                     duration=4.0, rate_growth=0.5)
        )
        assert len(growing) > len(flat)
        # Rate in the last second exceeds rate in the first second.
        first = sum(1 for t in growing if t < growing[0] + 1.0)
        last = sum(1 for t in growing if t > growing[0] + 3.0)
        assert last > first

    def test_unknown_host_rejected(self):
        topo = linear_topology(n_switches=2, hosts_per_switch=1)
        schedule = TrafficSchedule(topo.network)
        with pytest.raises(ReproError):
            schedule.add_flow(FlowSpec(src_host="ghost", dst_host="h1"))

    def test_prime_arp_reaches_all_hosts(self):
        topo = linear_topology(n_switches=3, hosts_per_switch=2)
        schedule = TrafficSchedule(topo.network)
        assert schedule.prime_arp() == 6


class TestLFAGenerator:
    def test_attack_flow_structure(self):
        generator = LFATrafficGenerator(
            bot_hosts=["b1", "b2"], decoy_hosts=["d1", "d2", "d3"],
            flows_per_bot=3, attack_start=5.0,
        )
        flows = generator.attack_flows()
        assert len(flows) == 6
        assert all(not f.bidirectional for f in flows)
        assert all(f.rate_growth == 0.0 for f in flows)
        assert all(f.start >= 5.0 for f in flows)
        decoys_used = {f.dst_host for f in flows}
        assert decoys_used == {"d1", "d2", "d3"}

    def test_benign_flows_adaptive(self):
        generator = LFATrafficGenerator(
            bot_hosts=["b1"], decoy_hosts=["d1"],
            benign_pairs=[("x", "y")],
        )
        benign = generator.benign_flows()
        assert benign[0].bidirectional
        assert benign[0].rate_growth > 0


class TestNAEWorkload:
    def test_ftp_dominates(self):
        workload = NAEWorkload(clients=["h1", "h2"], duration=60.0,
                               ftp_fraction=0.8, seed=1)
        flows = workload.flows()
        ftp = [f for f in flows if f.dport == 21]
        web = [f for f in flows if f.dport == 80]
        assert len(ftp) + len(web) == len(flows)
        assert len(ftp) > 2 * len(web)

    def test_sessions_restart(self):
        workload = NAEWorkload(clients=["h1"], duration=30.0,
                               session_seconds=6.0)
        flows = workload.flows()
        starts = sorted(f.start for f in flows)
        assert len(flows) == 5
        assert starts[-1] > 20.0

    def test_deterministic(self):
        a = NAEWorkload(clients=["h1"], seed=3).flows()
        b = NAEWorkload(clients=["h1"], seed=3).flows()
        assert [(f.start, f.dport) for f in a] == [(f.start, f.dport) for f in b]
