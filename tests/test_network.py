"""Tests for the network container, links, hosts and topologies."""

import pytest

from repro.dataplane.link import Link, LinkEndpoint
from repro.dataplane.network import Network
from repro.dataplane.packet import Packet, flow_headers, reverse_headers
from repro.dataplane.topologies import (
    braga_topology,
    enterprise_topology,
    linear_topology,
    nae_topology,
    tree_topology,
)
from repro.errors import DataPlaneError
from repro.openflow import ActionOutput, FlowMod, FlowModCommand, Match
from repro.types import ConnectPoint


class TestPacketHelpers:
    def test_flow_headers_tcp(self):
        headers = flow_headers(
            "aa:00:00:00:00:01", "aa:00:00:00:00:02",
            "10.0.0.1", "10.0.0.2", proto=6, sport=1234, dport=80,
        )
        assert headers["tcp_dst"] == 80
        assert headers["eth_type"] == 0x0800

    def test_flow_headers_icmp_has_no_ports(self):
        headers = flow_headers(
            "aa:00:00:00:00:01", "aa:00:00:00:00:02",
            "10.0.0.1", "10.0.0.2", proto=1,
        )
        assert "tcp_src" not in headers

    def test_reverse_headers(self):
        headers = flow_headers(
            "aa:00:00:00:00:01", "aa:00:00:00:00:02",
            "10.0.0.1", "10.0.0.2", proto=6, sport=1234, dport=80,
        )
        reverse = reverse_headers(headers)
        assert reverse["ip_src"] == "10.0.0.2"
        assert reverse["tcp_src"] == 80
        assert reverse["tcp_dst"] == 1234
        assert reverse_headers(reverse) == headers

    def test_rewritten_preserves_identity(self):
        packet = Packet(headers={"ip_dst": "1.1.1.1"}, size=10)
        rewritten = packet.rewritten(ip_dst="2.2.2.2")
        assert rewritten.headers["ip_dst"] == "2.2.2.2"
        assert rewritten.packet_id == packet.packet_id
        assert packet.headers["ip_dst"] == "1.1.1.1"


class TestLink:
    def test_capacity_enforced_per_window(self):
        link = Link(LinkEndpoint(host_name="a"), LinkEndpoint(host_name="b"),
                    capacity_bps=8000.0, window=1.0)  # 1000 bytes/window
        assert link.try_send(0, 600, now=0.0)
        assert not link.try_send(0, 600, now=0.5)
        assert link.dropped_packets[0] == 1
        # New window resets the budget.
        assert link.try_send(0, 600, now=1.2)

    def test_directions_independent(self):
        link = Link(LinkEndpoint(host_name="a"), LinkEndpoint(host_name="b"),
                    capacity_bps=8000.0)
        assert link.try_send(0, 900, now=0.0)
        assert link.try_send(1, 900, now=0.0)

    def test_utilization(self):
        link = Link(LinkEndpoint(host_name="a"), LinkEndpoint(host_name="b"),
                    capacity_bps=8000.0, window=1.0)
        link.try_send(0, 500, now=0.0)
        assert link.utilization(0, now=0.1) == 0.5

    def test_down_link_drops(self):
        link = Link(LinkEndpoint(host_name="a"), LinkEndpoint(host_name="b"))
        link.up = False
        assert not link.try_send(0, 10, now=0.0)


class TestNetworkWiring:
    def test_duplicate_switch_rejected(self):
        net = Network()
        net.add_switch(1)
        with pytest.raises(DataPlaneError):
            net.add_switch(1)

    def test_duplicate_port_wiring_rejected(self):
        net = Network()
        net.add_switch(1)
        net.add_switch(2)
        net.add_switch(3)
        net.add_link(1, 1, 2, 1)
        with pytest.raises(DataPlaneError):
            net.add_link(1, 1, 3, 1)

    def test_link_between(self):
        net = Network()
        net.add_switch(1)
        net.add_switch(2)
        link = net.add_link(1, 1, 2, 1)
        assert net.link_between(1, 2) is link
        assert net.link_between(2, 1) is link
        assert net.link_between(1, 3) is None

    def test_host_attachment(self):
        net = Network()
        net.add_switch(1)
        host = net.add_host("h1", "aa:00:00:00:00:01", "10.0.0.1")
        net.attach_host("h1", 1, 100)
        assert host.attachment == ConnectPoint(1, 100)
        assert net.host_by_ip("10.0.0.1") is host
        assert net.host_by_mac("aa:00:00:00:00:01") is host

    def test_packet_crosses_link(self):
        net = Network()
        a = net.add_switch(1)
        b = net.add_switch(2)
        net.add_link(1, 2, 2, 1)
        net.add_host("h1", "aa:00:00:00:00:01", "10.0.0.1")
        net.attach_host("h1", 1, 100)
        net.add_host("h2", "aa:00:00:00:00:02", "10.0.0.2")
        net.attach_host("h2", 2, 100)
        # Static rules: forward everything toward h2.
        a.handle_message(
            FlowMod(command=FlowModCommand.ADD, match=Match(),
                    actions=[ActionOutput(port=2)]),
            now=0.0,
        )
        b.handle_message(
            FlowMod(command=FlowModCommand.ADD, match=Match(),
                    actions=[ActionOutput(port=100)]),
            now=0.0,
        )
        net.inject_from_host(
            "h1",
            Packet(headers=flow_headers(
                "aa:00:00:00:00:01", "aa:00:00:00:00:02",
                "10.0.0.1", "10.0.0.2",
            ), size=500),
        )
        net.sim.run()
        assert net.hosts["h2"].rx_packets == 1
        assert net.hosts["h2"].rx_bytes == 500
        assert a.packets_forwarded == 1

    def test_host_receive_callback(self):
        net = Network()
        net.add_switch(1)
        host = net.add_host("h1", "aa:00:00:00:00:01", "10.0.0.1")
        received = []
        host.on_receive = lambda packet, now: received.append(packet)
        host.deliver(Packet(headers={}, size=1), now=0.0)
        assert len(received) == 1


class TestTopologies:
    def test_linear(self):
        topo = linear_topology(n_switches=4, hosts_per_switch=2)
        assert topo.network.summary()["switches"] == 4
        assert topo.network.summary()["hosts"] == 8
        assert len(list(topo.network.switch_links())) == 3

    def test_tree(self):
        topo = tree_topology(depth=2, fanout=2, hosts_per_leaf=1)
        assert topo.network.summary()["switches"] == 7
        assert topo.network.summary()["hosts"] == 4

    def test_braga_matches_table6(self):
        topo = braga_topology()
        summary = topo.network.summary()
        assert summary["switches"] == 3
        assert len(list(topo.network.switch_links())) == 3
        assert len(topo.domains) == 1

    def test_enterprise_matches_table6(self):
        """Table VI: 18 switches (6 physical + 12 OVS), 48 links, 3 domains."""
        topo = enterprise_topology()
        summary = topo.network.summary()
        assert summary["switches"] == 18
        assert summary["physical_switches"] == 6
        assert summary["ovs_switches"] == 12
        assert len(list(topo.network.switch_links())) == 48
        assert len(topo.domains) == 3
        assert sorted(d for domain in topo.domains for d in domain) == sorted(
            topo.network.switches
        )

    def test_nae_topology_paths(self):
        """Figure 8: both the S3 and S6->S7 paths reach the server switch."""
        topo = nae_topology()
        net = topo.network
        assert len(net.switches) == 7
        assert "ftp" in net.hosts and "web" in net.hosts
        links = {frozenset((a.dpid, b.dpid)) for a, b in net.switch_links()}
        assert frozenset((2, 3)) in links
        assert frozenset((2, 6)) in links
        assert frozenset((6, 7)) in links
        assert frozenset((3, 4)) in links
        assert frozenset((7, 4)) in links
