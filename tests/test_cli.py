"""Tests for the operator CLI."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "utility APIs        : 7" in out  # 70-something
        assert "kmeans" in out

    def test_features_listing(self, capsys):
        assert main(["features"]) == 0
        out = capsys.readouterr().out
        assert "FLOW_PACKET_COUNT" in out
        assert out.count("\n") > 100

    def test_features_category_filter(self, capsys):
        assert main(["features", "--category", "stateful"]) == 0
        out = capsys.readouterr().out
        assert "PAIR_FLOW" in out
        assert "FLOW_BYTE_PER_PACKET" not in out

    def test_ddos_command(self, capsys):
        assert main(["ddos", "--scale", "0.0004"]) == 0
        out = capsys.readouterr().out
        assert "Detection Rate" in out

    def test_cbench_command(self, capsys):
        assert main(["cbench", "--rounds", "1", "--seconds", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "overhead with Athena+DB" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])
