"""Live (online) detection end-to-end.

The paper: Athena facilitates "both batch and live mode anomaly detection".
Batch mode is covered by the DDoS scenario tests; these tests drive the
live path: a model is trained in batch, registered with
``AddOnlineValidator``, and validates *streaming* features as the
southbound elements publish them — raising alerts and reactions in real
time.
"""

import pytest

from repro.controller import ControllerCluster, ReactiveForwarding
from repro.core import AthenaDeployment, BlockReaction, GenerateQuery
from repro.core.algorithm import GenerateAlgorithm
from repro.core.preprocessor import GeneratePreprocessor
from repro.dataplane.topologies import linear_topology
from repro.workloads.ddos import DDoSDatasetGenerator, DDoSDatasetSpec
from repro.workloads.flows import FlowSpec, TrafficSchedule

#: Features available both in the offline dataset and in live records.
LIVE_FEATURES = [
    "FLOW_PACKET_COUNT",
    "FLOW_BYTE_PER_PACKET",
    "FLOW_PACKET_PER_DURATION",
    "PAIR_FLOW",
]


@pytest.fixture
def stack():
    topo = linear_topology(n_switches=3, hosts_per_switch=2)
    cluster = ControllerCluster(topo.network, n_instances=1)
    cluster.adopt_all()
    cluster.start(poll=False)
    forwarding = ReactiveForwarding()
    forwarding.activate(cluster)
    athena = AthenaDeployment(cluster, athena_poll_interval=1.0)
    athena.start()
    schedule = TrafficSchedule(topo.network)
    schedule.prime_arp()
    topo.network.sim.run(until=0.5)
    return topo, athena, schedule


def _train_model(athena):
    """Batch-train a K-Means model on the synthetic DDoS dataset."""
    documents = DDoSDatasetGenerator(DDoSDatasetSpec(scale=0.0005)).generate()
    preprocessor = GeneratePreprocessor(
        normalization="minmax", marking="label", features=LIVE_FEATURES
    )
    return athena.detector_manager.generate_detection_model(
        GenerateQuery(),
        preprocessor,
        GenerateAlgorithm("kmeans", k=6, max_iterations=15, runs=2, seed=1),
        documents=documents,
    )


class TestOnlineValidation:
    def test_streaming_features_validated(self, stack):
        topo, athena, schedule = stack
        model = _train_model(athena)
        verdicts = []
        validator_id = athena.northbound.add_online_validator(
            model.preprocessor,
            model,
            lambda feature, verdict: verdicts.append((feature, verdict)),
            query=GenerateQuery("feature_scope == flow && FLOW_PACKET_COUNT > 0"),
        )
        # Benign paired traffic.
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h5", rate_pps=10.0,
                     start=1.0, duration=5.0, bidirectional=True)
        )
        topo.network.sim.run(until=8.0)
        assert verdicts, "live features must reach the online validator"
        stats = athena.detector_manager.validator_stats(validator_id)
        assert stats["validated"] == len(verdicts)

    def test_flood_raises_online_alerts(self, stack):
        topo, athena, schedule = stack
        model = _train_model(athena)
        alerts = []

        def handler(feature, verdict):
            if verdict:
                alerts.append(feature)

        athena.northbound.add_online_validator(
            model.preprocessor,
            model,
            handler,
            query=GenerateQuery("feature_scope == flow && FLOW_PACKET_COUNT > 0"),
        )
        # One-way small-packet flood from h2 (unpaired, tiny payload).
        schedule.add_flow(
            FlowSpec(src_host="h2", dst_host="h6", sport=50001, dport=80,
                     packet_size=64, rate_pps=150.0, start=1.0, duration=6.0)
        )
        topo.network.sim.run(until=9.0)
        assert alerts, "the flood must trigger live verdicts"
        sources = {a.indicators.get("ip_src") for a in alerts}
        assert topo.network.hosts["h2"].ip in sources

    def test_online_alert_drives_reaction(self, stack):
        """The full live loop: detect malicious feature -> block source."""
        topo, athena, schedule = stack
        model = _train_model(athena)
        blocked = set()

        def handler(feature, verdict):
            ip = feature.indicators.get("ip_src")
            if verdict and ip and ip not in blocked:
                blocked.add(ip)
                athena.northbound.reactor(
                    None, BlockReaction(target_ips=[ip])
                )

        athena.northbound.add_online_validator(
            model.preprocessor, model, handler,
            query=GenerateQuery("feature_scope == flow && FLOW_PACKET_COUNT > 0"),
        )
        attacker = topo.network.hosts["h2"]
        victim = topo.network.hosts["h6"]
        schedule.add_flow(
            FlowSpec(src_host="h2", dst_host="h6", sport=50002, dport=80,
                     packet_size=64, rate_pps=150.0, start=1.0, duration=10.0)
        )
        topo.network.sim.run(until=14.0)
        assert attacker.ip in blocked
        # Traffic stops after the live block lands.
        delivered_at_block = victim.rx_packets
        schedule.add_flow(
            FlowSpec(src_host="h2", dst_host="h6", sport=50003, dport=80,
                     packet_size=64, rate_pps=100.0,
                     start=topo.network.sim.now, duration=2.0)
        )
        topo.network.sim.run(until=topo.network.sim.now + 4.0)
        assert victim.rx_packets == delivered_at_block

    def test_benign_traffic_not_blocked(self, stack):
        topo, athena, schedule = stack
        model = _train_model(athena)
        malicious_verdicts = []
        athena.northbound.add_online_validator(
            model.preprocessor,
            model,
            lambda feature, verdict: verdicts_append(feature, verdict),
            query=GenerateQuery("feature_scope == flow && FLOW_PACKET_COUNT > 5"),
        )

        def verdicts_append(feature, verdict):
            if verdict:
                malicious_verdicts.append(feature)

        # Normal web-like paired traffic.
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h5", rate_pps=12.0,
                     packet_size=900, start=1.0, duration=6.0,
                     bidirectional=True)
        )
        topo.network.sim.run(until=9.0)
        benign_ip = topo.network.hosts["h1"].ip
        # Cold-start samples (before the reverse rule lands) may look
        # unpaired; the steady state must be clean.
        late_false_alarms = [
            a
            for a in malicious_verdicts
            if a.indicators.get("ip_src") == benign_ip and a.timestamp > 3.0
        ]
        assert late_false_alarms == []
