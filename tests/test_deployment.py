"""Integration tests: the full Athena deployment over live topologies."""

import pytest

from repro.controller import ControllerCluster, ReactiveForwarding
from repro.core import (
    AthenaDeployment,
    BlockReaction,
    GenerateQuery,
    QuarantineReaction,
)
from repro.core.feature_format import FeatureScope
from repro.dataplane.packet import Packet, flow_headers
from repro.dataplane.topologies import enterprise_topology, linear_topology
from repro.errors import AthenaError, ReactionError
from repro.workloads.flows import FlowSpec, TrafficSchedule


def _stack(topo=None, n_instances=1, poll_interval=2.0):
    topo = topo or linear_topology(n_switches=3, hosts_per_switch=1)
    cluster = ControllerCluster(topo.network, n_instances=n_instances)
    if n_instances > 1:
        cluster.adopt_domains(topo.domains)
    else:
        cluster.adopt_all()
    cluster.start(poll=False)
    fwd = ReactiveForwarding()
    fwd.activate(cluster)
    athena = AthenaDeployment(cluster, athena_poll_interval=poll_interval)
    athena.start()
    schedule = TrafficSchedule(topo.network)
    schedule.prime_arp()
    topo.network.sim.run(until=0.5)
    return topo, cluster, athena, schedule


class TestFeaturePipeline:
    def test_live_traffic_produces_features(self):
        topo, cluster, athena, schedule = _stack()
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h3", rate_pps=20.0,
                     start=1.0, duration=5.0, bidirectional=True)
        )
        topo.network.sim.run(until=10.0)
        assert athena.total_features_generated() > 0
        docs = athena.northbound.request_features(
            GenerateQuery("feature_scope == flow && FLOW_PACKET_COUNT > 0")
        )
        assert docs
        assert any(d.get("PAIR_FLOW") == 1.0 for d in docs)

    def test_all_scopes_generated(self):
        topo, cluster, athena, schedule = _stack()
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h3", rate_pps=10.0,
                     start=1.0, duration=4.0)
        )
        topo.network.sim.run(until=8.0)
        for scope in ("flow", "port", "switch", "control"):
            docs = athena.northbound.request_features(
                GenerateQuery(f"feature_scope == {scope}")
            )
            assert docs, scope

    def test_flow_origin_attribution(self):
        topo, cluster, athena, schedule = _stack()
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h3", rate_pps=10.0,
                     start=1.0, duration=4.0)
        )
        topo.network.sim.run(until=6.0)
        docs = athena.northbound.request_features(
            GenerateQuery("feature_scope == flow && FLOW_PACKET_COUNT > 0")
        )
        assert any(d.get("app_id") == "fwd" for d in docs)

    def test_distributed_instances_cover_their_domains(self):
        topo = enterprise_topology(hosts_per_edge=1)
        topo_, cluster, athena, schedule = _stack(topo=topo, n_instances=3)
        topo.network.sim.run(until=5.0)
        assert len(athena.instances) == 3
        per_instance = {
            i.instance_id: i.generator.features_generated
            for i in athena.instances
        }
        assert all(count > 0 for count in per_instance.values())
        # Feature records carry the generating instance id.
        docs = athena.northbound.request_features(GenerateQuery())
        instance_ids = {d.get("instance_id") for d in docs}
        assert instance_ids == {0, 1, 2}

    def test_event_handler_receives_live_features(self):
        topo, cluster, athena, schedule = _stack()
        received = []
        athena.northbound.add_event_handler(
            GenerateQuery("feature_scope == flow"), received.append
        )
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h3", rate_pps=10.0,
                     start=1.0, duration=3.0)
        )
        topo.network.sim.run(until=6.0)
        assert received
        assert all(r.scope == FeatureScope.FLOW for r in received)


class TestReactions:
    def test_block_stops_traffic(self):
        topo, cluster, athena, schedule = _stack()
        net = topo.network
        h1, h3 = net.hosts["h1"], net.hosts["h3"]
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h3", rate_pps=20.0,
                     start=1.0, duration=2.0)
        )
        net.sim.run(until=4.0)
        delivered_before = h3.rx_packets
        assert delivered_before > 0
        athena.northbound.reactor(None, BlockReaction(target_ips=[h1.ip]))
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h3", sport=41000,
                     rate_pps=20.0, start=net.sim.now, duration=2.0)
        )
        net.sim.run(until=net.sim.now + 4.0)
        assert h3.rx_packets == delivered_before

    def test_block_unblock(self):
        topo, cluster, athena, schedule = _stack()
        net = topo.network
        h1 = net.hosts["h1"]
        athena.northbound.reactor(None, BlockReaction(target_ips=[h1.ip]))
        reactor = athena.instances[0].reactor
        assert reactor.undo(h1.ip) >= 1

    def test_quarantine_redirects_to_honeypot(self):
        topo, cluster, athena, schedule = _stack()
        net = topo.network
        h1, h2, h3 = net.hosts["h1"], net.hosts["h2"], net.hosts["h3"]
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h3", rate_pps=10.0,
                     start=1.0, duration=2.0)
        )
        net.sim.run(until=4.0)
        # Quarantine h1: its traffic to h3 is rewritten toward h2 (honeypot).
        athena.northbound.reactor(
            None, QuarantineReaction(target_ips=[h1.ip], honeypot_ip=h2.ip)
        )
        before_h3, before_h2 = h3.rx_packets, h2.rx_packets
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h3", sport=42000,
                     rate_pps=20.0, start=net.sim.now, duration=2.0)
        )
        net.sim.run(until=net.sim.now + 4.0)
        assert h3.rx_packets == before_h3
        assert h2.rx_packets > before_h2

    def test_reactor_via_query_targets(self):
        topo, cluster, athena, schedule = _stack()
        net = topo.network
        h1 = net.hosts["h1"]
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h3", rate_pps=30.0,
                     start=1.0, duration=3.0)
        )
        net.sim.run(until=6.0)
        rules = athena.northbound.reactor(
            GenerateQuery(f"ip_src == {h1.ip} && FLOW_PACKET_COUNT > 10"),
            BlockReaction(),
        )
        assert rules >= 1

    def test_reaction_without_targets_raises(self):
        topo, cluster, athena, schedule = _stack()
        with pytest.raises(ReactionError):
            athena.northbound.reactor(
                GenerateQuery("ip_src == 99.99.99.99"), BlockReaction()
            )

    def test_quarantine_requires_honeypot(self):
        topo, cluster, athena, schedule = _stack()
        h1 = topo.network.hosts["h1"]
        with pytest.raises(ReactionError):
            athena.northbound.reactor(
                None, QuarantineReaction(target_ips=[h1.ip])
            )


class TestResourceControls:
    def test_manage_monitor_global_off(self):
        topo, cluster, athena, schedule = _stack()
        athena.northbound.manage_monitor(None, False)
        before = athena.total_features_generated()
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h3", rate_pps=10.0,
                     start=topo.network.sim.now, duration=3.0)
        )
        topo.network.sim.run(until=topo.network.sim.now + 5.0)
        assert athena.total_features_generated() == before
        athena.northbound.manage_monitor(None, True)
        topo.network.sim.run(until=topo.network.sim.now + 5.0)
        assert athena.total_features_generated() > before

    def test_manage_monitor_per_switch(self):
        topo, cluster, athena, schedule = _stack()
        athena.northbound.manage_monitor(
            GenerateQuery("switch_id == 2"), False
        )
        athena.feature_manager.clear_features()
        topo.network.sim.run(until=topo.network.sim.now + 5.0)
        switch_ids = {
            d["switch_id"]
            for d in athena.northbound.request_features(GenerateQuery())
        }
        assert 2 not in switch_ids
        assert switch_ids  # other switches still monitored

    def test_fidelity_snapshot(self):
        topo, cluster, athena, schedule = _stack()
        snapshot = athena.resource_manager.current_fidelity()
        assert snapshot["monitored_switches"] == "all"

    def test_app_registration_lifecycle(self):
        topo, cluster, athena, schedule = _stack()
        from repro.core.app import AthenaApp

        class Dummy(AthenaApp):
            attached = False

            def on_attach(self):
                Dummy.attached = True

        app = Dummy("dummy")
        athena.register_app(app)
        assert Dummy.attached
        assert athena.app("dummy") is app
        with pytest.raises(AthenaError):
            athena.register_app(Dummy("dummy"))
        athena.unregister_app("dummy")
        assert athena.app("dummy") is None

    def test_summary_counts(self):
        topo, cluster, athena, schedule = _stack()
        topo.network.sim.run(until=5.0)
        summary = athena.summary()
        assert summary["athena_instances"] == 1
        assert summary["features_generated"] >= summary["features_published"] > 0


class TestSwitchScopePolling:
    def test_table_and_aggregate_features_generated_live(self):
        """Athena's own polling covers all four stats families, so the
        TABLE_* / AGG_* switch-scope features exist without manual polls."""
        topo, cluster, athena, schedule = _stack()
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h3", rate_pps=10.0,
                     start=1.0, duration=4.0)
        )
        topo.network.sim.run(until=8.0)
        docs = athena.northbound.request_features(
            GenerateQuery("feature_scope == switch && TABLE_ACTIVE_COUNT >= 0")
        )
        assert any("TABLE_ACTIVE_COUNT" in d for d in docs)
        agg_docs = athena.northbound.request_features(
            GenerateQuery("feature_scope == switch && AGG_FLOW_COUNT > 0")
        )
        assert agg_docs

    def test_switch_scope_polls_suppressed_with_fidelity(self):
        topo, cluster, athena, schedule = _stack()
        from repro.core.feature_format import FeatureScope

        athena.resource_manager.set_scopes(
            {FeatureScope.FLOW, FeatureScope.PORT}
        )
        topo.network.sim.run(until=6.0)
        docs = athena.northbound.request_features(
            GenerateQuery("feature_scope == switch")
        )
        assert docs == []
