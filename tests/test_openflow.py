"""Tests for the OpenFlow layer: matches, flow entries, messages, codec."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import OpenFlowError
from repro.openflow import (
    ActionController,
    ActionDrop,
    ActionOutput,
    ActionSetIpDst,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    FlowRemovedReason,
    Hello,
    Match,
    PacketIn,
    PacketInReason,
    PacketOut,
    PortStatus,
    pack_message,
    unpack_message,
)
from repro.openflow.flow import FlowEntry, FlowStats
from repro.openflow.match import MATCH_FIELDS


class TestMatch:
    def test_wildcard_matches_everything(self):
        assert Match().matches({"ip_src": "1.2.3.4", "in_port": 1})

    def test_exact_field(self):
        match = Match(ip_src="10.0.0.1")
        assert match.matches({"ip_src": "10.0.0.1"})
        assert not match.matches({"ip_src": "10.0.0.2"})
        assert not match.matches({})

    def test_multiple_fields_all_required(self):
        match = Match(ip_src="10.0.0.1", tcp_dst=80)
        assert match.matches({"ip_src": "10.0.0.1", "tcp_dst": 80})
        assert not match.matches({"ip_src": "10.0.0.1", "tcp_dst": 81})

    def test_specificity(self):
        assert Match().specificity() == 0
        assert Match(ip_src="1.1.1.1", tcp_dst=80).specificity() == 2

    def test_subset(self):
        narrow = Match(ip_src="10.0.0.1", tcp_dst=80)
        wide = Match(ip_src="10.0.0.1")
        assert narrow.is_subset_of(wide)
        assert not wide.is_subset_of(narrow)
        assert narrow.is_subset_of(Match())

    def test_compiled_and_reference_paths_agree(self):
        from repro.perf import fast_path_scope

        match = Match(ip_src="10.0.0.1", ip_proto=6, tcp_dst=80)
        probes = [
            {"ip_src": "10.0.0.1", "ip_proto": 6, "tcp_dst": 80},
            {"ip_src": "10.0.0.1", "ip_proto": 6, "tcp_dst": 81},
            {"ip_src": "10.0.0.1"},
            {},
        ]
        with fast_path_scope(True):
            fast = [match.matches(h) for h in probes]
        with fast_path_scope(False):
            slow = [match.matches(h) for h in probes]
        assert fast == slow == [True, False, False, False]

    def test_pickle_and_deepcopy_recompile(self):
        import copy
        import pickle

        match = Match(ip_src="10.0.0.1", tcp_dst=80)
        for clone in (pickle.loads(pickle.dumps(match)), copy.deepcopy(match)):
            assert clone == match
            assert hash(clone) == hash(match)
            assert clone.matches({"ip_src": "10.0.0.1", "tcp_dst": 80})
            assert not clone.matches({"ip_src": "10.0.0.2", "tcp_dst": 80})
            assert clone.key_tuple() == match.key_tuple()

    def test_key_tuple_follows_field_order(self):
        match = Match(in_port=3, tcp_dst=80)
        key = match.key_tuple()
        assert len(key) == len(MATCH_FIELDS)
        assert key[MATCH_FIELDS.index("in_port")] == 3
        assert key[MATCH_FIELDS.index("tcp_dst")] == 80
        assert all(
            key[i] is None
            for i, name in enumerate(MATCH_FIELDS)
            if name not in ("in_port", "tcp_dst")
        )

    def test_to_dict_only_set_fields(self):
        assert Match(ip_proto=6).to_dict() == {"ip_proto": 6}
        assert Match().to_dict() == {}

    def test_from_dict_rejects_unknown(self):
        with pytest.raises(OpenFlowError):
            Match.from_dict({"bogus": 1})

    def test_exact_from_headers_ignores_non_match_keys(self):
        match = Match.exact_from_headers({"ip_src": "1.1.1.1", "weird": 9})
        assert match.to_dict() == {"ip_src": "1.1.1.1"}

    def test_hashable(self):
        assert len({Match(ip_src="1.1.1.1"), Match(ip_src="1.1.1.1")}) == 1

    @given(
        st.dictionaries(
            st.sampled_from(["in_port", "tcp_src", "tcp_dst", "vlan_id"]),
            st.integers(min_value=0, max_value=65535),
            max_size=4,
        )
    )
    def test_match_accepts_own_headers_property(self, fields):
        match = Match.from_dict(fields)
        assert match.matches(dict(fields))


class TestFlowEntry:
    def test_counters_update(self):
        entry = FlowEntry(match=Match(), stats=FlowStats(install_time=0.0))
        entry.stats.record(100, now=1.0)
        entry.stats.record(50, now=2.0, packets=2)
        assert entry.stats.packet_count == 3
        assert entry.stats.byte_count == 150
        assert entry.stats.duration(5.0) == 5.0

    def test_idle_expiry(self):
        entry = FlowEntry(match=Match(), idle_timeout=2.0)
        entry.stats.install_time = 0.0
        entry.stats.last_packet_time = 1.0
        assert not entry.is_idle_expired(2.9)
        assert entry.is_idle_expired(3.0)

    def test_hard_expiry(self):
        entry = FlowEntry(match=Match(), hard_timeout=5.0)
        entry.stats.install_time = 1.0
        entry.stats.last_packet_time = 5.9
        assert not entry.is_hard_expired(5.9)
        assert entry.is_hard_expired(6.0)

    def test_zero_timeouts_never_expire(self):
        entry = FlowEntry(match=Match())
        assert not entry.is_idle_expired(1e9)
        assert not entry.is_hard_expired(1e9)

    def test_sort_key_priority_then_specificity(self):
        high = FlowEntry(match=Match(), priority=100)
        specific = FlowEntry(match=Match(ip_src="1.1.1.1"), priority=10)
        loose = FlowEntry(match=Match(), priority=10)
        ordered = sorted([loose, specific, high], key=FlowEntry.sort_key)
        assert ordered == [high, specific, loose]


def _roundtrip(msg):
    decoded = unpack_message(pack_message(msg))
    assert type(decoded) is type(msg)
    assert decoded.xid == msg.xid
    assert decoded.dpid == msg.dpid
    return decoded


class TestSerialization:
    def test_hello(self):
        decoded = _roundtrip(Hello(dpid=7, version=0x04))
        assert decoded.version == 0x04

    def test_packet_in(self):
        msg = PacketIn(
            dpid=3,
            buffer_id=12,
            in_port=4,
            reason=PacketInReason.NO_MATCH,
            headers={"ip_src": "10.0.0.1", "tcp_dst": 80, "eth_type": 0x0800},
            total_len=1400,
        )
        decoded = _roundtrip(msg)
        assert decoded.headers == msg.headers
        assert decoded.in_port == 4
        assert decoded.total_len == 1400

    def test_flow_mod(self):
        msg = FlowMod(
            dpid=1,
            command=FlowModCommand.ADD,
            match=Match(ip_src="10.0.0.1", tcp_dst=80),
            priority=42,
            actions=[ActionOutput(port=3), ActionSetIpDst(ip="10.9.9.9")],
            idle_timeout=10.0,
            hard_timeout=60.0,
            cookie=77,
            app_id="fwd",
        )
        decoded = _roundtrip(msg)
        assert decoded.match == msg.match
        assert decoded.priority == 42
        assert decoded.actions == msg.actions
        assert decoded.app_id == "fwd"

    def test_flow_removed(self):
        msg = FlowRemoved(
            dpid=2,
            match=Match(ip_src="10.0.0.5"),
            priority=5,
            reason=FlowRemovedReason.IDLE_TIMEOUT,
            duration_sec=12.5,
            packet_count=100,
            byte_count=5000,
            app_id="lb",
        )
        decoded = _roundtrip(msg)
        assert decoded.packet_count == 100
        assert decoded.reason == FlowRemovedReason.IDLE_TIMEOUT
        assert decoded.app_id == "lb"

    def test_packet_out(self):
        msg = PacketOut(
            dpid=1,
            buffer_id=5,
            in_port=1,
            actions=[ActionController(), ActionDrop()],
            headers={"eth_src": "aa:bb:cc:dd:ee:ff"},
            total_len=64,
        )
        decoded = _roundtrip(msg)
        assert decoded.actions == msg.actions

    def test_port_status(self):
        decoded = _roundtrip(PortStatus(dpid=1, port_no=9, link_up=False))
        assert decoded.port_no == 9
        assert decoded.link_up is False

    def test_truncated_buffer_rejected(self):
        with pytest.raises(OpenFlowError):
            unpack_message(b"\x01\x00")

    @given(
        st.dictionaries(
            st.sampled_from(list(MATCH_FIELDS)),
            st.one_of(
                st.integers(min_value=0, max_value=65535),
                st.text(
                    alphabet="abcdef0123456789:.", min_size=1, max_size=20
                ),
            ),
            max_size=6,
        ),
        st.integers(min_value=0, max_value=0xFFFF),
    )
    def test_flow_mod_roundtrip_property(self, match_fields, priority):
        msg = FlowMod(
            dpid=1,
            match=Match.from_dict(match_fields),
            priority=priority,
            actions=[ActionOutput(port=1)],
        )
        decoded = unpack_message(pack_message(msg))
        assert decoded.match == msg.match
        assert decoded.priority == priority
