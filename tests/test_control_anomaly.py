"""Tests for the control-plane anomaly detector app."""

import pytest

from repro.apps.control_anomaly import ControlPlaneAnomalyApp, _RunningStats
from repro.controller import ControllerCluster, ReactiveForwarding
from repro.core import AthenaDeployment
from repro.dataplane.packet import Packet, flow_headers
from repro.dataplane.topologies import linear_topology
from repro.workloads.flows import FlowSpec, TrafficSchedule


class TestRunningStats:
    def test_mean_and_stddev(self):
        stats = _RunningStats()
        for value in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            stats.update(value)
        assert stats.mean == pytest.approx(5.0)
        assert stats.stddev == pytest.approx(2.138, abs=0.01)

    def test_single_sample_stddev_zero(self):
        stats = _RunningStats()
        stats.update(3.0)
        assert stats.stddev == 0.0


def _environment(calibration_seconds=8.0, sigma=4.0, floor=50.0):
    topo = linear_topology(n_switches=3, hosts_per_switch=2)
    cluster = ControllerCluster(topo.network, n_instances=1)
    cluster.adopt_all()
    cluster.start(poll=False)
    forwarding = ReactiveForwarding(idle_timeout=2.0)
    forwarding.activate(cluster)
    athena = AthenaDeployment(cluster, athena_poll_interval=1.0)
    athena.start()
    app = ControlPlaneAnomalyApp(
        calibration_seconds=calibration_seconds,
        sigma=sigma,
        min_rate_floor=floor,
    )
    athena.register_app(app)
    schedule = TrafficSchedule(topo.network)
    schedule.prime_arp()
    return topo, athena, app, schedule


def _background_traffic(schedule, start, duration, sport_base=30000):
    for idx in range(2):
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h5",
                     sport=sport_base + idx, rate_pps=8.0,
                     start=start, duration=duration, bidirectional=True)
        )


def _packet_in_flood(network, dpid, start, duration, rate):
    """Spoofed table-miss storm: unique 5-tuples straight to the switch."""
    switch = network.switches[dpid]
    n_packets = int(rate * duration)
    for i in range(n_packets):
        headers = flow_headers(
            "0a:de:ad:00:%02x:%02x" % (i // 256 % 256, i % 256),
            "0a:00:00:00:00:05",
            f"172.16.{(i >> 8) % 250}.{i % 250}",
            "10.0.0.5",
            proto=17,
            sport=1024 + i % 60000,
            dport=53,
        )
        network.sim.at(
            start + i * (duration / n_packets),
            lambda h=headers: switch.receive_packet(
                100, Packet(headers=h, size=64), network.sim.now
            ),
        )


class TestControlPlaneAnomalyApp:
    def test_no_alarms_under_baseline_traffic(self):
        topo, athena, app, schedule = _environment()
        _background_traffic(schedule, start=1.0, duration=20.0)
        topo.network.sim.run(until=24.0)
        assert app.anomalies == []

    def test_packet_in_flood_detected(self):
        topo, athena, app, schedule = _environment()
        _background_traffic(schedule, start=1.0, duration=25.0)
        _packet_in_flood(topo.network, dpid=1, start=15.0, duration=5.0,
                         rate=400.0)
        topo.network.sim.run(until=28.0)
        assert app.anomalies
        # The flooded switch alarms; downstream switches may also spike
        # (their FLOW_MOD churn is real collateral of the attack).
        assert 1 in app.anomalous_switches()
        # Detection happens after the flood starts, not during calibration.
        assert min(a["time"] for a in app.anomalies) >= 15.0
        packet_in_alarms = [
            a for a in app.anomalies if a["metric"] == "PACKET_IN_RATE"
        ]
        assert packet_in_alarms
        assert {a["switch_id"] for a in packet_in_alarms} == {1}

    def test_alerts_reach_ui(self):
        topo, athena, app, schedule = _environment()
        _background_traffic(schedule, start=1.0, duration=25.0)
        _packet_in_flood(topo.network, dpid=2, start=15.0, duration=5.0,
                         rate=400.0)
        topo.network.sim.run(until=28.0)
        assert any(
            alert["source"] == app.name for alert in athena.ui_manager.alerts
        )

    def test_profile_learned_per_switch(self):
        topo, athena, app, schedule = _environment()
        _background_traffic(schedule, start=1.0, duration=10.0)
        topo.network.sim.run(until=12.0)
        profile = app.profile_of(1)
        assert "PACKET_IN_RATE" in profile
        assert profile["PACKET_IN_RATE"]["samples"] >= 2

    def test_floor_suppresses_quiet_network_noise(self):
        # A huge relative spike that stays under the absolute floor.
        topo, athena, app, schedule = _environment(floor=1e9)
        _background_traffic(schedule, start=1.0, duration=25.0)
        _packet_in_flood(topo.network, dpid=1, start=15.0, duration=5.0,
                         rate=400.0)
        topo.network.sim.run(until=28.0)
        assert app.anomalies == []

    def test_detach_stops_delivery(self):
        topo, athena, app, schedule = _environment()
        athena.unregister_app(app.name)
        _background_traffic(schedule, start=1.0, duration=5.0)
        topo.network.sim.run(until=8.0)
        assert app._first_seen is None
