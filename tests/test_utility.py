"""Tests for the utility API surface (the paper's '70 utility APIs')."""

import pytest

from repro.core import utility as u
from repro.core.algorithm import Algorithm
from repro.core.preprocessor import Preprocessor
from repro.core.query import Query
from repro.core.reactions import BlockReaction, QuarantineReaction
from repro.core.results import ClusterReport, ValidationSummary


class TestSurface:
    def test_at_least_seventy_utility_apis(self):
        """Section III: '8 core APIs, over 70 utility APIs'."""
        assert u.utility_api_count() >= 70

    def test_names_enumerable_and_documented(self):
        names = u.utility_api_names()
        assert len(names) == len(set(names))
        for name in names:
            fn = getattr(u, name)
            assert fn.__doc__, f"{name} lacks a docstring"


class TestQueryHelpers:
    def test_scope_queries(self):
        assert u.flow_features_query().matches({"feature_scope": "flow"})
        assert u.port_features_query().matches({"feature_scope": "port"})
        assert u.switch_features_query().matches({"feature_scope": "switch"})
        assert u.control_features_query().matches({"feature_scope": "control"})

    def test_comparison_sugar(self):
        query = u.where_between(u.q(), "x", 2, 5)
        assert query.matches({"x": 3})
        assert not query.matches({"x": 6})
        assert u.where_ne(u.q(), "x", 1).matches({"x": 2})
        assert u.where_gte(u.q(), "x", 5).matches({"x": 5})
        assert u.where_lt(u.q(), "x", 5).matches({"x": 4})

    def test_where_any_of(self):
        query = u.where_any_of(
            u.flow_features_query(), "switch_id", [3, 6]
        )
        assert query.matches({"feature_scope": "flow", "switch_id": 3})
        assert query.matches({"feature_scope": "flow", "switch_id": 6})
        assert not query.matches({"feature_scope": "flow", "switch_id": 7})
        assert not query.matches({"feature_scope": "port", "switch_id": 3})

    def test_flow_selectors(self):
        assert u.flows_of_switch(4).matches(
            {"feature_scope": "flow", "switch_id": 4}
        )
        assert u.flows_between("1.1.1.1", "2.2.2.2").matches(
            {"feature_scope": "flow", "ip_src": "1.1.1.1", "ip_dst": "2.2.2.2"}
        )
        assert u.flows_of_app("lb").matches(
            {"feature_scope": "flow", "app_id": "lb"}
        )
        assert u.flows_to_port(80).matches(
            {"feature_scope": "flow", "tcp_dst": 80}
        )

    def test_top_talkers_shape(self):
        query = u.top_talkers(5)
        assert query.limit_value == 5
        assert query.sort_spec == [("FLOW_BYTE_COUNT", -1)]

    def test_pairing_filters(self):
        assert u.paired_flows_only().matches(
            {"feature_scope": "flow", "PAIR_FLOW": 1.0}
        )
        assert not u.unpaired_flows_only().matches(
            {"feature_scope": "flow", "PAIR_FLOW": 1.0}
        )

    def test_within_last(self):
        query = u.within_last(u.q(), now=100.0, seconds=10.0)
        assert query.matches({"timestamp": 95.0})
        assert not query.matches({"timestamp": 80.0})

    def test_utilization_per_app_pipeline(self):
        pipeline = u.utilization_per_app().to_db_pipeline()
        assert any("$group" in stage for stage in pipeline)


class TestFeatureHelpers:
    def test_catalog_access(self):
        assert len(u.all_feature_names()) > 100
        assert "FLOW_PACKET_COUNT" in u.protocol_features()
        assert "FLOW_BYTE_PER_PACKET" in u.combination_features()
        assert "PAIR_FLOW" in u.stateful_features()
        assert "FLOW_PACKET_COUNT_VAR" in u.variation_features()

    def test_candidate_sets(self):
        assert len(u.ddos_candidate_features()) == 10
        assert "PORT_RX_BYTES_VAR" in u.lfa_candidate_features()

    def test_descriptions(self):
        assert "packets" in u.feature_description("FLOW_PACKET_COUNT")
        assert u.feature_category("PAIR_FLOW") == "stateful"

    def test_variation_mapping(self):
        assert u.is_variation_feature("FLOW_BYTE_COUNT_VAR")
        assert not u.is_variation_feature("FLOW_BYTE_COUNT")
        assert u.base_feature_of("FLOW_BYTE_COUNT_VAR") == "FLOW_BYTE_COUNT"
        assert u.base_feature_of("FLOW_BYTE_COUNT") == "FLOW_BYTE_COUNT"


class TestPreprocessorHelpers:
    def test_builders(self):
        pre = u.normalized_minmax(["A", "B"])
        assert isinstance(pre, Preprocessor)
        assert pre.normalization == "minmax"
        assert u.normalized_standard(["A"]).normalization == "standard"

    def test_composition(self):
        pre = u.mark_by_label(
            u.with_sampling(
                u.with_weights(u.normalized_minmax(["A", "B"]), {"A": 2.0}),
                0.5,
                seed=3,
            )
        )
        assert pre.weights == {"A": 2.0}
        assert pre.sampling == 0.5
        assert pre.marking == "label"

    def test_mark_by_sources(self):
        pre = u.mark_by_sources(u.preprocessor(["A"]), ["9.9.9.9"])
        assert pre.mark({"ip_src": "9.9.9.9"}) == 1
        assert pre.mark({"ip_src": "1.1.1.1"}) == 0

    def test_mark_by_query(self):
        pre = u.mark_by_query(u.preprocessor(["A"]), u.q_text("A > 5"))
        assert pre.mark({"A": 6}) == 1


class TestAlgorithmHelpers:
    @pytest.mark.parametrize(
        "builder,name",
        [
            (u.kmeans, "kmeans"),
            (u.gaussian_mixture, "gaussian_mixture"),
            (u.decision_tree, "decision_tree"),
            (u.logistic_regression, "logistic_regression"),
            (u.naive_bayes, "naive_bayes"),
            (u.random_forest, "random_forest"),
            (u.svm, "svm"),
            (u.gradient_boosted_tree, "gradient_boosted_tree"),
            (u.lasso, "lasso"),
            (u.linear, "linear"),
            (u.ridge, "ridge"),
            (u.som, "som"),
        ],
    )
    def test_each_builder_instantiates(self, builder, name):
        algorithm = builder()
        assert isinstance(algorithm, Algorithm)
        assert algorithm.name == name
        assert algorithm.instantiate() is not None

    def test_kmeans_paper_defaults(self):
        algorithm = u.kmeans()
        assert algorithm.params["k"] == 8
        assert algorithm.params["runs"] == 5

    def test_threshold_no_learning(self):
        algorithm = u.threshold(column=2, bound=10.0)
        assert not algorithm.has_learning_phase


class TestReactionHelpers:
    def test_block(self):
        reaction = u.block_hosts(["1.1.1.1"])
        assert isinstance(reaction, BlockReaction)
        assert not reaction.everywhere

    def test_block_everywhere(self):
        assert u.block_everywhere(["1.1.1.1"]).everywhere

    def test_quarantine(self):
        reaction = u.quarantine_hosts(["1.1.1.1"], "9.9.9.9")
        assert isinstance(reaction, QuarantineReaction)
        assert reaction.honeypot_ip == "9.9.9.9"

    def test_suspicious_sources_query(self):
        query = u.suspicious_sources_query(["1.1.1.1", "2.2.2.2"])
        assert query.matches({"ip_src": "2.2.2.2"})
        assert not query.matches({"ip_src": "3.3.3.3"})


class TestResultsHelpers:
    def _summary(self):
        return ValidationSummary(
            total_entries=10, benign_entries=5, malicious_entries=5,
            true_positives=4, false_positives=1, true_negatives=4,
            false_negatives=1,
            clusters=[
                ClusterReport(0, benign_entries=5, malicious_entries=0,
                              is_malicious=False),
                ClusterReport(1, benign_entries=0, malicious_entries=5,
                              is_malicious=True),
            ],
        )

    def test_metric_accessors(self):
        summary = self._summary()
        assert u.detection_rate_of(summary) == 0.8
        assert u.false_alarm_rate_of(summary) == 0.2
        assert u.accuracy_of(summary) == 0.8
        assert u.confusion_of(summary) == {"tp": 4, "fp": 1, "tn": 4, "fn": 1}

    def test_cluster_accessor(self):
        assert u.malicious_clusters_of(self._summary()) == [1]

    def test_render_and_dict(self):
        summary = self._summary()
        assert "Detection Rate" in u.render_results(summary)
        assert u.results_to_dict(summary)["detection_rate"] == 0.8

    def test_results_generator_copies(self):
        rows = [{"a": 1}]
        out = u.results_generator(rows)
        out[0]["a"] = 2
        assert rows[0]["a"] == 1
