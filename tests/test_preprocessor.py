"""Tests for the Athena Preprocessor (Table IV operators)."""

import numpy as np
import pytest

from repro.core.preprocessor import GeneratePreprocessor, Preprocessor
from repro.core.query import GenerateQuery
from repro.errors import AthenaError


DOCS = [
    {"A": 0.0, "B": 10.0, "label": 0, "ip_src": "10.0.0.1"},
    {"A": 5.0, "B": 20.0, "label": 0, "ip_src": "10.0.0.2"},
    {"A": 10.0, "B": 30.0, "label": 1, "ip_src": "10.0.0.3"},
]


class TestFeatureSelection:
    def test_add_all_orders_columns(self):
        pre = Preprocessor(normalization=None)
        pre.add_all(["A", "B"])
        matrix, _, _ = pre.transform(DOCS)
        assert matrix.shape == (3, 2)
        assert matrix[2, 0] == 10.0
        assert matrix[0, 1] == 10.0

    def test_add_deduplicates(self):
        pre = Preprocessor(normalization=None).add("A").add("A")
        assert pre.features == ["A"]

    def test_missing_fields_become_zero(self):
        pre = Preprocessor(features=["A", "MISSING"], normalization=None)
        matrix, _, _ = pre.transform(DOCS)
        assert (matrix[:, 1] == 0.0).all()

    def test_no_features_raises(self):
        with pytest.raises(AthenaError):
            Preprocessor(normalization=None).transform(DOCS)


class TestNormalization:
    def test_minmax(self):
        pre = Preprocessor(features=["A", "B"], normalization="minmax")
        matrix, _, _ = pre.fit_transform(DOCS)
        assert matrix.min() == 0.0 and matrix.max() == 1.0

    def test_standard(self):
        pre = Preprocessor(features=["A"], normalization="standard")
        matrix, _, _ = pre.fit_transform(DOCS)
        assert abs(matrix.mean()) < 1e-9

    def test_test_split_uses_training_scaling(self):
        pre = Preprocessor(features=["A"], normalization="minmax")
        pre.fit(DOCS)
        matrix, _, _ = pre.transform([{"A": 20.0}])
        assert matrix[0, 0] == 2.0

    def test_unfitted_transform_raises(self):
        pre = Preprocessor(features=["A"], normalization="minmax")
        with pytest.raises(AthenaError):
            pre.transform(DOCS)

    def test_unknown_normalization_rejected(self):
        with pytest.raises(AthenaError):
            Preprocessor(normalization="l2")


class TestWeighting:
    def test_weights_applied_after_scaling(self):
        pre = Preprocessor(
            features=["A", "B"], normalization="minmax", weights={"A": 2.0}
        )
        matrix, _, _ = pre.fit_transform(DOCS)
        assert matrix[:, 0].max() == 2.0
        assert matrix[:, 1].max() == 1.0

    def test_set_weight_validation(self):
        pre = Preprocessor(features=["A"], normalization=None)
        with pytest.raises(AthenaError):
            pre.set_weight("A", -1.0)


class TestSampling:
    def test_fraction(self):
        docs = [{"A": float(i)} for i in range(100)]
        pre = Preprocessor(features=["A"], normalization=None, sampling=0.2)
        matrix, _, kept = pre.fit_transform(docs)
        assert matrix.shape[0] == 20
        assert len(kept) == 20

    def test_invalid_fraction(self):
        with pytest.raises(AthenaError):
            Preprocessor(sampling=1.5)

    def test_transform_does_not_sample_by_default(self):
        docs = [{"A": float(i)} for i in range(100)]
        pre = Preprocessor(features=["A"], normalization=None, sampling=0.2)
        pre.fit(docs)
        matrix, _, _ = pre.transform(docs)
        assert matrix.shape[0] == 100


class TestMarking:
    def test_label_column_marking(self):
        pre = Preprocessor(features=["A"], normalization=None, marking="label")
        _, marks, _ = pre.transform(DOCS)
        assert marks.tolist() == [0.0, 0.0, 1.0]

    def test_query_marking(self):
        query = GenerateQuery("ip_src == 10.0.0.3")
        pre = Preprocessor(features=["A"], normalization=None, marking=query)
        _, marks, _ = pre.transform(DOCS)
        assert marks.tolist() == [0.0, 0.0, 1.0]

    def test_callable_marking(self):
        pre = Preprocessor(
            features=["A"], normalization=None,
            marking=lambda doc: doc["A"] >= 5.0,
        )
        _, marks, _ = pre.transform(DOCS)
        assert marks.tolist() == [0.0, 1.0, 1.0]

    def test_no_marking_yields_none(self):
        pre = Preprocessor(features=["A"], normalization=None)
        _, marks, _ = pre.transform(DOCS)
        assert marks is None


class TestOnlinePath:
    def test_transform_one(self):
        pre = Preprocessor(features=["A", "B"], normalization="minmax")
        pre.fit(DOCS)
        row = pre.transform_one({"A": 5.0, "B": 20.0})
        assert row.shape == (2,)
        assert row[0] == 0.5

    def test_generate_preprocessor_factory(self):
        pre = GeneratePreprocessor(
            normalization="minmax", weights={"A": 2.0}, marking="label",
            features=["A"],
        )
        assert isinstance(pre, Preprocessor)
        assert pre.weights == {"A": 2.0}

    def test_accepts_athena_feature_objects(self):
        from repro.core.feature_format import AthenaFeature, FeatureScope

        record = AthenaFeature(
            scope=FeatureScope.FLOW, switch_id=1, instance_id=0,
            timestamp=0.0, fields={"A": 3.0},
        )
        pre = Preprocessor(features=["A"], normalization=None)
        matrix, _, _ = pre.transform([record])
        assert matrix[0, 0] == 3.0
