"""Tests for the Cassandra-style column store (the Section VII-C proposal)."""

import pytest

from repro.distdb import ColumnStoreCluster, DatabaseCluster
from repro.distdb.columnstore import _ColumnFamily
from repro.errors import DatabaseError, QueryError


@pytest.fixture
def store():
    return ColumnStoreCluster(n_nodes=3, replication=2)


class TestColumnFamily:
    def test_append_and_scan(self):
        family = _ColumnFamily(flush_threshold=3)
        for i in range(5):
            family.append({"v": i})
        assert sorted(d["v"] for d in family.scan()) == [0, 1, 2, 3, 4]
        assert family.flushes == 1  # one memtable flushed at threshold
        assert len(family) == 5

    def test_compaction_merges_sstables(self):
        family = _ColumnFamily(flush_threshold=2)
        for i in range(8):
            family.append({"v": i})
        assert len(family.sstables) == 4
        merged = family.compact()
        assert merged == 4
        assert len(family.sstables) == 1
        assert len(family) == 8

    def test_rewrite(self):
        family = _ColumnFamily()
        family.append({"v": 1})
        family.rewrite([{"v": 2}])
        assert [d["v"] for d in family.scan()] == [2]


class TestColumnStoreCluster:
    def test_insert_and_find(self, store):
        store.insert_many("f", [{"switch_id": i % 3, "v": i} for i in range(30)])
        assert store.count("f") == 30
        assert len(store.find("f", {"v": {"$gte": 20}})) == 10

    def test_ids_assigned(self, store):
        a = store.insert_one("f", {"v": 1})
        b = store.insert_one("f", {"v": 2})
        assert a != b

    def test_sort_limit_projection(self, store):
        store.insert_many("f", [{"switch_id": 1, "v": i, "w": -i} for i in range(10)])
        top = store.find("f", sort=[("v", -1)], limit=2, projection=["v"])
        assert [d["v"] for d in top] == [9, 8]
        assert "w" not in top[0]

    def test_delete_many(self, store):
        store.insert_many("f", [{"switch_id": 1, "v": i} for i in range(10)])
        assert store.delete_many("f", {"v": {"$lt": 4}}) == 4
        assert store.count("f") == 6

    def test_update_many(self, store):
        store.insert_many("f", [{"switch_id": 1, "v": i} for i in range(4)])
        assert store.update_many("f", {"v": {"$gte": 2}}, {"flag": True}) == 2
        assert store.count("f", {"flag": True}) == 2

    def test_aggregate(self, store):
        store.insert_many(
            "f", [{"switch_id": i % 2, "pkts": i} for i in range(10)]
        )
        rows = store.aggregate(
            "f", [{"$group": {"_id": "$switch_id", "t": {"$sum": "$pkts"}}}]
        )
        assert {r["_id"]: r["t"] for r in rows} == {0: 20, 1: 25}

    def test_create_index_is_noop(self, store):
        store.create_index("f", "switch_id")  # must not raise

    def test_replication_copies_exist(self, store):
        store.insert_many("f", [{"switch_id": i, "v": i} for i in range(20)])
        replicas = sum(
            len(node.family("f__replica"))
            for node in store.nodes
            if node.has_family("f__replica")
        )
        assert replicas == 20
        assert store.document_count() == 20  # primaries only

    def test_bad_filter_rejected(self, store):
        with pytest.raises(QueryError):
            store.find("f", {"$weird": 1})

    def test_all_nodes_down(self, store):
        for node in store.nodes:
            node.up = False
        with pytest.raises(DatabaseError):
            store.find("f")

    def test_compact_all(self, store):
        for node in store.nodes:
            node.family("f").flush_threshold = 2
        store.insert_many("f", [{"switch_id": i, "v": i} for i in range(40)])
        store.compact_all()
        assert store.count("f") == 40

    def test_matches_mongo_semantics(self):
        """Both backends answer identical queries identically."""
        docs = [
            {"switch_id": i % 4, "FLOW_PACKET_COUNT": float(i), "ip_src": f"10.0.0.{i}"}
            for i in range(50)
        ]
        mongo = DatabaseCluster(n_shards=2, replication=1)
        cassandra = ColumnStoreCluster(n_nodes=2, replication=1)
        mongo.insert_many("f", [dict(d) for d in docs])
        cassandra.insert_many("f", [dict(d) for d in docs])
        for filter_ in (
            None,
            {"switch_id": 2},
            {"FLOW_PACKET_COUNT": {"$gt": 25.0}},
            {"$or": [{"switch_id": 0}, {"switch_id": 3}]},
        ):
            assert mongo.count("f", filter_) == cassandra.count("f", filter_)

    def test_feature_manager_accepts_column_store(self):
        from repro.core.feature_manager import FeatureManager
        from repro.core.query import GenerateQuery

        manager = FeatureManager(ColumnStoreCluster(n_nodes=2))
        from repro.core.feature_format import AthenaFeature, FeatureScope

        manager.publish(
            AthenaFeature(
                scope=FeatureScope.FLOW, switch_id=1, instance_id=0,
                timestamp=1.0, fields={"FLOW_PACKET_COUNT": 5.0},
            )
        )
        docs = manager.request_features(
            GenerateQuery("FLOW_PACKET_COUNT > 1")
        )
        assert len(docs) == 1


class TestColumnStoreBatchAndFrames:
    """PR-8 additions: batch insert, zero-copy find, cached frames."""

    def test_insert_many_matches_insert_one_loop(self):
        docs = [{"switch_id": i % 4, "v": i} for i in range(40)]
        batch = ColumnStoreCluster(n_nodes=3, replication=2)
        loop = ColumnStoreCluster(n_nodes=3, replication=2)
        assert batch.insert_many("f", [dict(d) for d in docs]) == 40
        for doc in docs:
            loop.insert_one("f", dict(doc))
        # Same docs land on the same nodes in the same scan order, so the
        # memtable/sstable layout and every read are interchangeable.
        for batch_node, loop_node in zip(batch.nodes, loop.nodes):
            assert [d for d in batch_node.family("f").scan()] == [
                d for d in loop_node.family("f").scan()
            ]
        assert batch.find("f", sort=[("v", 1)]) == loop.find("f", sort=[("v", 1)])
        assert batch.writes == loop.writes == 40

    def test_insert_many_unhashable_partition_key_still_routes(self, store):
        store.insert_many(
            "f", [{"switch_id": [1, 2], "v": 0}, {"switch_id": 1, "v": 1}]
        )
        assert store.count("f") == 2

    def test_zero_copy_find_matches_reference(self, store):
        from repro.perf import fast_path_scope

        store.insert_many(
            "f",
            [{"switch_id": i % 3, "v": i, "w": i % 5} for i in range(25)],
        )
        for kwargs in (
            {"filter_": {"v": {"$gte": 10}}},
            {"filter_": {"w": 2}, "sort": [("v", -1)], "limit": 3},
            {"projection": ["v"], "sort": [("v", 1)]},
        ):
            with fast_path_scope(True):
                fast = store.find("f", **kwargs)
            with fast_path_scope(False):
                slow = store.find("f", **kwargs)
            assert fast == slow

    def test_zero_copy_find_returns_copies(self, store):
        store.insert_one("f", {"switch_id": 1, "v": 1})
        found = store.find("f")[0]
        found["v"] = 99
        assert store.find("f")[0]["v"] == 1

    def test_find_frame_matches_find(self, store):
        store.insert_many(
            "f",
            [{"switch_id": i % 3, "v": float(i), "w": i % 4} for i in range(30)],
        )
        for kwargs in (
            {},
            {"filter_": {"w": {"$in": [0, 2]}}},
            {"filter_": {"v": {"$gte": 5.0}}, "sort": [("v", -1)], "limit": 4},
        ):
            frame = store.find_frame("f", **kwargs)
            assert frame.copy_documents() == store.find("f", **kwargs)

    def test_frame_cache_hits_until_write(self, store):
        store.insert_many("f", [{"switch_id": 1, "v": i} for i in range(5)])
        first = store.frame("f")
        assert store.frame("f") is first  # same generation: cache hit
        store.insert_one("f", {"switch_id": 1, "v": 99})
        fresh = store.frame("f")
        assert fresh is not first
        assert fresh.n_rows == 6

    def test_frame_cache_invalidated_by_delete_and_update(self, store):
        store.insert_many("f", [{"switch_id": 1, "v": i} for i in range(6)])
        before = store.frame("f")
        store.delete_many("f", {"v": {"$lt": 2}})
        assert store.frame("f") is not before
        assert store.find_frame("f").copy_documents() == store.find("f")
        mid = store.frame("f")
        store.update_many("f", {"v": 5}, {"v": 50})
        assert store.frame("f") is not mid
        assert store.find_frame("f", {"v": 50}).n_rows == 1

    def test_restricted_frame_still_filters_on_untrimmed_fields(self, store):
        store.insert_many(
            "f", [{"switch_id": i % 2, "v": float(i), "w": i} for i in range(8)]
        )
        frame = store.find_frame("f", {"w": {"$gte": 4}}, columns=("v",))
        assert frame.values("v").tolist() == [
            doc["v"] for doc in store.find("f", {"w": {"$gte": 4}})
        ]
