"""Unit tests for repro.chaos: plans, retry/backoff, fault application.

The end-to-end conformance suite lives in ``tests/test_chaos_scenarios.py``;
these tests pin the building blocks — plan validation and serialisation,
the retry queue's "no lost acknowledged writes" contract, the southbound
fault filter, mastership recovery, and the hardened consumers' degradation
paths.
"""

import numpy as np
import pytest

from repro.chaos import (
    ChaosController,
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    RetryPolicy,
    RetryQueue,
    canned_plan,
    canned_plan_names,
)
from repro.compute import ComputeCluster, InjectedWorkerCrash, PartitionedDataset
from repro.controller import ControllerCluster, ReactiveForwarding
from repro.controller.mastership import MastershipService
from repro.core import AthenaDeployment
from repro.core.feature_format import AthenaFeature, FeatureScope
from repro.core.feature_manager import FeatureManager
from repro.dataplane.topologies import linear_topology
from repro.distdb import DatabaseCluster
from repro.errors import (
    AllShardsDownError,
    ChaosError,
    ControllerError,
    DatabaseError,
    ShardDownError,
)
from repro.simkernel import Simulator


def _feature(packets=10.0, ip_src="10.0.0.1"):
    return AthenaFeature(
        scope=FeatureScope.FLOW,
        switch_id=1,
        instance_id=0,
        timestamp=0.0,
        indicators={"ip_src": ip_src, "ip_dst": "10.0.0.9"},
        fields={"FLOW_PACKET_COUNT": packets, "PAIR_FLOW": 1.0},
    )


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ChaosError, match="unknown fault kind"):
            FaultEvent(at=1.0, kind="meteor_strike", params={})

    def test_negative_time_rejected(self):
        with pytest.raises(ChaosError, match="must be >= 0"):
            FaultEvent(at=-1.0, kind="instance_down", params={"instance": 0})

    def test_missing_params_rejected(self):
        with pytest.raises(ChaosError, match="missing params"):
            FaultEvent(at=0.0, kind="sb_drop", params={"instance": 0})

    def test_unknown_params_rejected(self):
        with pytest.raises(ChaosError, match="unknown params"):
            FaultEvent(at=0.0, kind="instance_down",
                       params={"instance": 0, "vigour": 9})

    def test_bad_direction_rejected(self):
        with pytest.raises(ChaosError, match="direction"):
            FaultEvent(at=0.0, kind="sb_drop",
                       params={"instance": 0, "rate": 0.5,
                               "direction": "sideways"})

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ChaosError, match="rate"):
            FaultEvent(at=0.0, kind="sb_drop",
                       params={"instance": 0, "rate": 1.5})

    def test_negative_duration_rejected(self):
        with pytest.raises(ChaosError, match="duration"):
            FaultEvent(at=0.0, kind="shard_down",
                       params={"shard": 0, "duration": -2.0})

    def test_every_kind_has_param_spec(self):
        for kind, (required, optional) in FAULT_KINDS.items():
            assert isinstance(required, tuple), kind
            assert not set(required) & set(optional), kind

    def test_events_sorted_by_time_stably(self):
        plan = (
            FaultPlan()
            .add(5.0, "shard_down", shard=0)
            .add(1.0, "instance_down", instance=0)
            .add(5.0, "shard_down", shard=1)
        )
        assert [e.at for e in plan] == [1.0, 5.0, 5.0]
        # Same-time events keep declaration order (replay guarantee).
        assert [e.params.get("shard") for e in plan][1:] == [0, 1]

    def test_horizon_covers_durations_and_flaps(self):
        plan = (
            FaultPlan()
            .add(2.0, "shard_down", shard=0, duration=3.0)
            .add(1.0, "link_flap", a=1, b=2, down_for=0.5, times=4,
                 period=1.0)
        )
        assert plan.horizon() == pytest.approx(5.0)

    def test_json_roundtrip(self):
        plan = FaultPlan(name="p", seed=42).add(
            2.0, "sb_delay", instance=0, rate=0.3, delay=0.1, duration=4.0
        ).add(1.0, "instance_down", instance=1)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.name == "p" and clone.seed == 42
        assert [e.to_dict() for e in clone] == [e.to_dict() for e in plan]

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ChaosError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(ChaosError, match="malformed"):
            FaultPlan.from_dict({"events": [{"kind": "instance_down"}]})

    def test_save_load(self, tmp_path):
        path = str(tmp_path / "plan.json")
        plan = FaultPlan(name="disk", seed=7).add(
            1.0, "worker_crash", worker=0, count=2
        )
        plan.save(path)
        loaded = FaultPlan.load(path)
        assert loaded.name == "disk" and loaded.seed == 7
        assert loaded.events[0].params == {"worker": 0, "count": 2}

    def test_canned_plans_are_valid_and_fresh(self):
        names = canned_plan_names()
        assert "midrun-failover" in names and "noisy-southbound" in names
        for name in names:
            plan = canned_plan(name)
            assert len(plan) >= 1 and plan.name == name
        # Each call returns a fresh copy, not a shared mutable object.
        assert canned_plan("link-flap") is not canned_plan("link-flap")

    def test_unknown_canned_plan_raises(self):
        with pytest.raises(ChaosError, match="unknown canned plan"):
            canned_plan("kitchen-sink")


class TestRetryPolicy:
    def test_exponential_backoff_capped(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5)
        assert policy.delay_for(1) == pytest.approx(0.1)
        assert policy.delay_for(2) == pytest.approx(0.2)
        assert policy.delay_for(3) == pytest.approx(0.4)
        assert policy.delay_for(4) == pytest.approx(0.5)
        assert policy.delay_for(99) == pytest.approx(0.5)

    def test_attempt_below_one_clamped(self):
        policy = RetryPolicy(base_delay=0.1)
        assert policy.delay_for(0) == policy.delay_for(1)


class _FlakyOp:
    """Raises DatabaseError for the first ``failures`` calls, then commits."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0
        self.commits = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise DatabaseError("injected")
        self.commits += 1


class TestRetryQueue:
    def test_immediate_commit(self):
        queue = RetryQueue(Simulator(), RetryPolicy(), name="t1")
        op = _FlakyOp(failures=0)
        assert queue.submit(op) is True
        assert queue.committed == 1 and queue.pending == 0

    def test_failure_buffers_and_retries_with_backoff(self):
        sim = Simulator()
        queue = RetryQueue(
            sim, RetryPolicy(base_delay=0.5, multiplier=2.0), name="t2"
        )
        op = _FlakyOp(failures=2)
        assert queue.submit(op) is False
        assert queue.pending == 1
        # First retry is armed at base_delay; it fails, re-arming at the
        # doubled delay; the second retry commits.
        sim.run(until=0.4)
        assert op.calls == 1
        sim.run(until=0.6)
        assert op.calls == 2 and queue.pending == 1
        sim.run(until=2.0)
        assert op.commits == 1 and queue.pending == 0
        assert queue.committed == 1

    def test_exhausted_budget_flags_but_never_drops(self):
        sim = Simulator()
        queue = RetryQueue(
            sim,
            RetryPolicy(max_attempts=3, base_delay=0.1, max_delay=0.2),
            name="t3",
        )
        op = _FlakyOp(failures=10 ** 6)
        queue.submit(op)
        sim.run(until=5.0)
        assert queue.exhausted == 1
        # Still buffered: the write stays acknowledged, retried at the
        # capped delay, and never discarded.
        assert queue.pending == 1
        assert op.calls > 3

    def test_flush_commits_pending_now(self):
        sim = Simulator()
        queue = RetryQueue(sim, RetryPolicy(base_delay=99.0), name="t4")
        op = _FlakyOp(failures=1)
        queue.submit(op)
        assert queue.pending == 1
        assert queue.flush() == 1
        assert queue.pending == 0 and op.commits == 1

    def test_non_retryable_errors_propagate(self):
        queue = RetryQueue(Simulator(), name="t5")

        def bad():
            raise ValueError("not a database problem")

        with pytest.raises(ValueError):
            queue.submit(bad)
        assert queue.pending == 0


class TestMastershipRecovery:
    def test_add_standby_noop_for_master_and_duplicates(self):
        service = MastershipService()
        service.assign(1, 0, standbys=[1])
        service.add_standby(1, 0)
        service.add_standby(1, 1)
        service.add_standby(1, 2)
        assert service.standbys_of(1) == [1, 2]

    def test_failover_skips_excluded_instances(self):
        service = MastershipService()
        service.assign(1, 0, standbys=[1, 2])
        assert service.failover(1, exclude={1}) == 2
        assert service.master_of(1) == 2
        # The old master joins the standby tail.
        assert service.standbys_of(1) == [1, 0]

    def test_failover_with_no_eligible_candidate_raises(self):
        service = MastershipService()
        service.assign(1, 0, standbys=[1])
        with pytest.raises(ControllerError, match="no standby"):
            service.failover(1, exclude={1})

    def test_cluster_double_failure_skips_dead_standby(self):
        topo = linear_topology(n_switches=2, hosts_per_switch=1)
        cluster = ControllerCluster(topo.network, n_instances=3)
        cluster.adopt_all()
        cluster.start(poll=False)
        cluster.fail_instance(0)
        # Instance 1 now masters everything; instance 0 is down and must
        # not be promoted when 1 fails too.
        moved = cluster.fail_instance(1)
        assert sorted(moved) == sorted(topo.network.switches)
        for dpid in topo.network.switches:
            assert cluster.mastership.master_of(dpid) == 2

    def test_recovered_instance_is_standby_then_promotable(self):
        topo = linear_topology(n_switches=2, hosts_per_switch=1)
        cluster = ControllerCluster(topo.network, n_instances=2)
        cluster.adopt_all()
        cluster.start(poll=False)
        cluster.fail_instance(0)
        cluster.recover_instance(0)
        assert 0 not in cluster.down_instances
        for dpid in topo.network.switches:
            # Recovered member waits as standby, does not reclaim.
            assert cluster.mastership.master_of(dpid) == 1
            assert 0 in cluster.mastership.standbys_of(dpid)
        cluster.fail_instance(1)
        for dpid in topo.network.switches:
            assert cluster.mastership.master_of(dpid) == 0


@pytest.fixture
def small_stack():
    topo = linear_topology(n_switches=2, hosts_per_switch=1)
    cluster = ControllerCluster(topo.network, n_instances=2)
    cluster.adopt_all()
    cluster.start(poll=False)
    forwarding = ReactiveForwarding()
    forwarding.activate(cluster)
    athena = AthenaDeployment(cluster, athena_poll_interval=1.0)
    athena.start(poll=False)
    return topo, cluster, athena


class TestFaultFilter:
    def _request(self, cluster, dpid=1):
        from repro.openflow import FlowStatsRequest, Match

        cluster.send(dpid, FlowStatsRequest(match=Match()))

    def test_drop_suppresses_delivery(self, small_stack):
        topo, cluster, athena = small_stack
        instance = cluster.instance(0)
        before = instance.messages_from_switches
        instance.set_fault_filter(lambda dpid, msg, direction: [])
        self._request(cluster)
        topo.network.sim.run(until=topo.network.sim.now + 1.0)
        # The request was dropped on the channel: no reply ever came back
        # (and replies themselves would also have been dropped).
        assert instance.messages_from_switches == before

    def test_duplicate_doubles_replies(self, small_stack):
        topo, cluster, athena = small_stack
        instance = cluster.instance(0)
        seen = []
        from repro.controller.events import MessageDirection

        def dup_to_switch(dpid, msg, direction):
            seen.append(direction)
            if direction is MessageDirection.TO_SWITCH:
                return [0.0, 0.0]
            return None

        before = instance.messages_from_switches
        instance.set_fault_filter(dup_to_switch)
        self._request(cluster)
        topo.network.sim.run(until=topo.network.sim.now + 1.0)
        # Both copies of the request elicited a reply.
        assert instance.messages_from_switches == before + 2
        assert MessageDirection.FROM_SWITCH in seen

    def test_delay_defers_delivery_on_sim_clock(self, small_stack):
        topo, cluster, athena = small_stack
        instance = cluster.instance(0)
        instance.set_fault_filter(
            lambda dpid, msg, direction: [0.5]
            if direction.value == "to_switch"
            else None
        )
        before = instance.messages_from_switches
        self._request(cluster)
        start = topo.network.sim.now
        topo.network.sim.run(until=start + 0.4)
        assert instance.messages_from_switches == before
        topo.network.sim.run(until=start + 1.0)
        assert instance.messages_from_switches == before + 1

    def test_clearing_filter_restores_normal_path(self, small_stack):
        topo, cluster, athena = small_stack
        instance = cluster.instance(0)
        instance.set_fault_filter(lambda dpid, msg, direction: [])
        instance.set_fault_filter(None)
        before = instance.messages_from_switches
        self._request(cluster)
        topo.network.sim.run(until=topo.network.sim.now + 1.0)
        assert instance.messages_from_switches == before + 1

    def test_delayed_delivery_after_mastership_move_is_dropped(
        self, small_stack
    ):
        topo, cluster, athena = small_stack
        instance = cluster.instance(0)
        instance.set_fault_filter(
            lambda dpid, msg, direction: [1.0]
            if direction.value == "to_switch"
            else None
        )
        self._request(cluster, dpid=1)
        instance.set_fault_filter(None)
        cluster.fail_instance(0)
        new_master = cluster.mastership.master_of(1)
        before = cluster.instance(new_master).messages_from_switches
        topo.network.sim.run(until=topo.network.sim.now + 2.0)
        # The in-flight copy expired with the old master instead of being
        # delivered through a connection that no longer exists.
        assert cluster.instance(new_master).messages_from_switches == before


class TestDatabaseFaults:
    def test_all_shards_down_is_typed(self):
        db = DatabaseCluster(n_shards=2, replication=1)
        db.insert_one("features", {"switch_id": 1})
        db.fail_shard(0)
        db.fail_shard(1)
        with pytest.raises(AllShardsDownError):
            db.find("features", {})
        # The typed error still reads as the generic DatabaseError.
        with pytest.raises(DatabaseError):
            db.count("features")

    def test_unreplicated_write_to_dead_home_is_typed(self):
        db = DatabaseCluster(n_shards=2, replication=1,
                             shard_key="switch_id")
        # Pick a key whose home shard we then fail.
        key = next(
            k for k in range(10) if db._shard_for(k).node_id == 0
        )
        db.fail_shard(0)
        with pytest.raises(ShardDownError) as exc_info:
            db.insert_one("features", {"switch_id": key})
        assert exc_info.value.node_id == 0

    def test_replica_lag_queues_then_applies(self):
        db = DatabaseCluster(n_shards=3, replication=2,
                             shard_key="switch_id")
        lagged = 1
        db.begin_replica_lag(lagged)
        for i in range(30):
            db.insert_one("features", {"switch_id": i})
        depth = db.replica_lag_depth(lagged)
        assert depth > 0
        replicas_before = db.shards[lagged].collection(
            "features__replica"
        ).count()
        assert db.end_replica_lag(lagged) == depth
        replicas_after = db.shards[lagged].collection(
            "features__replica"
        ).count()
        assert replicas_after == replicas_before + depth
        assert db.replica_lag_depth(lagged) == 0

    def test_replica_lag_on_unknown_shard_raises(self):
        db = DatabaseCluster(n_shards=2)
        with pytest.raises(DatabaseError, match="no shard"):
            db.begin_replica_lag(9)


class TestWorkerCrashInjection:
    def test_injected_crash_raises_then_clears(self):
        cluster = ComputeCluster(n_workers=2)
        worker = cluster.workers[0]
        worker.inject_crashes(1)
        with pytest.raises(InjectedWorkerCrash):
            worker.execute(lambda x: x, 1)
        assert worker.crashes_fired == 1
        result, _ = worker.execute(lambda x: x + 1, 1)
        assert result == 2

    def test_backend_retries_crashed_task_on_another_worker(self):
        cluster = ComputeCluster(n_workers=2)
        cluster.workers[0].inject_crashes(1)
        matrix = np.arange(40.0).reshape(10, 4)
        dataset = PartitionedDataset.from_matrix(matrix, 4)
        report = cluster.run_map(
            dataset, lambda part: float(part.sum()), sum
        )
        assert report.result == pytest.approx(matrix.sum())
        assert cluster.workers[0].crashes_fired == 1
        assert report.tasks_retried >= 1

    def test_armed_crash_survives_per_job_reset(self):
        cluster = ComputeCluster(n_workers=2)
        cluster.workers[0].inject_crashes(3)
        cluster.workers[0].reset()
        assert cluster.workers[0].injected_crashes == 3


class TestFeatureWriteBuffering:
    def _manager(self):
        sim = Simulator()
        db = DatabaseCluster(n_shards=1, replication=1)
        manager = FeatureManager(
            db,
            scheduler=sim,
            retry_policy=RetryPolicy(base_delay=0.5, max_delay=1.0),
        )
        return sim, db, manager

    def test_outage_buffers_writes_and_keeps_delivering(self):
        sim, db, manager = self._manager()
        delivered = []
        from repro.core.query import Query

        manager.add_event_handler(Query(), delivered.append)
        db.fail_shard(0)
        manager.publish(_feature(packets=1.0))
        manager.publish(_feature(packets=2.0))
        assert manager.pending_writes == 2
        # Live detection still sees both features during the outage.
        assert len(delivered) == 2

    def test_buffered_writes_commit_after_recovery(self):
        sim, db, manager = self._manager()
        db.fail_shard(0)
        manager.publish(_feature())
        db.recover_shard(0)
        sim.run(until=5.0)
        assert manager.pending_writes == 0
        assert manager.count_features() == 1

    def test_flush_pending_commits_immediately(self):
        sim, db, manager = self._manager()
        db.fail_shard(0)
        manager.publish(_feature())
        db.recover_shard(0)
        assert manager.flush_pending() == 1
        assert manager.count_features() == 1

    def test_without_scheduler_failures_still_raise(self):
        db = DatabaseCluster(n_shards=1, replication=1)
        manager = FeatureManager(db)
        db.fail_shard(0)
        with pytest.raises(DatabaseError):
            manager.publish(_feature())
        assert manager.pending_writes == 0


class TestDetectorDegradation:
    def _fixture(self):
        from repro.compute import ComputeCluster as CC
        from repro.core.algorithm import GenerateAlgorithm
        from repro.core.detector_manager import DetectorManager
        from repro.core.preprocessor import GeneratePreprocessor
        from repro.core.query import GenerateQuery
        from repro.core.southbound import AttackDetector

        db = DatabaseCluster(n_shards=2, replication=1)
        manager = FeatureManager(db)
        detector = DetectorManager(manager, AttackDetector(CC(2)))
        manager.publish(_feature(packets=50.0))
        preprocessor = GeneratePreprocessor(
            normalization=None, features=["FLOW_PACKET_COUNT"]
        )
        model = detector.generate_detection_model(
            GenerateQuery(),
            preprocessor,
            GenerateAlgorithm("threshold", column=0, threshold=10.0),
        )
        return db, detector, GenerateQuery(), preprocessor, model

    def test_database_outage_degrades_instead_of_raising(self):
        db, detector, query, preprocessor, model = self._fixture()
        db.fail_shard(0)
        db.fail_shard(1)
        assert detector.poll_round(query, preprocessor, model) is None
        assert detector.degraded_rounds == 1
        assert detector.rounds_recovered == 0

    def test_empty_round_is_degraded_not_fatal(self):
        db, detector, query, preprocessor, model = self._fixture()
        from repro.core.query import GenerateQuery

        empty = GenerateQuery("FLOW_PACKET_COUNT > 1e9")
        assert detector.poll_round(empty, preprocessor, model) is None
        assert detector.degraded_rounds == 1

    def test_recovery_counted_once_per_streak(self):
        db, detector, query, preprocessor, model = self._fixture()
        db.fail_shard(0)
        db.fail_shard(1)
        detector.poll_round(query, preprocessor, model)
        detector.poll_round(query, preprocessor, model)
        assert detector.degraded_rounds == 2
        db.recover_shard(0)
        db.recover_shard(1)
        summary = detector.poll_round(query, preprocessor, model)
        assert summary is not None
        assert detector.rounds_recovered == 1
        # A healthy follow-up round does not inflate the counter.
        detector.poll_round(query, preprocessor, model)
        assert detector.rounds_recovered == 1


class TestSouthboundPollRetry:
    def test_transient_error_retried_until_success(self, small_stack):
        topo, cluster, athena = small_stack
        southbound = athena.instances[0].southbound
        real = southbound.proxy.issue_stats_requests
        failures = {"left": 2}

        def flaky(dpid, include_switch_scope=False):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise ControllerError("transient channel error")
            return real(dpid, include_switch_scope=include_switch_scope)

        southbound.proxy.issue_stats_requests = flaky
        southbound._poll_one(1, include_switch=False, attempt=1)
        topo.network.sim.run(until=topo.network.sim.now + 5.0)
        assert southbound.polls_retried == 2
        assert southbound.polls_skipped == 0
        assert failures["left"] == 0

    def test_budget_exhaustion_skips_not_raises(self, small_stack):
        topo, cluster, athena = small_stack
        southbound = athena.instances[0].southbound

        def always_fail(dpid, include_switch_scope=False):
            raise ControllerError("hard down")

        southbound.proxy.issue_stats_requests = always_fail
        southbound._poll_one(1, include_switch=False, attempt=1)
        topo.network.sim.run(until=topo.network.sim.now + 10.0)
        max_attempts = southbound.poll_retry_policy.max_attempts
        assert southbound.polls_retried == max_attempts - 1
        assert southbound.polls_skipped == 1

    def test_poll_skipped_after_mastership_moves(self, small_stack):
        topo, cluster, athena = small_stack
        southbound = athena.instances[0].southbound
        cluster.fail_instance(0)
        southbound._poll_one(1, include_switch=False, attempt=1)
        assert southbound.polls_skipped == 1


class TestChaosControllerUnit:
    def _plan(self, *events):
        plan = FaultPlan()
        for at, kind, params in events:
            plan.add(at, kind, **params)
        return plan

    def test_arm_validates_targets_before_scheduling(self, small_stack):
        topo, cluster, athena = small_stack
        bad_plans = [
            self._plan((1.0, "instance_down", {"instance": 9})),
            self._plan((1.0, "shard_down", {"shard": 99})),
            self._plan((1.0, "worker_crash", {"worker": 42})),
            self._plan((1.0, "link_down", {"a": 1, "b": 7})),
            self._plan((1.0, "partition", {"groups": [[1], []]})),
        ]
        for plan in bad_plans:
            with pytest.raises(ChaosError):
                ChaosController(athena, plan).arm()

    def test_arm_twice_raises(self, small_stack):
        topo, cluster, athena = small_stack
        chaos = ChaosController(
            athena, self._plan((1.0, "worker_crash", {"worker": 0}))
        )
        assert chaos.arm() == 1
        with pytest.raises(ChaosError, match="already armed"):
            chaos.arm()

    def test_last_live_instance_is_never_killed(self, small_stack):
        topo, cluster, athena = small_stack
        plan = self._plan(
            (1.0, "instance_down", {"instance": 0}),
            (2.0, "instance_down", {"instance": 1}),
        )
        chaos = ChaosController(athena, plan)
        chaos.arm()
        topo.network.sim.run(until=3.0)
        assert chaos.faults_injected == 1
        assert chaos.faults_skipped == 1
        assert any("last live instance" in line for line in chaos.log)

    def test_inapplicable_events_skip_not_crash(self, small_stack):
        topo, cluster, athena = small_stack
        plan = self._plan(
            (1.0, "instance_up", {"instance": 1}),       # not down
            (1.5, "shard_down", {"shard": 0}),
            (2.0, "shard_down", {"shard": 0}),           # already down
            (2.5, "shard_up", {"shard": 0}),
        )
        chaos = ChaosController(athena, plan)
        chaos.arm()
        topo.network.sim.run(until=3.0)
        assert chaos.faults_skipped == 2
        assert chaos.faults_injected == 2
        assert chaos.recoveries == 1
        assert athena.database.shards[0].up

    def test_timed_shard_outage_recovers_itself(self, small_stack):
        topo, cluster, athena = small_stack
        plan = self._plan(
            (1.0, "shard_down", {"shard": 0, "duration": 2.0})
        )
        chaos = ChaosController(athena, plan)
        chaos.arm()
        topo.network.sim.run(until=2.0)
        assert not athena.database.shards[0].up
        topo.network.sim.run(until=4.0)
        assert athena.database.shards[0].up
        assert chaos.recoveries == 1

    def test_link_flap_restores_link(self, small_stack):
        topo, cluster, athena = small_stack
        plan = self._plan(
            (1.0, "link_flap",
             {"a": 1, "b": 2, "down_for": 0.3, "times": 2, "period": 1.0})
        )
        chaos = ChaosController(athena, plan)
        chaos.arm()
        link = topo.network.link_between(1, 2)
        topo.network.sim.run(until=1.1)
        assert not link.up
        topo.network.sim.run(until=5.0)
        assert link.up
        assert chaos.recoveries == 2

    def test_partition_cuts_and_heals(self, small_stack):
        topo, cluster, athena = small_stack
        plan = self._plan(
            (1.0, "partition", {"groups": [[1], [2]], "duration": 1.0})
        )
        chaos = ChaosController(athena, plan)
        chaos.arm()
        link = topo.network.link_between(1, 2)
        topo.network.sim.run(until=1.5)
        assert not link.up
        topo.network.sim.run(until=3.0)
        assert link.up

    def test_same_seed_same_log(self, small_stack):
        plan = canned_plan("midrun-failover")
        logs = []
        for _ in range(2):
            topo = linear_topology(n_switches=2, hosts_per_switch=1)
            cluster = ControllerCluster(topo.network, n_instances=2)
            cluster.adopt_all()
            cluster.start(poll=False)
            athena = AthenaDeployment(cluster, athena_poll_interval=1.0)
            athena.start(poll=False)
            chaos = ChaosController(athena, plan, seed=3)
            chaos.arm()
            topo.network.sim.run(until=10.0)
            logs.append(list(chaos.log))
        assert logs[0] == logs[1]
