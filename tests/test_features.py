"""Tests for the feature catalog, format, and extractors."""

import pytest

from repro.core.feature_format import AthenaFeature, FeatureScope
from repro.core.features.catalog import (
    FEATURE_CATALOG,
    FeatureCategory,
    feature_names,
    features_by_category,
    features_by_scope,
    is_known_feature,
    require_known,
)
from repro.core.features import combination, protocol
from repro.core.features.stateful import FlowStateTable, reverse_indicators
from repro.core.features.variation import VariationTracker
from repro.errors import FeatureError
from repro.openflow.messages import (
    FlowRemoved,
    FlowStatsEntry,
    PortStatsEntry,
    TableStatsEntry,
)
from repro.openflow.match import Match


class TestCatalog:
    def test_over_100_features(self):
        """The paper: 'Athena exposes over 100 network monitoring features'."""
        assert len(FEATURE_CATALOG) > 100

    def test_all_table1_categories_present(self):
        for category in FeatureCategory:
            assert features_by_category(category), category

    def test_paper_named_features_exist(self):
        for name in [
            "FLOW_PACKET_COUNT", "FLOW_BYTE_COUNT", "FLOW_DURATION_SEC",
            "FLOW_DURATION_N_SEC", "PAIR_FLOW", "PAIR_FLOW_RATIO",
            "FLOW_BYTE_PER_PACKET", "FLOW_PACKET_PER_DURATION",
            "FLOW_BYTE_PER_DURATION", "FLOW_UTILIZATION",
            "PORT_RX_BYTES_VAR", "FLOW_BYTE_COUNT_VAR",
        ]:
            assert is_known_feature(name), name

    def test_variation_features_derive_from_varying(self):
        for name in features_by_category(FeatureCategory.VARIATION):
            base = name[: -len("_VAR")]
            assert FEATURE_CATALOG[base].varies

    def test_scopes_partition_catalog(self):
        total = sum(len(features_by_scope(s)) for s in FeatureScope)
        assert total == len(FEATURE_CATALOG)

    def test_require_known_raises(self):
        with pytest.raises(FeatureError):
            require_known("NOT_A_FEATURE")

    def test_names_sorted_and_unique(self):
        names = feature_names()
        assert names == sorted(set(names))

    def test_sketch_scope_catalogued(self):
        from repro.sketch import SKETCH_FEATURE_NAMES

        catalogued = features_by_scope(FeatureScope.SKETCH)
        assert sorted(catalogued) == sorted(SKETCH_FEATURE_NAMES)
        # Sketch windows are per-sample deltas already; nothing varies.
        for name in catalogued:
            assert not FEATURE_CATALOG[name].varies

    def test_suggest_prefers_same_family(self):
        # A misspelt SKETCH_* name must resolve inside the SKETCH_*
        # family even when another scope has a textually close name.
        assert (
            FEATURE_CATALOG.suggest("SKETCH_UNIQ_SRC_EST")
            == "SKETCH_UNIQUE_SRC_EST"
        )
        assert (
            FEATURE_CATALOG.suggest("SKETCH_SEEN_HOST_RATE")
            == "SKETCH_SEEN_HOST_RATIO"
        )
        # Cross-family fallback still works for non-prefixed typos.
        assert FEATURE_CATALOG.suggest("FLOW_PAKET_COUNT") == "FLOW_PACKET_COUNT"
        # Hopeless names suggest nothing rather than something random.
        assert FEATURE_CATALOG.suggest("ZZZ_TOTALLY_UNKNOWN") is None


class TestFeatureFormat:
    def _record(self):
        return AthenaFeature(
            scope=FeatureScope.FLOW,
            switch_id=6,
            instance_id=1,
            timestamp=12.5,
            indicators={"ip_src": "10.0.0.1", "tcp_dst": 80},
            app_id="lb",
            fields={"FLOW_PACKET_COUNT": 42.0, "PAIR_FLOW": 1.0},
            label=1,
        )

    def test_document_roundtrip(self):
        record = self._record()
        doc = record.to_document()
        assert doc["switch_id"] == 6
        assert doc["FLOW_PACKET_COUNT"] == 42.0
        assert doc["ip_src"] == "10.0.0.1"
        rebuilt = AthenaFeature.from_document(doc)
        assert rebuilt.scope == FeatureScope.FLOW
        assert rebuilt.indicators == record.indicators
        assert rebuilt.fields == record.fields
        assert rebuilt.app_id == "lb"
        assert rebuilt.label == 1

    def test_value_accessor(self):
        record = self._record()
        assert record.value("FLOW_PACKET_COUNT") == 42.0
        with pytest.raises(FeatureError):
            record.value("MISSING")

    def test_flow_key_stable(self):
        a = self._record()
        b = self._record()
        assert a.flow_key() == b.flow_key()


class TestProtocolExtractors:
    def test_flow_fields(self):
        entry = FlowStatsEntry(
            match=Match(ip_src="1.1.1.1"), priority=10, duration_sec=2.5,
            packet_count=10, byte_count=5000, idle_timeout=10.0,
        )
        fields = protocol.flow_fields(entry)
        assert fields["FLOW_PACKET_COUNT"] == 10.0
        assert fields["FLOW_DURATION_SEC"] == 2.0
        assert fields["FLOW_DURATION_N_SEC"] == pytest.approx(0.5e9)

    def test_removed_flow_fields(self):
        msg = FlowRemoved(packet_count=7, byte_count=700, duration_sec=3.0)
        fields = protocol.removed_flow_fields(msg)
        assert fields["FLOW_PACKET_COUNT"] == 7.0

    def test_port_fields(self):
        entry = PortStatsEntry(port_no=1, rx_packets=5, tx_bytes=100)
        fields = protocol.port_fields(entry)
        assert fields["PORT_RX_PACKETS"] == 5.0
        assert fields["PORT_TX_BYTES"] == 100.0

    def test_control_counters(self):
        fields = protocol.control_counter_fields(
            {"packet_in": 3, "flow_mod": 2, "bytes": 500}
        )
        assert fields["PACKET_IN_COUNT"] == 3.0
        assert fields["CONTROL_MSG_TOTAL"] == 5.0
        assert fields["CONTROL_MSG_BYTES"] == 500.0


class TestCombinationExtractors:
    def test_flow_formulas(self):
        base = {
            "FLOW_PACKET_COUNT": 10.0,
            "FLOW_BYTE_COUNT": 10000.0,
            "FLOW_DURATION_SEC": 2.0,
            "FLOW_DURATION_N_SEC": 0.0,
            "FLOW_HARD_TIMEOUT": 4.0,
            "FLOW_IDLE_TIMEOUT": 1.0,
        }
        fields = combination.flow_fields(base, port_speed_bps=1e6)
        assert fields["FLOW_BYTE_PER_PACKET"] == 1000.0
        assert fields["FLOW_PACKET_PER_DURATION"] == 5.0
        assert fields["FLOW_BYTE_PER_DURATION"] == 5000.0
        # 5000 B/s * 8 = 40kbps over 1Mbps = 0.04
        assert fields["FLOW_UTILIZATION"] == pytest.approx(0.04)
        assert fields["FLOW_LIFETIME_RATIO"] == 0.5

    def test_zero_denominators_safe(self):
        fields = combination.flow_fields({})
        assert all(value == 0.0 for value in fields.values())

    def test_port_utilization_uses_deltas(self):
        base = {"PORT_RX_BYTES": 2000.0, "PORT_TX_BYTES": 0.0,
                "PORT_RX_PACKETS": 2.0, "PORT_TX_PACKETS": 0.0}
        fields = combination.port_fields(
            base, port_speed_bps=8000.0, delta_seconds=1.0, delta_bytes=500.0
        )
        assert fields["PORT_UTILIZATION"] == pytest.approx(0.5)

    def test_switch_formulas(self):
        fields = combination.switch_fields(
            {"TABLE_ACTIVE_COUNT": 10.0, "TABLE_LOOKUP_COUNT": 100.0,
             "TABLE_MATCHED_COUNT": 90.0},
            {"AGG_BYTE_COUNT": 1000.0, "AGG_PACKET_COUNT": 10.0,
             "AGG_FLOW_COUNT": 10.0},
            table_capacity=100.0,
        )
        assert fields["TABLE_UTILIZATION"] == 0.1
        assert fields["TABLE_HIT_RATIO"] == 0.9
        assert fields["AGG_BYTE_PER_FLOW"] == 100.0


class TestStatefulExtractors:
    IND_AB = {"ip_src": "10.0.0.1", "ip_dst": "10.0.0.2", "tcp_src": 1, "tcp_dst": 2}
    IND_BA = {"ip_src": "10.0.0.2", "ip_dst": "10.0.0.1", "tcp_src": 2, "tcp_dst": 1}

    def test_reverse_indicators(self):
        assert reverse_indicators(self.IND_AB) == self.IND_BA

    def test_pair_flow_detection(self):
        table = FlowStateTable()
        first = table.observe_flow(1, self.IND_AB, now=0.0)
        assert first["PAIR_FLOW"] == 0.0
        assert first["FLOW_IS_NEW"] == 1.0
        reverse = table.observe_flow(1, self.IND_BA, now=0.1)
        assert reverse["PAIR_FLOW"] == 1.0
        again = table.observe_flow(1, self.IND_AB, now=0.2)
        assert again["PAIR_FLOW"] == 1.0
        assert again["FLOW_IS_NEW"] == 0.0
        assert again["FLOW_SAMPLE_COUNT"] == 2.0

    def test_fanout_counts(self):
        table = FlowStateTable()
        for dport in range(5):
            ind = dict(self.IND_AB, tcp_dst=dport)
            fields = table.observe_flow(1, ind, now=0.0)
        assert fields["SRC_FLOW_FANOUT"] == 5.0

    def test_switch_fields_ratio(self):
        table = FlowStateTable()
        table.observe_flow(1, self.IND_AB, now=0.0)
        table.observe_flow(1, self.IND_BA, now=0.0)
        table.observe_flow(1, dict(self.IND_AB, ip_src="10.0.0.9"), now=0.0)
        fields = table.switch_fields(1, now=1.0)
        assert fields["TOTAL_TRACKED_FLOWS"] == 3.0
        assert fields["PAIR_FLOW_RATIO"] == pytest.approx(2 / 3)
        assert fields["SINGLE_FLOW_RATIO"] == pytest.approx(1 / 3)
        # Sources: 10.0.0.1, 10.0.0.2 (the reverse flow), 10.0.0.9.
        assert fields["UNIQUE_SRC_COUNT"] == 3.0

    def test_new_flow_rate_resets_per_sample(self):
        table = FlowStateTable()
        table.observe_flow(1, self.IND_AB, now=0.0)
        table.switch_fields(1, now=1.0)
        fields = table.switch_fields(1, now=2.0)
        assert fields["NEW_FLOW_RATE"] == 0.0

    def test_remove_flow_updates_state(self):
        table = FlowStateTable()
        table.observe_flow(1, self.IND_AB, now=0.0)
        table.observe_flow(1, self.IND_BA, now=0.0)
        assert table.remove_flow(1, self.IND_AB)
        assert not table.remove_flow(1, self.IND_AB)
        fields = table.switch_fields(1, now=1.0)
        assert fields["TOTAL_TRACKED_FLOWS"] == 1.0
        assert fields["PAIR_FLOW_RATIO"] == 0.0

    def test_garbage_collection(self):
        table = FlowStateTable(stale_after=10.0)
        table.observe_flow(1, self.IND_AB, now=0.0)
        table.observe_flow(1, self.IND_BA, now=8.0)
        assert table.collect_garbage(now=15.0) == 1
        assert table.tracked_flow_count(1) == 1

    def test_per_switch_isolation(self):
        table = FlowStateTable()
        table.observe_flow(1, self.IND_AB, now=0.0)
        fields = table.observe_flow(2, self.IND_BA, now=0.0)
        assert fields["PAIR_FLOW"] == 0.0


class TestVariationTracker:
    def test_first_sample_baseline_zero(self):
        tracker = VariationTracker()
        variations = tracker.diff("e1", {"FLOW_PACKET_COUNT": 10.0}, now=0.0)
        assert variations["FLOW_PACKET_COUNT_VAR"] == 10.0

    def test_delta_against_previous(self):
        tracker = VariationTracker()
        tracker.diff("e1", {"FLOW_PACKET_COUNT": 10.0}, now=0.0)
        variations = tracker.diff("e1", {"FLOW_PACKET_COUNT": 25.0}, now=1.0)
        assert variations["FLOW_PACKET_COUNT_VAR"] == 15.0

    def test_non_varying_fields_ignored(self):
        tracker = VariationTracker()
        variations = tracker.diff("e1", {"FLOW_BYTE_PER_PACKET": 5.0}, now=0.0)
        assert variations == {}

    def test_entities_independent(self):
        tracker = VariationTracker()
        tracker.diff("e1", {"FLOW_PACKET_COUNT": 10.0}, now=0.0)
        variations = tracker.diff("e2", {"FLOW_PACKET_COUNT": 3.0}, now=0.0)
        assert variations["FLOW_PACKET_COUNT_VAR"] == 3.0

    def test_forget(self):
        tracker = VariationTracker()
        tracker.diff("e1", {"FLOW_PACKET_COUNT": 10.0}, now=0.0)
        tracker.forget("e1")
        variations = tracker.diff("e1", {"FLOW_PACKET_COUNT": 10.0}, now=1.0)
        assert variations["FLOW_PACKET_COUNT_VAR"] == 10.0

    def test_garbage_collection(self):
        tracker = VariationTracker(stale_after=5.0)
        tracker.diff("old", {"FLOW_PACKET_COUNT": 1.0}, now=0.0)
        tracker.diff("new", {"FLOW_PACKET_COUNT": 1.0}, now=4.0)
        assert tracker.collect_garbage(now=6.0) == 1
        assert len(tracker) == 1

    def test_last_sample_time(self):
        tracker = VariationTracker()
        assert tracker.last_sample_time("e") is None
        tracker.diff("e", {"FLOW_PACKET_COUNT": 1.0}, now=3.0)
        assert tracker.last_sample_time("e") == 3.0
