"""Sketch feature path: determinism, exact-path equivalence, recovery.

The contracts the ``ATHENA_SKETCH`` scope ships with (docs/SKETCH.md):

* same (seed, stream) → byte-identical sketch-state serialisations and
  identical alert-stream sha256 digests, across full pipeline re-runs;
* detection recall on sketch features stays within
  ``SKETCH_RECALL_TOLERANCE`` of the exact-features path for both the
  ddos and portscan scenarios;
* per-shard sketch states merge losslessly: a shard state recovered
  from its serialised replica merges to the byte-identical combined
  sketch, and detection over sharded documents holds recall — including
  under the canned ``shard-loss`` chaos plan with the flag live;
* the feature generator only grows sketch state behind the flag, emits
  one SKETCH-scope record per flow-stats round, and reports fill/error
  stats through the deployment into ``/api/status`` (whose cache version
  moves when the flag is toggled).
"""

import functools
import pickle

import pytest

from repro.controller.events import PacketInEvent, StatsEvent
from repro.core.feature_format import FeatureScope
from repro.core.generator import FeatureGenerator
from repro.openflow.match import Match
from repro.openflow.messages import (
    FlowStatsEntry,
    FlowStatsReply,
    PacketIn,
)
from repro.perf import set_sketch, sketch_enabled, sketch_scope
from repro.sketch import SKETCH_FEATURE_NAMES, SketchFeatureState
from repro.sketch.scenarios import (
    SKETCH_RECALL_TOLERANCE,
    build_documents,
    detect,
    run_sketch_scenario,
    sharded_documents,
)
from repro.workloads.sketchscale import SketchScaleGenerator, SketchScaleSpec


def _small_spec(scenario="ddos", seed=5):
    """A seconds-not-minutes workload with the full stream structure."""
    return SketchScaleSpec(
        scenario=scenario,
        n_flows=6_000,
        n_hosts=600,
        n_switches=4,
        n_windows=4,
        chunk_size=2_000,
        seed=seed,
    )


@functools.lru_cache(maxsize=None)
def _outcome(scenario, use_sketch=True, seed=5):
    return run_sketch_scenario(_small_spec(scenario, seed), use_sketch=use_sketch)


# -- determinism -------------------------------------------------------------


class TestStateDeterminism:
    def test_same_seed_same_stream_byte_identical(self):
        spec = _small_spec()
        _, first = build_documents(spec)
        _, second = build_documents(spec)
        assert first.to_bytes() == second.to_bytes()

    def test_different_seed_different_bytes(self):
        _, first = build_documents(_small_spec(seed=5))
        _, second = build_documents(_small_spec(seed=6))
        assert first.to_bytes() != second.to_bytes()

    def test_documents_replay_identically(self):
        spec = _small_spec("portscan")
        first, _ = build_documents(spec)
        second, _ = build_documents(spec)
        assert first == second

    def test_pipeline_digests_stable_across_runs(self):
        first = _outcome("ddos")
        second = run_sketch_scenario(_small_spec("ddos"))
        assert first.state_digest == second.state_digest
        assert first.alert_digest == second.alert_digest
        assert first.alerts == second.alerts

    def test_exact_path_has_no_state_digest(self):
        assert _outcome("ddos", use_sketch=False).state_digest == ""

    def test_state_pickles_and_serialises_round_trip(self):
        spec = _small_spec()
        _, state = build_documents(spec)
        assert SketchFeatureState.from_bytes(state.to_bytes()).to_bytes() == (
            state.to_bytes()
        )
        assert pickle.loads(pickle.dumps(state)).to_bytes() == state.to_bytes()


# -- sketch vs exact equivalence ---------------------------------------------


class TestExactEquivalence:
    @pytest.mark.parametrize("scenario", ["ddos", "portscan"])
    def test_recall_within_tolerance_of_exact(self, scenario):
        sketch = _outcome(scenario, use_sketch=True)
        exact = _outcome(scenario, use_sketch=False)
        assert exact.recall > 0.5, "exact baseline must itself detect"
        drift = abs(sketch.recall - exact.recall)
        assert drift <= SKETCH_RECALL_TOLERANCE, (
            f"{scenario}: sketch recall {sketch.recall:.3f} drifted "
            f"{drift:.3f} from exact {exact.recall:.3f}"
        )

    @pytest.mark.parametrize("scenario", ["ddos", "portscan"])
    def test_sketch_path_flags_every_attack_cell(self, scenario):
        outcome = _outcome(scenario, use_sketch=True)
        assert outcome.n_attack_cells > 0
        assert outcome.recall == 1.0
        assert outcome.false_alarm_rate <= 0.1

    def test_sketch_state_is_smaller_than_exact(self):
        sketch = _outcome("ddos", use_sketch=True)
        exact = _outcome("ddos", use_sketch=False)
        # Even at toy scale the rolled sketch windows stay bounded while
        # exact per-flow state grows with the stream.
        assert sketch.state_nbytes > 0
        assert exact.state_nbytes > 0


# -- shard loss and recovery -------------------------------------------------


class TestShardRecovery:
    def test_replica_restore_merges_byte_identically(self):
        spec = _small_spec()
        _, shards = sharded_documents(spec, n_shards=3)

        def combined(states):
            merged = SketchFeatureState(seed=spec.seed)
            for state in states:
                merged.merge(state)
            return merged.to_bytes()

        baseline = combined(shards)
        # Lose shard 0; recover it from its serialised replica bytes.
        replica = shards[0].to_bytes()
        recovered = SketchFeatureState.from_bytes(replica)
        assert combined([recovered, shards[1], shards[2]]) == baseline

    def test_sharded_documents_hold_detection_recall(self):
        spec = _small_spec()
        documents, _ = sharded_documents(spec, n_shards=3)
        _, recall, _, _ = detect(documents, "ddos")
        single = _outcome("ddos", use_sketch=True)
        assert recall >= single.recall - SKETCH_RECALL_TOLERANCE

    def test_detection_survives_canned_shard_loss_with_sketch_live(self):
        from repro.chaos import canned_plan
        from repro.chaos.scenarios import run_scenario

        with sketch_scope(True):
            result = run_scenario("ddos", plan=canned_plan("shard-loss"), seed=0)
        assert result.detected
        assert result.faults_applied >= 1


# -- feature generator wiring ------------------------------------------------


def _packet_in(dpid=1, time=1.0, src="10.0.0.1", dport=80, length=100):
    return PacketInEvent(
        dpid=dpid,
        time=time,
        message=PacketIn(
            dpid=dpid,
            in_port=1,
            headers={"ip_src": src, "ip_dst": "10.0.0.99",
                     "eth_type": 0x800, "ip_proto": 6,
                     "tcp_src": 5, "tcp_dst": dport},
            total_len=length,
        ),
    )


def _flow_stats(dpid=1, time=5.0):
    return StatsEvent(
        instance_id=0,
        dpid=dpid,
        time=time,
        message=FlowStatsReply(
            dpid=dpid,
            entries=[
                FlowStatsEntry(
                    match=Match(ip_src="10.0.0.1", ip_dst="10.0.0.2", tcp_dst=80),
                    priority=10,
                    duration_sec=5.0,
                    packet_count=50,
                    byte_count=5000,
                    app_id="fwd",
                )
            ],
        ),
        athena_marked=True,
    )


class TestGeneratorWiring:
    def test_no_sketch_state_without_flag(self):
        sink = []
        generator = FeatureGenerator(instance_id=0, sink=sink.append)
        with sketch_scope(False):
            generator.on_packet_in(_packet_in())
            generator.on_stats_event(_flow_stats())
        assert generator.sketch_state is None
        assert generator.sketch_stats() is None
        assert not [r for r in sink if r.scope == FeatureScope.SKETCH]

    def test_sketch_record_emitted_per_stats_round_under_flag(self):
        sink = []
        generator = FeatureGenerator(instance_id=0, sink=sink.append)
        with sketch_scope(True):
            generator.on_packet_in(_packet_in(src="10.0.0.1", dport=80))
            generator.on_packet_in(_packet_in(src="10.0.0.2", dport=443))
            generator.on_stats_event(_flow_stats())
        records = [r for r in sink if r.scope == FeatureScope.SKETCH]
        assert len(records) == 1
        fields = records[0].fields
        assert set(fields) == set(SKETCH_FEATURE_NAMES)
        # 2 packet-ins + 1 flow-stats entry observed this window.
        assert fields["SKETCH_OBSERVATIONS"] == 3.0
        assert fields["SKETCH_UNIQUE_SRC_EST"] >= 2.0
        assert generator.sketch_stats() is not None

    def test_window_rolls_between_rounds_bloom_persists(self):
        sink = []
        generator = FeatureGenerator(instance_id=0, sink=sink.append)
        with sketch_scope(True):
            generator.on_packet_in(_packet_in(src="10.0.0.1", time=1.0))
            generator.on_stats_event(_flow_stats(time=5.0))
            generator.on_packet_in(_packet_in(src="10.0.0.1", time=6.0))
            generator.on_stats_event(_flow_stats(time=10.0))
        records = [r for r in sink if r.scope == FeatureScope.SKETCH]
        assert len(records) == 2
        # Second window counts only its own events (the roll reset it)...
        assert records[1].fields["SKETCH_OBSERVATIONS"] == 2.0
        # ...but the persistent bloom remembers the host across windows.
        assert records[1].fields["SKETCH_SEEN_HOST_RATIO"] == 1.0


# -- northbound exposure -----------------------------------------------------


@pytest.fixture(scope="module")
def nb_client():
    from repro import telemetry
    from repro.northbound import LocalClient, NorthboundAPI, build_demo_stack

    telemetry.configure(enabled=True)
    demo = build_demo_stack(horizon=5.0)
    demo.run(until=5.0)
    yield LocalClient(NorthboundAPI(demo.athena))
    telemetry.reset_telemetry()


class TestNorthboundExposure:
    def test_status_reports_sketch_block(self, nb_client):
        data = nb_client.get("/api/status").json()["data"]
        sketch = data["sketch"]
        assert sketch["enabled"] is sketch_enabled()
        for key in ("cms_fill_ratio", "cms_error_bound", "hll_relative_error",
                    "bloom_fill_ratio", "bloom_fp_bound", "observations"):
            assert key in sketch

    def test_toggle_moves_cache_state_version(self, nb_client):
        # Flip to the opposite of however the suite is running (the
        # ATHENA_SKETCH=1 CI leg starts with the flag live).
        baseline = sketch_enabled()
        first = nb_client.get("/api/status")
        try:
            set_sketch(not baseline)
            second = nb_client.get("/api/status")
        finally:
            set_sketch(baseline)
        assert second.etag != first.etag
        assert second.json()["data"]["sketch"]["enabled"] is (not baseline)
        third = nb_client.get("/api/status")
        assert third.etag == first.etag
