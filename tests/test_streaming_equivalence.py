"""Batch-vs-streaming equivalence suite (docs/STREAMING.md contract).

Each scenario drives the *same* simulated attack through the batch
query/pull pipeline and the event-driven streaming pipeline, then
asserts:

* both paths detect the attacker;
* streaming recall lands within ``STREAMING_RECALL_TOLERANCE`` of
  batch recall;
* two identical same-seed runs produce byte-identical alert streams
  (the determinism contract).

The default sweep runs each scenario at one seed; the
``ATHENA_STREAMING=1`` CI leg widens it to extra seeds.
"""

import functools
import os

import pytest

from repro.streaming.scenarios import (
    STREAMING_RECALL_TOLERANCE,
    STREAMING_SCENARIOS,
    run_streaming_scenario,
)

SEEDS = (0,)
# The ATHENA_STREAMING=1 CI leg widens the sweep to extra seeds.
if os.environ.get("ATHENA_STREAMING") == "1":
    SEEDS = SEEDS + (1, 2)


@functools.lru_cache(maxsize=None)
def _run(scenario, seed=0):
    return run_streaming_scenario(scenario, seed=seed)


@pytest.fixture(scope="module", params=STREAMING_SCENARIOS)
def scenario(request):
    return request.param


@pytest.mark.parametrize("seed", SEEDS)
class TestEquivalence:
    def test_both_paths_detect(self, scenario, seed):
        result = _run(scenario, seed)
        assert result.batch_detected, (
            f"batch path missed the attacker in {scenario} (seed {seed})"
        )
        assert result.streaming_detected, (
            f"streaming path missed the attacker in {scenario} (seed {seed})"
        )

    def test_recall_parity(self, scenario, seed):
        result = _run(scenario, seed)
        drop = result.batch_recall - result.streaming_recall
        assert drop <= STREAMING_RECALL_TOLERANCE, (
            f"{scenario} (seed {seed}): streaming recall "
            f"{result.streaming_recall:.3f} trails batch "
            f"{result.batch_recall:.3f} by more than "
            f"{STREAMING_RECALL_TOLERANCE}"
        )

    def test_streaming_processed_events(self, scenario, seed):
        result = _run(scenario, seed)
        assert result.events_processed > 0
        assert result.alerts_emitted > 0

    def test_attacker_flagged_by_streaming(self, scenario, seed):
        result = _run(scenario, seed)
        assert result.attacker_ip in result.streaming_flagged


class TestDeterminism:
    """Two identical same-seed runs → byte-identical alert streams."""

    @pytest.mark.parametrize("which", STREAMING_SCENARIOS)
    def test_alert_stream_byte_identical(self, which):
        first = run_streaming_scenario(which, seed=0)
        second = run_streaming_scenario(which, seed=0)
        assert first.alert_stream_json == second.alert_stream_json
        assert first.alert_stream_digest == second.alert_stream_digest
        assert len(first.alert_stream_json) > 2  # non-empty stream

    def test_different_seeds_still_detect(self):
        # Determinism must not come from ignoring the seed entirely.
        base = _run("portscan", 0)
        other = _run("portscan", 1) if os.environ.get(
            "ATHENA_STREAMING") == "1" else base
        assert other.streaming_detected
