"""Tests for the columnar FeatureFrame layer (repro.distdb.frame).

The contract under test (docs/PERF.md): for any documents and any valid
filter/sort/limit, the frame path selects exactly the rows
``matches_filter`` would, in exactly the order the document path returns
them, and ``to_matrix`` reproduces ``Preprocessor._matrix`` byte for
byte.  Property tests drive the mask compiler and sorter against the
row-wise reference on randomized documents.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.preprocessor import Preprocessor
from repro.distdb import DatabaseCluster, FeatureFrame, filter_mask
from repro.distdb.frame import (
    ChunkExtractor,
    assemble_chunks,
    extract_chunk,
    scan_fields,
)
from repro.distdb.query import matches_filter, sort_documents
from repro.errors import QueryError

DOCS = [
    {"switch_id": 1, "A": 1.0, "B": 10, "tag": "x", "label": 1},
    {"switch_id": 2, "A": 2.5, "tag": "y", "label": 0},
    {"switch_id": 1, "A": None, "B": 30, "tag": "x", "label": 0},
    {"switch_id": 3, "B": 40, "tag": None, "label": 1},
    {"switch_id": 2, "A": 5.0, "B": float("nan"), "tag": "z", "label": 0},
]


class TestFrameConstruction:
    def test_numeric_column_with_missing_mask(self):
        frame = FeatureFrame.from_documents(DOCS)
        values = frame.values("A")
        assert values.dtype == np.float64
        assert frame.is_missing("A").tolist() == [False, False, True, True, False]

    def test_stored_nan_is_not_missing(self):
        frame = FeatureFrame.from_documents(DOCS)
        assert frame.is_missing("B").tolist() == [False, True, False, False, False]
        assert np.isnan(frame.values("B")[4])

    def test_object_column_for_strings(self):
        frame = FeatureFrame.from_documents(DOCS)
        assert frame.values("tag").dtype == object
        assert frame.is_missing("tag").tolist() == [False, False, False, True, False]

    def test_bool_values_force_object_column(self):
        frame = FeatureFrame.from_documents([{"f": True}, {"f": 1.0}])
        assert frame.values("f").dtype == object

    def test_documents_are_shared_not_copied(self):
        frame = FeatureFrame.from_documents(DOCS)
        assert all(a is b for a, b in zip(frame.documents(), DOCS))
        copies = frame.copy_documents()
        assert copies == DOCS
        assert all(a is not b for a, b in zip(copies, DOCS))

    def test_restricted_columns_materialise_lazily(self):
        frame = FeatureFrame.from_documents(DOCS, columns=("A",))
        assert frame.column_names == ["A"]
        # Resolving an untrimmed field scans the documents, it does not
        # fabricate an all-missing phantom column.
        assert frame.values("B")[0] == 10
        assert frame.is_missing("label").tolist() == [False] * 5

    def test_absent_column_is_all_missing(self):
        frame = FeatureFrame.from_documents(DOCS)
        assert frame.is_missing("nope").all()

    def test_concat_unions_differing_keysets(self):
        left = FeatureFrame.from_documents([{"A": 1.0}])
        right = FeatureFrame.from_documents([{"B": 2.0}])
        merged = FeatureFrame.concat([left, right])
        assert merged.n_rows == 2
        assert merged.is_missing("A").tolist() == [False, True]
        assert merged.is_missing("B").tolist() == [True, False]

    def test_concat_widens_numeric_to_object(self):
        left = FeatureFrame.from_documents([{"A": 1.0}, {"A": None}])
        right = FeatureFrame.from_documents([{"A": "s"}])
        merged = FeatureFrame.concat([left, right])
        column = merged.values("A")
        assert column.dtype == object
        assert column.tolist() == [1.0, None, "s"]

    def test_take_head_mask(self):
        frame = FeatureFrame.from_documents(DOCS)
        assert frame.take(np.array([2, 0])).copy_documents() == [DOCS[2], DOCS[0]]
        assert frame.head(2).n_rows == 2
        assert frame.head(None) is frame
        keep = np.array([True, False, True, False, False])
        assert frame.mask(keep).copy_documents() == [DOCS[0], DOCS[2]]


class TestFilterMask:
    FILTERS = [
        None,
        {},
        {"switch_id": 1},
        {"A": None},
        {"A": {"$ne": None}},
        {"A": {"$gte": 2.0}},
        {"B": {"$exists": True}},
        {"B": {"$exists": False}},
        {"switch_id": {"$in": [1, 3]}},
        {"switch_id": {"$nin": [1, 3]}},
        {"A": {"$in": [2.5, None]}},
        {"tag": "x"},
        {"tag": {"$ne": "x"}},
        {"$and": [{"switch_id": 1}, {"label": 1}]},
        {"$or": [{"tag": "z"}, {"B": {"$lt": 20}}]},
        {"$nor": [{"label": 1}]},
        {"A": {"$not": {"$gt": 2.0}}},
        {"$or": []},
    ]

    @pytest.mark.parametrize("filter_", FILTERS)
    def test_mask_matches_reference(self, filter_):
        frame = FeatureFrame.from_documents(DOCS)
        expected = [matches_filter(doc, filter_ or {}) for doc in DOCS]
        assert filter_mask(frame, filter_).tolist() == expected

    def test_unknown_top_level_operator_raises(self):
        frame = FeatureFrame.from_documents(DOCS)
        with pytest.raises(QueryError):
            filter_mask(frame, {"$weird": []})

    def test_dotted_keys_evaluate_rowwise(self):
        docs = [{"a": {"b": 1}}, {"a": {"b": 2}}]
        frame = FeatureFrame.from_documents(docs)
        assert filter_mask(frame, {"a.b": 2}).tolist() == [False, True]


class TestFrameSort:
    CASES = [
        [("A", 1)],
        [("A", -1)],
        [("switch_id", 1), ("A", -1)],
        [("tag", 1)],
        [("missing_field", 1), ("label", -1)],
    ]

    @pytest.mark.parametrize("sort", CASES)
    def test_sort_matches_sort_documents(self, sort):
        docs = [doc for doc in DOCS if "B" not in doc or doc["B"] == doc["B"]]
        frame = FeatureFrame.from_documents(docs)
        expected = list(docs)
        sort_documents(expected, sort)
        assert frame.sort(sort).copy_documents() == expected

    def test_cross_type_sort_raises_like_reference(self):
        docs = [{"v": 1}, {"v": "s"}]
        frame = FeatureFrame.from_documents(docs)
        with pytest.raises(TypeError):
            frame.sort([("v", 1)])
        with pytest.raises(TypeError):
            sort_documents(list(docs), [("v", 1)])


class TestToMatrix:
    def test_matches_preprocessor_matrix(self):
        features = ["A", "B", "label", "nope"]
        preprocessor = Preprocessor(features=features, normalization=None)
        frame = FeatureFrame.from_documents(DOCS)
        assert (
            frame.to_matrix(features).tobytes()
            == preprocessor._matrix(DOCS).tobytes()
        )

    def test_bools_and_strings_become_zero(self):
        docs = [{"F": True}, {"F": "x"}, {"F": 2}]
        frame = FeatureFrame.from_documents(docs)
        assert frame.to_matrix(["F"]).ravel().tolist() == [0.0, 0.0, 2.0]

    def test_feature_columns_are_uppercase_namespace(self):
        frame = FeatureFrame.from_documents(
            [{"PAIR_FLOW": 1.0, "switch_id": 2, "_id": 3}]
        )
        assert frame.feature_columns() == ["PAIR_FLOW"]


class TestScanFields:
    def test_none_means_all(self):
        assert scan_fields(None, {"a": 1}) is None

    def test_filter_and_sort_fields_are_added(self):
        fields = scan_fields(
            ["A"],
            {"$and": [{"scope": "flow"}, {"t": {"$gte": 1}}], "x.y": 1},
            [("B", -1), ("a.b", 1)],
        )
        assert fields == ("A", "scope", "t", "B")


class TestChunkExtraction:
    def test_extract_assemble_roundtrip(self):
        partitions = [DOCS[:3], DOCS[3:]]
        extractor = ChunkExtractor(None, {"label": 0})
        results = [extractor(part) for part in partitions]
        frame = assemble_chunks(results, partitions)
        expected = [doc for doc in DOCS if matches_filter(doc, {"label": 0})]
        assert frame.copy_documents() == expected

    def test_restricted_columns_still_filter_correctly(self):
        values, missing, keep = extract_chunk(DOCS, ("A",), {"tag": "x"})
        assert keep.tolist() == [0, 2]
        assert list(values) == ["A"]

    def test_extractor_is_picklable(self):
        import pickle

        extractor = ChunkExtractor(("A", "label"), {"switch_id": 1})
        clone = pickle.loads(pickle.dumps(extractor))
        assert clone.columns == ("A", "label")


# ---------------------------------------------------------------------------
# Property tests: mask compiler and sorter vs the row-wise reference
# ---------------------------------------------------------------------------

_value = st.one_of(
    st.none(),
    st.integers(min_value=-5, max_value=5),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.sampled_from(["a", "b", "c"]),
    st.booleans(),
)
_doc = st.fixed_dictionaries(
    {},
    optional={
        "f": _value,
        "g": _value,
        "scope": st.sampled_from(["flow", "port"]),
    },
)
_docs = st.lists(_doc, max_size=30)
_operand = st.one_of(
    st.none(),
    st.integers(min_value=-5, max_value=5),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.sampled_from(["a", "b"]),
)
_condition = st.one_of(
    _operand,
    st.fixed_dictionaries({"$eq": _operand}),
    st.fixed_dictionaries({"$ne": _operand}),
    st.fixed_dictionaries({"$gt": _operand}),
    st.fixed_dictionaries({"$gte": _operand}),
    st.fixed_dictionaries({"$lt": _operand}),
    st.fixed_dictionaries({"$lte": _operand}),
    st.fixed_dictionaries({"$exists": st.booleans()}),
    st.fixed_dictionaries({"$in": st.lists(_operand, max_size=3)}),
    st.fixed_dictionaries({"$nin": st.lists(_operand, max_size=3)}),
    st.fixed_dictionaries({"$not": st.fixed_dictionaries({"$gte": _operand})}),
)
_leaf = st.fixed_dictionaries({}, optional={"f": _condition, "g": _condition})
_filter = st.one_of(
    _leaf,
    st.fixed_dictionaries({"$and": st.lists(_leaf, max_size=2)}),
    st.fixed_dictionaries({"$or": st.lists(_leaf, max_size=2)}),
    st.fixed_dictionaries({"$nor": st.lists(_leaf, max_size=2)}),
)


class TestFilterMaskProperties:
    @given(docs=_docs, filter_=_filter)
    @settings(max_examples=200, deadline=None)
    def test_mask_equals_rowwise_reference(self, docs, filter_):
        frame = FeatureFrame.from_documents(docs)
        expected = [matches_filter(doc, filter_) for doc in docs]
        assert filter_mask(frame, filter_).tolist() == expected

    @given(
        docs=st.lists(
            st.fixed_dictionaries(
                {}, optional={"f": st.one_of(st.none(), st.integers(-9, 9))}
            ),
            max_size=25,
        ),
        descending=st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_sort_equals_sort_documents(self, docs, descending):
        frame = FeatureFrame.from_documents(docs)
        expected = list(docs)
        sort_documents(expected, [("f", -1 if descending else 1)])
        assert (
            frame.sort([("f", -1 if descending else 1)]).copy_documents()
            == expected
        )

    @given(docs=_docs, filter_=_filter)
    @settings(max_examples=60, deadline=None)
    def test_cluster_find_frame_equals_find(self, docs, filter_):
        cluster = DatabaseCluster(n_shards=2, shard_key="scope")
        for doc in docs:
            cluster.insert_one("c", dict(doc))
        assert (
            cluster.find_frame("c", filter_ or None).copy_documents()
            == cluster.find("c", filter_ or None)
        )
