"""Failure-injection tests: controller failover, DB shard loss, link loss.

The paper's scalability story implies the distributed pieces keep working
as parts fail; these tests exercise the failure paths end-to-end with
Athena attached.
"""

import pytest

from repro.controller import ControllerCluster, ReactiveForwarding
from repro.core import AthenaDeployment, GenerateQuery
from repro.dataplane.topologies import enterprise_topology, linear_topology
from repro.distdb import DatabaseCluster
from repro.errors import DatabaseError
from repro.workloads.flows import FlowSpec, TrafficSchedule


class TestControllerFailover:
    @pytest.fixture
    def stack(self):
        topo = enterprise_topology(hosts_per_edge=1)
        cluster = ControllerCluster(topo.network, n_instances=3)
        cluster.adopt_domains(topo.domains)
        cluster.start(poll=False)
        fwd = ReactiveForwarding()
        fwd.activate(cluster)
        athena = AthenaDeployment(cluster, athena_poll_interval=2.0)
        athena.start()
        schedule = TrafficSchedule(topo.network)
        schedule.prime_arp()
        topo.network.sim.run(until=1.0)
        return topo, cluster, athena, schedule

    def test_switches_remain_reachable_after_failover(self, stack):
        topo, cluster, athena, schedule = stack
        failed_domain = cluster.instance(0).owned_dpids()
        moved = cluster.fail_instance(0)
        assert sorted(moved) == sorted(failed_domain)
        # Messages to the moved switches route through their new masters.
        from repro.openflow import FlowStatsRequest, Match

        for dpid in moved:
            cluster.send(dpid, FlowStatsRequest(match=Match()))

    def test_traffic_flows_after_failover(self, stack):
        topo, cluster, athena, schedule = stack
        cluster.fail_instance(1)
        hosts = sorted(topo.network.hosts)
        src, dst = hosts[0], hosts[-1]
        before = topo.network.hosts[dst].rx_packets
        schedule.add_flow(
            FlowSpec(src_host=src, dst_host=dst, rate_pps=20.0,
                     start=topo.network.sim.now, duration=2.0)
        )
        topo.network.sim.run(until=topo.network.sim.now + 4.0)
        assert topo.network.hosts[dst].rx_packets > before

    def test_surviving_athena_instances_keep_generating(self, stack):
        topo, cluster, athena, schedule = stack
        topo.network.sim.run(until=5.0)
        cluster.fail_instance(2)
        before = {
            i.instance_id: i.generator.features_generated
            for i in athena.instances
        }
        topo.network.sim.run(until=12.0)
        survivors = [i for i in athena.instances if i.instance_id != 2]
        assert any(
            i.generator.features_generated > before[i.instance_id]
            for i in survivors
        )

    def test_failover_without_standby_raises(self):
        topo = linear_topology(n_switches=2)
        cluster = ControllerCluster(topo.network, n_instances=1)
        cluster.adopt_all()
        from repro.errors import ControllerError

        with pytest.raises(ControllerError):
            cluster.fail_instance(0)


class TestDatabaseFailures:
    def test_scatter_gather_skips_dead_shard(self):
        database = DatabaseCluster(n_shards=3, replication=1)
        database.insert_many("c", [{"v": i} for i in range(30)])
        alive_before = database.count("c")
        database.fail_shard(1)
        # Unpinned reads degrade gracefully to the live shards.
        degraded = database.count("c")
        assert 0 < degraded < alive_before
        database.recover_shard(1)
        assert database.count("c") == alive_before

    def test_writes_fail_to_dead_primary_only(self):
        database = DatabaseCluster(n_shards=2, shard_key="k", replication=1)
        database.fail_shard(0)
        # Keys routed to the dead shard fail; others succeed.
        outcomes = []
        for key in range(10):
            try:
                database.insert_one("c", {"k": key})
                outcomes.append(True)
            except DatabaseError:
                outcomes.append(False)
        assert any(outcomes) and not all(outcomes)

    def test_feature_pipeline_survives_shard_recovery(self):
        topo = linear_topology(n_switches=2, hosts_per_switch=1)
        cluster = ControllerCluster(topo.network, n_instances=1)
        cluster.adopt_all()
        fwd = ReactiveForwarding()
        fwd.activate(cluster)
        database = DatabaseCluster(n_shards=3, replication=2)
        athena = AthenaDeployment(
            cluster, database=database, athena_poll_interval=1.0
        )
        athena.start()
        schedule = TrafficSchedule(topo.network)
        schedule.prime_arp()
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h2", rate_pps=20.0,
                     start=0.5, duration=8.0)
        )
        # A shard dies mid-run and comes back.
        topo.network.sim.at(3.0, lambda: database.fail_shard(0))
        topo.network.sim.at(6.0, lambda: database.recover_shard(0))
        try:
            topo.network.sim.run(until=10.0)
        except DatabaseError:
            pytest.fail("a dead shard must not crash feature publication")
        docs = athena.northbound.request_features(
            GenerateQuery("feature_scope == flow")
        )
        assert docs


class TestLinkFailures:
    def test_port_down_emits_port_status(self):
        topo = linear_topology(n_switches=2)
        cluster = ControllerCluster(topo.network, n_instances=1)
        cluster.adopt_all()
        from repro.controller.events import PortStatusEvent

        events = []
        cluster.bus.subscribe(PortStatusEvent, events.append)
        topo.network.switches[1].set_port_state(2, up=False)
        assert len(events) == 1
        assert events[0].message.link_up is False

    def test_traffic_stops_over_downed_port(self):
        topo = linear_topology(n_switches=2, hosts_per_switch=1)
        cluster = ControllerCluster(topo.network, n_instances=1)
        cluster.adopt_all()
        fwd = ReactiveForwarding()
        fwd.activate(cluster)
        schedule = TrafficSchedule(topo.network)
        schedule.prime_arp()
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h2", rate_pps=10.0,
                     start=0.5, duration=2.0)
        )
        topo.network.sim.run(until=3.0)
        delivered = topo.network.hosts["h2"].rx_packets
        topo.network.switches[1].set_port_state(2, up=False)
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h2", sport=45000,
                     rate_pps=10.0, start=topo.network.sim.now, duration=2.0)
        )
        topo.network.sim.run(until=topo.network.sim.now + 3.0)
        assert topo.network.hosts["h2"].rx_packets == delivered
