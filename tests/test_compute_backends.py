"""Execution-backend tests: equivalence, crash injection, fallback.

The determinism contract under test: a job produces *bit-identical*
results on the serial and process backends — including seeded ML training
and stochastic map tasks that derive their randomness with
:func:`repro.compute.task_rng`.  Task functions at module level stay
picklable so the process backend genuinely ships them to pool workers;
closures exercise the graceful in-process fallback instead.
"""

import os
import time

import numpy as np
import pytest

from repro.compute import (
    BACKEND_ENV_VAR,
    ClusterConfig,
    ComputeCluster,
    PartitionedDataset,
    ProcessBackend,
    available_backends,
    create_backend,
    task_rng,
)
from repro.core.southbound import AttackDetector
from repro.errors import ComputeError
from repro.ml.kmeans import KMeans
from repro.ml.naive_bayes import GaussianNaiveBayes

BACKENDS = ("serial", "process")


# -- module-level (picklable) task functions ----------------------------------

def _column_sums(part):
    return part.sum(axis=0)


def _seeded_noise(part, seed):
    """Stochastic map task: derives its RNG from (seed, partition index).

    The partition carries its own index as ``part[0]`` so the stream is a
    function of the data placement only, never of the executing process.
    """
    index = part[0]
    rng = task_rng(seed, index)
    return float(rng.normal(size=256).sum())


def _always_raises(part, _state):
    raise ValueError("injected application error")


class _CrashOnFirstAttempt:
    """Picklable task that kills its host process once, then succeeds.

    The sentinel file is the cross-process memory: the first pool worker
    to run the task drops the sentinel and dies mid-task (a real worker
    crash, not an exception); the retry finds the sentinel and completes.
    """

    def __init__(self, sentinel: str) -> None:
        self.sentinel = sentinel

    def __call__(self, part, _state):
        if not os.path.exists(self.sentinel):
            with open(self.sentinel, "w") as handle:
                handle.write("crashed")
            os._exit(1)
        return sum(part)


class _HangsInSubprocess:
    """Sleeps only when executed outside the driver process, so the
    process backend times out but the serial fallback returns at once."""

    def __init__(self, driver_pid: int) -> None:
        self.driver_pid = driver_pid

    def __call__(self, part, _state):
        if os.getpid() != self.driver_pid:
            time.sleep(2.0)
        return sum(part)


# -- backend selection --------------------------------------------------------

class TestBackendSelection:
    def test_available_backends(self):
        assert available_backends() == ["process", "serial"]

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert ComputeCluster(2).backend_name == "serial"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        assert ComputeCluster(2).backend_name == "process"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        assert ComputeCluster(2, backend="serial").backend_name == "serial"

    def test_instance_accepted(self):
        backend = ProcessBackend()
        assert ComputeCluster(2, backend=backend).backend is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ComputeError, match="unknown compute backend"):
            create_backend("hadoop")

    def test_per_job_override(self):
        cluster = ComputeCluster(2, backend="serial")
        ds = PartitionedDataset.from_records(list(range(20)), 4)
        report = cluster.run_map(ds, map_fn=sum, reduce_fn=sum, backend="process")
        assert report.backend == "process"
        assert cluster.backend_name == "serial"  # default untouched


# -- equivalence --------------------------------------------------------------

class TestBackendEquivalence:
    """Same task graph, same seed → identical results on every backend."""

    @pytest.fixture(scope="class")
    def matrix(self):
        return np.random.default_rng(11).normal(size=(12_000, 6))

    def _run_map(self, backend, matrix):
        cluster = ComputeCluster(3, backend=backend)
        ds = PartitionedDataset.from_matrix(matrix, 6)
        report = cluster.run_map(
            ds, map_fn=_column_sums, reduce_fn=lambda parts: np.vstack(parts)
        )
        return report

    def test_map_results_bit_identical(self, matrix):
        serial = self._run_map("serial", matrix)
        process = self._run_map("process", matrix)
        assert process.fallback_tasks == 0  # the pool really ran it
        assert np.array_equal(serial.result, process.result)

    def test_kmeans_training_bit_identical(self, matrix):
        centers = {}
        for backend in BACKENDS:
            model = KMeans(k=5, max_iterations=6, seed=3)
            ds = PartitionedDataset.from_matrix(matrix, 6)
            model.fit_distributed(
                ComputeCluster(3, backend=backend), ds, backend=backend
            )
            assert model.last_job_report.backend == backend
            centers[backend] = model.centers
        assert np.array_equal(centers["serial"], centers["process"])

    def test_naive_bayes_training_bit_identical(self, matrix):
        labels = (matrix[:, 0] > 0).astype(float)
        fitted = {}
        for backend in BACKENDS:
            model = GaussianNaiveBayes()
            ds = PartitionedDataset.from_matrix(matrix, 6, labels=labels)
            model.fit_distributed(ComputeCluster(3, backend=backend), ds)
            fitted[backend] = model
        for attr in ("classes", "priors", "means", "variances"):
            assert np.array_equal(
                getattr(fitted["serial"], attr), getattr(fitted["process"], attr)
            )
        # And the distributed fit agrees with the in-memory fit to rounding.
        local = GaussianNaiveBayes().fit(matrix, labels)
        assert np.allclose(local.means, fitted["serial"].means)
        assert np.allclose(local.variances, fitted["serial"].variances)
        # Rounding-level model differences may flip only near-tied rows.
        agreement = (fitted["serial"].predict(matrix) == local.predict(matrix))
        assert agreement.mean() > 0.999

    def test_stochastic_map_identical_across_backends(self):
        # Each partition is [index]; the task derives its RNG from
        # (job seed, index) via task_rng, so streams survive the process
        # boundary unchanged.
        ds = PartitionedDataset([[i] for i in range(8)])
        results = {}
        for backend in BACKENDS:
            cluster = ComputeCluster(3, backend=backend)
            report = cluster.run_iterative(
                ds, _seeded_noise, lambda parts, _s: list(parts),
                initial_state=1234, rounds=1,
            )
            results[backend] = report.result
        assert results["serial"] == results["process"]

    def test_detection_validation_identical(self, matrix):
        model = KMeans(k=4, max_iterations=5, seed=7).fit(matrix)
        model.label_clusters(matrix, (matrix[:, 1] > 0).astype(float))
        predictions = {}
        for backend in BACKENDS:
            detector = AttackDetector(
                compute=ComputeCluster(3, backend=backend),
                distributed_threshold=1_000,
            )
            predicted, report = detector.run_validation(model, matrix)
            assert report is not None and report.backend == backend
            predictions[backend] = predicted
        assert np.array_equal(predictions["serial"], predictions["process"])

    def test_map_partitions_on_cluster(self):
        ds = PartitionedDataset.from_records(list(range(12)), 3)
        local = ds.map_partitions(sum)
        distributed = ds.map_partitions(sum, cluster=ComputeCluster(2))
        assert local.partitions == distributed.partitions


# -- crash, timeout, and fallback handling ------------------------------------

class TestProcessFaultHandling:
    def test_worker_crash_retried_and_succeeds(self, tmp_path):
        sentinel = str(tmp_path / "crashed-once")
        cluster = ComputeCluster(
            2, backend="process", config=ClusterConfig(task_retries=2)
        )
        ds = PartitionedDataset.from_records([1, 2, 3, 4], 1)
        report = cluster.run_iterative(
            ds,
            _CrashOnFirstAttempt(sentinel),
            lambda parts, _s: sum(parts),
            initial_state=None,
            rounds=1,
        )
        assert report.result == 10
        assert report.backend == "process"
        assert report.tasks_retried >= 1
        assert cluster.tasks_retried >= 1
        assert os.path.exists(sentinel)

    def test_timeout_falls_back_to_serial(self):
        cluster = ComputeCluster(
            2,
            backend="process",
            config=ClusterConfig(task_retries=1, task_timeout=0.2),
        )
        ds = PartitionedDataset.from_records([1, 2, 3], 1)
        report = cluster.run_iterative(
            ds,
            _HangsInSubprocess(os.getpid()),
            lambda parts, _s: sum(parts),
            initial_state=None,
            rounds=1,
        )
        assert report.result == 6
        assert report.fallback_tasks == 1
        assert report.tasks_retried >= 1

    def test_unpicklable_task_falls_back_to_serial(self):
        cluster = ComputeCluster(2, backend="process")
        ds = PartitionedDataset.from_records(list(range(30)), 3)
        report = cluster.run_map(ds, map_fn=lambda p: sum(p), reduce_fn=sum)
        assert report.result == sum(range(30))
        assert report.backend == "process"
        assert report.fallback_tasks == 3
        assert cluster.tasks_fallback == 3

    def test_application_error_still_aborts_job(self):
        # A deterministic task exception is not infrastructure failure:
        # after the retry budget the serial fallback surfaces it as the
        # same ComputeError the serial backend raises.
        cluster = ComputeCluster(
            2, backend="process", config=ClusterConfig(task_retries=1)
        )
        ds = PartitionedDataset.from_records([1, 2], 1)
        with pytest.raises(ComputeError, match="after 2 attempts"):
            cluster.run_iterative(
                ds, _always_raises, lambda parts, _s: parts,
                initial_state=None, rounds=1,
            )

    def test_pool_restart_counted(self, tmp_path):
        backend = ProcessBackend()
        sentinel = str(tmp_path / "crash")
        cluster = ComputeCluster(2, backend=backend)
        ds = PartitionedDataset.from_records([5, 6], 1)
        report = cluster.run_iterative(
            ds,
            _CrashOnFirstAttempt(sentinel),
            lambda parts, _s: sum(parts),
            initial_state=None,
            rounds=1,
        )
        assert report.result == 11
        assert backend.pool_restarts >= 1


# -- accounting ---------------------------------------------------------------

class TestBackendAccounting:
    def test_process_reports_bytes_and_wall(self):
        cluster = ComputeCluster(2, backend="process")
        ds = PartitionedDataset.from_matrix(
            np.arange(200.0).reshape(50, 4), 4
        )
        report = cluster.run_map(ds, map_fn=_column_sums)
        assert report.fallback_tasks == 0
        assert report.bytes_shuffled > 0
        assert report.wall_seconds > 0
        assert report.per_round_busy and len(report.per_round_busy) == 1

    def test_serial_moves_no_bytes(self):
        cluster = ComputeCluster(2, backend="serial")
        ds = PartitionedDataset.from_records(list(range(10)), 2)
        report = cluster.run_map(ds, map_fn=sum, reduce_fn=sum)
        assert report.bytes_shuffled == 0
        assert report.backend == "serial"

    def test_process_credits_driver_worker_slots(self):
        cluster = ComputeCluster(2, backend="process")
        ds = PartitionedDataset.from_matrix(
            np.arange(400.0).reshape(100, 4), 4
        )
        report = cluster.run_map(ds, map_fn=_column_sums)
        assert report.fallback_tasks == 0
        # Pool process time was attributed to the driver-side slots.
        assert sum(report.per_worker_busy) > 0
        assert sum(w.tasks_run for w in cluster.workers) == 4


class TestTaskRng:
    def test_stream_depends_on_seed_and_index(self):
        a = task_rng(1, 0).normal(size=4)
        assert np.array_equal(a, task_rng(1, 0).normal(size=4))
        assert not np.array_equal(a, task_rng(1, 1).normal(size=4))
        assert not np.array_equal(a, task_rng(2, 0).normal(size=4))
