"""Unit tests for repro.streaming and the online learners.

Covers the online-learner protocol (partial_fit / score_event /
predict_event / refresh and the batch fit/predict bridge), incremental
NB parity with the batch sufficient-statistics trainer, the streaming
feature state and pipeline folding, detector alerting/cooldown/refresh,
the catalog validation of streaming feature names, and the EventBus
mid-dispatch subscription fix.
"""

import numpy as np
import pytest

from repro.controller.events import (
    ControllerEvent,
    EventBus,
    FlowRemovedEvent,
    PacketInEvent,
)
from repro.core.feature_format import FeatureScope
from repro.core.features.catalog import FEATURE_CATALOG
from repro.errors import AthenaError, MLError
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.online import (
    HalfSpaceTrees,
    OnlineGaussianNB,
    SlidingWindowDetector,
    StreamingKMeans,
)
from repro.ml.registry import category_of, create_algorithm, list_algorithms
from repro.openflow.messages import FlowRemoved, Match, PacketIn
from repro.streaming import (
    STREAMING_CONTROL_FEATURES,
    STREAMING_FLOW_FEATURES,
    STREAMING_SWITCH_FEATURES,
    StreamingDetectorManager,
    StreamingPipeline,
)
from repro.streaming.pipeline import StreamEvent


def _packet_in(dpid=1, src="10.0.0.1", dst="10.0.0.9", dport=80, time=1.0):
    return PacketInEvent(
        instance_id=0,
        dpid=dpid,
        time=time,
        message=PacketIn(
            dpid=dpid,
            headers={
                "ip_src": src,
                "ip_dst": dst,
                "ip_proto": 6,
                "tcp_src": 40_000,
                "tcp_dst": dport,
            },
            total_len=100,
        ),
    )


class TestRegistryStreaming:
    def test_streaming_algorithms_registered(self):
        for name in ("online_naive_bayes", "streaming_kmeans",
                     "half_space_trees", "sliding_window"):
            assert name in list_algorithms()
            assert category_of(name) == "streaming"

    def test_create_with_params(self):
        learner = create_algorithm("sliding_window", column=0, threshold=5.0)
        assert isinstance(learner, SlidingWindowDetector)

    def test_streaming_category_needs_no_labels(self):
        from repro.core.algorithm import GenerateAlgorithm

        algorithm = GenerateAlgorithm("streaming_kmeans", k=3)
        assert not algorithm.needs_labels
        assert not algorithm.needs_marks
        assert algorithm.has_learning_phase


class TestOnlineGaussianNB:
    def test_matches_batch_nb_posteriors(self):
        """Running sufficient statistics must reproduce the batch fit."""
        rng = np.random.default_rng(7)
        benign = rng.normal([2.0, 5.0], 1.0, size=(120, 2))
        attack = rng.normal([9.0, 1.0], 1.0, size=(80, 2))
        X = np.vstack([benign, attack])
        y = np.array([0.0] * 120 + [1.0] * 80)

        online = OnlineGaussianNB()
        for row, label in zip(X, y):
            online.partial_fit(row, label)
        batch = GaussianNaiveBayes().fit(X, y)

        online_preds = np.array(
            [float(online.predict_event(row)) for row in X]
        )
        assert np.array_equal(online_preds, batch.predict(X))

    def test_single_class_density_mode(self):
        online = OnlineGaussianNB(n_sigma=3.0)
        rng = np.random.default_rng(0)
        for _ in range(300):
            online.partial_fit(rng.normal([1.0, 1.0], 0.1))
        # In-distribution events never flag; a wild outlier does.
        assert not online.predict_event([1.0, 1.0])
        assert online.predict_event([500.0, -500.0])

    def test_unfitted_raises(self):
        with pytest.raises(MLError):
            OnlineGaussianNB().score_event([1.0])

    def test_batch_bridge(self):
        X = [[0.0], [0.1], [5.0], [5.1]]
        y = [0, 0, 1, 1]
        model = OnlineGaussianNB().fit(X, y)
        assert list(model.predict([[0.05], [5.05]])) == [0.0, 1.0]


class TestStreamingKMeans:
    def test_centers_track_clusters(self):
        rng = np.random.default_rng(3)
        model = StreamingKMeans(k=2)
        for _ in range(400):
            model.partial_fit(rng.normal([0.0, 0.0], 0.2))
            model.partial_fit(rng.normal([8.0, 8.0], 0.2))
        centers = sorted(tuple(np.round(c)) for c in model.centers)
        assert centers == [(0.0, 0.0), (8.0, 8.0)]

    def test_outlier_flags_after_calibration(self):
        rng = np.random.default_rng(4)
        model = StreamingKMeans(k=2, n_sigma=3.0)
        flagged_normal = 0
        for _ in range(300):
            x = rng.normal([0.0, 0.0], 0.1)
            if model.predict_event(x):
                flagged_normal += 1
            model.partial_fit(x)
        assert flagged_normal <= 3
        assert model.predict_event([50.0, 50.0])

    def test_duplicate_seeds_do_not_collapse_centers(self):
        model = StreamingKMeans(k=3)
        for _ in range(10):
            model.partial_fit([1.0, 1.0])
        assert len(model.centers) == 1  # one distinct point -> one center

    def test_bad_k(self):
        with pytest.raises(MLError):
            StreamingKMeans(k=0)


class TestHalfSpaceTrees:
    def test_sparse_region_scores_higher(self):
        rng = np.random.default_rng(5)
        model = HalfSpaceTrees(n_trees=10, depth=5, window_size=100, seed=1)
        for _ in range(600):
            model.partial_fit(rng.uniform(0.4, 0.6, size=3))
        assert model.windows_closed >= 1
        dense = model.score_event([0.5, 0.5, 0.5])
        sparse = model.score_event([0.0, 1.0, 0.0])
        assert sparse > dense

    def test_no_verdicts_before_first_window(self):
        model = HalfSpaceTrees(window_size=1_000)
        for _ in range(10):
            model.partial_fit([0.5, 0.5])
        assert not model.predict_event([99.0, -99.0])

    def test_refresh_promotes_window(self):
        model = HalfSpaceTrees(n_trees=4, depth=3, window_size=10_000)
        for _ in range(50):
            model.partial_fit([0.2, 0.8])
        assert model.windows_closed == 0
        model.refresh()
        assert model.windows_closed == 1

    def test_deterministic_given_seed(self):
        def scores(seed):
            model = HalfSpaceTrees(n_trees=6, depth=4, seed=seed,
                                   window_size=50)
            rng = np.random.default_rng(9)
            out = []
            for _ in range(200):
                x = rng.uniform(0, 1, size=2)
                model.partial_fit(x)
                out.append(model.score_event(x))
            return out

        assert scores(3) == scores(3)
        assert scores(3) != scores(4)


class TestSlidingWindowDetector:
    def test_sequence_rule(self):
        model = SlidingWindowDetector(column=0, threshold=10.0, window=4,
                                      min_hits=3)
        for value in (12.0, 13.0):
            assert not model.predict_event([value])
            model.partial_fit([value])
        # Third consecutive crossing satisfies min_hits=3.
        assert model.predict_event([14.0])

    def test_spike_does_not_alert(self):
        model = SlidingWindowDetector(column=0, threshold=10.0, window=8,
                                      min_hits=3)
        for _ in range(8):
            model.partial_fit([1.0])
        assert not model.predict_event([99.0])

    def test_self_calibrating_threshold(self):
        model = SlidingWindowDetector(column=0, window=16, min_hits=1,
                                      n_sigma=3.0)
        rng = np.random.default_rng(11)
        for _ in range(200):
            model.partial_fit([float(rng.normal(5.0, 0.5))])
        assert not model.predict_event([5.0])
        for _ in range(3):
            assert model.predict_event([50.0]) in (True, False)
            model.partial_fit([50.0])
        assert model.predict_event([50.0])

    def test_column_out_of_range(self):
        with pytest.raises(MLError):
            SlidingWindowDetector(column=5).partial_fit([1.0])


class TestStreamingFeatureNames:
    def test_all_streaming_features_resolve(self):
        FEATURE_CATALOG.validate(
            STREAMING_FLOW_FEATURES
            + STREAMING_SWITCH_FEATURES
            + STREAMING_CONTROL_FEATURES
        )

    def test_detector_rejects_unknown_feature(self):
        manager = StreamingDetectorManager()
        with pytest.raises(Exception):
            manager.register_detector(
                "bad", SlidingWindowDetector(), features=["NOT_A_FEATURE"]
            )


class TestStreamingPipeline:
    def _pipeline(self):
        bus = EventBus()
        pipeline = StreamingPipeline()
        pipeline.attach_instance(0, bus)
        return bus, pipeline

    def test_packet_in_folds_flow_fields(self):
        bus, pipeline = self._pipeline()
        seen = []
        pipeline.add_sink(seen.append)
        bus.publish(_packet_in(src="10.0.0.1", dport=100))
        bus.publish(_packet_in(src="10.0.0.1", dport=101, time=1.1))
        assert len(seen) == 2
        assert seen[-1].kind == "packet_in"
        assert seen[-1].scope is FeatureScope.FLOW
        assert seen[-1].fields["SRC_FLOW_FANOUT"] == 2.0
        assert seen[-1].fields["FLOW_IS_NEW"] == 1.0
        assert pipeline.events_processed == 2

    def test_flow_removed_evicts_state(self):
        bus, pipeline = self._pipeline()
        match = Match(ip_src="10.0.0.1", ip_dst="10.0.0.9",
                      tcp_src=40_000, tcp_dst=100, ip_proto=6)
        bus.publish(_packet_in(src="10.0.0.1", dport=100))
        assert pipeline.states[0].flow_state.tracked_flow_count(1) == 1
        bus.publish(
            FlowRemovedEvent(
                instance_id=0, dpid=1, time=2.0,
                message=FlowRemoved(dpid=1, match=match, duration_sec=1.0,
                                    packet_count=7, byte_count=700),
            )
        )
        assert pipeline.states[0].flow_state.tracked_flow_count(1) == 0
        assert pipeline.events_by_kind["flow_removed"] == 1

    def test_unmarked_stats_ignored(self):
        from repro.controller.events import StatsEvent
        from repro.openflow.messages import FlowStatsEntry, FlowStatsReply

        bus, pipeline = self._pipeline()
        reply = FlowStatsReply(dpid=1, entries=[
            FlowStatsEntry(match=Match(ip_src="10.0.0.3"), priority=1,
                           duration_sec=1.0, packet_count=5, byte_count=500),
        ])
        bus.publish(StatsEvent(instance_id=0, dpid=1, time=1.0,
                               message=reply, athena_marked=False))
        assert pipeline.events_processed == 0
        bus.publish(StatsEvent(instance_id=0, dpid=1, time=1.0,
                               message=reply, athena_marked=True))
        assert pipeline.events_by_kind["flow_stats"] == 1

    def test_switch_snapshot_does_not_reset_counters(self):
        bus, pipeline = self._pipeline()
        bus.publish(_packet_in(src="10.0.0.1", dport=100))
        state = pipeline.states[0].flow_state
        before = state._state(1).new_flows_since_sample
        fields = pipeline.switch_fields(0, 1)
        assert fields["TOTAL_TRACKED_FLOWS"] == 1.0
        assert state._state(1).new_flows_since_sample == before


class TestStreamingDetectorManager:
    def _event(self, fanout, time, src="10.0.0.1"):
        return StreamEvent(
            kind="packet_in", scope=FeatureScope.FLOW, dpid=1, instance_id=0,
            time=time, indicators={"ip_src": src},
            fields={"SRC_FLOW_FANOUT": fanout},
        )

    def test_alerts_and_cooldown(self):
        manager = StreamingDetectorManager()
        manager.register_detector(
            "fanout",
            SlidingWindowDetector(column=0, threshold=3.0, window=4,
                                  min_hits=1),
            features=["SRC_FLOW_FANOUT"],
            cooldown=1.0,
        )
        for step in range(6):
            manager.on_event(self._event(10.0, time=0.1 * step))
        # All six are positive verdicts, but the 1s cooldown admits one.
        assert len(manager.alerts) == 1
        manager.on_event(self._event(10.0, time=2.0))
        assert len(manager.alerts) == 2
        assert manager.alerts[0]["source"] == "10.0.0.1"

    def test_duplicate_name_rejected(self):
        manager = StreamingDetectorManager()
        manager.register_detector(
            "x", SlidingWindowDetector(threshold=1.0),
            features=["SRC_FLOW_FANOUT"],
        )
        with pytest.raises(AthenaError):
            manager.register_detector(
                "x", SlidingWindowDetector(threshold=1.0),
                features=["SRC_FLOW_FANOUT"],
            )

    def test_warmup_suppresses_verdicts(self):
        manager = StreamingDetectorManager()
        manager.register_detector(
            "warm",
            SlidingWindowDetector(column=0, threshold=1.0, window=4,
                                  min_hits=1),
            features=["SRC_FLOW_FANOUT"],
            cooldown=0.0,
            warmup=5,
        )
        for step in range(5):
            manager.on_event(self._event(10.0, time=float(step)))
        assert manager.alerts == []
        manager.on_event(self._event(10.0, time=9.0))
        assert len(manager.alerts) == 1

    def test_kinds_filter(self):
        manager = StreamingDetectorManager()
        manager.register_detector(
            "stats_only",
            SlidingWindowDetector(column=0, threshold=1.0, window=4,
                                  min_hits=1),
            features=["SRC_FLOW_FANOUT"],
            cooldown=0.0,
            kinds=("flow_stats",),
        )
        manager.on_event(self._event(10.0, time=1.0))  # kind=packet_in
        assert manager.alerts == []

    def test_refresh_and_digest(self):
        manager = StreamingDetectorManager()
        manager.register_detector(
            "hst", HalfSpaceTrees(n_trees=2, depth=2, window_size=10_000),
            features=["SRC_FLOW_FANOUT"],
        )
        manager.refresh()
        assert manager.refreshes == 1
        assert len(manager.alert_stream_digest()) == 64


class TestEventBusMidDispatch:
    def test_subscriber_added_mid_dispatch_deferred(self):
        """A listener subscribed while an event is dispatching must not
        see that event — it joins deterministically from the next one."""
        bus = EventBus()
        late_calls = []

        def late_listener(event):
            late_calls.append(event)

        def subscribing_listener(event):
            bus.subscribe(ControllerEvent, late_listener)

        bus.subscribe(PacketInEvent, subscribing_listener)
        first = _packet_in(dport=1)
        second = _packet_in(dport=2, time=2.0)
        bus.publish(first)
        assert late_calls == []  # deferred: not delivered mid-dispatch
        bus.publish(second)
        assert late_calls == [second]

    def test_unsubscribe_mid_dispatch_does_not_retract(self):
        bus = EventBus()
        calls = []

        def victim(event):
            calls.append("victim")

        def unsubscriber(event):
            bus.unsubscribe(PacketInEvent, victim)

        bus.subscribe(PacketInEvent, unsubscriber)
        bus.subscribe(PacketInEvent, victim)
        bus.publish(_packet_in())
        assert calls == ["victim"]  # snapshotted before dispatch began
        bus.publish(_packet_in(time=2.0))
        assert calls == ["victim"]  # gone from the next event on


class TestDeploymentWiring:
    def test_enable_streaming_idempotent(self):
        from repro.chaos.scenarios import _build_stack

        topo, athena, _schedule = _build_stack()
        runtime = athena.enable_streaming()
        assert athena.enable_streaming() is runtime
        assert sorted(runtime.pipeline.states) == [
            instance.instance_id for instance in athena.instances
        ]
        topo.network.sim.run(until=1.0)
