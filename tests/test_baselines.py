"""Tests for the baseline implementations (raw Spark-style jobs, Braga SOM)."""

import numpy as np
import pytest

from repro.baselines.braga import BRAGA_FEATURES, BragaSOMDetector, braga_tuple
from repro.baselines.raw_ddos import (
    RawDDoSKMeansJob,
    RawDDoSLogisticJob,
    RawJobError,
    build_time_window_filter,
    documents_to_matrix,
    raw_kmeans_source_lines,
    raw_logistic_source_lines,
)
from repro.compute import ComputeCluster
from repro.distdb import DatabaseCluster
from repro.workloads.ddos import DDoSDatasetGenerator, DDoSDatasetSpec


@pytest.fixture(scope="module")
def dataset():
    generator = DDoSDatasetGenerator(DDoSDatasetSpec(scale=0.0008))
    docs = generator.generate()
    return generator.train_test_split(docs)


@pytest.fixture(scope="module")
def loaded_db(dataset):
    train, test = dataset
    database = DatabaseCluster(n_shards=2, replication=1)
    database.insert_many("athena_features", [dict(d) for d in train + test])
    return database


class TestRawPipelinePieces:
    def test_filter_construction(self):
        filter_ = build_time_window_filter("flow", 0.0, 10.0)
        assert "$and" in filter_

    def test_empty_window_rejected(self):
        with pytest.raises(RawJobError):
            build_time_window_filter("flow", 10.0, 0.0)

    def test_matrix_extraction(self):
        docs = [{"A": 1, "B": 2.5, "label": 1}, {"A": 3, "label": 0}]
        matrix, labels = documents_to_matrix(docs, ["A", "B"], "label")
        assert matrix.tolist() == [[1.0, 2.5], [3.0, 0.0]]
        assert labels.tolist() == [1.0, 0.0]

    def test_matrix_rejects_non_numeric(self):
        with pytest.raises(RawJobError):
            documents_to_matrix([{"A": "oops"}], ["A"], None)

    def test_matrix_requires_columns(self):
        with pytest.raises(RawJobError):
            documents_to_matrix([{}], [], None)


class TestRawKMeansJob:
    def test_matches_paper_band(self, dataset):
        train, test = dataset
        job = RawDDoSKMeansJob(
            DatabaseCluster(n_shards=1, replication=1),
            ComputeCluster(2),
            seed=1,
        )
        job.train(0.0, 1800.0, documents=train)
        report = job.validate(1800.0, 3600.0, documents=test)
        assert report.detection_rate > 0.97
        assert report.false_alarm_rate < 0.08
        assert report.total == len(test)

    def test_fetches_from_database(self, dataset, loaded_db):
        train, test = dataset
        job = RawDDoSKMeansJob(loaded_db, ComputeCluster(2), seed=1)
        job.train(0.0, 1800.0)
        report = job.validate(1800.0, 3600.0)
        assert report.total > 0

    def test_validate_before_train_rejected(self):
        job = RawDDoSKMeansJob(
            DatabaseCluster(n_shards=1, replication=1), ComputeCluster(1)
        )
        with pytest.raises(RawJobError):
            job.validate(0.0, 1.0, documents=[{}])

    def test_report_renders(self, dataset):
        train, test = dataset
        job = RawDDoSKMeansJob(
            DatabaseCluster(n_shards=1, replication=1), ComputeCluster(2), seed=1
        )
        job.train(0.0, 1800.0, documents=train)
        report = job.validate(0.0, 3600.0, documents=test)
        text = report.render()
        assert "Detection Rate" in text


class TestRawLogisticJob:
    def test_matches_kmeans_quality(self, dataset):
        train, test = dataset
        job = RawDDoSLogisticJob(
            DatabaseCluster(n_shards=1, replication=1),
            ComputeCluster(2),
            iterations=80,
        )
        job.train(0.0, 1800.0, documents=train)
        report = job.validate(1800.0, 3600.0, documents=test)
        assert report.detection_rate > 0.97


class TestSLoCAccounting:
    def test_raw_implementations_dwarf_athena_app(self):
        """Table VIII's shape: the raw jobs are an order of magnitude larger."""
        assert raw_kmeans_source_lines() > 250
        assert raw_logistic_source_lines() > 150


class TestBragaSOM:
    def test_six_tuple(self):
        doc = {
            "FLOW_PACKET_COUNT": 10.0, "FLOW_BYTE_COUNT": 100.0,
            "FLOW_DURATION_SEC": 2.0, "PAIR_FLOW_RATIO": 0.5,
            "PAIR_FLOW": 0.0, "DST_FLOW_FANIN": 7.0,
        }
        values = braga_tuple(doc)
        assert len(values) == len(BRAGA_FEATURES) == 6
        assert values[3] == 50.0

    def test_detects_ddos(self, dataset):
        train, test = dataset
        detector = BragaSOMDetector(rows=3, cols=3, epochs=3, seed=2)
        detector.train(train, max_rows=4000)
        dr, far = detector.evaluate(test)
        assert dr > 0.9
        assert far < 0.2

    def test_untrained_predict_rejected(self):
        from repro.errors import MLError

        with pytest.raises(MLError):
            BragaSOMDetector().predict([{}])
