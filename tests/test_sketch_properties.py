"""Property-based contracts for the repro.sketch structures.

The sketches carry precise probabilistic guarantees; this suite pins
them down as executable properties:

* CMS — estimates never under-count, and stay within ``ε·N`` with at
  most the ``δ`` share of per-key violations;
* HLL — relative cardinality error within ``3/√m`` (three sigma) on
  uniform and adversarially-structured streams;
* Bloom — zero false negatives, measured false-positive rate within 2x
  of the analytic bound;
* ``merge(a, b)`` — byte-identical to single-stream ingestion for all
  three structures, however the stream is split.

``derandomize=True`` keeps the generated examples fixed: the error-bound
properties are statistical, so the suite must be deterministic to stay
green across CI seeds (the seed sensitivity itself is covered by the
explicit 3-seed parametrizations).
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sketch import BloomFilter, CountMinSketch, HyperLogLog
from repro.sketch.cms import SketchError
from repro.sketch.hashing import hash64, key_to_int

SEEDS = [0, 1, 2]

_keys = st.one_of(
    st.integers(min_value=0, max_value=1 << 48),
    st.text(max_size=12),
    st.tuples(st.integers(min_value=0, max_value=1 << 20), st.text(max_size=6)),
)
_streams = st.lists(st.tuples(_keys, st.integers(min_value=1, max_value=50)), max_size=200)


def _truth(stream):
    truth = {}
    for key, count in stream:
        truth[key] = truth.get(key, 0) + count
    return truth


class TestHashing:
    @settings(max_examples=80, deadline=None, derandomize=True)
    @given(_keys, st.integers(min_value=0, max_value=1 << 32))
    def test_stable_and_seeded(self, key, seed):
        assert hash64(key, seed) == hash64(key, seed)
        assert 0 <= hash64(key, seed) < 1 << 64

    @settings(max_examples=80, deadline=None, derandomize=True)
    @given(_keys)
    def test_seed_decorrelates(self, key):
        values = {hash64(key, seed) for seed in range(8)}
        assert len(values) >= 7  # distinct seeds give distinct hashes

    def test_int_fast_path_matches_range(self):
        assert key_to_int(5) == 5
        assert key_to_int(True) != key_to_int(1)  # bools hash distinctly

    def test_floats_rejected(self):
        with pytest.raises(TypeError):
            key_to_int(1.5)


class TestCountMinSketch:
    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(_streams, st.sampled_from(SEEDS))
    def test_never_undercounts_and_eps_bound(self, stream, seed):
        epsilon, delta = 0.01, 0.01
        cms = CountMinSketch(epsilon=epsilon, delta=delta, seed=seed)
        for key, count in stream:
            cms.add(key, count)
        truth = _truth(stream)
        assert cms.total == sum(truth.values())
        bound = epsilon * cms.total
        violations = 0
        for key, true_count in truth.items():
            estimate = cms.estimate(key)
            assert estimate >= true_count  # one-sided error, always
            if estimate - true_count > bound:
                violations += 1
        # The ε·N bound holds per query with probability 1 − δ.
        assert violations <= max(1, math.ceil(delta * len(truth)))

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(_streams, st.integers(min_value=1, max_value=10))
    def test_merge_equals_single_stream(self, stream, pivot):
        a = CountMinSketch(0.01, 0.05, seed=3)
        b = CountMinSketch(0.01, 0.05, seed=3)
        single = CountMinSketch(0.01, 0.05, seed=3)
        for i, (key, count) in enumerate(stream):
            (a if i % pivot == 0 else b).add(key, count)
            single.add(key, count)
        a.merge(b)
        assert a.to_bytes() == single.to_bytes()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_serialisation_round_trip(self, seed):
        cms = CountMinSketch(0.005, 0.02, seed=seed)
        for i in range(500):
            cms.add(i % 97, i % 5 + 1)
        restored = CountMinSketch.from_bytes(cms.to_bytes())
        assert restored.to_bytes() == cms.to_bytes()
        assert restored.estimate(13) == cms.estimate(13)

    def test_incompatible_merge_rejected(self):
        with pytest.raises(SketchError):
            CountMinSketch(0.01, 0.01, seed=1).merge(
                CountMinSketch(0.01, 0.01, seed=2)
            )


class TestHyperLogLog:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("adversarial", [False, True])
    def test_relative_error_within_three_sigma(self, seed, adversarial):
        hll = HyperLogLog(p=12, seed=seed)
        n = 40_000
        if adversarial:
            # Structured keys: consecutive integers stride-multiplied, the
            # classic weak-hash failure mode.
            for i in range(n):
                hll.add(i * 0x10001)
        else:
            for i in range(n):
                hll.add(hash64(i, seed=99))  # pre-whitened, uniform
        estimate = hll.cardinality()
        assert abs(estimate - n) / n <= 3 * hll.relative_error()

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 40), max_size=400),
        st.integers(min_value=1, max_value=7),
    )
    def test_merge_equals_single_stream(self, keys, pivot):
        a, b = HyperLogLog(p=10, seed=5), HyperLogLog(p=10, seed=5)
        single = HyperLogLog(p=10, seed=5)
        for i, key in enumerate(keys):
            (a if i % pivot == 0 else b).add(key)
            single.add(key)
        a.merge(b)
        assert a.to_bytes() == single.to_bytes()
        assert a.cardinality() == single.cardinality()

    @settings(max_examples=30, deadline=None, derandomize=True)
    @given(st.sets(st.integers(min_value=0, max_value=1 << 40), max_size=300))
    def test_small_range_is_nearly_exact(self, keys):
        hll = HyperLogLog(p=12, seed=1)
        for key in keys:
            hll.add(key)
        # Linear counting keeps small cardinalities within a few percent.
        assert abs(hll.cardinality() - len(keys)) <= max(3, 0.05 * len(keys))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_serialisation_round_trip(self, seed):
        hll = HyperLogLog(p=8, seed=seed)
        for i in range(2000):
            hll.add(i)
        restored = HyperLogLog.from_bytes(hll.to_bytes())
        assert restored.to_bytes() == hll.to_bytes()
        assert restored.cardinality() == hll.cardinality()


class TestBloomFilter:
    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(
        st.sets(st.integers(min_value=0, max_value=1 << 40), max_size=300),
        st.sampled_from(SEEDS),
    )
    def test_no_false_negatives(self, keys, seed):
        bloom = BloomFilter(capacity=2000, fp_rate=0.01, seed=seed)
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fp_rate_within_twice_analytic_bound(self, seed):
        capacity = 20_000
        bloom = BloomFilter(capacity=capacity, fp_rate=0.01, seed=seed)
        for i in range(capacity):
            bloom.add(i)
        probes = 40_000
        false_positives = sum(
            1 for i in range(capacity, capacity + probes) if i in bloom
        )
        assert false_positives / probes <= 2 * bloom.fp_bound()

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 40), max_size=300),
        st.integers(min_value=1, max_value=7),
    )
    def test_merge_equals_single_stream(self, keys, pivot):
        a = BloomFilter(1000, 0.02, seed=4)
        b = BloomFilter(1000, 0.02, seed=4)
        single = BloomFilter(1000, 0.02, seed=4)
        for i, key in enumerate(keys):
            (a if i % pivot == 0 else b).add(key)
            single.add(key)
        a.merge(b)
        assert a.to_bytes() == single.to_bytes()

    def test_add_reports_prior_membership(self):
        bloom = BloomFilter(1000, 0.01, seed=0)
        assert bloom.add("host-a") is False
        assert bloom.add("host-a") is True

    @pytest.mark.parametrize("seed", SEEDS)
    def test_serialisation_round_trip(self, seed):
        bloom = BloomFilter(500, 0.05, seed=seed)
        for i in range(400):
            bloom.add(i)
        restored = BloomFilter.from_bytes(bloom.to_bytes())
        assert restored.to_bytes() == bloom.to_bytes()
        assert all(i in restored for i in range(400))
