"""Northbound serving tier: routes, caching, errors, and error codes."""

import pytest

from repro import errors, telemetry
from repro.northbound import (
    LocalClient,
    NorthboundAPI,
    VersionedCache,
    build_demo_stack,
    http_status_for,
    make_etag,
)


@pytest.fixture(scope="module")
def stack():
    telemetry.configure(enabled=True)
    demo = build_demo_stack(horizon=5.0)
    demo.run(until=5.0)
    demo.enforce_block()
    yield demo
    telemetry.reset_telemetry()


@pytest.fixture()
def client(stack):
    return LocalClient(NorthboundAPI(stack.athena))


# -- error codes (the repro.errors contract) --------------------------------


def _error_classes():
    return [
        obj
        for obj in vars(errors).values()
        if isinstance(obj, type)
        and issubclass(obj, errors.ReproError)
    ]


def test_every_error_class_has_a_code():
    for cls in _error_classes():
        assert isinstance(cls.code, str) and cls.code, cls.__name__


def test_error_codes_are_unique():
    codes = [cls.code for cls in _error_classes()]
    assert len(codes) == len(set(codes))


def test_error_codes_mirror_the_class_hierarchy():
    # A subclass's code must extend its nearest repro base's code with a
    # dot — clients can prefix-match (``db.`` catches every DB failure).
    for cls in _error_classes():
        if cls is errors.ReproError:
            continue
        base = next(
            parent for parent in cls.__mro__[1:]
            if issubclass(parent, errors.ReproError)
        )
        if base is errors.ReproError:
            assert "." not in cls.code
        else:
            assert cls.code.startswith(base.code + "."), (
                f"{cls.__name__}.code={cls.code!r} does not extend "
                f"{base.__name__}.code={base.code!r}"
            )


def test_http_status_mapping():
    assert http_status_for(errors.QueryError("bad")) == 400
    assert http_status_for(errors.FeatureError("bad")) == 400
    assert http_status_for(errors.ReactionError("bad")) == 400
    assert http_status_for(errors.ShardDownError(0)) == 503
    assert http_status_for(errors.AllShardsDownError()) == 503
    assert http_status_for(errors.SimulationError("bad")) == 500


# -- cache unit behaviour ----------------------------------------------------


def test_versioned_cache_hit_miss_and_eviction():
    version = [0]
    cache = VersionedCache(lambda: version[0], max_entries=2)
    assert cache.get("a", cache.version()) is None
    cache.put("a", 0, "200 OK", [], b"x")
    assert cache.get("a", 0).body == b"x"
    version[0] = 1  # version moves: stale entry must not serve
    assert cache.get("a", cache.version()) is None
    cache.put("b", 1, "200 OK", [], b"y")
    cache.put("c", 1, "200 OK", [], b"z")  # evicts FIFO-oldest ("a")
    assert cache.evictions == 1
    assert len(cache) == 2


def test_etag_is_deterministic_and_strong():
    first = make_etag(("route", ()), (1, 2))
    assert first == make_etag(("route", ()), (1, 2))
    assert first != make_etag(("route", ()), (1, 3))
    assert first.startswith('"') and first.endswith('"')


# -- routes ------------------------------------------------------------------


def test_index_lists_every_route(client):
    data = client.get("/").json()["data"]
    paths = {row["path"] for row in data}
    assert "/api/features" in paths
    assert "/metrics" in paths


def test_status_reports_deployment_summary(client):
    data = client.get("/api/status").json()["data"]
    assert data["features_stored"] > 0
    assert data["models_generated"] >= 1
    assert "cache" in data


def test_features_pagination_and_filtering(client):
    body = client.get("/api/features", params={"limit": 3}).json()
    assert len(body["data"]) <= 3
    assert body["pagination"]["total"] >= body["pagination"]["returned"]
    flows = client.get(
        "/api/features", params={"scope": "flow", "limit": 5}
    ).json()
    assert all(doc["feature_scope"] == "flow" for doc in flows["data"])


def test_features_query_language(client):
    body = client.get(
        "/api/features",
        params={"q": "feature_scope == flow && FLOW_PACKET_COUNT > 0",
                "limit": 5},
    ).json()
    assert body["pagination"]["total"] > 0


def test_alerts_lists_enforced_reactions(client):
    body = client.get("/api/alerts").json()
    assert body["pagination"]["total"] >= 1
    assert body["data"][0]["reaction"]


def test_models_reports_validators(client):
    data = client.get("/api/models").json()["data"]
    assert data["models_generated"] >= 1
    assert data["online_validators"][0]["validated"] > 0


def test_algorithms_match_registry(client):
    from repro.ml.registry import list_algorithms

    data = client.get("/api/algorithms").json()["data"]
    assert {row["name"] for row in data} == set(list_algorithms())


def test_catalog_filters(client):
    body = client.get("/api/catalog", params={"scope": "flow"}).json()
    assert body["pagination"]["total"] > 0
    assert all(row["scope"] == "flow" for row in body["data"])


def test_switch_inventory_and_flows(client):
    switches = client.get("/api/switches").json()["data"]
    assert len(switches) == 3
    dpid = switches[0]["dpid"]
    flows = client.get(f"/api/switches/{dpid}/flows").json()
    assert flows["pagination"]["total"] == switches[0]["flows"]
    if flows["data"]:
        assert "match" in flows["data"][0]


def test_health_reports_shards(client):
    data = client.get("/api/health").json()["data"]
    assert data["status"] in ("ok", "degraded")
    assert len(data["shards"]) == 3
    assert all(shard["up"] for shard in data["shards"])


def test_metrics_prometheus_exposition(client):
    response = client.get("/metrics")
    assert response.status == 200
    assert response.header("Content-Type").startswith("text/plain")
    assert "athena_nb_api_requests_total" in response.text


# -- caching + conditional requests -----------------------------------------


def test_repeated_queries_hit_the_cache(stack):
    app = NorthboundAPI(stack.athena)
    client = LocalClient(app)
    client.get("/api/status")
    before = app.cache.hits
    client.get("/api/status")
    client.get("/api/status")
    assert app.cache.hits == before + 2


def test_if_none_match_returns_304(stack):
    app = NorthboundAPI(stack.athena)
    client = LocalClient(app)
    first = client.get("/api/features", params={"limit": 2})
    assert first.status == 200 and first.etag
    second = client.get(
        "/api/features", params={"limit": 2},
        headers={"If-None-Match": first.etag},
    )
    assert second.status == 304
    assert second.body == b""
    assert second.etag == first.etag


def test_304s_observable_in_telemetry(stack):
    app = NorthboundAPI(stack.athena)
    client = LocalClient(app)
    etag = client.get("/api/status").etag
    client.get("/api/status", headers={"If-None-Match": etag})
    snapshot = telemetry.get_telemetry().snapshot()
    by_name = {row["name"]: row for row in snapshot["metrics"]}
    assert by_name["athena_nb_api_not_modified_total"]["samples"]
    assert by_name["athena_nb_api_cache_hits_total"]["samples"]


def test_cache_invalidates_when_sim_state_moves(stack):
    app = NorthboundAPI(stack.athena)
    client = LocalClient(app)
    first = client.get("/api/status")
    stack.enforce_block("10.0.0.5")  # reactions_enforced moves the version
    second = client.get("/api/status")
    assert second.etag != first.etag
    third = client.get(
        "/api/status", headers={"If-None-Match": first.etag}
    )
    assert third.status == 200  # stale validator: full response again


def test_query_params_key_the_cache_separately(stack):
    app = NorthboundAPI(stack.athena)
    client = LocalClient(app)
    a = client.get("/api/features", params={"limit": 1})
    b = client.get("/api/features", params={"limit": 2})
    assert a.etag != b.etag


# -- error envelopes ---------------------------------------------------------


def test_unknown_route_is_typed_404(client):
    response = client.get("/api/nope")
    assert response.status == 404
    assert response.json()["error"]["code"] == "http.not_found"


def test_bad_query_string_is_typed_400(client):
    response = client.get("/api/features", params={"q": "FLOW_PACKET_COUNT >"})
    assert response.status == 400
    error = response.json()["error"]
    assert error["code"] == "db.query"
    assert error["error_class"] == "QueryError"


def test_bad_pagination_param_is_typed_400(client):
    response = client.get("/api/features", params={"limit": "many"})
    assert response.status == 400
    assert response.json()["error"]["code"] == "athena.api_param"


def test_unknown_switch_is_typed_400(client):
    response = client.get("/api/switches/99/flows")
    assert response.status == 400
    assert response.json()["error"]["code"] == "athena.api_param"


def test_write_methods_are_405(client):
    response = client.request("POST", "/api/status")
    assert response.status == 405
    assert response.json()["error"]["code"] == "http.method_not_allowed"


def test_shard_outage_maps_to_503(stack):
    app = NorthboundAPI(stack.athena)
    client = LocalClient(app)
    for shard in stack.athena.database.shards:
        stack.athena.database.fail_shard(shard.node_id)
    try:
        response = client.get("/api/features", params={"limit": 1})
        assert response.status == 503
        assert response.json()["error"]["code"] == "db.all_shards_down"
    finally:
        for shard in stack.athena.database.shards:
            stack.athena.database.recover_shard(shard.node_id)


def test_errors_are_not_cached(stack):
    app = NorthboundAPI(stack.athena)
    client = LocalClient(app)
    database = stack.athena.database
    for shard in database.shards:
        database.fail_shard(shard.node_id)
    try:
        assert client.get("/api/features", params={"limit": 9}).status == 503
    finally:
        for shard in database.shards:
            database.recover_shard(shard.node_id)
    # Same key after recovery must re-render, not replay the 503.
    assert client.get("/api/features", params={"limit": 9}).status == 200


# -- the real socket server -------------------------------------------------


def test_server_close_waits_for_inflight_responses():
    """`handle_request()` + `server_close()` (the CLI's --once mode) must
    not drop a response that is still being written: stdlib ThreadingMixIn
    only joins non-daemon handler threads, so the server tracks its own."""
    import threading
    import urllib.request

    from repro.northbound import make_api_server

    release = threading.Event()

    def slow_app(environ, start_response):
        release.wait(0.15)  # hold the response long enough to expose the race
        start_response("200 OK", [("Content-Type", "text/plain")])
        return [b"late body"]

    server = make_api_server(slow_app, port=0)
    port = server.server_address[1]
    got = {}

    def fetch():
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/", timeout=5
        ) as response:
            got["status"] = response.status
            got["body"] = response.read()

    client = threading.Thread(target=fetch, daemon=True)
    client.start()
    server.handle_request()
    server.server_close()
    # The contract: once server_close() returns, no handler thread is
    # still writing — the in-flight response has been fully sent.
    assert all(
        not thread.is_alive()
        for thread in vars(server).get("_handler_threads", [])
    )
    client.join(timeout=5)
    assert got == {"status": 200, "body": b"late body"}
