"""Per-checker unit tests for athena-lint, plus the catalog/UIManager
helpers the feature checker and reporters build on.

Each checker gets at least one clean fixture and one violating fixture;
the OpenFlow codec checker additionally runs over the real shipped trio
(which must be clean) and over a deliberately corrupted copy.
"""

import io
import os
import shutil
import textwrap

import pytest

from repro.analysis import ParsedModule
from repro.analysis.checkers import (
    DeterminismChecker,
    FeatureNameChecker,
    HotpathChecker,
    NorthboundChecker,
    OpenFlowCodecChecker,
    TelemetryChecker,
    default_checkers,
)
from repro.core.feature_manager import FeatureManager
from repro.core.features.catalog import FEATURE_CATALOG
from repro.core.query import Query
from repro.core.ui_manager import UIManager
from repro.errors import FeatureError

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_checker(checker, source, path="app/module.py"):
    module = ParsedModule.from_source(textwrap.dedent(source), path)
    return list(checker.check(module))


def rules_of(findings):
    return sorted(f.rule for f in findings)


class TestDefaultCheckers:
    def test_all_six_registered(self):
        names = {checker.name for checker in default_checkers()}
        assert names == {"determinism", "features", "hotpath", "northbound",
                        "openflow-codec", "telemetry"}

    def test_rule_ids_are_unique(self):
        seen = set()
        for checker in default_checkers():
            for rule in checker.rules:
                assert rule not in seen, f"duplicate rule id {rule}"
                seen.add(rule)


class TestDeterminismChecker:
    def test_wall_clock_flagged(self):
        findings = run_checker(
            DeterminismChecker(),
            """
            import time
            a = time.time()
            b = time.time_ns()
            """,
        )
        assert rules_of(findings) == ["ATH101", "ATH101"]

    def test_duration_profiling_allowed(self):
        findings = run_checker(
            DeterminismChecker(),
            """
            import time
            start = time.perf_counter()
            cpu = time.process_time()
            """,
        )
        assert findings == []

    def test_datetime_now_flagged(self):
        findings = run_checker(
            DeterminismChecker(),
            """
            import datetime
            from datetime import datetime as dt
            a = datetime.datetime.now()
            b = dt.utcnow()
            c = datetime.date.today()
            """,
        )
        assert rules_of(findings) == ["ATH102", "ATH102", "ATH102"]

    def test_stdlib_random_flagged_through_alias(self):
        findings = run_checker(
            DeterminismChecker(),
            """
            import random as rnd
            x = rnd.random()
            y = rnd.randint(0, 5)
            """,
        )
        assert rules_of(findings) == ["ATH103", "ATH103"]

    def test_numpy_global_state_flagged_seeded_generator_allowed(self):
        findings = run_checker(
            DeterminismChecker(),
            """
            import numpy as np
            bad = np.random.rand(4)
            unseeded = np.random.default_rng()
            seeded = np.random.default_rng(42)
            generator = np.random.Generator(np.random.PCG64(7))
            """,
        )
        assert rules_of(findings) == ["ATH104", "ATH104"]
        assert {f.line for f in findings} == {3, 4}

    def test_simkernel_is_exempt(self):
        findings = run_checker(
            DeterminismChecker(),
            """
            import time
            now = time.time()
            """,
            path="src/repro/simkernel/clock.py",
        )
        assert findings == []


class TestFeatureNameChecker:
    def test_known_names_clean(self):
        findings = run_checker(
            FeatureNameChecker(),
            """
            query.where("FLOW_PACKET_COUNT", ">", 100)
            query.sort_by("PORT_RX_BYTES")
            DDOS_FEATURES = ["PAIR_FLOW", "FLOW_BYTE_COUNT_VAR"]
            """,
        )
        assert findings == []

    def test_misspelled_catalog_name_flagged_with_suggestion(self):
        findings = run_checker(
            FeatureNameChecker(),
            'query.where("FLOW_PAKET_COUNT", ">", 100)\n',
        )
        assert rules_of(findings) == ["ATH201"]
        assert "did you mean 'FLOW_PACKET_COUNT'" in findings[0].message

    def test_var_siblings_resolve(self):
        findings = run_checker(
            FeatureNameChecker(),
            'p = preprocessor(["FLOW_PACKET_COUNT_VAR"])\n',
        )
        assert findings == []

    def test_textual_query_fieldnames_checked(self):
        findings = run_checker(
            FeatureNameChecker(),
            'q = q_text("FLOW_BYTE_KOUNT > 10 and switch_id == 3")\n',
        )
        assert rules_of(findings) == ["ATH201"]

    def test_preprocessor_weights_keys_checked(self):
        findings = run_checker(
            FeatureNameChecker(),
            """
            p = GeneratePreprocessor(
                features=["FLOW_PACKET_COUNT"],
                weights={"PORT_RX_BITES": 2.0},
            )
            """,
        )
        assert rules_of(findings) == ["ATH201"]
        assert "PORT_RX_BYTES" in findings[0].message

    def test_register_detector_features_checked(self):
        findings = run_checker(
            FeatureNameChecker(),
            """
            manager.register_detector(
                "fanout", learner, features=["SRC_FLOW_FANOUTT"],
            )
            """,
        )
        assert rules_of(findings) == ["ATH201"]
        assert "SRC_FLOW_FANOUT" in findings[0].message

    def test_register_detector_positional_features_checked(self):
        findings = run_checker(
            FeatureNameChecker(),
            'manager.register_detector("x", learner, ["FLOW_PAKET_COUNT"])\n',
        )
        assert rules_of(findings) == ["ATH201"]

    def test_register_detector_known_names_clean(self):
        findings = run_checker(
            FeatureNameChecker(),
            """
            manager.register_detector(
                "fanout", learner, features=["SRC_FLOW_FANOUT", "PAIR_FLOW"],
            )
            """,
        )
        assert findings == []

    def test_sketch_names_clean(self):
        findings = run_checker(
            FeatureNameChecker(),
            """
            query.where("SKETCH_UNIQUE_SRC_EST", ">", 1000)
            DDOS_FEATURES = ["SKETCH_SEEN_HOST_RATIO", "SKETCH_HH_PACKET_SHARE"]
            p = preprocessor(["SKETCH_UNIQUE_DST_PORT_EST"])
            """,
        )
        assert findings == []

    def test_misspelled_sketch_name_suggests_within_family(self):
        # The did-you-mean must come from the SKETCH_* family, not a
        # textually-closer name in another scope.
        findings = run_checker(
            FeatureNameChecker(),
            'query.where("SKETCH_UNIQ_SRC_EST", ">", 1000)\n',
        )
        assert rules_of(findings) == ["ATH201"]
        assert "did you mean 'SKETCH_UNIQUE_SRC_EST'" in findings[0].message

    def test_sketch_var_sibling_rejected(self):
        # Sketch windows are already per-sample deltas: no *_VAR variants
        # exist, and the checker must not invent them.
        findings = run_checker(
            FeatureNameChecker(),
            'p = preprocessor(["SKETCH_TOTAL_PACKETS_VAR"])\n',
        )
        assert rules_of(findings) == ["ATH201"]

    def test_unknown_index_field_is_a_warning(self):
        findings = run_checker(
            FeatureNameChecker(),
            'query.where("switch_idx", "==", 3)\n',
        )
        assert rules_of(findings) == ["ATH202"]
        assert findings[0].severity.value == "warning"
        assert "switch_id" in findings[0].message

    def test_index_fields_and_meta_clean(self):
        findings = run_checker(
            FeatureNameChecker(),
            """
            query.where("switch_id", "==", 3)
            query.where("_id", "!=", 0)
            rows = query.aggregate(["switch_id"], "FLOW_BYTE_COUNT", "sum")
            """,
        )
        assert findings == []


class TestNorthboundChecker:
    def test_correct_calls_clean(self):
        findings = run_checker(
            NorthboundChecker(),
            """
            docs = nb.RequestFeatures(query)
            model = nb.GenerateDetectionModel(
                query, prep, algo, documents=docs
            )
            algo = GenerateAlgorithm("kmeans", n_clusters=8)
            """,
        )
        assert findings == []

    def test_unknown_keyword_flagged_with_suggestion(self):
        findings = run_checker(
            NorthboundChecker(),
            "nb.GenerateDetectionModel(query, prep, algo, documentz=docs)\n",
        )
        assert rules_of(findings) == ["ATH301"]
        assert "did you mean 'documents'" in findings[0].message

    def test_too_many_positionals_flagged(self):
        findings = run_checker(
            NorthboundChecker(),
            "nb.RequestFeatures(query, extra, surplus)\n",
        )
        assert rules_of(findings) == ["ATH302"]

    def test_star_args_not_flagged(self):
        findings = run_checker(
            NorthboundChecker(),
            "nb.RequestFeatures(*args)\n",
        )
        assert findings == []

    def test_snake_case_sites_also_checked(self):
        findings = run_checker(
            NorthboundChecker(),
            "nb.request_features(query, tail)\n",
        )
        assert rules_of(findings) == ["ATH302"]

    def test_unknown_algorithm_flagged(self):
        findings = run_checker(
            NorthboundChecker(),
            'algo = GenerateAlgorithm("kmeanz")\n',
        )
        assert rules_of(findings) == ["ATH303"]
        assert "did you mean 'kmeans'" in findings[0].message

    def test_algorithm_name_keyword_form(self):
        findings = run_checker(
            NorthboundChecker(),
            'algo = Algorithm(name="dbscanx", params={})\n',
        )
        assert rules_of(findings) == ["ATH303"]


class TestOpenFlowCodecChecker:
    TRIO = ("messages.py", "constants.py", "serialization.py")

    def _shipped(self, stem="serialization"):
        path = os.path.join(REPO_ROOT, "src", "repro", "openflow", f"{stem}.py")
        return ParsedModule.parse(path, root=REPO_ROOT)

    def _corrupt_copy(self, tmp_path, mutate):
        package = tmp_path / "openflow"
        package.mkdir()
        for name in self.TRIO:
            shutil.copy(
                os.path.join(REPO_ROOT, "src", "repro", "openflow", name),
                package / name,
            )
        mutate(package)
        return ParsedModule.parse(
            str(package / "serialization.py"), root=str(tmp_path)
        )

    def test_shipped_trio_is_clean(self):
        assert list(OpenFlowCodecChecker().check(self._shipped())) == []

    def test_only_fires_on_serialization(self):
        assert list(OpenFlowCodecChecker().check(self._shipped("messages"))) == []

    def test_unregistered_class_flagged(self, tmp_path):
        def add_class(package):
            with open(package / "messages.py", "a") as handle:
                handle.write(
                    "\n\n@dataclass\nclass RoleRequest(OpenFlowMessage):\n"
                    "    role: int = 0\n"
                )

        module = self._corrupt_copy(tmp_path, add_class)
        findings = list(OpenFlowCodecChecker().check(module))
        assert rules_of(findings) == ["ATH401"]
        assert "RoleRequest" in findings[0].message

    def test_missing_constant_flagged(self, tmp_path):
        def drop_constant(package):
            path = package / "constants.py"
            source = path.read_text()
            path.write_text(source.replace("    BARRIER_REPLY = 19\n", ""))

        module = self._corrupt_copy(tmp_path, drop_constant)
        findings = list(OpenFlowCodecChecker().check(module))
        assert set(rules_of(findings)) == {"ATH403"}
        assert all("BARRIER_REPLY" in f.message for f in findings)
        # both messages.py and serialization.py reference the member
        assert {os.path.basename(f.path) for f in findings} == {
            "messages.py", "serialization.py",
        }

    def test_wire_type_mismatch_flagged(self, tmp_path):
        def swap_wire_type(package):
            path = package / "serialization.py"
            source = path.read_text()
            path.write_text(
                source.replace(
                    "    Hello: MessageType.HELLO,",
                    "    Hello: MessageType.ECHO_REQUEST,",
                    1,
                )
            )

        module = self._corrupt_copy(tmp_path, swap_wire_type)
        findings = list(OpenFlowCodecChecker().check(module))
        assert "ATH404" in rules_of(findings)


class TestCatalogHelpers:
    """Satellite: FEATURE_CATALOG.validate()/resolve() with did-you-mean."""

    def test_resolve_known_roundtrips(self):
        definition = FEATURE_CATALOG.resolve("FLOW_PACKET_COUNT")
        assert definition.name == "FLOW_PACKET_COUNT"

    def test_resolve_unknown_raises_with_nearest_match(self):
        with pytest.raises(FeatureError) as excinfo:
            FEATURE_CATALOG.resolve("FLOW_PAKET_COUNT")
        assert "FLOW_PAKET_COUNT" in str(excinfo.value)
        assert "FLOW_PACKET_COUNT" in str(excinfo.value)

    def test_validate_reports_only_unknown_names(self):
        with pytest.raises(FeatureError):
            FEATURE_CATALOG.validate(["FLOW_PACKET_COUNT", "NOT_A_FEATURE_X"])
        FEATURE_CATALOG.validate(["FLOW_PACKET_COUNT", "PAIR_FLOW"])

    def test_suggest_returns_none_for_gibberish(self):
        assert FEATURE_CATALOG.suggest("ZZZZQQQQ_WXYZ_123") is None

    def test_feature_manager_validates_query_fieldnames(self):
        good = Query().where("FLOW_PACKET_COUNT", ">", 1).where(
            "switch_id", "==", 2
        )
        FeatureManager.validate_query_features(good)
        bad = Query().where("FLOW_PAKET_COUNT", ">", 1)
        with pytest.raises(FeatureError, match="FLOW_PACKET_COUNT"):
            FeatureManager.validate_query_features(bad)


class TestUIManagerStream:
    """Satellite: UIManager writes to an injected stream."""

    def test_show_writes_to_injected_stream(self):
        sink = io.StringIO()
        ui = UIManager(stream=sink)
        ui.show("detection complete")
        assert "detection complete" in sink.getvalue()

    def test_alert_writes_to_injected_stream(self):
        sink = io.StringIO()
        ui = UIManager(stream=sink)
        ui.alert("nae-monitor", "SLA violated", severity="critical")
        assert "[CRITICAL] nae-monitor: SLA violated" in sink.getvalue()

    def test_silent_without_stream_or_echo(self, capsys):
        ui = UIManager()
        ui.show("quiet")
        assert capsys.readouterr().out == ""
        assert ui.last_output() == "quiet"


class TestTelemetryChecker:
    def test_raw_duration_clocks_flagged(self):
        findings = run_checker(
            TelemetryChecker(),
            """
            import time
            from time import process_time
            a = time.perf_counter()
            b = process_time()
            c = time.monotonic_ns()
            """,
        )
        assert rules_of(findings) == ["ATH501", "ATH501", "ATH501"]

    def test_sleep_flagged(self):
        findings = run_checker(
            TelemetryChecker(),
            """
            import time
            time.sleep(0.1)
            """,
        )
        assert rules_of(findings) == ["ATH502"]

    def test_telemetry_clocks_module_is_exempt(self):
        findings = run_checker(
            TelemetryChecker(),
            """
            import time
            now = time.perf_counter()
            """,
            path="src/repro/telemetry/clocks.py",
        )
        assert findings == []

    def test_simkernel_and_backends_are_exempt(self):
        source = """
            import time
            started = time.perf_counter()
            """
        for path in ("src/repro/simkernel/loop.py",
                     "src/repro/compute/backends/process.py"):
            assert run_checker(TelemetryChecker(), source, path=path) == []

    def test_stopwatch_usage_is_clean(self):
        findings = run_checker(
            TelemetryChecker(),
            """
            from repro.telemetry.clocks import Stopwatch
            watch = Stopwatch()
            elapsed = watch.elapsed()
            """,
        )
        assert findings == []

    def test_inline_suppression_works(self, tmp_path):
        from repro.cli import main as cli_main

        src = tmp_path / "profiled.py"
        src.write_text(
            "import time\n"
            "t = time.perf_counter()  # athena-lint: disable=ATH501\n"
        )
        assert cli_main(["lint", str(src), "--no-config"]) == 0

    def test_shipped_tree_is_clean(self):
        """The migrated call sites leave src/repro free of ATH5xx."""
        from repro.analysis import LintEngine

        engine = LintEngine(checkers=[TelemetryChecker()])
        report = engine.run([os.path.join(REPO_ROOT, "src", "repro")])
        assert [f.render() for f in report.findings] == []


class TestHotpathChecker:
    def test_unmarked_module_is_ignored(self):
        findings = run_checker(
            HotpathChecker(),
            """
            from dataclasses import fields

            def slow(obj, headers):
                for f in fields(obj):
                    if getattr(obj, f.name) != headers.get(f.name):
                        return False
                return True
            """,
        )
        assert findings == []

    def test_fields_per_call_flagged_in_hot_module(self):
        findings = run_checker(
            HotpathChecker(),
            """
            # athena-lint: hot-path
            from dataclasses import fields

            def matches(obj, headers):
                return [f.name for f in fields(obj)]
            """,
        )
        assert rules_of(findings) == ["ATH601"]

    def test_getattr_in_loop_flagged(self):
        findings = run_checker(
            HotpathChecker(),
            """
            # athena-lint: hot-path
            def matches(obj, headers):
                for name in obj.names:
                    if getattr(obj, name) != headers.get(name):
                        return False
                return True
            """,
        )
        assert rules_of(findings) == ["ATH602"]

    def test_construction_time_reflection_is_exempt(self):
        findings = run_checker(
            HotpathChecker(),
            """
            # athena-lint: hot-path
            from dataclasses import fields

            class Match:
                def __post_init__(self):
                    self._names = tuple(f.name for f in fields(self))
                    for name in self._names:
                        self._cache = getattr(self, name)

                def __init__(self):
                    self._all = [getattr(self, n) for n in fields(self)]
            """,
        )
        assert findings == []

    def test_getattr_outside_loop_is_clean(self):
        findings = run_checker(
            HotpathChecker(),
            """
            # athena-lint: hot-path
            def lookup(obj):
                return getattr(obj, "port", None)
            """,
        )
        assert findings == []

    def test_row_dict_in_loop_flagged_in_columnar_module(self):
        findings = run_checker(
            HotpathChecker(),
            """
            # athena-lint: hot-path columnar
            def extract(rows):
                out = []
                for row in rows:
                    out.append({"v": row[0], "w": row[1]})
                return out
            """,
        )
        assert rules_of(findings) == ["ATH603"]

    def test_row_dict_in_comprehension_flagged(self):
        findings = run_checker(
            HotpathChecker(),
            """
            # athena-lint: hot-path columnar
            def extract(rows):
                return [dict(v=row[0]) for row in rows]
            """,
        )
        assert rules_of(findings) == ["ATH603"]

    def test_dictcomp_inside_loop_flagged(self):
        findings = run_checker(
            HotpathChecker(),
            """
            # athena-lint: hot-path columnar
            def extract(rows, names):
                out = []
                for row in rows:
                    out.append({n: v for n, v in zip(names, row)})
                return out
            """,
        )
        assert rules_of(findings) == ["ATH603"]

    def test_function_level_dict_is_clean(self):
        """One dict per call is setup, not a per-row allocation."""
        findings = run_checker(
            HotpathChecker(),
            """
            # athena-lint: hot-path columnar
            def summarise(rows):
                totals = {"count": len(rows)}
                index = {name: i for i, name in enumerate(("a", "b"))}
                return totals, index
            """,
        )
        assert findings == []

    def test_plain_hot_path_module_skips_ath603(self):
        """ATH603 is the stricter columnar tier, not the base hot-path one."""
        findings = run_checker(
            HotpathChecker(),
            """
            # athena-lint: hot-path
            def extract(rows):
                return [{"v": row[0]} for row in rows]
            """,
        )
        assert findings == []

    def test_ath603_suppression_honored(self, tmp_path):
        from repro.cli import main as cli_main

        src = tmp_path / "frames.py"
        src.write_text(
            "# athena-lint: hot-path columnar\n"
            "def copy_documents(docs):\n"
            "    return [dict(doc) for doc in docs]"
            "  # athena-lint: disable=ATH603\n"
        )
        assert cli_main(["lint", str(src), "--no-config"]) == 0
        src.write_text(
            "# athena-lint: hot-path columnar\n"
            "def copy_documents(docs):\n"
            "    return [dict(doc) for doc in docs]\n"
        )
        assert cli_main(["lint", str(src), "--no-config"]) == 1

    def test_frame_module_carries_columnar_marker(self):
        frame_src = open(
            os.path.join(REPO_ROOT, "src", "repro", "distdb", "frame.py"),
            encoding="utf-8",
        ).read()
        assert "athena-lint: hot-path columnar" in frame_src

    def test_shipped_hot_modules_are_clean(self):
        """match.py / flowtable.py / distdb keep their compiled fast paths."""
        from repro.analysis import LintEngine

        engine = LintEngine(checkers=[HotpathChecker()], root=REPO_ROOT)
        report = engine.run([os.path.join(REPO_ROOT, "src", "repro")])
        assert [f.render() for f in report.findings] == []

    def test_reference_paths_carry_suppressions(self):
        """The kept slow paths are marked, not silently exempted."""
        match_src = open(
            os.path.join(REPO_ROOT, "src", "repro", "openflow", "match.py"),
            encoding="utf-8",
        ).read()
        assert "athena-lint: disable=ATH601" in match_src
        assert "athena-lint: hot-path" in match_src
