"""Northbound exposure of the streaming pipeline.

Covers ``/api/streaming/status`` (enabled and disabled views), streaming
alerts merged into ``/api/alerts``, and the long-poll contract of the
``wait``/``since`` parameters: the request drives the sim clock, returns
as soon as new alerts land, is clamped to ``MAX_ALERT_WAIT``, and is
never served from (or stored into) the response cache.
"""

import pytest

from repro import telemetry
from repro.chaos.scenarios import _build_stack
from repro.ml.online import SlidingWindowDetector
from repro.northbound import LocalClient, NorthboundAPI
from repro.northbound.api import MAX_ALERT_WAIT
from repro.workloads.flows import FlowSpec


class _Stack:
    def __init__(self):
        self.topo, self.athena, self.schedule = _build_stack()
        self.runtime = self.athena.enable_streaming()
        self.runtime.detectors.register_detector(
            "portscan_fanout",
            SlidingWindowDetector(column=0, threshold=10.0, window=16,
                                  min_hits=1),
            features=["SRC_FLOW_FANOUT"],
            cooldown=0.5,
        )
        # The portscan traffic from the equivalence scenarios: a fanout
        # burst from h1 plus one benign bidirectional flow from h2.
        for port in range(30):
            self.schedule.add_flow(
                FlowSpec(src_host="h1", dst_host="h5", sport=52000 + port,
                         dport=1000 + port, packet_size=64, rate_pps=4.0,
                         start=1.0 + port * 0.05, duration=1.5)
            )
        self.schedule.add_flow(
            FlowSpec(src_host="h2", dst_host="h6", sport=33000, dport=80,
                     rate_pps=10.0, start=1.0, duration=6.0,
                     bidirectional=True)
        )

    @property
    def sim(self):
        return self.topo.network.sim


@pytest.fixture(scope="module")
def stack():
    telemetry.configure(enabled=True)
    yield _Stack()
    telemetry.reset_telemetry()


@pytest.fixture(scope="module")
def app(stack):
    return NorthboundAPI(stack.athena)


@pytest.fixture()
def client(app):
    return LocalClient(app)


def test_status_reports_disabled_without_streaming():
    topo, athena, _schedule = _build_stack()
    client = LocalClient(NorthboundAPI(athena))
    data = client.get("/api/streaming/status").json()["data"]
    assert data == {"enabled": False}


def test_long_poll_drives_sim_until_alert(stack, client):
    assert stack.sim.now == 0.0
    body = client.get("/api/alerts", params={"wait": "8"}).json()
    assert stack.sim.now > 0.0  # the request advanced the clock
    assert body["pagination"]["total"] >= 1
    streaming = [
        row for row in body["data"] if row["alert_type"] == "streaming"
    ]
    assert streaming, "long-poll returned without a streaming alert"
    alert = streaming[0]
    assert alert["detector"] == "portscan_fanout"
    assert alert["source"] == stack.topo.network.hosts["h1"].ip
    assert "alert_id" in alert and "sim_time" in alert


def test_alert_ids_are_stable_indices(client):
    body = client.get("/api/alerts").json()
    ids = [row["alert_id"] for row in body["data"]]
    assert ids == list(range(len(ids)))


def test_long_poll_since_baseline_waits_full_horizon(stack, client):
    # A baseline far above the current count: nothing can satisfy it, so
    # the request drives the clock the full (clamped) wait horizon.
    before = stack.sim.now
    client.get("/api/alerts", params={"wait": "0.5", "since": "1000000"})
    assert stack.sim.now == pytest.approx(before + 0.5)


def test_long_poll_wait_is_clamped(stack, client):
    before = stack.sim.now
    client.get("/api/alerts", params={"wait": str(MAX_ALERT_WAIT * 100),
                                      "since": "1000000"})
    assert stack.sim.now <= before + MAX_ALERT_WAIT + 1e-9


def test_wait_zero_returns_immediately(stack, client):
    before = stack.sim.now
    response = client.get("/api/alerts", params={"wait": "0"})
    assert response.status == 200
    assert stack.sim.now == before


def test_wait_requests_bypass_the_cache(app, client):
    client.get("/api/alerts", params={"wait": "0"})
    hits_before = app.cache.hits
    client.get("/api/alerts", params={"wait": "0"})
    client.get("/api/alerts", params={"wait": "0"})
    assert app.cache.hits == hits_before
    # The plain (no-wait) view still caches as usual.
    client.get("/api/alerts")
    client.get("/api/alerts")
    assert app.cache.hits > hits_before


def test_bad_wait_is_typed_400(client):
    response = client.get("/api/alerts", params={"wait": "soon"})
    assert response.status == 400
    assert response.json()["error"]["code"] == "athena.api_param"
    negative = client.get("/api/alerts", params={"wait": "-1"})
    assert negative.status == 400


def test_streaming_status_reports_pipeline_state(stack, client):
    data = client.get("/api/streaming/status").json()["data"]
    assert data["enabled"] is True
    assert data["events_processed"] > 0
    assert data["events_by_kind"].get("packet_in", 0) > 0
    assert data["alerts_emitted"] >= 1
    names = [d["name"] for d in data["detectors"]]
    assert names == ["portscan_fanout"]
    assert data["detectors"][0]["events_seen"] > 0


def test_alerts_merge_reactions_and_streaming(stack, client):
    from repro.core import BlockReaction

    target = stack.topo.network.hosts["h2"].ip
    stack.athena.northbound.reactor(None, BlockReaction(target_ips=[target]))
    body = client.get("/api/alerts", params={"limit": "1000"}).json()
    kinds = {row["alert_type"] for row in body["data"]}
    assert kinds == {"reaction", "streaming"}
    # Reactions sort first: the combined stream is reactions then
    # streaming alerts, each block in emission order.
    types = [row["alert_type"] for row in body["data"]]
    assert types.index("streaming") == types.count("reaction")


def test_detector_registration_moves_state_version(stack, app, client):
    first = client.get("/api/streaming/status")
    stack.runtime.detectors.register_detector(
        "late_probe",
        SlidingWindowDetector(column=0, threshold=1e9, window=4, min_hits=1),
        features=["FLOW_PACKET_COUNT"],
    )
    second = client.get("/api/streaming/status")
    assert second.etag != first.etag
    assert [d["name"] for d in second.json()["data"]["detectors"]] == [
        "portscan_fanout", "late_probe",
    ]
    stack.runtime.detectors.unregister_detector("late_probe")
