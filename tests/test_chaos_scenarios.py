"""Chaos conformance suite: detection keeps working under canned faults.

For each detection scenario (port scan, DDoS) and each canned fault plan,
the suite asserts that

* the attacker is still detected (and, for the port scan, the benign host
  is still *not* flagged);
* recall stays within ``RECALL_TOLERANCE`` of the no-fault baseline;
* the documented fault actually applied (not silently skipped);
* replaying the same (plan, seed) yields a byte-identical deterministic
  telemetry snapshot, and a different seed on a stochastic plan does not.

Scenario runs are cached per (scenario, plan, seed) — each configuration
is simulated once no matter how many assertions consume it.
"""

import functools
import os

import pytest

from repro.chaos import canned_plan
from repro.chaos.scenarios import RECALL_TOLERANCE, run_scenario

PLANS = ("midrun-failover", "shard-loss", "link-flap")
# The ATHENA_CHAOS=1 CI leg widens the sweep to every canned plan.
if os.environ.get("ATHENA_CHAOS") == "1":
    PLANS = PLANS + ("total-db-outage", "noisy-southbound")


@functools.lru_cache(maxsize=None)
def _run(scenario, plan_name=None, seed=0):
    plan = canned_plan(plan_name) if plan_name else None
    return run_scenario(scenario, plan=plan, seed=seed)


@pytest.fixture(scope="module", params=("portscan", "ddos"))
def scenario(request):
    return request.param


class TestBaselines:
    def test_detection_fires_without_faults(self, scenario):
        result = _run(scenario)
        assert result.detected
        assert result.recall > 0.5
        assert result.faults_applied == 0

    def test_no_fault_degradation_without_faults(self, scenario):
        result = _run(scenario)
        # At most the warm-up round (no features generated yet) may be
        # skipped; nothing is ever buffered without an injected outage.
        assert result.degraded_rounds <= 1
        assert result.pending_writes == 0


class TestDetectionUnderFaults:
    @pytest.mark.parametrize("plan_name", PLANS)
    def test_attack_still_detected(self, scenario, plan_name):
        result = _run(scenario, plan_name)
        assert result.detected, (
            f"{scenario} under {plan_name}: attacker "
            f"{result.attacker_ip} not in {result.flagged_ips}"
        )

    @pytest.mark.parametrize("plan_name", PLANS)
    def test_recall_within_tolerance_of_baseline(self, scenario, plan_name):
        baseline = _run(scenario).recall
        result = _run(scenario, plan_name)
        assert result.recall >= baseline - RECALL_TOLERANCE, (
            f"{scenario} under {plan_name}: recall {result.recall:.3f} "
            f"fell more than {RECALL_TOLERANCE} below baseline "
            f"{baseline:.3f}"
        )

    @pytest.mark.parametrize("plan_name", PLANS)
    def test_faults_actually_applied(self, scenario, plan_name):
        result = _run(scenario, plan_name)
        assert result.faults_applied >= 1
        assert result.chaos_log

    def test_midrun_failover_recovers_the_instance(self, scenario):
        result = _run(scenario, "midrun-failover")
        assert result.recoveries >= 1
        assert any("rejoined as standby" in line for line in result.chaos_log)


class TestShardLossDuringFeatureWrites:
    def test_writes_survive_total_outage(self):
        # Every shard down while features stream in: the retry queue must
        # buffer the writes (never raising into the pipeline) and commit
        # them once the shards return.
        result = _run("ddos", "total-db-outage")
        assert result.detected
        assert result.faults_applied == 3
        assert result.recoveries == 3
        assert result.pending_writes == 0

    def test_detector_degrades_and_recovers(self):
        result = _run("ddos", "total-db-outage")
        assert result.degraded_rounds >= 1
        assert result.rounds_recovered >= 1

    def test_replica_lag_catches_up(self):
        result = _run("ddos", "shard-loss")
        assert any("replica_lag" in line for line in result.chaos_log)
        assert any(
            "writes applied" in line for line in result.chaos_log
        )


class TestDeterministicReplay:
    def test_same_plan_and_seed_is_byte_identical(self, scenario):
        first = _run.__wrapped__(scenario, "midrun-failover", seed=5)
        second = _run.__wrapped__(scenario, "midrun-failover", seed=5)
        assert first.snapshot_json == second.snapshot_json
        assert first.chaos_log == second.chaos_log
        assert first.flagged_ips == second.flagged_ips

    def test_stochastic_plan_replays_identically(self):
        first = _run.__wrapped__("ddos", "noisy-southbound", seed=21)
        second = _run.__wrapped__("ddos", "noisy-southbound", seed=21)
        assert first.snapshot_json == second.snapshot_json

    def test_different_seed_changes_stochastic_faults(self):
        first = _run("ddos", "noisy-southbound", seed=21)
        second = _run("ddos", "noisy-southbound", seed=22)
        assert first.snapshot_json != second.snapshot_json

    def test_snapshot_json_is_nonempty_and_parsable(self, scenario):
        import json

        result = _run(scenario, "midrun-failover")
        data = json.loads(result.snapshot_json)
        assert data
