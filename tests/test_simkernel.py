"""Tests for the discrete-event kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.simkernel import EventQueue, SeededRng, SimClock, Simulator


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            SimClock(-1.0)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_rewind_rejected(self):
        clock = SimClock(2.0)
        with pytest.raises(SimulationError):
            clock.advance_to(1.0)

    def test_advance_by(self):
        clock = SimClock(1.0)
        clock.advance_by(0.5)
        assert clock.now == 1.5

    def test_negative_delta_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().advance_by(-0.1)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(3.0, lambda: fired.append("c"))
        while (event := queue.pop()) is not None:
            event.action()
        assert fired == ["a", "b", "c"]

    def test_fifo_among_simultaneous(self):
        queue = EventQueue()
        fired = []
        for i in range(5):
            queue.push(1.0, lambda i=i: fired.append(i))
        while (event := queue.pop()) is not None:
            event.action()
        assert fired == [0, 1, 2, 3, 4]

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        handle.cancel()
        assert queue.pop() is None

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        handle.cancel()
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(4.0, lambda: None)
        assert queue.peek_time() == 4.0


class TestSimulator:
    def test_run_drains_queue(self):
        sim = Simulator()
        fired = []
        sim.at(1.0, lambda: fired.append(1))
        sim.at(2.0, lambda: fired.append(2))
        assert sim.run() == 2
        assert fired == [1, 2]
        assert sim.now == 2.0

    def test_after_schedules_relative(self):
        sim = Simulator(start=10.0)
        sim.after(5.0, lambda: None)
        sim.run()
        assert sim.now == 15.0

    def test_past_scheduling_rejected(self):
        sim = Simulator(start=5.0)
        with pytest.raises(SimulationError):
            sim.at(1.0, lambda: None)

    def test_run_until_horizon(self):
        sim = Simulator()
        fired = []
        sim.at(1.0, lambda: fired.append(1))
        sim.at(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if sim.now < 3.0:
                sim.after(1.0, chain)

        sim.at(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_every_repeats(self):
        sim = Simulator()
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now), until=5.0)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_max_events(self):
        sim = Simulator()
        for i in range(10):
            sim.at(float(i + 1), lambda: None)
        assert sim.run(max_events=3) == 3
        assert sim.pending == 7

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.at(1.0, nested)
        sim.run()
        assert len(errors) == 1

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_events_fire_in_order_property(self, times):
        sim = Simulator()
        fired = []
        for t in times:
            sim.at(t, lambda t=t: fired.append(t))
        sim.run()
        assert fired == sorted(fired)


class TestSeededRng:
    def test_deterministic(self):
        a = SeededRng(42).uniform(size=10)
        b = SeededRng(42).uniform(size=10)
        assert (a == b).all()

    def test_children_independent_of_registration_order(self):
        root1 = SeededRng(1)
        x = root1.child("x").uniform(size=4)
        root2 = SeededRng(1)
        _ = root2.child("y").uniform(size=4)
        x2 = root2.child("x").uniform(size=4)
        assert (x == x2).all()

    def test_different_seeds_differ(self):
        assert not (
            SeededRng(1).uniform(size=8) == SeededRng(2).uniform(size=8)
        ).all()

    def test_child_differs_from_parent(self):
        root = SeededRng(3)
        child = root.child("c")
        assert not (
            SeededRng(3).uniform(size=8) == child.uniform(size=8)
        ).all()
