"""The telemetry subsystem: registry, tracing, profiling, exposition.

Covers the metric primitives (label semantics, cardinality cap, bucket
math), the disabled-mode null fast path, span nesting and exception
safety, the exposition formats (Prometheus text golden output), the
EventBus no-double-count regression, the compute JobReport fold-in, and
the determinism contract: two identical simulated runs must produce
identical deterministic-only snapshots.
"""

import json

import pytest

from repro.compute import ComputeCluster, PartitionedDataset
from repro.controller import ControllerCluster, ReactiveForwarding
from repro.controller.events import ControllerEvent, EventBus, PacketInEvent
from repro.core import AthenaDeployment
from repro.dataplane.topologies import linear_topology
from repro.errors import TelemetryError
from repro.telemetry import (
    NULL_INSTRUMENT,
    MetricsRegistry,
    StageProfiler,
    Telemetry,
    Tracer,
    configure,
    get_telemetry,
    reset_telemetry,
    timed,
    to_json,
    to_prometheus_text,
)
from repro.workloads.flows import FlowSpec, TrafficSchedule


@pytest.fixture(autouse=True)
def _restore_telemetry():
    """Every test leaves the process-wide facade as it found it."""
    yield
    reset_telemetry()


class TestRegistry:
    def test_counter_semantics(self):
        reg = MetricsRegistry(enabled=True)
        counter = reg.counter("athena_test_events_total", "Events.")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        with pytest.raises(TelemetryError):
            counter.inc(-1)

    def test_gauge_semantics(self):
        reg = MetricsRegistry(enabled=True)
        gauge = reg.gauge("athena_test_depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6

    def test_labelled_counter_sums_children(self):
        reg = MetricsRegistry(enabled=True)
        counter = reg.counter(
            "athena_test_msgs_total", labelnames=("direction",)
        )
        counter.labels(direction="in").inc(2)
        counter.labels(direction="out").inc(3)
        assert counter.value == 5
        # Recording on the labelled parent itself is a usage error.
        with pytest.raises(TelemetryError):
            counter.inc()
        # As is labels() on an unlabelled instrument...
        plain = reg.counter("athena_test_plain_total")
        with pytest.raises(TelemetryError):
            plain.labels(direction="in")
        # ...and a wrong label set.
        with pytest.raises(TelemetryError):
            counter.labels(dir="in")

    def test_registration_conflicts(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("athena_test_x_total")
        with pytest.raises(TelemetryError):
            reg.gauge("athena_test_x_total")
        with pytest.raises(TelemetryError):
            reg.counter("athena_test_x_total", labelnames=("a",))
        with pytest.raises(TelemetryError):
            reg.counter("Not-A-Metric")
        # Same name, same schema: the existing instrument is shared.
        assert reg.counter("athena_test_x_total") is reg.get(
            "athena_test_x_total"
        )

    def test_cardinality_cap_collapses_to_overflow(self):
        reg = MetricsRegistry(enabled=True, max_label_sets=2)
        counter = reg.counter("athena_test_flows_total", labelnames=("src",))
        counter.labels(src="a").inc()
        counter.labels(src="b").inc()
        overflow = counter.labels(src="c")
        counter.labels(src="d").inc()
        assert counter.labels(src="e") is overflow
        assert counter.dropped_label_sets == 3
        samples = counter.collect()["samples"]
        assert len(samples) == 3  # a, b, and the single _overflow child
        assert {"src": "_overflow"} in [s["labels"] for s in samples]

    def test_histogram_bucket_math(self):
        reg = MetricsRegistry(enabled=True)
        hist = reg.histogram("athena_test_seconds", buckets=(0.1, 1.0))
        hist.observe(0.1)  # le semantics: equal to the bound lands IN it
        hist.observe(0.5)
        hist.observe(5.0)  # above the last bound: +Inf
        sample = hist.collect()["samples"][0]
        assert sample["buckets"] == [[0.1, 1], [1.0, 2], ["+Inf", 3]]
        assert sample["count"] == 3
        assert sample["sum"] == pytest.approx(5.6)
        assert hist.mean == pytest.approx(5.6 / 3)
        with pytest.raises(TelemetryError):
            reg.histogram("athena_test_bad_seconds", buckets=(1.0, 1.0))

    def test_reset_keeps_bindings(self):
        reg = MetricsRegistry(enabled=True)
        child = reg.counter(
            "athena_test_r_total", labelnames=("k",)
        ).labels(k="a")
        child.inc(7)
        reg.reset()
        assert child.value == 0
        child.inc()  # the pre-reset reference still records
        assert child.value == 1

    def test_snapshot_sorted_and_deterministic_filter(self):
        reg = MetricsRegistry(enabled=True)
        reg.histogram("athena_test_wall_seconds").observe(0.1)
        reg.counter("athena_test_a_total").inc()
        names = [m["name"] for m in reg.snapshot()]
        assert names == sorted(names)
        kept = [m["name"] for m in reg.snapshot(deterministic_only=True)]
        assert kept == ["athena_test_a_total"]


class TestDisabledFastPath:
    def test_factories_return_the_shared_null(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("athena_test_a_total") is NULL_INSTRUMENT
        assert reg.gauge("athena_test_b") is NULL_INSTRUMENT
        assert reg.histogram("athena_test_c_seconds") is NULL_INSTRUMENT
        assert NULL_INSTRUMENT.labels(anything="goes") is NULL_INSTRUMENT
        NULL_INSTRUMENT.inc()
        NULL_INSTRUMENT.observe(1.0)
        with NULL_INSTRUMENT.time():
            pass
        assert NULL_INSTRUMENT.value == 0.0
        assert reg.snapshot() == []

    def test_disabled_facade_snapshots_empty(self):
        tel = Telemetry(enabled=False)
        with tel.span("ignored"):
            pass
        snap = tel.snapshot()
        assert snap == {"enabled": False, "metrics": [], "spans": []}

    def test_configure_and_env_default(self, monkeypatch):
        monkeypatch.delenv("ATHENA_TELEMETRY", raising=False)
        reset_telemetry()
        assert not get_telemetry().enabled
        assert configure(enabled=True) is get_telemetry()
        assert get_telemetry().enabled
        monkeypatch.setenv("ATHENA_TELEMETRY", "1")
        reset_telemetry()
        assert get_telemetry().enabled


class TestTracing:
    def test_span_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.finished[0], tracer.finished[1]
        assert (inner.name, inner.parent, inner.depth) == ("inner", "outer", 1)
        assert (outer.name, outer.parent, outer.depth) == ("outer", None, 0)
        assert tracer.spans_started == 2

    def test_span_exception_safety(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        record = tracer.finished[-1]
        assert record.error == "ValueError"
        assert tracer.spans_errored == 1
        assert tracer._stack == []  # the stack unwound cleanly

    def test_sim_clock_and_deterministic_filter(self):
        ticks = iter([10.0, 12.5])
        tracer = Tracer(sim_time_source=lambda: next(ticks))
        with tracer.span("work") as span:
            span.set_attribute("rows", 42)
        entry = tracer.snapshot(deterministic_only=True)[0]
        assert entry["sim_start"] == 10.0
        assert entry["sim_seconds"] == 2.5
        assert entry["attributes"] == {"rows": 42}
        assert "wall_seconds" not in entry
        assert "wall_seconds" in tracer.snapshot()[0]

    def test_ring_buffer_bounds_memory(self):
        tracer = Tracer(ring_size=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [r.name for r in tracer.finished] == ["s2", "s3", "s4"]


class TestProfiling:
    def test_timed_rebinds_to_the_active_registry(self):
        tel_a = configure(enabled=True)

        @timed("athena_test_fn_seconds")
        def work():
            return 1

        assert work() == 1
        assert tel_a.registry.get("athena_test_fn_seconds").count == 1
        tel_b = configure(enabled=True)  # fresh facade: lazy re-binding
        assert work() == 1
        assert tel_b.registry.get("athena_test_fn_seconds").count == 1
        assert tel_a.registry.get("athena_test_fn_seconds").count == 1

    def test_stage_profiler_aggregates_per_stage(self):
        reg = MetricsRegistry(enabled=True)
        profiler = StageProfiler(
            metric="athena_test_stage_seconds", registry=reg
        )
        for _ in range(2):
            with profiler.stage("normalise"):
                pass
        with profiler.stage("cluster"):
            pass
        hist = reg.get("athena_test_stage_seconds")
        assert hist.labels(stage="normalise").count == 2
        assert hist.labels(stage="cluster").count == 1


class TestExposition:
    def _snapshot(self):
        reg = MetricsRegistry(enabled=True)
        counter = reg.counter(
            "athena_test_events_total", "Events.", labelnames=("kind",)
        )
        counter.labels(kind="a").inc(2)
        hist = reg.histogram("athena_test_seconds", "Secs.", buckets=(0.5, 1.0))
        hist.observe(0.25)
        hist.observe(2.0)
        return {"enabled": True, "metrics": reg.snapshot(), "spans": []}

    def test_prometheus_text_golden(self):
        assert to_prometheus_text(self._snapshot()) == (
            "# HELP athena_test_events_total Events.\n"
            "# TYPE athena_test_events_total counter\n"
            'athena_test_events_total{kind="a"} 2\n'
            "# HELP athena_test_seconds Secs.\n"
            "# TYPE athena_test_seconds histogram\n"
            'athena_test_seconds_bucket{le="0.5"} 1\n'
            'athena_test_seconds_bucket{le="1"} 1\n'
            'athena_test_seconds_bucket{le="+Inf"} 2\n'
            "athena_test_seconds_sum 2.25\n"
            "athena_test_seconds_count 2\n"
        )

    def test_json_is_stable(self):
        snap = self._snapshot()
        first, second = to_json(snap), to_json(snap)
        assert first == second
        decoded = json.loads(first)
        assert decoded["metrics"][0]["name"] == "athena_test_events_total"


class TestEventBusDelivery:
    def test_duplicate_subscription_delivers_once(self):
        bus = EventBus()
        seen = []
        bus.subscribe(PacketInEvent, seen.append)
        bus.subscribe(PacketInEvent, seen.append)  # idempotent
        bus.publish(PacketInEvent(dpid=1))
        assert len(seen) == 1

    def test_base_and_concrete_subscription_delivers_once(self):
        bus = EventBus()
        seen = []
        bus.subscribe(PacketInEvent, seen.append)
        bus.subscribe(ControllerEvent, seen.append)
        bus.publish(PacketInEvent(dpid=1))
        assert len(seen) == 1
        # A base-only listener still sees derived events.
        base_seen = []
        bus.subscribe(ControllerEvent, base_seen.append)
        bus.publish(PacketInEvent(dpid=2))
        assert len(base_seen) == 1


class TestComputeFoldIn:
    def test_job_reports_fold_into_counters(self):
        registry = configure(enabled=True).registry
        cluster = ComputeCluster(n_workers=2)
        dataset = PartitionedDataset.from_records(list(range(8)), 4)
        report = cluster.run_map(dataset, lambda part: sum(part), sum)
        local = cluster.run_local(dataset, lambda part: sum(part), sum)
        assert report.result == local.result == 28
        jobs = registry.get("athena_compute_jobs_total")
        assert jobs.labels(backend=report.backend).value == 1
        assert jobs.labels(backend="local").value == 1
        tasks = registry.get("athena_compute_tasks_total")
        assert tasks.value == report.n_tasks + local.n_tasks
        retried = registry.get("athena_compute_tasks_retried_total")
        assert retried.value == report.tasks_retried
        wall = registry.get("athena_compute_job_wall_seconds")
        assert wall.labels(backend=report.backend).count == 1


def _run_scenario():
    """One deterministic mini-run; returns its deterministic snapshot."""
    telemetry = configure(enabled=True)
    topo = linear_topology(n_switches=3, hosts_per_switch=2)
    cluster = ControllerCluster(topo.network, n_instances=1)
    cluster.adopt_all()
    cluster.start(poll=False)
    ReactiveForwarding().activate(cluster)
    athena = AthenaDeployment(cluster, athena_poll_interval=1.0)
    athena.start()
    schedule = TrafficSchedule(topo.network)
    schedule.prime_arp()
    schedule.add_flow(
        FlowSpec(src_host="h1", dst_host="h5", rate_pps=20.0,
                 start=0.5, duration=1.5, bidirectional=True)
    )
    topo.network.sim.run(until=2.5)
    return telemetry.snapshot(deterministic_only=True)


class TestDeterminism:
    def test_identical_runs_produce_identical_snapshots(self):
        first = _run_scenario()
        second = _run_scenario()
        assert to_json(first) == to_json(second)
        # And the run actually recorded southbound + feature activity.
        by_name = {m["name"]: m for m in first["metrics"]}
        assert by_name["athena_southbound_messages_total"]["samples"]
        total = sum(
            s["value"]
            for s in by_name["athena_feature_records_total"]["samples"]
        )
        assert total > 0
