"""Smoke tests: every example script runs end-to-end.

Each example is executed in-process (``runpy``) with stdout captured, so a
broken public API surfaces here even if no unit test touches it the same
way the examples do.
"""

import runpy
import sys
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def _run_example(name: str, argv=None, capsys=None):
    path = EXAMPLES_DIR / name
    old_argv = sys.argv
    sys.argv = [str(path)] + list(argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run_example("quickstart.py", capsys=capsys)
        assert "top flows by packet count" in out
        assert "blocked" in out

    def test_ddos_detection(self, capsys):
        out = _run_example("ddos_detection.py", argv=["0.0005"], capsys=capsys)
        assert "Detection Rate" in out
        assert "Logistic Regression" in out

    def test_lfa_mitigation(self, capsys):
        out = _run_example("lfa_mitigation.py", capsys=capsys)
        assert "true bots flagged   : 3/3" in out
        assert "benign false alarms : 0" in out

    def test_nae_monitoring(self, capsys):
        out = _run_example("nae_monitoring.py", capsys=capsys)
        assert "SLA violations" in out
        assert "post activation, switch 6" in out

    def test_control_plane_anomaly(self, capsys):
        out = _run_example("control_plane_anomaly.py", capsys=capsys)
        assert "anomalies raised" in out
        assert "first alarm" in out

    def test_distributed_deployment(self, capsys):
        out = _run_example("distributed_deployment.py", capsys=capsys)
        assert "LLDP discovered 48 links" in out
        assert "failed over" in out
