"""Tests for flow-table semantics (priority, modify/delete, expiry)."""

import pytest
from hypothesis import given, strategies as st

from repro.dataplane.flowtable import FlowTable
from repro.errors import DataPlaneError
from repro.openflow import ActionDrop, ActionOutput, FlowRemovedReason, Match
from repro.openflow.flow import FlowEntry


def _entry(priority=10, actions=None, **match_fields):
    return FlowEntry(
        match=Match.from_dict(match_fields),
        priority=priority,
        actions=actions or [ActionOutput(port=1)],
    )


class TestLookup:
    def test_highest_priority_wins(self):
        table = FlowTable()
        low = table.insert(_entry(priority=1, ip_src="10.0.0.1"), now=0.0)
        high = table.insert(_entry(priority=99, ip_src="10.0.0.1"), now=0.0)
        assert table.lookup({"ip_src": "10.0.0.1"}) is high
        assert low in table.entries

    def test_specificity_breaks_priority_ties(self):
        table = FlowTable()
        loose = table.insert(_entry(priority=10), now=0.0)
        tight = table.insert(_entry(priority=10, ip_src="10.0.0.1"), now=0.0)
        assert table.lookup({"ip_src": "10.0.0.1"}) is tight
        assert table.lookup({"ip_src": "10.0.0.9"}) is loose

    def test_miss_returns_none(self):
        table = FlowTable()
        table.insert(_entry(ip_src="10.0.0.1"), now=0.0)
        assert table.lookup({"ip_src": "99.9.9.9"}) is None

    def test_lookup_counters(self):
        table = FlowTable()
        table.insert(_entry(ip_src="10.0.0.1"), now=0.0)
        table.lookup({"ip_src": "10.0.0.1"})
        table.lookup({"ip_src": "2.2.2.2"})
        assert table.lookup_count == 2
        assert table.matched_count == 1

    def test_duplicate_match_priority_replaces(self):
        table = FlowTable()
        table.insert(_entry(priority=5, ip_src="10.0.0.1"), now=0.0)
        replacement = table.insert(
            _entry(priority=5, actions=[ActionDrop()], ip_src="10.0.0.1"), now=1.0
        )
        assert len(table) == 1
        assert table.lookup({"ip_src": "10.0.0.1"}) is replacement

    def test_capacity_enforced(self):
        table = FlowTable(max_entries=2)
        table.insert(_entry(tcp_src=1), now=0.0)
        table.insert(_entry(tcp_src=2), now=0.0)
        with pytest.raises(DataPlaneError):
            table.insert(_entry(tcp_src=3), now=0.0)


class TestModifyDelete:
    def test_non_strict_modify_covers_subsets(self):
        table = FlowTable()
        table.insert(_entry(ip_src="10.0.0.1", tcp_dst=80), now=0.0)
        table.insert(_entry(ip_src="10.0.0.1", tcp_dst=81), now=0.0)
        touched = table.modify(Match(ip_src="10.0.0.1"), [ActionDrop()])
        assert touched == 2
        assert all(e.actions == [ActionDrop()] for e in table.entries)

    def test_strict_modify_requires_exact(self):
        table = FlowTable()
        table.insert(_entry(priority=7, ip_src="10.0.0.1"), now=0.0)
        assert (
            table.modify(
                Match(ip_src="10.0.0.1"), [ActionDrop()], priority=8, strict=True
            )
            == 0
        )
        assert (
            table.modify(
                Match(ip_src="10.0.0.1"), [ActionDrop()], priority=7, strict=True
            )
            == 1
        )

    def test_non_strict_delete(self):
        table = FlowTable()
        table.insert(_entry(ip_src="10.0.0.1", tcp_dst=80), now=0.0)
        table.insert(_entry(ip_src="10.0.0.2", tcp_dst=80), now=0.0)
        removed = table.delete(Match(ip_src="10.0.0.1"))
        assert len(removed) == 1
        assert len(table) == 1

    def test_delete_all_with_wildcard(self):
        table = FlowTable()
        for i in range(5):
            table.insert(_entry(tcp_src=i), now=0.0)
        assert len(table.delete(Match())) == 5
        assert len(table) == 0

    def test_delete_filtered_by_out_port(self):
        table = FlowTable()
        table.insert(
            _entry(actions=[ActionOutput(port=1)], ip_src="10.0.0.1"), now=0.0
        )
        table.insert(
            _entry(actions=[ActionOutput(port=2)], ip_src="10.0.0.2"), now=0.0
        )
        removed = table.delete(Match(), out_port=2)
        assert len(removed) == 1
        assert removed[0].match.ip_src == "10.0.0.2"


class TestExpiry:
    def test_idle_expiry(self):
        table = FlowTable()
        entry = _entry(ip_src="10.0.0.1")
        entry.idle_timeout = 2.0
        table.insert(entry, now=0.0)
        assert table.expire(1.9) == []
        expired = table.expire(2.1)
        assert [(entry, FlowRemovedReason.IDLE_TIMEOUT)] == expired
        assert len(table) == 0

    def test_idle_refreshed_by_traffic(self):
        table = FlowTable()
        entry = _entry(ip_src="10.0.0.1")
        entry.idle_timeout = 2.0
        table.insert(entry, now=0.0)
        entry.stats.record(100, now=1.5)
        assert table.expire(3.0) == []
        assert table.expire(3.6)[0][1] == FlowRemovedReason.IDLE_TIMEOUT

    def test_hard_beats_idle(self):
        table = FlowTable()
        entry = _entry(ip_src="10.0.0.1")
        entry.idle_timeout = 1.0
        entry.hard_timeout = 1.0
        table.insert(entry, now=0.0)
        assert table.expire(1.5)[0][1] == FlowRemovedReason.HARD_TIMEOUT


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),  # priority
                st.integers(min_value=0, max_value=3),  # tcp_dst
            ),
            min_size=1,
            max_size=20,
        ),
        st.integers(min_value=0, max_value=3),
    )
    def test_lookup_returns_max_priority_covering_entry(self, specs, probe):
        """The winner always has the maximum priority among covering entries."""
        table = FlowTable()
        for i, (priority, dst) in enumerate(specs):
            table.insert(
                FlowEntry(
                    match=Match(tcp_dst=dst),
                    priority=priority,
                    actions=[ActionOutput(port=i)],
                ),
                now=0.0,
            )
        headers = {"tcp_dst": probe}
        winner = table.lookup(headers)
        covering = [e for e in table.entries if e.match.matches(headers)]
        if not covering:
            assert winner is None
        else:
            assert winner is not None
            assert winner.priority == max(e.priority for e in covering)

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=30))
    def test_insert_then_delete_all_leaves_empty(self, ports):
        table = FlowTable()
        for i, port in enumerate(ports):
            table.insert(
                FlowEntry(match=Match(tcp_src=i), priority=port), now=0.0
            )
        table.delete(Match())
        assert len(table) == 0


def _exact_headers(i=0, tcp_dst=80):
    """A concrete value for every match field (exact-index territory)."""
    return {
        "in_port": (i % 4) + 1,
        "eth_src": f"00:00:00:00:00:{i % 256:02x}",
        "eth_dst": f"00:00:00:00:01:{i % 256:02x}",
        "eth_type": 0x0800,
        "vlan_id": 0,
        "ip_src": f"10.0.0.{i % 256}",
        "ip_dst": f"10.1.0.{i % 256}",
        "ip_proto": 6,
        "ip_tos": 0,
        "tcp_src": 1024 + i,
        "tcp_dst": tcp_dst,
    }


def _exact_entry(i=0, priority=10, tcp_dst=80, **overrides):
    entry = FlowEntry(
        match=Match.exact_from_headers(_exact_headers(i, tcp_dst)),
        priority=priority,
        actions=[ActionOutput(port=1)],
    )
    for name, value in overrides.items():
        setattr(entry, name, value)
    return entry


@pytest.fixture(params=[True, False], ids=["fast", "slow"])
def fast(request):
    return request.param


class TestFastPathSemantics:
    """The indexed fast path keeps exact OpenFlow winner semantics."""

    def test_equal_priority_exact_beats_wildcard(self, fast):
        table = FlowTable(fast_path=fast)
        exact = table.insert(_exact_entry(priority=10), now=0.0)
        table.insert(_entry(priority=10, tcp_dst=80), now=0.0)
        assert table.lookup(_exact_headers()) is exact

    def test_exact_shadowed_by_higher_priority_wildcard(self, fast):
        table = FlowTable(fast_path=fast)
        exact = table.insert(_exact_entry(priority=10), now=0.0)
        shadow = table.insert(_entry(priority=20, tcp_dst=80), now=0.0)
        assert table.lookup(_exact_headers()) is shadow
        # A probe the wildcard does not cover still reaches the exact entry.
        assert table.lookup(_exact_headers(tcp_dst=81)) is None
        table.delete(Match(tcp_dst=80), priority=20, strict=True)
        assert table.lookup(_exact_headers()) is exact

    def test_wildcard_between_exact_priorities(self, fast):
        table = FlowTable(fast_path=fast)
        table.insert(_exact_entry(priority=5), now=0.0)
        high = table.insert(_exact_entry(priority=30), now=0.0)
        table.insert(_entry(priority=20, tcp_dst=80), now=0.0)
        assert table.lookup(_exact_headers()) is high

    def test_expiry_order_follows_precedence(self, fast):
        table = FlowTable(fast_path=fast)
        entries = []
        for i, priority in enumerate((5, 50, 20)):
            entry = _exact_entry(i, priority=priority, hard_timeout=1.0)
            entries.append(table.insert(entry, now=0.0))
        expired = table.expire(2.0)
        assert [e for e, _reason in expired] == sorted(
            entries, key=FlowEntry.sort_key
        )
        assert {reason for _e, reason in expired} == {
            FlowRemovedReason.HARD_TIMEOUT
        }
        assert len(table) == 0

    def test_heap_reschedules_after_idle_refresh(self, fast):
        table = FlowTable(fast_path=fast)
        entry = table.insert(_exact_entry(idle_timeout=2.0), now=0.0)
        assert table.expire(1.5) == []
        entry.stats.record(100, now=1.5)
        # The original deadline (2.0) passes without eviction...
        assert table.expire(2.5) == []
        # ...and the refreshed one fires.
        assert table.expire(3.6) == [(entry, FlowRemovedReason.IDLE_TIMEOUT)]

    def test_expired_entry_not_returned_by_lookup(self, fast):
        table = FlowTable(fast_path=fast)
        table.insert(_exact_entry(hard_timeout=1.0), now=0.0)
        table.expire(2.0)
        assert table.lookup(_exact_headers()) is None

    def test_strict_modify_after_insert_keeps_order(self, fast):
        table = FlowTable(fast_path=fast)
        exact = table.insert(_exact_entry(priority=10), now=0.0)
        table.insert(_entry(priority=5, tcp_dst=80), now=0.0)
        touched = table.modify(
            exact.match, [ActionDrop()], priority=10, strict=True
        )
        assert touched == 1
        assert exact.actions == [ActionDrop()]
        winner = table.lookup(_exact_headers())
        assert winner is exact
        # Subsequent inserts still land in precedence order.
        high = table.insert(_exact_entry(1, priority=90), now=1.0)
        assert table.lookup(_exact_headers(1)) is high
        assert table.entries == sorted(table.entries, key=FlowEntry.sort_key)

    def test_strict_modify_misses_other_priority(self, fast):
        table = FlowTable(fast_path=fast)
        exact = table.insert(_exact_entry(priority=10), now=0.0)
        assert (
            table.modify(exact.match, [ActionDrop()], priority=11, strict=True)
            == 0
        )
        assert exact.actions == [ActionOutput(port=1)]


class TestPathEquivalence:
    """Fast and reference tables agree on a mixed workload."""

    @staticmethod
    def _drive(fast):
        table = FlowTable(fast_path=fast)
        for i in range(20):
            table.insert(
                _exact_entry(i, priority=10 + (i % 3), hard_timeout=float(i % 5)),
                now=0.0,
            )
        table.insert(_entry(priority=12, tcp_dst=80), now=0.0)
        table.insert(_entry(priority=1), now=0.0)
        winners = []
        for i in range(25):
            entry = table.lookup(_exact_headers(i))
            winners.append(
                None
                if entry is None
                else (entry.priority, entry.match.key_tuple())
            )
        evicted = [
            (entry.priority, entry.match.key_tuple(), reason)
            for entry, reason in table.expire(3.5)
        ]
        table.delete(Match(tcp_dst=80))
        remaining = [
            (entry.priority, entry.match.key_tuple())
            for entry in table.entries
        ]
        return winners, evicted, remaining, table.lookup_count, table.matched_count

    def test_identical_outcomes(self):
        assert self._drive(True) == self._drive(False)
