"""Tests for flow-table semantics (priority, modify/delete, expiry)."""

import pytest
from hypothesis import given, strategies as st

from repro.dataplane.flowtable import FlowTable
from repro.errors import DataPlaneError
from repro.openflow import ActionDrop, ActionOutput, FlowRemovedReason, Match
from repro.openflow.flow import FlowEntry


def _entry(priority=10, actions=None, **match_fields):
    return FlowEntry(
        match=Match.from_dict(match_fields),
        priority=priority,
        actions=actions or [ActionOutput(port=1)],
    )


class TestLookup:
    def test_highest_priority_wins(self):
        table = FlowTable()
        low = table.insert(_entry(priority=1, ip_src="10.0.0.1"), now=0.0)
        high = table.insert(_entry(priority=99, ip_src="10.0.0.1"), now=0.0)
        assert table.lookup({"ip_src": "10.0.0.1"}) is high
        assert low in table.entries

    def test_specificity_breaks_priority_ties(self):
        table = FlowTable()
        loose = table.insert(_entry(priority=10), now=0.0)
        tight = table.insert(_entry(priority=10, ip_src="10.0.0.1"), now=0.0)
        assert table.lookup({"ip_src": "10.0.0.1"}) is tight
        assert table.lookup({"ip_src": "10.0.0.9"}) is loose

    def test_miss_returns_none(self):
        table = FlowTable()
        table.insert(_entry(ip_src="10.0.0.1"), now=0.0)
        assert table.lookup({"ip_src": "99.9.9.9"}) is None

    def test_lookup_counters(self):
        table = FlowTable()
        table.insert(_entry(ip_src="10.0.0.1"), now=0.0)
        table.lookup({"ip_src": "10.0.0.1"})
        table.lookup({"ip_src": "2.2.2.2"})
        assert table.lookup_count == 2
        assert table.matched_count == 1

    def test_duplicate_match_priority_replaces(self):
        table = FlowTable()
        table.insert(_entry(priority=5, ip_src="10.0.0.1"), now=0.0)
        replacement = table.insert(
            _entry(priority=5, actions=[ActionDrop()], ip_src="10.0.0.1"), now=1.0
        )
        assert len(table) == 1
        assert table.lookup({"ip_src": "10.0.0.1"}) is replacement

    def test_capacity_enforced(self):
        table = FlowTable(max_entries=2)
        table.insert(_entry(tcp_src=1), now=0.0)
        table.insert(_entry(tcp_src=2), now=0.0)
        with pytest.raises(DataPlaneError):
            table.insert(_entry(tcp_src=3), now=0.0)


class TestModifyDelete:
    def test_non_strict_modify_covers_subsets(self):
        table = FlowTable()
        table.insert(_entry(ip_src="10.0.0.1", tcp_dst=80), now=0.0)
        table.insert(_entry(ip_src="10.0.0.1", tcp_dst=81), now=0.0)
        touched = table.modify(Match(ip_src="10.0.0.1"), [ActionDrop()])
        assert touched == 2
        assert all(e.actions == [ActionDrop()] for e in table.entries)

    def test_strict_modify_requires_exact(self):
        table = FlowTable()
        table.insert(_entry(priority=7, ip_src="10.0.0.1"), now=0.0)
        assert (
            table.modify(
                Match(ip_src="10.0.0.1"), [ActionDrop()], priority=8, strict=True
            )
            == 0
        )
        assert (
            table.modify(
                Match(ip_src="10.0.0.1"), [ActionDrop()], priority=7, strict=True
            )
            == 1
        )

    def test_non_strict_delete(self):
        table = FlowTable()
        table.insert(_entry(ip_src="10.0.0.1", tcp_dst=80), now=0.0)
        table.insert(_entry(ip_src="10.0.0.2", tcp_dst=80), now=0.0)
        removed = table.delete(Match(ip_src="10.0.0.1"))
        assert len(removed) == 1
        assert len(table) == 1

    def test_delete_all_with_wildcard(self):
        table = FlowTable()
        for i in range(5):
            table.insert(_entry(tcp_src=i), now=0.0)
        assert len(table.delete(Match())) == 5
        assert len(table) == 0

    def test_delete_filtered_by_out_port(self):
        table = FlowTable()
        table.insert(
            _entry(actions=[ActionOutput(port=1)], ip_src="10.0.0.1"), now=0.0
        )
        table.insert(
            _entry(actions=[ActionOutput(port=2)], ip_src="10.0.0.2"), now=0.0
        )
        removed = table.delete(Match(), out_port=2)
        assert len(removed) == 1
        assert removed[0].match.ip_src == "10.0.0.2"


class TestExpiry:
    def test_idle_expiry(self):
        table = FlowTable()
        entry = _entry(ip_src="10.0.0.1")
        entry.idle_timeout = 2.0
        table.insert(entry, now=0.0)
        assert table.expire(1.9) == []
        expired = table.expire(2.1)
        assert [(entry, FlowRemovedReason.IDLE_TIMEOUT)] == expired
        assert len(table) == 0

    def test_idle_refreshed_by_traffic(self):
        table = FlowTable()
        entry = _entry(ip_src="10.0.0.1")
        entry.idle_timeout = 2.0
        table.insert(entry, now=0.0)
        entry.stats.record(100, now=1.5)
        assert table.expire(3.0) == []
        assert table.expire(3.6)[0][1] == FlowRemovedReason.IDLE_TIMEOUT

    def test_hard_beats_idle(self):
        table = FlowTable()
        entry = _entry(ip_src="10.0.0.1")
        entry.idle_timeout = 1.0
        entry.hard_timeout = 1.0
        table.insert(entry, now=0.0)
        assert table.expire(1.5)[0][1] == FlowRemovedReason.HARD_TIMEOUT


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),  # priority
                st.integers(min_value=0, max_value=3),  # tcp_dst
            ),
            min_size=1,
            max_size=20,
        ),
        st.integers(min_value=0, max_value=3),
    )
    def test_lookup_returns_max_priority_covering_entry(self, specs, probe):
        """The winner always has the maximum priority among covering entries."""
        table = FlowTable()
        for i, (priority, dst) in enumerate(specs):
            table.insert(
                FlowEntry(
                    match=Match(tcp_dst=dst),
                    priority=priority,
                    actions=[ActionOutput(port=i)],
                ),
                now=0.0,
            )
        headers = {"tcp_dst": probe}
        winner = table.lookup(headers)
        covering = [e for e in table.entries if e.match.matches(headers)]
        if not covering:
            assert winner is None
        else:
            assert winner is not None
            assert winner.priority == max(e.priority for e in covering)

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=30))
    def test_insert_then_delete_all_leaves_empty(self, ports):
        table = FlowTable()
        for i, port in enumerate(ports):
            table.insert(
                FlowEntry(match=Match(tcp_src=i), priority=port), now=0.0
            )
        table.delete(Match())
        assert len(table) == 0
