"""Cross-cutting property-based tests.

These complement the per-module tests with randomized invariant checks:

* OpenFlow codec fuzzing (arbitrary messages survive the wire),
* flow-table behaviour vs a brute-force reference model,
* aggregation pipelines vs naive Python reference computations,
* Mongo-style vs Cassandra-style backend query equivalence,
* Athena query compilation vs direct evaluation.
"""

import os

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dataplane.flowtable import FlowTable
from repro.distdb import ColumnStoreCluster, DatabaseCluster, aggregate
from repro.openflow import (
    ActionDrop,
    ActionOutput,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    Match,
    PacketIn,
    pack_message,
    unpack_message,
)
from repro.openflow.flow import FlowEntry

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_mac = st.integers(min_value=0, max_value=(1 << 48) - 1).map(
    lambda v: ":".join(f"{v:012x}"[i : i + 2] for i in range(0, 12, 2))
)
_ip = st.integers(min_value=0, max_value=(1 << 32) - 1).map(
    lambda v: f"{v >> 24 & 255}.{v >> 16 & 255}.{v >> 8 & 255}.{v & 255}"
)
_port = st.integers(min_value=0, max_value=65535)

_match_strategy = st.builds(
    Match,
    eth_src=st.one_of(st.none(), _mac),
    eth_dst=st.one_of(st.none(), _mac),
    eth_type=st.one_of(st.none(), st.sampled_from([0x0800, 0x0806])),
    ip_src=st.one_of(st.none(), _ip),
    ip_dst=st.one_of(st.none(), _ip),
    ip_proto=st.one_of(st.none(), st.sampled_from([1, 6, 17])),
    tcp_src=st.one_of(st.none(), _port),
    tcp_dst=st.one_of(st.none(), _port),
)

_actions_strategy = st.lists(
    st.one_of(
        st.builds(ActionOutput, port=st.integers(min_value=1, max_value=64)),
        st.just(ActionDrop()),
    ),
    max_size=4,
)


class TestCodecFuzz:
    @settings(max_examples=80, deadline=None)
    @given(
        match=_match_strategy,
        priority=st.integers(min_value=0, max_value=0xFFFF),
        actions=_actions_strategy,
        idle=st.floats(min_value=0, max_value=3600, allow_nan=False),
        hard=st.floats(min_value=0, max_value=3600, allow_nan=False),
        cookie=st.integers(min_value=0, max_value=(1 << 63) - 1),
        command=st.sampled_from(list(FlowModCommand)),
    )
    def test_flow_mod_roundtrip(
        self, match, priority, actions, idle, hard, cookie, command
    ):
        msg = FlowMod(
            dpid=1, command=command, match=match, priority=priority,
            actions=actions, idle_timeout=idle, hard_timeout=hard,
            cookie=cookie,
        )
        decoded = unpack_message(pack_message(msg))
        assert decoded.match == match
        assert decoded.priority == priority
        assert decoded.actions == actions
        assert decoded.command == command
        assert decoded.cookie == cookie

    @settings(max_examples=60, deadline=None)
    @given(
        match=_match_strategy,
        packets=st.integers(min_value=0, max_value=(1 << 62)),
        bytes_=st.integers(min_value=0, max_value=(1 << 62)),
        duration=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    )
    def test_flow_removed_roundtrip(self, match, packets, bytes_, duration):
        msg = FlowRemoved(
            dpid=3, match=match, packet_count=packets,
            byte_count=bytes_, duration_sec=duration,
        )
        decoded = unpack_message(pack_message(msg))
        assert decoded.packet_count == packets
        assert decoded.byte_count == bytes_
        assert decoded.duration_sec == duration

    @settings(max_examples=60, deadline=None)
    @given(
        headers=st.dictionaries(
            st.sampled_from(["ip_src", "ip_dst", "eth_type", "tcp_dst"]),
            st.one_of(_ip, st.integers(min_value=0, max_value=65535)),
            max_size=4,
        ),
        in_port=st.integers(min_value=0, max_value=1 << 31),
        total_len=st.integers(min_value=0, max_value=1 << 16),
    )
    def test_packet_in_roundtrip(self, headers, in_port, total_len):
        msg = PacketIn(dpid=2, in_port=in_port, headers=headers,
                       total_len=total_len)
        decoded = unpack_message(pack_message(msg))
        assert decoded.headers == headers
        assert decoded.in_port == in_port


class TestFlowTableVsReference:
    @settings(max_examples=50, deadline=None)
    @given(
        rules=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),   # priority
                st.one_of(st.none(), st.integers(0, 2)), # tcp_dst or wildcard
                st.one_of(st.none(), st.integers(0, 2)), # ip_proto or wildcard
            ),
            min_size=1,
            max_size=15,
        ),
        probes=st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 2)),
            min_size=1,
            max_size=8,
        ),
    )
    def test_lookup_matches_brute_force(self, rules, probes):
        """Table lookup == brute-force max-priority/most-specific scan."""
        table = FlowTable()
        entries = []
        for idx, (priority, tcp_dst, ip_proto) in enumerate(rules):
            match = Match(tcp_dst=tcp_dst, ip_proto=ip_proto)
            entry = FlowEntry(match=match, priority=priority,
                              actions=[ActionOutput(port=idx + 1)])
            table.insert(entry, now=0.0)
            entries = table.entries  # includes replacement semantics
        for tcp_dst, ip_proto in probes:
            headers = {"tcp_dst": tcp_dst, "ip_proto": ip_proto}
            winner = table.lookup(headers)
            covering = [e for e in entries if e.match.matches(headers)]
            if not covering:
                assert winner is None
                continue
            best = max(
                covering,
                key=lambda e: (e.priority, e.match.specificity()),
            )
            assert winner is not None
            assert winner.priority == best.priority
            assert winner.match.specificity() == best.match.specificity()


class TestAggregationVsReference:
    @settings(max_examples=50, deadline=None)
    @given(
        docs=st.lists(
            st.fixed_dictionaries(
                {
                    "sw": st.integers(min_value=0, max_value=3),
                    "v": st.integers(min_value=-100, max_value=100),
                }
            ),
            max_size=40,
        )
    )
    def test_group_sum_avg_min_max(self, docs):
        rows = aggregate(
            docs,
            [
                {
                    "$group": {
                        "_id": "$sw",
                        "total": {"$sum": "$v"},
                        "mean": {"$avg": "$v"},
                        "low": {"$min": "$v"},
                        "high": {"$max": "$v"},
                        "n": {"$count": 1},
                    }
                }
            ],
        )
        by_key = {row["_id"]: row for row in rows}
        reference = {}
        for doc in docs:
            reference.setdefault(doc["sw"], []).append(doc["v"])
        assert set(by_key) == set(reference)
        for key, values in reference.items():
            assert by_key[key]["total"] == sum(values)
            assert by_key[key]["mean"] == sum(values) / len(values)
            assert by_key[key]["low"] == min(values)
            assert by_key[key]["high"] == max(values)
            assert by_key[key]["n"] == len(values)

    @settings(max_examples=40, deadline=None)
    @given(
        docs=st.lists(
            st.fixed_dictionaries(
                {"v": st.integers(min_value=0, max_value=50)}
            ),
            max_size=30,
        ),
        bound=st.integers(min_value=0, max_value=50),
        limit=st.integers(min_value=0, max_value=10),
    )
    def test_match_sort_limit(self, docs, bound, limit):
        rows = aggregate(
            docs,
            [
                {"$match": {"v": {"$gte": bound}}},
                {"$sort": {"v": -1}},
                {"$limit": limit},
            ],
        )
        reference = sorted(
            (d["v"] for d in docs if d["v"] >= bound), reverse=True
        )[:limit]
        assert [row["v"] for row in rows] == reference


class TestBackendEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        docs=st.lists(
            st.fixed_dictionaries(
                {
                    "switch_id": st.integers(min_value=0, max_value=4),
                    "x": st.integers(min_value=0, max_value=100),
                }
            ),
            max_size=30,
        ),
        bound=st.integers(min_value=0, max_value=100),
        pin=st.integers(min_value=0, max_value=4),
    )
    def test_mongo_and_column_store_agree(self, docs, bound, pin):
        mongo = DatabaseCluster(n_shards=2, replication=1)
        cassandra = ColumnStoreCluster(n_nodes=2, replication=1)
        mongo.insert_many("c", [dict(d) for d in docs])
        cassandra.insert_many("c", [dict(d) for d in docs])
        for filter_ in (
            None,
            {"x": {"$gt": bound}},
            {"switch_id": pin},
            {"$or": [{"switch_id": pin}, {"x": {"$lte": bound}}]},
        ):
            assert mongo.count("c", filter_) == cassandra.count("c", filter_)
        pipeline = [{"$group": {"_id": "$switch_id", "t": {"$sum": "$x"}}}]
        mongo_rows = {r["_id"]: r["t"] for r in mongo.aggregate("c", pipeline)}
        cassandra_rows = {
            r["_id"]: r["t"] for r in cassandra.aggregate("c", pipeline)
        }
        assert mongo_rows == cassandra_rows


class TestQueryCompilation:
    @settings(max_examples=60, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=10),
        b=st.integers(min_value=0, max_value=10),
        c=st.integers(min_value=0, max_value=10),
        x=st.integers(min_value=0, max_value=10),
        y=st.integers(min_value=0, max_value=10),
    )
    def test_compiled_filter_equals_direct_evaluation(self, a, b, c, x, y):
        from repro.core.query import GenerateQuery
        from repro.distdb import matches_filter

        query = GenerateQuery(f"x > {a} && (y <= {b} || x == {c})")
        doc = {"x": x, "y": y}
        assert query.matches(doc) == matches_filter(doc, query.to_db_filter())

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=0, max_value=100), max_size=25),
        bound=st.integers(min_value=0, max_value=100),
    )
    def test_query_against_store_equals_python_filter(self, values, bound):
        from repro.core.query import GenerateQuery

        database = DatabaseCluster(n_shards=2, replication=1)
        database.insert_many("f", [{"V": v} for v in values])
        query = GenerateQuery(f"V >= {bound}")
        found = database.find("f", query.to_db_filter() or None)
        assert sorted(d["V"] for d in found) == sorted(
            v for v in values if v >= bound
        )


# ---------------------------------------------------------------------------
# Chaos: random fault plans preserve the liveness/durability invariants
# ---------------------------------------------------------------------------

def _chaos_event_strategy():
    """Random valid fault events for a 2-switch / 2-instance / 3-shard
    / 4-worker deployment, on a 0-6 s schedule."""
    t = st.integers(min_value=0, max_value=60).map(lambda v: v / 10.0)
    dur = st.integers(min_value=1, max_value=30).map(lambda v: v / 10.0)
    rate = st.sampled_from([0.0, 0.1, 0.5, 1.0])
    inst = st.integers(min_value=0, max_value=1)
    shard = st.integers(min_value=0, max_value=2)
    worker = st.integers(min_value=0, max_value=3)
    opt_dur = st.one_of(st.none(), dur)

    def ev(kind, **param_strategies):
        return st.tuples(
            t, st.just(kind), st.fixed_dictionaries(param_strategies)
        )

    return st.lists(
        st.one_of(
            ev("instance_down", instance=inst),
            ev("instance_up", instance=inst),
            ev("shard_down", shard=shard, duration=opt_dur),
            ev("shard_up", shard=shard),
            ev("replica_lag", shard=shard, duration=dur),
            ev("link_down", a=st.just(1), b=st.just(2), duration=opt_dur),
            ev("link_up", a=st.just(1), b=st.just(2)),
            ev("link_flap", a=st.just(1), b=st.just(2),
               down_for=st.just(0.2), times=st.integers(1, 3),
               period=st.just(0.5)),
            ev("partition", groups=st.just([[1], [2]]), duration=opt_dur),
            ev("worker_crash", worker=worker,
               count=st.integers(min_value=1, max_value=3)),
            ev("sb_drop", instance=inst, rate=rate, duration=dur),
            ev("sb_delay", instance=inst, rate=rate,
               delay=st.just(0.05), duration=dur),
            ev("sb_dup", instance=inst, rate=rate, duration=dur),
        ),
        min_size=1,
        max_size=8,
    )


def _build_chaos_deployment():
    from repro.controller import ControllerCluster
    from repro.core import AthenaDeployment
    from repro.dataplane.topologies import linear_topology

    topo = linear_topology(n_switches=2, hosts_per_switch=1)
    cluster = ControllerCluster(topo.network, n_instances=2)
    cluster.adopt_all()
    cluster.start(poll=False)
    athena = AthenaDeployment(cluster, athena_poll_interval=1.0)
    athena.start(poll=False)
    return topo, cluster, athena


def _plan_from(events, seed):
    from repro.chaos import FaultPlan

    plan = FaultPlan(seed=seed)
    for at, kind, params in events:
        plan.add(
            at, kind,
            **{k: v for k, v in params.items() if v is not None},
        )
    return plan


# The ATHENA_CHAOS=1 CI leg explores a deeper random-plan space.
_CHAOS_EXAMPLES = 40 if os.environ.get("ATHENA_CHAOS") == "1" else 12


class TestChaosProperties:
    @settings(max_examples=_CHAOS_EXAMPLES, deadline=None)
    @given(events=_chaos_event_strategy(), seed=st.integers(0, 2**16))
    def test_random_plans_terminate_and_fire_every_event(self, events, seed):
        # Liveness: whatever the schedule, the sim drains (no deadlock)
        # and every event either applied or was counted as skipped.
        from repro.chaos import ChaosController

        topo, cluster, athena = _build_chaos_deployment()
        plan = _plan_from(events, seed)
        chaos = ChaosController(athena, plan, seed=seed)
        chaos.arm()
        topo.network.sim.run(until=7.0)
        assert chaos.faults_injected + chaos.faults_skipped == len(plan)

    @settings(max_examples=_CHAOS_EXAMPLES, deadline=None)
    @given(events=_chaos_event_strategy(), seed=st.integers(0, 2**16))
    def test_no_acknowledged_write_is_lost(self, events, seed):
        # Durability: features published during arbitrary faults are never
        # dropped — once every shard is back, everything buffered commits.
        from repro.chaos import ChaosController
        from repro.core.feature_format import AthenaFeature, FeatureScope

        topo, cluster, athena = _build_chaos_deployment()
        chaos = ChaosController(athena, _plan_from(events, seed), seed=seed)
        chaos.arm()
        sim = topo.network.sim
        published = 12
        for i in range(published):
            sim.at(
                0.25 + i * 0.5,
                lambda i=i: athena.feature_manager.publish(
                    AthenaFeature(
                        scope=FeatureScope.FLOW,
                        switch_id=1 + i % 2,
                        instance_id=0,
                        timestamp=sim.now,
                        indicators={"ip_src": f"10.0.0.{i}"},
                        fields={"FLOW_PACKET_COUNT": float(i)},
                    )
                ),
            )
        sim.run(until=7.0)
        for node_id in range(len(athena.database.shards)):
            athena.database.recover_shard(node_id)
            athena.database.end_replica_lag(node_id)
        athena.feature_manager.flush_pending()
        assert athena.feature_manager.pending_writes == 0
        assert athena.feature_manager.count_features() == published

    @settings(max_examples=_CHAOS_EXAMPLES, deadline=None)
    @given(events=_chaos_event_strategy(), seed=st.integers(0, 2**16))
    def test_every_switch_has_a_live_master_after_recovery(
        self, events, seed
    ):
        # Safety: after the dust settles and failed instances rejoin, no
        # switch is left masterless or attached to a down instance.
        from repro.chaos import ChaosController

        topo, cluster, athena = _build_chaos_deployment()
        chaos = ChaosController(athena, _plan_from(events, seed), seed=seed)
        chaos.arm()
        topo.network.sim.run(until=7.0)
        for instance_id in sorted(cluster.down_instances):
            cluster.recover_instance(instance_id)
        assert not cluster.down_instances
        for dpid in topo.network.switches:
            master = cluster.mastership.master_of(dpid)
            assert master not in cluster.down_instances
            assert dpid in cluster.instance(master).switches
