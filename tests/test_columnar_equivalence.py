"""Byte-identical equivalence of the columnar batch path (docs/PERF.md).

``ATHENA_COLUMNAR`` swaps the store→model pipeline from per-document
dicts onto numpy frames, and the swap must be invisible: the same frozen
store state run through batch detection with the flag on and off has to
produce the same training matrices, the same fitted models, the same
predictions, and the same validation summaries.  Two anomaly scenarios
check that end to end — a simulated port scan detected with a threshold
model, and the paper's DDoS dataset detected with k-means — plus direct
``find_frame``/``find`` parity on the sharded store, including the
generation-keyed frame cache's invalidation edges.
"""

import numpy as np
import pytest

from repro.controller import ControllerCluster, ReactiveForwarding
from repro.core import AthenaDeployment, GenerateQuery
from repro.core.algorithm import GenerateAlgorithm
from repro.core.preprocessor import GeneratePreprocessor
from repro.dataplane.topologies import linear_topology
from repro.distdb import DatabaseCluster
from repro.perf import columnar_scope
from repro.workloads.ddos import DDoSDatasetGenerator, DDoSDatasetSpec
from repro.workloads.flows import FlowSpec, TrafficSchedule


@pytest.fixture
def portscan_stack():
    """A finished port-scan simulation: frozen store, live northbound."""
    topo = linear_topology(n_switches=2, hosts_per_switch=2)
    cluster = ControllerCluster(topo.network, n_instances=1)
    cluster.adopt_all()
    cluster.start(poll=False)
    ReactiveForwarding(idle_timeout=30.0).activate(cluster)
    athena = AthenaDeployment(cluster, athena_poll_interval=1.0)
    athena.start()
    schedule = TrafficSchedule(topo.network)
    schedule.prime_arp()
    for port in range(25):
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h3", sport=52000 + port,
                     dport=1000 + port, packet_size=64, rate_pps=4.0,
                     start=1.0 + port * 0.05, duration=1.0)
        )
    schedule.add_flow(
        FlowSpec(src_host="h2", dst_host="h4", sport=33000, dport=80,
                 rate_pps=10.0, start=1.0, duration=6.0, bidirectional=True)
    )
    topo.network.sim.run(until=8.0)
    return topo, athena


def _portscan_detection(athena, enabled):
    """One batch train+validate pass under the given columnar setting."""
    query = GenerateQuery("feature_scope == flow && FLOW_PACKET_COUNT > 0")
    preprocessor = GeneratePreprocessor(
        normalization=None, features=["SRC_FLOW_FANOUT"]
    )
    algorithm = GenerateAlgorithm("threshold", column=0, threshold=10.0)
    with columnar_scope(enabled):
        model = athena.northbound.GenerateDetectionModel(
            query, preprocessor, algorithm
        )
        summary = athena.northbound.ValidateFeatures(query, preprocessor, model)
    return model, summary


class TestPortscanColumnarEquivalence:
    def test_snapshots_byte_identical(self, portscan_stack):
        _topo, athena = portscan_stack
        doc_model, doc_summary = _portscan_detection(athena, enabled=False)
        col_model, col_summary = _portscan_detection(athena, enabled=True)
        assert doc_model.trained_entries == col_model.trained_entries
        assert doc_summary.to_dict() == col_summary.to_dict()
        assert (
            doc_summary.predictions.tobytes()
            == col_summary.predictions.tobytes()
        )
        # And the detection is real: the scanner is actually flagged.
        assert doc_summary.true_positives + doc_summary.false_positives > 0

    def test_request_frame_matches_request_features(self, portscan_stack):
        _topo, athena = portscan_stack
        query = GenerateQuery("feature_scope == flow && FLOW_PACKET_COUNT > 0")
        documents = athena.northbound.RequestFeatures(query)
        frame = athena.feature_manager.request_frame(query)
        assert frame.copy_documents() == documents
        preprocessor = GeneratePreprocessor(
            normalization=None, features=["SRC_FLOW_FANOUT"]
        )
        doc_matrix, _, _ = preprocessor.fit_transform(documents)
        frame_matrix, _, _ = preprocessor.fit_transform_frame(frame)
        assert doc_matrix.tobytes() == frame_matrix.tobytes()


class TestDDoSColumnarEquivalence:
    def test_run_batch_byte_identical(self):
        from repro.apps.ddos import DDoSDetectorApp

        generator = DDoSDatasetGenerator(DDoSDatasetSpec(scale=0.0006))
        train, test = generator.train_test_split(generator.generate())

        topo = linear_topology(n_switches=2)
        controller = ControllerCluster(topo.network, n_instances=1)
        controller.adopt_all()
        athena = AthenaDeployment(
            controller,
            database=DatabaseCluster(n_shards=4, shard_key="switch_id"),
        )
        app = DDoSDetectorApp(
            params={"k": 8, "max_iterations": 10, "runs": 1, "seed": 1}
        )
        athena.register_app(app)
        athena.feature_manager.publish_documents(train)

        with columnar_scope(False):
            doc_summary = app.run_batch(test_documents=test)
        with columnar_scope(True):
            col_summary = app.run_batch(test_documents=test)
        assert np.array_equal(doc_summary.predictions, col_summary.predictions)
        assert doc_summary.to_dict() == col_summary.to_dict()
        assert doc_summary.clusters == col_summary.clusters
        assert doc_summary.total_entries == len(test)


class TestFindFrameParity:
    """find_frame == find on the sharded store, across the cache's edges."""

    FILTER = {"feature_scope": "flow"}

    @pytest.fixture
    def cluster(self):
        cluster = DatabaseCluster(n_shards=4, shard_key="switch_id")
        for i in range(60):
            cluster.insert_one(
                "features",
                {
                    "switch_id": i % 5,
                    "feature_scope": "flow" if i % 3 else "port",
                    "PAIR_FLOW": float(i),
                    "timestamp": float(i % 7),
                },
            )
        return cluster

    def _assert_parity(self, cluster, **kwargs):
        frame = cluster.find_frame("features", **kwargs)
        assert frame.copy_documents() == cluster.find("features", **kwargs)

    def test_indexed_filter_preserves_candidate_order(self, cluster):
        # feature_scope is index-served: candidates come back in bucket
        # order, not insertion order, and the frame gather must follow it.
        cluster.create_index("features", "feature_scope")
        self._assert_parity(cluster, filter_=self.FILTER)

    def test_shard_pinned_filter(self, cluster):
        self._assert_parity(
            cluster, filter_={"switch_id": 3, "feature_scope": "flow"}
        )

    def test_sort_limit_columns(self, cluster):
        self._assert_parity(
            cluster,
            filter_=self.FILTER,
            sort=[("PAIR_FLOW", -1)],
            limit=10,
        )
        frame = cluster.find_frame(
            "features", self.FILTER, columns=("PAIR_FLOW",),
            sort=[("timestamp", 1), ("PAIR_FLOW", 1)], limit=7,
        )
        docs = cluster.find(
            "features", self.FILTER,
            sort=[("timestamp", 1), ("PAIR_FLOW", 1)], limit=7,
        )
        assert frame.column_names == ["PAIR_FLOW"]
        assert frame.values("PAIR_FLOW").tolist() == [
            doc["PAIR_FLOW"] for doc in docs
        ]

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda c: c.insert_one(
                "features",
                {"switch_id": 1, "feature_scope": "flow", "PAIR_FLOW": 999.0},
            ),
            lambda c: c.delete_many("features", {"switch_id": 2}),
            lambda c: c.update_many(
                "features", {"switch_id": 1}, {"$set": {"PAIR_FLOW": -1.0}}
            ),
            lambda c: c.fail_shard(0),
        ],
    )
    def test_cache_invalidated_by_mutation(self, cluster, mutate):
        before = cluster.find_frame("features", self.FILTER).n_rows
        generation = cluster._generation
        mutate(cluster)
        assert cluster._generation != generation
        self._assert_parity(cluster, filter_=self.FILTER)
        after = cluster.find_frame("features", self.FILTER)
        assert after.copy_documents() == cluster.find("features", self.FILTER)
        assert before >= 0  # cache was genuinely consulted before the edit

    def test_recover_shard_also_invalidates(self, cluster):
        cluster.fail_shard(1)
        degraded = cluster.find_frame("features", self.FILTER).copy_documents()
        assert degraded == cluster.find("features", self.FILTER)
        cluster.recover_shard(1)
        self._assert_parity(cluster, filter_=self.FILTER)

    def test_repeated_reads_reuse_cached_frame(self, cluster):
        first = cluster.find_frame("features", self.FILTER)
        cached = cluster._frame_cache["features"]
        second = cluster.find_frame("features", self.FILTER)
        assert cluster._frame_cache["features"] is cached
        assert first.copy_documents() == second.copy_documents()
