"""Tests for the Cbench harness (Table IX / Figure 11 machinery)."""

import pytest

from repro.cbench.harness import CbenchHarness, cpu_usage_curve, saturation_rate


@pytest.fixture(scope="module")
def harness():
    return CbenchHarness(n_switches=4, match_pool=32)


class TestThroughput:
    def test_produces_responses(self, harness):
        result = harness.run_throughput("without", duration_seconds=0.2)
        assert result.responses > 0
        assert result.responses_per_second > 0

    def test_athena_reduces_throughput(self, harness):
        """The Table IX ordering: without > with(no DB) > with."""
        without = harness.run_throughput("without", duration_seconds=0.4)
        no_db = harness.run_throughput("with_no_db", duration_seconds=0.4)
        with_db = harness.run_throughput("with", duration_seconds=0.4)
        assert without.responses_per_second > no_db.responses_per_second
        assert no_db.responses_per_second > with_db.responses_per_second

    def test_rounds(self, harness):
        results = harness.run_rounds("without", rounds=3, duration_seconds=0.1)
        assert len(results) == 3
        assert all(r.mode == "without" for r in results)

    def test_with_mode_stores_features(self):
        harness = CbenchHarness(n_switches=2, match_pool=16)
        _net, _cluster, _responder, athena = harness._build("with")
        assert athena is not None
        assert athena.feature_manager.store_features

    def test_no_db_mode_disables_store(self):
        harness = CbenchHarness(n_switches=2, match_pool=16)
        _net, _cluster, _responder, athena = harness._build("with_no_db")
        assert not athena.feature_manager.store_features


class TestCpuUsage:
    def test_event_cost_positive_and_ordered(self, harness):
        without = harness.measure_event_cost("without", n_events=2000)
        with_athena = harness.measure_event_cost("with", n_events=2000)
        assert 0 < without < with_athena

    def test_curve_monotone_and_capped(self):
        curve = cpu_usage_curve([1e3, 1e4, 1e5, 1e7], 1e-4, n_cores=6)
        utilisations = [u for _, u in curve]
        assert utilisations == sorted(utilisations)
        assert utilisations[-1] == 100.0

    def test_saturation_rate(self):
        assert saturation_rate(1e-3, n_cores=6) == pytest.approx(6000.0)
        # Figure 11's shape: higher per-event cost saturates earlier.
        assert saturation_rate(2e-3) < saturation_rate(1e-3)
