"""Bit-identical equivalence of the hot-path overhaul (docs/PERF.md).

The fast path (indexed flow tables, compiled matches, zero-copy distdb
reads) must be invisible to everything above it: the same simulated
scenario run with ``ATHENA_FAST_PATH`` on and off has to produce the
same winners, the same evictions, the same query results — and therefore
the same deterministic telemetry snapshot, byte-for-byte.  Two
anomaly-shaped mini-scenarios check that end to end: a port scan (one
source fanning out over many destination ports, exercising many tiny
exact-match flows and idle expiry) and a DDoS-style flood (several
sources converging on one target, exercising per-flow feature queries).
"""

import pytest

from repro.controller import ControllerCluster, ReactiveForwarding
from repro.core import AthenaDeployment
from repro.dataplane.topologies import linear_topology
from repro.perf import fast_path_scope
from repro.telemetry import configure, reset_telemetry, to_json
from repro.workloads.flows import FlowSpec, TrafficSchedule


@pytest.fixture(autouse=True)
def _restore_telemetry():
    yield
    reset_telemetry()


def _run(scenario, enabled):
    """One deterministic run under the given fast-path setting; returns
    the JSON-serialized deterministic telemetry snapshot."""
    reset_telemetry()
    with fast_path_scope(enabled):
        telemetry = configure(enabled=True)
        topo = linear_topology(n_switches=2, hosts_per_switch=2)
        cluster = ControllerCluster(topo.network, n_instances=1)
        cluster.adopt_all()
        cluster.start(poll=False)
        # A short idle timeout so flow expiry (the heap path) fires
        # repeatedly inside the run.
        ReactiveForwarding(idle_timeout=1.5).activate(cluster)
        athena = AthenaDeployment(cluster, athena_poll_interval=1.0)
        athena.start()
        schedule = TrafficSchedule(topo.network)
        schedule.prime_arp()
        scenario(schedule)
        topo.network.sim.run(until=4.0)
        snapshot = telemetry.snapshot(deterministic_only=True)
    reset_telemetry()
    return to_json(snapshot)


def _portscan(schedule):
    """h1 scans h3 across many ports; h2 talks to h4 normally."""
    for port in range(12):
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h3", sport=52000 + port,
                     dport=1000 + port, packet_size=64, rate_pps=4.0,
                     start=0.5 + port * 0.05, duration=1.0)
        )
    schedule.add_flow(
        FlowSpec(src_host="h2", dst_host="h4", sport=33000, dport=80,
                 rate_pps=10.0, start=0.5, duration=3.0, bidirectional=True)
    )


def _ddos_flood(schedule):
    """Three sources flood h3 while one benign flow rides along."""
    for i, src in enumerate(("h1", "h2", "h4")):
        schedule.add_flow(
            FlowSpec(src_host=src, dst_host="h3", sport=40000 + i, dport=80,
                     packet_size=120, rate_pps=40.0, start=0.4 + 0.1 * i,
                     duration=2.5)
        )
    schedule.add_flow(
        FlowSpec(src_host="h4", dst_host="h1", sport=33001, dport=443,
                 rate_pps=5.0, start=0.6, duration=3.0, bidirectional=True)
    )


def _assert_nontrivial(snapshot_json):
    import json

    by_name = {m["name"]: m for m in json.loads(snapshot_json)["metrics"]}
    assert by_name["athena_southbound_messages_total"]["samples"]


class TestFastPathEquivalence:
    def test_portscan_snapshots_identical(self):
        fast = _run(_portscan, True)
        slow = _run(_portscan, False)
        _assert_nontrivial(fast)
        assert fast == slow

    def test_ddos_snapshots_identical(self):
        fast = _run(_ddos_flood, True)
        slow = _run(_ddos_flood, False)
        _assert_nontrivial(fast)
        assert fast == slow
