"""Tests for shared identifier types."""

import pytest
from hypothesis import given, strategies as st

from repro.types import (
    ConnectPoint,
    HostId,
    format_dpid,
    ip_from_int,
    ip_to_int,
    mac_from_int,
    mac_to_int,
    parse_dpid,
)


class TestDpid:
    def test_format(self):
        assert format_dpid(1) == "of:0000000000000001"
        assert format_dpid(0xABCDEF) == "of:0000000000abcdef"

    def test_parse_roundtrip(self):
        assert parse_dpid(format_dpid(99)) == 99

    def test_parse_plain_integer(self):
        assert parse_dpid("42") == 42

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            format_dpid(-1)
        with pytest.raises(ValueError):
            format_dpid(1 << 64)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_roundtrip_property(self, dpid):
        assert parse_dpid(format_dpid(dpid)) == dpid


class TestMac:
    def test_format(self):
        assert mac_from_int(0) == "00:00:00:00:00:00"
        assert mac_from_int(0xAABBCCDDEEFF) == "aa:bb:cc:dd:ee:ff"

    def test_parse(self):
        assert mac_to_int("aa:bb:cc:dd:ee:ff") == 0xAABBCCDDEEFF

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            mac_to_int("not-a-mac")
        with pytest.raises(ValueError):
            mac_from_int(1 << 48)

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_roundtrip_property(self, value):
        assert mac_to_int(mac_from_int(value)) == value


class TestIp:
    def test_format(self):
        assert ip_from_int((10 << 24) + 1) == "10.0.0.1"

    def test_parse(self):
        assert ip_to_int("10.0.0.1") == (10 << 24) + 1

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_roundtrip_property(self, value):
        assert ip_to_int(ip_from_int(value)) == value


class TestHostId:
    def test_valid(self):
        host = HostId(mac="aa:bb:cc:dd:ee:ff", ip="10.0.0.1")
        assert str(host) == "aa:bb:cc:dd:ee:ff/10.0.0.1"

    def test_invalid_mac(self):
        with pytest.raises(ValueError):
            HostId(mac="xx", ip="10.0.0.1")

    def test_invalid_ip(self):
        with pytest.raises(ValueError):
            HostId(mac="aa:bb:cc:dd:ee:ff", ip="999.0.0.1")

    def test_hashable_and_ordered(self):
        a = HostId(mac="aa:bb:cc:dd:ee:01", ip="10.0.0.1")
        b = HostId(mac="aa:bb:cc:dd:ee:02", ip="10.0.0.2")
        assert len({a, b, a}) == 2
        assert a < b


class TestConnectPoint:
    def test_str(self):
        assert str(ConnectPoint(1, 2)) == "of:0000000000000001/2"

    def test_equality_and_hash(self):
        assert ConnectPoint(1, 2) == ConnectPoint(1, 2)
        assert len({ConnectPoint(1, 2), ConnectPoint(1, 3)}) == 2
