"""Round-trip coverage for every registered OpenFlow message type.

The codec's invariant — every concrete message class has pack and unpack
support — is enforced statically by ``repro.analysis`` (rule family
ATH4xx) and exercised at runtime here, parametrized over the same
``CODEC_REGISTRY`` the checker reads.
"""

import dataclasses

import pytest

from repro.openflow import messages as msgs
from repro.openflow.actions import ActionController, ActionOutput, ActionSetIpDst
from repro.openflow.constants import (
    FlowModCommand,
    FlowRemovedReason,
    PacketInReason,
    PortReason,
)
from repro.openflow.match import Match
from repro.openflow.serialization import (
    ABSTRACT_MESSAGES,
    CODEC_REGISTRY,
    pack_message,
    unpack_message,
)


def _sample_match() -> Match:
    return Match(ip_src="10.0.0.1", ip_dst="10.0.0.2", tcp_dst=80)


#: Non-default field values per class, so round-trips exercise real payloads
#: rather than empty defaults.
_SAMPLE_FIELDS = {
    msgs.Hello: dict(version=0x04),
    msgs.FeaturesReply: dict(n_tables=3, ports=[1, 2, 3]),
    msgs.PacketIn: dict(
        buffer_id=42,
        in_port=3,
        reason=PacketInReason.ACTION,
        headers={"ip_src": "10.0.0.1", "ip_proto": 6},
        total_len=128,
    ),
    msgs.PacketOut: dict(
        buffer_id=-1,
        in_port=2,
        actions=[ActionOutput(port=4), ActionController(max_len=64)],
        headers={"eth_src": "00:00:00:00:00:01"},
        total_len=60,
    ),
    msgs.FlowMod: dict(
        command=FlowModCommand.MODIFY,
        match=_sample_match(),
        priority=100,
        actions=[ActionOutput(port=1), ActionSetIpDst(ip="10.9.9.9")],
        idle_timeout=5.0,
        hard_timeout=60.0,
        cookie=0xABC,
        app_id="fwd",
        table_id=1,
        out_port=7,
    ),
    msgs.FlowRemoved: dict(
        match=_sample_match(),
        priority=10,
        reason=FlowRemovedReason.HARD_TIMEOUT,
        duration_sec=12.5,
        packet_count=1000,
        byte_count=64000,
        cookie=3,
        app_id="fwd",
    ),
    msgs.PortStatus: dict(port_no=9, reason=PortReason.DELETE, link_up=False),
    msgs.FlowStatsRequest: dict(match=_sample_match(), table_id=2),
    msgs.PortStatsRequest: dict(port_no=5),
    msgs.AggregateStatsRequest: dict(match=_sample_match()),
    msgs.FlowStatsReply: dict(
        entries=[
            msgs.FlowStatsEntry(
                match=_sample_match(),
                priority=10,
                duration_sec=4.0,
                packet_count=12,
                byte_count=900,
                idle_timeout=5.0,
                hard_timeout=0.0,
                cookie=1,
                app_id="fwd",
                table_id=0,
            )
        ]
    ),
    msgs.PortStatsReply: dict(
        entries=[msgs.PortStatsEntry(port_no=1, rx_packets=5, tx_bytes=700)]
    ),
    msgs.AggregateStatsReply: dict(packet_count=9, byte_count=512, flow_count=2),
    msgs.TableStatsReply: dict(
        entries=[msgs.TableStatsEntry(table_id=0, active_count=4, lookup_count=99)]
    ),
}


def _sample(cls):
    return cls(dpid=11, **_SAMPLE_FIELDS.get(cls, {}))


@pytest.mark.parametrize(
    "cls", sorted(CODEC_REGISTRY, key=lambda c: c.__name__), ids=lambda c: c.__name__
)
class TestRegistryRoundtrips:
    def test_roundtrip_preserves_type_and_fields(self, cls):
        msg = _sample(cls)
        decoded = unpack_message(pack_message(msg))
        assert type(decoded) is cls
        assert decoded.dpid == msg.dpid
        assert decoded.xid == msg.xid
        assert decoded.msg_type == CODEC_REGISTRY[cls]
        for field in dataclasses.fields(cls):
            if field.name in ("dpid", "xid", "msg_type", "buffer_id"):
                continue  # buffer_id of FlowMod is not carried on the wire
            assert getattr(decoded, field.name) == getattr(msg, field.name), field.name


class TestRegistryCompleteness:
    def test_every_concrete_message_class_is_registered(self):
        concrete = {
            obj
            for obj in vars(msgs).values()
            if isinstance(obj, type)
            and issubclass(obj, msgs.OpenFlowMessage)
            and obj not in ABSTRACT_MESSAGES
        }
        assert concrete == set(CODEC_REGISTRY)

    def test_registry_types_match_declared_msg_type(self):
        for cls, wire_type in CODEC_REGISTRY.items():
            assert _sample(cls).msg_type == wire_type

    def test_abstract_messages_are_rejected(self):
        from repro.errors import OpenFlowError

        with pytest.raises(OpenFlowError, match="codec registration"):
            pack_message(msgs.StatsRequest())
