"""An extra off-the-shelf scenario: port-scan detection.

Not one of the paper's three showcased applications, but exactly the kind
of detector Athena's building blocks are meant to compose in a few lines:
a scanner opens many tiny flows from one source to many destination ports;
the stateful ``SRC_FLOW_FANOUT`` feature counts them, and the 'simple'
threshold algorithm flags the source — no custom code beyond configuration.
"""

import pytest

from repro.controller import ControllerCluster, ReactiveForwarding
from repro.core import AthenaDeployment, BlockReaction, GenerateQuery
from repro.core.algorithm import GenerateAlgorithm
from repro.core.preprocessor import GeneratePreprocessor
from repro.dataplane.topologies import linear_topology
from repro.workloads.flows import FlowSpec, TrafficSchedule


@pytest.fixture
def stack():
    topo = linear_topology(n_switches=2, hosts_per_switch=2)
    cluster = ControllerCluster(topo.network, n_instances=1)
    cluster.adopt_all()
    cluster.start(poll=False)
    forwarding = ReactiveForwarding(idle_timeout=30.0)
    forwarding.activate(cluster)
    athena = AthenaDeployment(cluster, athena_poll_interval=1.0)
    athena.start()
    schedule = TrafficSchedule(topo.network)
    schedule.prime_arp()
    return topo, athena, schedule


def _scan(schedule, src, dst, n_ports, start):
    """One tiny probe flow per destination port."""
    for port in range(n_ports):
        schedule.add_flow(
            FlowSpec(src_host=src, dst_host=dst, sport=52000 + port,
                     dport=1000 + port, packet_size=64, rate_pps=4.0,
                     start=start + port * 0.05, duration=1.0)
        )


def _normal(schedule, src, dst, start):
    schedule.add_flow(
        FlowSpec(src_host=src, dst_host=dst, sport=33000, dport=80,
                 rate_pps=10.0, start=start, duration=6.0,
                 bidirectional=True)
    )


class TestPortScanScenario:
    def test_threshold_on_fanout_catches_scanner(self, stack):
        topo, athena, schedule = stack
        scanner = topo.network.hosts["h1"]
        normal = topo.network.hosts["h2"]
        _scan(schedule, "h1", "h3", n_ports=25, start=1.0)
        _normal(schedule, "h2", "h4", start=1.0)
        topo.network.sim.run(until=8.0)

        # Off-the-shelf: threshold on SRC_FLOW_FANOUT, no learning data
        # beyond what the store already holds.
        preprocessor = GeneratePreprocessor(
            normalization=None, features=["SRC_FLOW_FANOUT"]
        )
        algorithm = GenerateAlgorithm("threshold", column=0, threshold=10.0)
        query = GenerateQuery("feature_scope == flow && FLOW_PACKET_COUNT > 0")
        model = athena.northbound.GenerateDetectionModel(
            query, preprocessor, algorithm
        )
        # Validate against the same stored window; recover flagged sources.
        documents = athena.northbound.RequestFeatures(query)
        matrix, _, docs = model.preprocessor.transform(documents)
        predictions = model.estimator.predict(matrix)
        flagged = {
            doc.get("ip_src")
            for doc, verdict in zip(docs, predictions)
            if verdict
        }
        assert scanner.ip in flagged
        assert normal.ip not in flagged

    def test_scan_visible_in_switch_scope(self, stack):
        """The scan also shows at switch scope: src fan-out per switch."""
        topo, athena, schedule = stack
        _scan(schedule, "h1", "h3", n_ports=25, start=1.0)
        topo.network.sim.run(until=6.0)
        docs = athena.northbound.RequestFeatures(
            GenerateQuery("feature_scope == switch && FLOWS_PER_SRC > 5")
        )
        assert docs

    def test_block_reaction_completes_the_loop(self, stack):
        topo, athena, schedule = stack
        scanner = topo.network.hosts["h1"]
        _scan(schedule, "h1", "h3", n_ports=25, start=1.0)
        topo.network.sim.run(until=6.0)
        rules = athena.northbound.Reactor(
            GenerateQuery(
                f"feature_scope == flow && ip_src == {scanner.ip} "
                f"&& SRC_FLOW_FANOUT > 10"
            ),
            BlockReaction(),
        )
        assert rules >= 1
        victim = topo.network.hosts["h3"]
        delivered = victim.rx_packets
        _scan(schedule, "h1", "h3", n_ports=5, start=topo.network.sim.now)
        topo.network.sim.run(until=topo.network.sim.now + 3.0)
        assert victim.rx_packets == delivered
