"""Tests for the Athena query language (Table IV)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.query import GenerateQuery, Query, parse_constraints
from repro.distdb import matches_filter
from repro.errors import QueryError


class TestParser:
    def test_single_condition(self):
        query = GenerateQuery("FLOW_PACKET_COUNT > 100")
        assert query.matches({"FLOW_PACKET_COUNT": 101})
        assert not query.matches({"FLOW_PACKET_COUNT": 100})

    def test_all_arithmetic_operators(self):
        cases = [
            ("x > 5", 6, 5),
            ("x >= 5", 5, 4),
            ("x < 5", 4, 5),
            ("x <= 5", 5, 6),
            ("x == 5", 5, 4),
            ("x != 5", 4, 5),
        ]
        for text, good, bad in cases:
            query = GenerateQuery(text)
            assert query.matches({"x": good}), text
            assert not query.matches({"x": bad}), text

    def test_and_conjunction(self):
        query = GenerateQuery("a > 1 && b == 2")
        assert query.matches({"a": 2, "b": 2})
        assert not query.matches({"a": 2, "b": 3})

    def test_or_disjunction(self):
        query = GenerateQuery("a == 1 || a == 2")
        assert query.matches({"a": 1})
        assert query.matches({"a": 2})
        assert not query.matches({"a": 3})

    def test_and_binds_tighter_than_or(self):
        query = GenerateQuery("a == 1 && b == 1 || c == 1")
        assert query.matches({"c": 1})
        assert query.matches({"a": 1, "b": 1})
        assert not query.matches({"a": 1, "c": 2})

    def test_parentheses_override(self):
        query = GenerateQuery("a == 1 && (b == 1 || c == 1)")
        assert not query.matches({"a": 1})
        assert query.matches({"a": 1, "c": 1})

    def test_keyword_connectives(self):
        query = GenerateQuery("a == 1 and b == 2 or c == 3")
        assert query.matches({"c": 3})

    def test_string_values(self):
        query = GenerateQuery("ip_dst == 10.0.0.1")
        assert query.matches({"ip_dst": "10.0.0.1"})

    def test_quoted_strings(self):
        query = GenerateQuery("app_id == 'load balancer'")
        assert query.matches({"app_id": "load balancer"})

    def test_booleans(self):
        query = GenerateQuery("up == true")
        assert query.matches({"up": True})

    def test_paper_example_query(self):
        """The Section IV example: IP_DST==server && Port==80."""
        query = GenerateQuery("ip_dst == 10.0.0.5 && tcp_dst == 80")
        assert query.matches({"ip_dst": "10.0.0.5", "tcp_dst": 80})
        assert not query.matches({"ip_dst": "10.0.0.5", "tcp_dst": 443})

    def test_nae_example_query(self):
        """The Section V-C query: Match DPID==(6 or 3)."""
        query = GenerateQuery("switch_id == 6 || switch_id == 3")
        assert query.matches({"switch_id": 6})
        assert query.matches({"switch_id": 3})
        assert not query.matches({"switch_id": 7})

    def test_garbage_rejected(self):
        with pytest.raises(QueryError):
            GenerateQuery("a >")
        with pytest.raises(QueryError):
            GenerateQuery("&& a == 1")
        with pytest.raises(QueryError):
            GenerateQuery("(a == 1")

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            GenerateQuery("a ~ 1")


class TestBuilder:
    def test_where_chains_as_and(self):
        query = Query().where("a", ">", 1).and_where("b", "==", 2)
        assert query.matches({"a": 2, "b": 2})
        assert not query.matches({"a": 0, "b": 2})

    def test_or_where(self):
        query = Query().where("a", "==", 1).or_where("a", "==", 2)
        assert query.matches({"a": 2})

    def test_sort_limit_accessors(self):
        query = Query().sort_by("x", descending=True).limit(5)
        assert query.sort_spec == [("x", -1)]
        assert query.limit_value == 5

    def test_negative_limit_rejected(self):
        with pytest.raises(QueryError):
            Query().limit(-1)

    def test_time_window(self):
        query = Query().time_window(10.0, 20.0)
        assert query.matches({"timestamp": 15.0})
        assert not query.matches({"timestamp": 25.0})
        assert not query.matches({})

    def test_empty_window_rejected(self):
        with pytest.raises(QueryError):
            Query().time_window(5.0, 1.0)

    def test_aggregation_spec_validation(self):
        with pytest.raises(QueryError):
            Query().aggregate(["sw"], "x", func="median")


class TestCompilation:
    def test_filter_compilation_agrees_with_matches(self):
        query = GenerateQuery("a > 1 && (b == 2 || c <= 3)")
        docs = [
            {"a": 2, "b": 2},
            {"a": 2, "c": 3},
            {"a": 0, "b": 2},
            {"a": 2, "b": 9, "c": 9},
        ]
        for doc in docs:
            assert query.matches(doc) == matches_filter(doc, query.to_db_filter())

    def test_window_merged_into_filter(self):
        query = GenerateQuery("a == 1").time_window(0.0, 10.0)
        filter_ = query.to_db_filter()
        assert matches_filter({"a": 1, "timestamp": 5.0}, filter_)
        assert not matches_filter({"a": 1, "timestamp": 50.0}, filter_)

    def test_pipeline_compilation(self):
        query = (
            Query()
            .where("feature_scope", "==", "flow")
            .aggregate(["switch_id"], "FLOW_PACKET_COUNT", "sum")
            .sort_by("FLOW_PACKET_COUNT", descending=True)
            .limit(3)
        )
        pipeline = query.to_db_pipeline()
        stages = [next(iter(stage)) for stage in pipeline]
        assert stages == ["$match", "$group", "$sort", "$limit"]

    def test_no_pipeline_without_aggregation(self):
        assert Query().to_db_pipeline() is None

    @given(
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=20),
    )
    def test_parser_builder_equivalence_property(self, a, b, value):
        """Textual and built queries over the same constraints agree."""
        text = GenerateQuery(f"a > {a} && b <= {b}")
        built = Query().where("a", ">", a).where("b", "<=", b)
        doc = {"a": value, "b": value}
        assert text.matches(doc) == built.matches(doc)

    @given(st.integers(min_value=-5, max_value=25))
    def test_compiled_filter_equivalence_property(self, value):
        query = GenerateQuery("x >= 0 && x < 20 || x == 23")
        doc = {"x": value}
        assert query.matches(doc) == matches_filter(doc, query.to_db_filter())
