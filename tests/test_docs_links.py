"""Docs hygiene: links resolve, anchors exist, CLI examples parse.

Scans ``README.md`` and everything under ``docs/``.  Three layers of
checking, all run by the CI docs job:

* every relative link's target file exists;
* every anchor — in-page ``#fragment`` or cross-file ``file.md#fragment``
  — matches a real heading in the target document (GitHub slugging);
* every ``python -m repro.cli ...`` invocation shown in a fenced code
  block parses against the real argument parser, so documented commands
  cannot drift from the CLI.
"""

import re
import shlex
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*)$", re.MULTILINE)
_FENCE = re.compile(r"```.*?```", re.DOTALL)
_CLI_LINE = re.compile(r"python -m repro\.cli\b[^\n]*")
_SKIP_PREFIXES = ("http://", "https://", "mailto:")


def _markdown_files():
    files = [REPO_ROOT / "README.md"]
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return [f for f in files if f.exists()]


def _prose(markdown_file: Path) -> str:
    """File text with fenced code blocks stripped (example syntax)."""
    text = markdown_file.read_text(encoding="utf-8")
    return _FENCE.sub("", text)


def _links(markdown_file: Path):
    return _LINK.findall(_prose(markdown_file))


def _github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading."""
    # Inline code/emphasis markers and links render away before slugging.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").replace("*", "").replace("_", " ")
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(markdown_file: Path):
    slugs = set()
    for _, heading in _HEADING.findall(_prose(markdown_file)):
        slug = _github_slug(heading)
        # GitHub de-duplicates repeated headings as slug-1, slug-2, ...;
        # the docs don't repeat headings, so the base slug suffices.
        slugs.add(slug)
    return slugs


@pytest.mark.parametrize(
    "markdown_file", _markdown_files(), ids=lambda f: str(f.relative_to(REPO_ROOT))
)
def test_relative_links_resolve(markdown_file):
    broken = []
    for target in _links(markdown_file):
        if target.startswith(_SKIP_PREFIXES) or target.startswith("#"):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (markdown_file.parent / path).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, (
        f"{markdown_file.relative_to(REPO_ROOT)} has broken relative "
        f"links: {broken}"
    )


@pytest.mark.parametrize(
    "markdown_file", _markdown_files(), ids=lambda f: str(f.relative_to(REPO_ROOT))
)
def test_anchors_resolve(markdown_file):
    broken = []
    for target in _links(markdown_file):
        if target.startswith(_SKIP_PREFIXES):
            continue
        if target.startswith("#"):
            path, fragment = "", target[1:]
        elif "#" in target:
            path, fragment = target.split("#", 1)
        else:
            continue
        document = (
            markdown_file if not path
            else (markdown_file.parent / path).resolve()
        )
        if not document.exists() or document.suffix != ".md":
            continue  # existence is the other test's job
        if fragment not in _anchors(document):
            broken.append(target)
    assert not broken, (
        f"{markdown_file.relative_to(REPO_ROOT)} links to anchors that "
        f"match no heading: {broken}"
    )


def _documented_cli_invocations():
    """Every `python -m repro.cli ...` line inside a fenced block."""
    found = []
    for markdown_file in _markdown_files():
        text = markdown_file.read_text(encoding="utf-8")
        for block in _FENCE.findall(text):
            for line in _CLI_LINE.findall(block):
                # Trim shell decoration: trailing comments, pipes,
                # redirects, line continuations.
                line = re.split(r"\s+#|\s*\|\s|\s+>\s|\\\s*$", line)[0]
                found.append((markdown_file.name, line.strip()))
    return found


@pytest.mark.parametrize(
    "doc_name,command",
    _documented_cli_invocations(),
    ids=lambda v: v if isinstance(v, str) else None,
)
def test_documented_cli_commands_parse(doc_name, command):
    from repro.cli import build_parser

    argv = shlex.split(command)[3:]  # drop "python -m repro.cli"
    assert argv, f"{doc_name}: empty CLI example {command!r}"
    # Placeholder operands (e.g. my-plan.json) need no real file — only
    # the parser runs.  SystemExit means the documented flags drifted.
    try:
        build_parser().parse_args(argv)
    except SystemExit as exc:
        pytest.fail(
            f"{doc_name}: documented command does not parse: {command!r} "
            f"(exit {exc.code})"
        )


def test_docs_are_scanned():
    # The parametrization above must never silently collapse to nothing.
    assert any(f.name == "README.md" for f in _markdown_files())
    assert len(_documented_cli_invocations()) >= 10
