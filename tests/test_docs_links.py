"""Docs hygiene: every relative markdown link resolves to a real file.

Scans ``README.md`` and everything under ``docs/``.  External links
(http/https/mailto) and pure in-page anchors are skipped; anchors on
relative links are stripped before checking the target exists.  This is
the same check CI runs, so a renamed file breaks the build instead of
silently orphaning the docs.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def _markdown_files():
    files = [REPO_ROOT / "README.md"]
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return [f for f in files if f.exists()]


def _links(markdown_file: Path):
    text = markdown_file.read_text(encoding="utf-8")
    # Fenced code blocks hold example syntax, not navigable links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return _LINK.findall(text)


@pytest.mark.parametrize(
    "markdown_file", _markdown_files(), ids=lambda f: str(f.relative_to(REPO_ROOT))
)
def test_relative_links_resolve(markdown_file):
    broken = []
    for target in _links(markdown_file):
        if target.startswith(_SKIP_PREFIXES):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (markdown_file.parent / path).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, (
        f"{markdown_file.relative_to(REPO_ROOT)} has broken relative "
        f"links: {broken}"
    )


def test_docs_are_scanned():
    # The parametrization above must never silently collapse to nothing.
    assert any(f.name == "README.md" for f in _markdown_files())
