"""Tests for the distributed document store."""

import pytest
from hypothesis import given, strategies as st

from repro.distdb import Collection, DatabaseCluster, aggregate, matches_filter
from repro.distdb.query import equality_value, get_path, validate_filter
from repro.errors import DatabaseError, QueryError


class TestFilterLanguage:
    def test_empty_filter_matches(self):
        assert matches_filter({"a": 1}, None)
        assert matches_filter({"a": 1}, {})

    def test_equality(self):
        assert matches_filter({"a": 1}, {"a": 1})
        assert not matches_filter({"a": 2}, {"a": 1})
        assert not matches_filter({}, {"a": 1})

    def test_comparisons(self):
        doc = {"x": 5}
        assert matches_filter(doc, {"x": {"$gt": 4}})
        assert matches_filter(doc, {"x": {"$gte": 5}})
        assert matches_filter(doc, {"x": {"$lt": 6}})
        assert matches_filter(doc, {"x": {"$lte": 5}})
        assert matches_filter(doc, {"x": {"$ne": 4}})
        assert not matches_filter(doc, {"x": {"$gt": 5}})

    def test_range_conjunction(self):
        assert matches_filter({"x": 5}, {"x": {"$gt": 1, "$lt": 10}})
        assert not matches_filter({"x": 50}, {"x": {"$gt": 1, "$lt": 10}})

    def test_in_nin(self):
        assert matches_filter({"x": 2}, {"x": {"$in": [1, 2]}})
        assert matches_filter({"x": 3}, {"x": {"$nin": [1, 2]}})

    def test_exists(self):
        assert matches_filter({"x": 1}, {"x": {"$exists": True}})
        assert matches_filter({}, {"x": {"$exists": False}})

    def test_logical(self):
        doc = {"a": 1, "b": 2}
        assert matches_filter(doc, {"$and": [{"a": 1}, {"b": 2}]})
        assert matches_filter(doc, {"$or": [{"a": 9}, {"b": 2}]})
        assert matches_filter(doc, {"$nor": [{"a": 9}, {"b": 9}]})
        assert not matches_filter(doc, {"$or": [{"a": 9}, {"b": 9}]})

    def test_not(self):
        assert matches_filter({"x": 5}, {"x": {"$not": {"$gt": 10}}})
        assert not matches_filter({"x": 50}, {"x": {"$not": {"$gt": 10}}})

    def test_dotted_paths(self):
        doc = {"meta": {"app": "fwd"}}
        assert get_path(doc, "meta.app") == "fwd"
        assert matches_filter(doc, {"meta.app": "fwd"})
        assert get_path(doc, "meta.missing.deep") is None

    def test_missing_value_fails_ordered_comparison(self):
        assert not matches_filter({}, {"x": {"$gt": 1}})

    def test_cross_type_comparison_is_false_not_error(self):
        assert not matches_filter({"x": "abc"}, {"x": {"$gt": 1}})

    def test_unknown_operator_raises(self):
        with pytest.raises(QueryError):
            matches_filter({"x": 1}, {"x": {"$bogus": 1}})
        with pytest.raises(QueryError):
            validate_filter({"x": {"$bogus": 1}})
        with pytest.raises(QueryError):
            validate_filter({"$xyz": []})

    def test_equality_value_extraction(self):
        assert equality_value({"k": 5}, "k") == 5
        assert equality_value({"k": {"$eq": 5}}, "k") == 5
        assert equality_value({"k": {"$gt": 5}}, "k") is None
        assert equality_value(None, "k") is None

    @given(
        st.lists(
            st.dictionaries(
                st.sampled_from(["a", "b"]),
                st.integers(min_value=0, max_value=10),
                max_size=2,
            ),
            max_size=20,
        ),
        st.integers(min_value=0, max_value=10),
    )
    def test_gt_filter_equals_python_predicate(self, docs, bound):
        """$gt must agree with the equivalent Python comparison."""
        expected = [d for d in docs if "a" in d and d["a"] > bound]
        actual = [d for d in docs if matches_filter(d, {"a": {"$gt": bound}})]
        assert actual == expected


class TestCollection:
    def test_insert_and_find(self):
        coll = Collection("c")
        coll.insert_many([{"a": i} for i in range(5)])
        assert len(coll) == 5
        assert len(coll.find({"a": {"$gte": 3}})) == 2

    def test_insert_assigns_ids(self):
        coll = Collection("c")
        id1 = coll.insert_one({"a": 1})
        id2 = coll.insert_one({"a": 2})
        assert id1 != id2

    def test_duplicate_id_rejected(self):
        coll = Collection("c")
        coll.insert_one({"_id": 1, "a": 1})
        with pytest.raises(DatabaseError):
            coll.insert_one({"_id": 1, "a": 2})

    def test_insert_copies_document(self):
        coll = Collection("c")
        doc = {"a": 1}
        coll.insert_one(doc)
        doc["a"] = 99
        assert coll.find({"a": 1})

    def test_sort_and_limit(self):
        coll = Collection("c")
        coll.insert_many([{"a": i % 3, "b": i} for i in range(9)])
        results = coll.find(sort=[("a", 1), ("b", -1)], limit=3)
        assert [r["a"] for r in results] == [0, 0, 0]
        assert results[0]["b"] == 6

    def test_projection(self):
        coll = Collection("c")
        coll.insert_one({"a": 1, "b": 2, "c": 3})
        result = coll.find(projection=["a"])[0]
        assert "b" not in result
        assert result["a"] == 1

    def test_delete_many(self):
        coll = Collection("c")
        coll.insert_many([{"a": i} for i in range(10)])
        assert coll.delete_many({"a": {"$lt": 4}}) == 4
        assert len(coll) == 6

    def test_update_many(self):
        coll = Collection("c")
        coll.insert_many([{"a": i} for i in range(4)])
        assert coll.update_many({"a": {"$gte": 2}}, {"flag": True}) == 2
        assert coll.count({"flag": True}) == 2

    def test_index_used_and_consistent(self):
        coll = Collection("c")
        coll.insert_many([{"k": i % 5, "v": i} for i in range(100)])
        coll.create_index("k")
        indexed = sorted(d["v"] for d in coll.find({"k": 2}))
        coll2 = Collection("c2")
        coll2.insert_many([{"k": i % 5, "v": i} for i in range(100)])
        unindexed = sorted(d["v"] for d in coll2.find({"k": 2}))
        assert indexed == unindexed

    def test_index_maintained_across_mutations(self):
        coll = Collection("c")
        coll.create_index("k")
        coll.insert_many([{"k": 1, "v": i} for i in range(5)])
        coll.delete_many({"v": {"$lt": 2}})
        coll.update_many({"v": 4}, {"k": 2})
        assert coll.count({"k": 1}) == 2
        assert coll.count({"k": 2}) == 1


class TestAggregation:
    DOCS = [
        {"sw": 1, "pkts": 10},
        {"sw": 1, "pkts": 30},
        {"sw": 2, "pkts": 5},
    ]

    def test_group_sum(self):
        rows = aggregate(self.DOCS, [{"$group": {"_id": "$sw", "total": {"$sum": "$pkts"}}}])
        totals = {row["_id"]: row["total"] for row in rows}
        assert totals == {1: 40, 2: 5}

    def test_group_avg_min_max_count(self):
        rows = aggregate(
            self.DOCS,
            [
                {
                    "$group": {
                        "_id": "$sw",
                        "avg": {"$avg": "$pkts"},
                        "low": {"$min": "$pkts"},
                        "high": {"$max": "$pkts"},
                        "n": {"$count": 1},
                    }
                }
            ],
        )
        by_sw = {row["_id"]: row for row in rows}
        assert by_sw[1]["avg"] == 20
        assert by_sw[1]["low"] == 10
        assert by_sw[1]["high"] == 30
        assert by_sw[1]["n"] == 2

    def test_match_sort_limit_pipeline(self):
        rows = aggregate(
            self.DOCS,
            [
                {"$match": {"pkts": {"$gte": 5}}},
                {"$sort": {"pkts": -1}},
                {"$limit": 2},
            ],
        )
        assert [row["pkts"] for row in rows] == [30, 10]

    def test_compound_group_key(self):
        docs = [{"a": 1, "b": "x", "v": 1}, {"a": 1, "b": "x", "v": 2}]
        rows = aggregate(
            docs,
            [{"$group": {"_id": {"a": "$a", "b": "$b"}, "t": {"$sum": "$v"}}}],
        )
        assert rows[0]["_id"] == {"a": 1, "b": "x"}
        assert rows[0]["t"] == 3

    def test_unknown_stage_rejected(self):
        with pytest.raises(QueryError):
            aggregate([], [{"$teleport": 1}])

    def test_group_requires_id(self):
        with pytest.raises(QueryError):
            aggregate([], [{"$group": {"t": {"$sum": "$x"}}}])


class TestCluster:
    def test_insert_routes_by_shard_key(self):
        cluster = DatabaseCluster(n_shards=3, shard_key="k", replication=1)
        cluster.insert_many("c", [{"k": i} for i in range(60)])
        occupied = [s.document_count() for s in cluster.shards]
        assert sum(occupied) == 60
        assert all(count > 0 for count in occupied)

    def test_find_scatter_gather(self):
        cluster = DatabaseCluster(n_shards=3, replication=1)
        cluster.insert_many("c", [{"v": i} for i in range(20)])
        assert len(cluster.find("c", {"v": {"$gte": 10}})) == 10
        assert cluster.count("c", {"v": {"$lt": 5}}) == 5

    def test_find_sorted_limited_across_shards(self):
        cluster = DatabaseCluster(n_shards=3, replication=1)
        cluster.insert_many("c", [{"v": i} for i in range(20)])
        top = cluster.find("c", sort=[("v", -1)], limit=3)
        assert [d["v"] for d in top] == [19, 18, 17]

    def test_replication_survives_primary_loss(self):
        cluster = DatabaseCluster(n_shards=3, replication=2)
        cluster.insert_many("c", [{"v": i} for i in range(30)])
        primary_total = sum(
            len(s.collection("c")) for s in cluster.shards if s.has_collection("c")
        )
        replica_total = sum(
            len(s.collection("c__replica"))
            for s in cluster.shards
            if s.has_collection("c__replica")
        )
        assert primary_total == 30
        assert replica_total == 30

    def test_failed_shard_raises_when_pinned(self):
        cluster = DatabaseCluster(n_shards=2, shard_key="k", replication=1)
        cluster.insert_one("c", {"k": 1})
        # Find the shard holding k=1 and take it down.
        holder = next(s for s in cluster.shards if s.document_count() == 1)
        cluster.fail_shard(holder.node_id)
        with pytest.raises(DatabaseError):
            cluster.find("c", {"k": {"$eq": 1}})
        cluster.recover_shard(holder.node_id)
        assert len(cluster.find("c", {"k": {"$eq": 1}})) == 1

    def test_aggregate_distributed_group_matches_central(self):
        cluster = DatabaseCluster(n_shards=3, replication=1)
        docs = [{"sw": i % 4, "pkts": i} for i in range(100)]
        cluster.insert_many("c", docs)
        pipeline = [{"$group": {"_id": "$sw", "total": {"$sum": "$pkts"}}}]
        distributed = {r["_id"]: r["total"] for r in cluster.aggregate("c", pipeline)}
        central = {r["_id"]: r["total"] for r in aggregate(docs, pipeline)}
        assert distributed == central

    def test_aggregate_avg_falls_back_to_central(self):
        cluster = DatabaseCluster(n_shards=3, replication=1)
        docs = [{"sw": i % 2, "pkts": i} for i in range(10)]
        cluster.insert_many("c", docs)
        pipeline = [{"$group": {"_id": "$sw", "mean": {"$avg": "$pkts"}}}]
        result = {r["_id"]: r["mean"] for r in cluster.aggregate("c", pipeline)}
        assert result == {0: 4.0, 1: 5.0}

    def test_delete_many_cleans_replicas(self):
        cluster = DatabaseCluster(n_shards=3, replication=2)
        cluster.insert_many("c", [{"v": i} for i in range(10)])
        assert cluster.delete_many("c", None) == 10
        assert cluster.document_count() == 0

    def test_op_stats_accumulate(self):
        cluster = DatabaseCluster(n_shards=2, replication=1)
        cluster.insert_many("c", [{"v": 1}])
        cluster.find("c")
        stats = cluster.op_stats()
        assert stats["insert"] >= 1
        assert stats["router_ops"] >= 2
        assert stats["bytes_written"] > 0


class TestPipelineExtras:
    def test_skip_stage(self):
        docs = [{"v": i} for i in range(10)]
        rows = aggregate(docs, [{"$sort": {"v": 1}}, {"$skip": 7}])
        assert [row["v"] for row in rows] == [7, 8, 9]

    def test_project_stage(self):
        rows = aggregate(
            [{"a": 1, "b": 2, "c": 3}], [{"$project": ["a", "c"]}]
        )
        assert rows == [{"a": 1, "c": 3}]

    def test_group_first_last(self):
        docs = [{"k": 1, "v": 10}, {"k": 1, "v": 20}, {"k": 1, "v": 30}]
        rows = aggregate(
            docs,
            [{"$group": {"_id": "$k", "first": {"$first": "$v"},
                         "last": {"$last": "$v"}}}],
        )
        assert rows[0]["first"] == 10
        assert rows[0]["last"] == 30

    def test_cluster_pipeline_with_sort_and_limit(self):
        cluster = DatabaseCluster(n_shards=3, replication=1)
        cluster.insert_many(
            "c", [{"sw": i % 5, "pkts": i} for i in range(50)]
        )
        rows = cluster.aggregate(
            "c",
            [
                {"$group": {"_id": "$sw", "total": {"$sum": "$pkts"}}},
                {"$sort": {"total": -1}},
                {"$limit": 2},
            ],
        )
        assert len(rows) == 2
        assert rows[0]["total"] >= rows[1]["total"]


class TestIndexAndFastPathRegressions:
    """Regressions from the hot-path overhaul (docs/PERF.md)."""

    @pytest.fixture(params=[True, False], ids=["fast", "slow"])
    def enabled(self, request):
        from repro.perf import fast_path_scope

        with fast_path_scope(request.param):
            yield request.param

    def test_indexed_field_pinned_to_none(self, enabled):
        """{'field': None} must probe the index bucket, not full-scan —
        and must return only the documents whose value IS None."""
        coll = Collection("c")
        coll.create_index("owner")
        coll.insert_many(
            [{"owner": None, "n": 1}, {"owner": "a", "n": 2}, {"owner": None, "n": 3}]
        )
        got = coll.find({"owner": None}, sort=[("n", 1)])
        assert [d["n"] for d in got] == [1, 3]
        assert sorted(d["n"] for d in coll.find({"owner": {"$eq": None}})) == [1, 3]

    def test_compound_index_serves_and_filters(self, enabled):
        coll = Collection("features")
        coll.create_index("feature_scope", "switch_id")
        coll.insert_many(
            {
                "feature_scope": ("flow", "port")[i % 2],
                "switch_id": i % 3,
                "n": i,
            }
            for i in range(12)
        )
        got = coll.find(
            {"$and": [{"feature_scope": "flow"}, {"switch_id": 2}]},
            sort=[("n", 1)],
        )
        assert [d["n"] for d in got] == [2, 8]
        # Updates migrate documents between compound buckets.
        coll.update_many({"n": 2}, {"switch_id": 1})
        got = coll.find({"$and": [{"feature_scope": "flow"}, {"switch_id": 2}]})
        assert [d["n"] for d in got] == [8]

    def test_compound_miss_falls_back_to_scan(self, enabled):
        """Pinning only part of the compound key still returns everything."""
        coll = Collection("features")
        coll.create_index("feature_scope", "switch_id")
        coll.insert_many(
            {"feature_scope": "flow", "switch_id": i, "n": i} for i in range(4)
        )
        assert len(coll.find({"feature_scope": "flow"})) == 4

    def test_multi_key_sort_single_pass(self, enabled):
        coll = Collection("c")
        coll.insert_many(
            [
                {"a": 2, "b": 1, "n": 0},
                {"a": 1, "b": 2, "n": 1},
                {"a": 1, "b": 1, "n": 2},
                {"a": None, "b": 9, "n": 3},
            ]
        )
        ascending = coll.find(sort=[("a", 1), ("b", 1)])
        assert [d["n"] for d in ascending] == [2, 1, 0, 3]
        descending = coll.find(sort=[("a", -1), ("b", -1)])
        assert [d["n"] for d in descending] == [3, 0, 1, 2]
        mixed = coll.find(sort=[("a", 1), ("b", -1)])
        assert [d["n"] for d in mixed] == [1, 2, 0, 3]

    def test_bytes_read_identical_across_paths(self):
        from repro.perf import fast_path_scope

        def drive(flag):
            coll = Collection("c")
            coll.create_index("k")
            coll.insert_many({"k": i % 3, "pad": "x" * i} for i in range(30))
            with fast_path_scope(flag):
                coll.find({"k": 1}, sort=[("pad", 1)], limit=2)
                coll.find({"k": {"$gt": 0}})
            return coll.bytes_read

        assert drive(True) == drive(False)

    def test_size_memo_invalidated_on_update(self):
        """After update_many grows a doc, bytes_read reflects the new size."""
        from repro.distdb.collection import approx_size
        from repro.perf import fast_path_scope

        coll = Collection("c")
        coll.insert_one({"k": 1, "pad": "x"})
        with fast_path_scope(True):
            coll.find({"k": 1})
            first = coll.bytes_read
            coll.update_many({"k": 1}, {"pad": "y" * 100})
            coll.find({"k": 1})
        grown = coll.bytes_read - first
        [doc] = coll.find({"k": 1})
        assert grown == approx_size({k: v for k, v in doc.items()})

    def test_find_results_are_copies(self, enabled):
        """Zero-copy reads must still hand out private dicts."""
        coll = Collection("c")
        coll.insert_one({"k": 1})
        got = coll.find({"k": 1})
        got[0]["k"] = 999
        assert coll.find({"k": 1})[0]["k"] == 1

    def test_cluster_create_index_forwards_compound(self, enabled):
        cluster = DatabaseCluster(n_shards=2)
        cluster.create_index("features", "feature_scope", "switch_id")
        for i in range(10):
            cluster.insert_one(
                "features",
                {"_id": i, "feature_scope": "flow", "switch_id": i % 2, "n": i},
            )
        got = cluster.find(
            "features",
            {"$and": [{"feature_scope": "flow"}, {"switch_id": 0}]},
            sort=[("n", 1)],
        )
        assert [d["n"] for d in got] == [0, 2, 4, 6, 8]


class TestPartialShardAvailability:
    """Typed failure and partial-result behaviour under shard loss."""

    def _cluster(self):
        cluster = DatabaseCluster(n_shards=3, shard_key="k", replication=1)
        cluster.insert_many("c", [{"k": i, "v": i} for i in range(60)])
        return cluster

    def test_all_shards_down_raises_typed_error(self):
        from repro.errors import AllShardsDownError

        cluster = self._cluster()
        for shard in cluster.shards:
            cluster.fail_shard(shard.node_id)
        with pytest.raises(AllShardsDownError):
            cluster.find("c", None)
        with pytest.raises(AllShardsDownError):
            cluster.aggregate(
                "c", [{"$group": {"_id": "$k", "t": {"$sum": "$v"}}}]
            )
        # The typed error is still the DatabaseError callers catch.
        assert issubclass(AllShardsDownError, DatabaseError)

    def test_find_returns_surviving_shards_documents(self):
        cluster = self._cluster()
        dead = cluster.shards[0]
        survivors = sum(
            len(s.collection("c"))
            for s in cluster.shards[1:]
            if s.has_collection("c")
        )
        cluster.fail_shard(dead.node_id)
        docs = cluster.find("c", None)
        assert len(docs) == survivors
        cluster.recover_shard(dead.node_id)
        assert len(cluster.find("c", None)) == 60

    def test_aggregate_over_surviving_shards_matches_their_data(self):
        cluster = self._cluster()
        dead = cluster.shards[1]
        alive_total = sum(
            doc["v"]
            for s in cluster.shards
            if s.node_id != dead.node_id and s.has_collection("c")
            for doc in s.collection("c").find(None)
        )
        cluster.fail_shard(dead.node_id)
        rows = cluster.aggregate(
            "c", [{"$group": {"_id": None, "t": {"$sum": "$v"}}}]
        )
        assert rows[0]["t"] == alive_total

    def test_insert_to_dead_home_without_replica_is_typed(self):
        from repro.errors import ShardDownError

        cluster = DatabaseCluster(n_shards=2, shard_key="k", replication=1)
        key = next(
            k for k in range(10) if cluster._shard_for(k).node_id == 0
        )
        cluster.fail_shard(0)
        with pytest.raises(ShardDownError) as excinfo:
            cluster.insert_one("c", {"k": key})
        assert excinfo.value.node_id == 0

    def test_replicated_insert_survives_dead_home(self):
        cluster = DatabaseCluster(n_shards=3, shard_key="k", replication=2)
        key = next(
            k for k in range(10) if cluster._shard_for(k).node_id == 0
        )
        cluster.fail_shard(0)
        cluster.insert_one("c", {"k": key, "v": 1})
        assert cluster.count("c") == 1
