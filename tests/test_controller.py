"""Tests for the controller cluster: services, mastership, forwarding."""

import pytest

from repro.controller import ControllerCluster, ReactiveForwarding
from repro.controller.events import HostEvent, PacketInEvent
from repro.controller.topology import TopologyService
from repro.dataplane.packet import Packet, flow_headers
from repro.dataplane.topologies import enterprise_topology, linear_topology
from repro.errors import ControllerError
from repro.openflow import FlowStatsRequest, Match
from repro.types import ConnectPoint


def _learn_hosts(net, names=None):
    for name, host in net.hosts.items():
        if names and name not in names:
            continue
        net.inject_from_host(
            name,
            Packet(
                headers=flow_headers(
                    host.mac, "ff:ff:ff:ff:ff:ff", host.ip,
                    "255.255.255.255", proto=17, sport=68, dport=67,
                ),
                size=64,
            ),
        )
    net.sim.run(until=net.sim.now + 0.5)


@pytest.fixture
def stack():
    topo = linear_topology(n_switches=3, hosts_per_switch=1)
    cluster = ControllerCluster(topo.network, n_instances=1)
    cluster.adopt_all()
    cluster.start(poll=False)
    fwd = ReactiveForwarding()
    fwd.activate(cluster)
    return topo.network, cluster, fwd


class TestTopologyService:
    def test_sync_from_network(self):
        topo = linear_topology(n_switches=3)
        service = TopologyService()
        service.sync_from_network(topo.network)
        assert service.switch_count() == 3
        assert service.link_count() == 2

    def test_shortest_path(self):
        topo = linear_topology(n_switches=4)
        service = TopologyService()
        service.sync_from_network(topo.network)
        assert service.shortest_path(1, 4) == [1, 2, 3, 4]
        assert service.shortest_path(2, 2) == [2]

    def test_port_toward(self):
        topo = linear_topology(n_switches=3)
        service = TopologyService()
        service.sync_from_network(topo.network)
        assert service.port_toward(1, 2) == 2
        assert service.port_toward(2, 1) == 1
        with pytest.raises(ControllerError):
            service.port_toward(1, 3)

    def test_infrastructure_ports(self):
        topo = linear_topology(n_switches=2, hosts_per_switch=1)
        service = TopologyService()
        service.sync_from_network(topo.network)
        assert service.is_infrastructure_port(ConnectPoint(1, 2))
        assert not service.is_infrastructure_port(ConnectPoint(1, 100))

    def test_link_weight_changes_path(self):
        topo = enterprise_topology()
        service = TopologyService()
        service.sync_from_network(topo.network)
        path = service.shortest_path(1, 2)
        assert path == [1, 2]
        service.set_link_weight(1, 2, 100.0)
        assert service.shortest_path(1, 2) != [1, 2]

    def test_remove_link_disconnects(self):
        topo = linear_topology(n_switches=2)
        service = TopologyService()
        service.sync_from_network(topo.network)
        service.remove_link(1, 2)
        assert service.shortest_path(1, 2) is None


class TestMastership:
    def test_domains_assigned(self):
        topo = enterprise_topology()
        cluster = ControllerCluster(topo.network, n_instances=3)
        cluster.adopt_domains(topo.domains)
        assert cluster.mastership.instance_count() == 3
        for idx, domain in enumerate(topo.domains):
            for dpid in domain:
                assert cluster.mastership.is_master(idx, dpid)

    def test_too_many_domains_rejected(self):
        topo = linear_topology(n_switches=2)
        cluster = ControllerCluster(topo.network, n_instances=1)
        with pytest.raises(ControllerError):
            cluster.adopt_domains([[1], [2]])

    def test_send_routes_via_master(self):
        topo = enterprise_topology()
        cluster = ControllerCluster(topo.network, n_instances=3)
        cluster.adopt_domains(topo.domains)
        dpid = topo.domains[2][0]
        cluster.send(dpid, FlowStatsRequest(match=Match()))
        assert cluster.instances[2].messages_to_switches == 1
        assert cluster.instances[0].messages_to_switches == 0

    def test_failover_moves_switches(self):
        topo = enterprise_topology()
        cluster = ControllerCluster(topo.network, n_instances=3)
        cluster.adopt_domains(topo.domains)
        moved = cluster.fail_instance(0)
        assert sorted(moved) == sorted(topo.domains[0])
        for dpid in moved:
            assert cluster.mastership.master_of(dpid) != 0
        # Messages still route after failover.
        cluster.send(moved[0], FlowStatsRequest(match=Match()))


class TestHostLearning:
    def test_hosts_learned_from_packet_in(self, stack):
        net, cluster, _fwd = stack
        _learn_hosts(net)
        assert cluster.hosts.host_count() == 3
        location = cluster.hosts.locate_ip(net.hosts["h1"].ip)
        assert location.point.dpid == 1

    def test_infrastructure_sightings_ignored(self, stack):
        net, cluster, _fwd = stack
        _learn_hosts(net)
        h1 = net.hosts["h1"]
        # A sighting on an inter-switch port must not relocate the host.
        cluster.hosts.learn(h1.mac, h1.ip, 2, 1, now=9.0)
        assert cluster.hosts.locate_mac(h1.mac).point.dpid == 1

    def test_host_events_published(self, stack):
        net, cluster, _fwd = stack
        events = []
        cluster.bus.subscribe(HostEvent, events.append)
        _learn_hosts(net)
        assert len(events) == 3


class TestReactiveForwarding:
    def test_end_to_end_delivery(self, stack):
        net, cluster, fwd = stack
        _learn_hosts(net)
        h1, h3 = net.hosts["h1"], net.hosts["h3"]
        before = h3.rx_packets
        for i in range(10):
            net.inject_from_host(
                "h1",
                Packet(headers=flow_headers(
                    h1.mac, h3.mac, h1.ip, h3.ip, proto=6, sport=5000, dport=80,
                ), size=400),
                when=net.sim.now + 0.01 * i,
            )
        net.sim.run(until=net.sim.now + 1.0)
        assert h3.rx_packets - before == 10
        assert fwd.paths_installed >= 1
        # Only the first flow packet punts (the rest is learning floods).
        punts_before_flow = 4  # 3 learning broadcasts reached s1 + 1 flow miss
        assert net.switches[1].packet_in_count <= punts_before_flow

    def test_unknown_destination_floods(self, stack):
        net, cluster, fwd = stack
        h1 = net.hosts["h1"]
        net.inject_from_host(
            "h1",
            Packet(headers=flow_headers(
                h1.mac, "aa:99:99:99:99:99", h1.ip, "10.99.99.99",
                proto=6, sport=1, dport=2,
            )),
        )
        net.sim.run(until=net.sim.now + 1.0)
        assert fwd.flooded >= 1

    def test_rules_attributed_to_app(self, stack):
        net, cluster, fwd = stack
        _learn_hosts(net)
        h1, h3 = net.hosts["h1"], net.hosts["h3"]
        net.inject_from_host(
            "h1",
            Packet(headers=flow_headers(
                h1.mac, h3.mac, h1.ip, h3.ip, proto=6, sport=5000, dport=80,
            )),
        )
        net.sim.run(until=net.sim.now + 1.0)
        rules = cluster.flow_rules.rules_of(1, app_id="fwd")
        assert rules
        match = rules[0].match
        assert cluster.flow_rules.app_of_flow(1, match) == "fwd"

    def test_flow_removed_syncs_bookkeeping(self, stack):
        net, cluster, fwd = stack
        _learn_hosts(net)
        h1, h3 = net.hosts["h1"], net.hosts["h3"]
        net.inject_from_host(
            "h1",
            Packet(headers=flow_headers(
                h1.mac, h3.mac, h1.ip, h3.ip, proto=6, sport=5000, dport=80,
            )),
        )
        net.sim.run(until=net.sim.now + 1.0)
        assert cluster.flow_rules.total_rules() > 0
        # Idle timeout (10s default) evicts everything eventually.
        net.sim.run(until=net.sim.now + 30.0)
        assert cluster.flow_rules.total_rules() == 0

    def test_deactivate_stops_handling(self, stack):
        net, cluster, fwd = stack
        _learn_hosts(net)
        fwd.deactivate()
        before = fwd.paths_installed
        h1, h3 = net.hosts["h1"], net.hosts["h3"]
        net.inject_from_host(
            "h1",
            Packet(headers=flow_headers(
                h1.mac, h3.mac, h1.ip, h3.ip, proto=6, sport=6000, dport=80,
            )),
        )
        net.sim.run(until=net.sim.now + 0.5)
        assert fwd.paths_installed == before


class TestStatsPoller:
    def test_background_polling_generates_replies(self):
        topo = linear_topology(n_switches=2)
        cluster = ControllerCluster(topo.network, n_instances=1, poll_interval=1.0)
        cluster.adopt_all()
        cluster.start(poll=True)
        from repro.controller.events import StatsEvent

        events = []
        cluster.bus.subscribe(StatsEvent, events.append)
        topo.network.sim.run(until=3.5)
        # 3 polls x 2 switches x 2 request kinds = 12 replies.
        assert len(events) == 12
        assert all(not e.athena_marked for e in events)

    def test_athena_marked_xids(self):
        topo = linear_topology(n_switches=1)
        cluster = ControllerCluster(topo.network, n_instances=1)
        cluster.adopt_all()
        from repro.controller.events import StatsEvent

        events = []
        instance = cluster.instances[0]
        instance.bus.subscribe(StatsEvent, events.append)
        request = FlowStatsRequest(match=Match())
        instance.mark_athena_xid(request.xid)
        instance.send(1, request)
        assert len(events) == 1
        assert events[0].athena_marked
