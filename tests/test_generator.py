"""Tests for the Feature Generator (1B)."""

import pytest

from repro.controller.events import (
    FlowRemovedEvent,
    MessageDirection,
    PacketInEvent,
    StatsEvent,
)
from repro.core.feature_format import FeatureScope
from repro.core.features.catalog import FeatureCategory
from repro.core.generator import FeatureGenerator
from repro.openflow.messages import (
    FlowRemoved,
    FlowStatsEntry,
    FlowStatsReply,
    PacketIn,
    PortStatsEntry,
    PortStatsReply,
    TableStatsEntry,
    TableStatsReply,
)
from repro.openflow.match import Match


def _flow_stats_event(dpid=1, time=5.0, entries=None, instance=0):
    entries = entries or [
        FlowStatsEntry(
            match=Match(ip_src="10.0.0.1", ip_dst="10.0.0.2", tcp_dst=80),
            priority=10,
            duration_sec=5.0,
            packet_count=50,
            byte_count=5000,
            app_id="fwd",
        )
    ]
    return StatsEvent(
        instance_id=instance,
        dpid=dpid,
        time=time,
        message=FlowStatsReply(dpid=dpid, entries=entries),
        athena_marked=True,
    )


@pytest.fixture
def sink():
    return []


@pytest.fixture
def generator(sink):
    return FeatureGenerator(instance_id=0, sink=sink.append)


class TestFlowStats:
    def test_flow_record_emitted(self, generator, sink):
        generator.on_stats_event(_flow_stats_event())
        flow_records = [r for r in sink if r.scope == FeatureScope.FLOW]
        assert len(flow_records) == 1
        record = flow_records[0]
        assert record.fields["FLOW_PACKET_COUNT"] == 50.0
        assert record.fields["FLOW_BYTE_PER_PACKET"] == 100.0
        assert record.indicators["ip_src"] == "10.0.0.1"
        assert record.app_id == "fwd"

    def test_switch_record_accompanies_flow_round(self, generator, sink):
        generator.on_stats_event(_flow_stats_event())
        switch_records = [r for r in sink if r.scope == FeatureScope.SWITCH]
        assert len(switch_records) == 1
        assert switch_records[0].fields["TOTAL_TRACKED_FLOWS"] == 1.0

    def test_variation_across_rounds(self, generator, sink):
        generator.on_stats_event(_flow_stats_event(time=5.0))
        entries = [
            FlowStatsEntry(
                match=Match(ip_src="10.0.0.1", ip_dst="10.0.0.2", tcp_dst=80),
                priority=10,
                duration_sec=10.0,
                packet_count=80,
                byte_count=9000,
                app_id="fwd",
            )
        ]
        generator.on_stats_event(_flow_stats_event(time=10.0, entries=entries))
        flows = [r for r in sink if r.scope == FeatureScope.FLOW]
        assert flows[1].fields["FLOW_PACKET_COUNT_VAR"] == 30.0
        assert flows[1].fields["FLOW_BYTE_COUNT_VAR"] == 4000.0

    def test_flow_rule_lookup_fallback(self, sink):
        generator = FeatureGenerator(
            instance_id=0,
            sink=sink.append,
            flow_rule_lookup=lambda dpid, match: "lb",
        )
        entries = [
            FlowStatsEntry(
                match=Match(ip_src="10.0.0.1"), priority=1, duration_sec=1.0,
                packet_count=1, byte_count=1, app_id=None,
            )
        ]
        generator.on_stats_event(_flow_stats_event(entries=entries))
        flows = [r for r in sink if r.scope == FeatureScope.FLOW]
        assert flows[0].app_id == "lb"


class TestPortStats:
    def _event(self, rx_bytes, time):
        return StatsEvent(
            dpid=1,
            time=time,
            message=PortStatsReply(
                dpid=1,
                entries=[PortStatsEntry(port_no=2, rx_bytes=rx_bytes, rx_packets=1)],
            ),
            athena_marked=True,
        )

    def test_port_record(self, generator, sink):
        generator.on_stats_event(self._event(1000, 1.0))
        ports = [r for r in sink if r.scope == FeatureScope.PORT]
        assert len(ports) == 1
        assert ports[0].port_no == 2
        assert ports[0].fields["PORT_RX_BYTES"] == 1000.0

    def test_port_variation_drives_utilization(self, sink):
        generator = FeatureGenerator(
            instance_id=0, sink=sink.append,
            port_speed_lookup=lambda dpid, port: 8000.0,
        )
        generator.on_stats_event(self._event(0, 0.0))
        generator.on_stats_event(self._event(500, 1.0))
        ports = [r for r in sink if r.scope == FeatureScope.PORT]
        assert ports[1].fields["PORT_RX_BYTES_VAR"] == 500.0
        assert ports[1].fields["PORT_UTILIZATION"] == pytest.approx(0.5)


class TestOtherEvents:
    def test_table_stats_record(self, generator, sink):
        generator.on_stats_event(
            StatsEvent(
                dpid=1, time=1.0,
                message=TableStatsReply(
                    dpid=1,
                    entries=[TableStatsEntry(table_id=0, active_count=5,
                                             lookup_count=10, matched_count=9)],
                ),
                athena_marked=True,
            )
        )
        switches = [r for r in sink if r.scope == FeatureScope.SWITCH]
        assert switches[0].fields["TABLE_ACTIVE_COUNT"] == 5.0
        assert switches[0].fields["TABLE_HIT_RATIO"] == 0.9

    def test_flow_removed_emits_final_record(self, generator, sink):
        generator.on_stats_event(_flow_stats_event())
        generator.on_flow_removed(
            FlowRemovedEvent(
                dpid=1, time=20.0,
                message=FlowRemoved(
                    dpid=1,
                    match=Match(ip_src="10.0.0.1", ip_dst="10.0.0.2", tcp_dst=80),
                    packet_count=100, byte_count=10000, duration_sec=15.0,
                    app_id="fwd",
                ),
            )
        )
        flows = [r for r in sink if r.scope == FeatureScope.FLOW]
        assert flows[-1].fields["FLOW_PACKET_COUNT"] == 100.0
        assert generator.flow_state.tracked_flow_count(1) == 0

    def test_packet_in_record(self, generator, sink):
        generator.on_packet_in(
            PacketInEvent(
                dpid=3, time=1.0,
                message=PacketIn(
                    dpid=3, in_port=1,
                    headers={"ip_src": "10.0.0.1", "ip_dst": "10.0.0.2",
                             "eth_type": 0x800, "ip_proto": 6,
                             "tcp_src": 5, "tcp_dst": 80},
                    total_len=100,
                ),
            )
        )
        flows = [r for r in sink if r.scope == FeatureScope.FLOW]
        assert flows[0].fields["FLOW_IS_NEW"] == 1.0
        assert flows[0].switch_id == 3

    def test_message_tap_feeds_control_record(self, generator, sink):
        message = PacketIn(dpid=1, headers={}, total_len=64)
        generator.on_message_tap(message, MessageDirection.FROM_SWITCH, 0)
        generator.on_message_tap(message, MessageDirection.FROM_SWITCH, 0)
        generator.on_stats_event(_flow_stats_event())
        controls = [r for r in sink if r.scope == FeatureScope.CONTROL]
        assert len(controls) == 1
        assert controls[0].fields["PACKET_IN_COUNT"] == 2.0
        assert controls[0].fields["CONTROL_MSG_BYTES"] > 0


class TestFidelityControls:
    def test_scope_filtering(self, generator, sink):
        generator.enabled_scopes = {FeatureScope.PORT}
        generator.on_stats_event(_flow_stats_event())
        assert sink == []

    def test_switch_filtering(self, generator, sink):
        generator.monitored_switches = {99}
        generator.on_stats_event(_flow_stats_event(dpid=1))
        assert sink == []
        generator.monitored_switches = {1}
        generator.on_stats_event(_flow_stats_event(dpid=1))
        assert sink

    def test_category_filtering(self, generator, sink):
        generator.enabled_categories = {FeatureCategory.PROTOCOL}
        generator.on_stats_event(_flow_stats_event())
        flows = [r for r in sink if r.scope == FeatureScope.FLOW]
        assert "FLOW_PACKET_COUNT" in flows[0].fields
        assert "FLOW_BYTE_PER_PACKET" not in flows[0].fields
        assert "PAIR_FLOW" not in flows[0].fields

    def test_gc_cleans_both_tables(self, generator, sink):
        generator.on_stats_event(_flow_stats_event(time=0.0))
        assert generator.collect_garbage(now=1000.0) > 0
        assert generator.flow_state.tracked_flow_count() == 0

    def test_counts(self, generator, sink):
        generator.on_stats_event(_flow_stats_event())
        assert generator.features_generated == len(sink)


class TestCategorySuppressionCache:
    """_filter_categories precomputes the suppressed-name set (PR-8)."""

    def test_full_category_set_bypasses_cache(self, generator, sink):
        generator.on_stats_event(_flow_stats_event())
        assert generator._suppressed_key is None

    def test_suppressed_names_cached_per_category_set(self, generator, sink):
        generator.enabled_categories = {FeatureCategory.PROTOCOL}
        generator.on_stats_event(_flow_stats_event())
        cached = generator._suppressed_names
        assert cached  # something really is suppressed
        generator.on_stats_event(_flow_stats_event(time=6.0))
        assert generator._suppressed_names is cached

    def test_cache_recomputed_when_fidelity_changes(self, generator, sink):
        generator.enabled_categories = {FeatureCategory.PROTOCOL}
        generator.on_stats_event(_flow_stats_event())
        narrow = generator._suppressed_names
        generator.enabled_categories = {
            FeatureCategory.PROTOCOL,
            FeatureCategory.COMBINATION,
        }
        generator.on_stats_event(_flow_stats_event(time=6.0))
        assert generator._suppressed_names is not narrow
        assert generator._suppressed_names < narrow

    def test_filtering_output_matches_catalog(self, generator, sink):
        from repro.core.features.catalog import FEATURE_CATALOG

        generator.enabled_categories = {FeatureCategory.PROTOCOL}
        generator.on_stats_event(_flow_stats_event())
        for record in sink:
            for name in record.fields:
                definition = FEATURE_CATALOG.get(name)
                if definition is not None:
                    assert definition.category is FeatureCategory.PROTOCOL
