"""Tests for the ML library: metrics, preprocessing, and all algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MLError
from repro.ml import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GaussianMixture,
    GaussianNaiveBayes,
    GradientBoostedTrees,
    KMeans,
    LassoRegression,
    LinearRegression,
    LinearSVM,
    LogisticRegression,
    MinMaxNormalizer,
    RandomForestClassifier,
    Sampler,
    SelfOrganizingMap,
    StandardScaler,
    ThresholdDetector,
    Weighter,
    accuracy,
    confusion_counts,
    create_algorithm,
    detection_rate,
    f1_score,
    false_alarm_rate,
    list_algorithms,
)
from repro.ml.metrics import mean_squared_error, r2_score
from repro.ml.registry import category_of


def _blobs(seed=0, n0=150, n1=100, d=4, sep=3.0):
    rng = np.random.default_rng(seed)
    X = np.vstack([rng.normal(0, 1, (n0, d)), rng.normal(sep, 1, (n1, d))])
    y = np.r_[np.zeros(n0), np.ones(n1)]
    order = rng.permutation(len(y))
    return X[order], y[order]


class TestMetrics:
    def test_confusion(self):
        c = confusion_counts([1, 1, 0, 0], [1, 0, 1, 0])
        assert c == {"tp": 1, "fn": 1, "fp": 1, "tn": 1}

    def test_detection_rate_matches_paper_definition(self):
        # DR = TP / (TP + FN)
        assert detection_rate([1, 1, 1, 0], [1, 1, 0, 0]) == pytest.approx(2 / 3)

    def test_false_alarm_rate(self):
        # FAR = FP / (FP + TN)
        assert false_alarm_rate([0, 0, 0, 1], [1, 0, 0, 1]) == pytest.approx(1 / 3)

    def test_perfect_scores(self):
        y = [0, 1, 0, 1]
        assert accuracy(y, y) == 1.0
        assert f1_score(y, y) == 1.0
        assert false_alarm_rate(y, y) == 0.0

    def test_empty_denominators(self):
        assert detection_rate([0, 0], [0, 0]) == 0.0
        assert false_alarm_rate([1, 1], [1, 1]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(MLError):
            confusion_counts([1], [1, 0])

    def test_regression_metrics(self):
        assert mean_squared_error([1, 2], [1, 2]) == 0.0
        assert r2_score([1, 2, 3], [1, 2, 3]) == 1.0
        assert r2_score([1, 2, 3], [2, 2, 2]) == 0.0


class TestPreprocessing:
    def test_minmax_range(self):
        X = np.array([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
        scaled = MinMaxNormalizer().fit_transform(X)
        assert scaled.min() == 0.0
        assert scaled.max() == 1.0

    def test_minmax_constant_column_safe(self):
        X = np.array([[1.0, 5.0], [1.0, 6.0]])
        scaled = MinMaxNormalizer().fit_transform(X)
        assert not np.isnan(scaled).any()

    def test_minmax_test_split_uses_train_params(self):
        scaler = MinMaxNormalizer().fit(np.array([[0.0], [10.0]]))
        assert scaler.transform(np.array([[20.0]]))[0, 0] == 2.0

    def test_standard_scaler(self):
        X = np.random.default_rng(0).normal(5, 3, (200, 2))
        scaled = StandardScaler().fit_transform(X)
        assert abs(scaled.mean()) < 1e-9
        assert abs(scaled.std() - 1.0) < 0.05

    def test_scaler_column_mismatch(self):
        scaler = StandardScaler().fit(np.zeros((3, 2)))
        with pytest.raises(MLError):
            scaler.transform(np.zeros((3, 5)))

    def test_weighter(self):
        X = np.ones((2, 3))
        weighted = Weighter([1.0, 2.0, 0.0]).transform(X)
        assert (weighted == [[1.0, 2.0, 0.0]] * 2).all()

    def test_weighter_rejects_negative(self):
        with pytest.raises(MLError):
            Weighter([-1.0])

    def test_sampler_fraction(self):
        X = np.arange(100).reshape(100, 1)
        sampled = Sampler(0.25, seed=1).transform(X)
        assert sampled.shape == (25, 1)

    def test_sampler_with_labels_aligned(self):
        X = np.arange(50).reshape(50, 1)
        y = np.arange(50)
        Xs, ys = Sampler(0.5, seed=2).transform(X, y)
        assert (Xs.ravel() == ys).all()

    def test_sampler_invalid_fraction(self):
        with pytest.raises(MLError):
            Sampler(0.0)


class TestClassifiers:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: LogisticRegression(),
            lambda: GaussianNaiveBayes(),
            lambda: LinearSVM(),
            lambda: DecisionTreeClassifier(max_depth=6),
            lambda: RandomForestClassifier(n_trees=10, max_depth=5),
            lambda: GradientBoostedTrees(n_estimators=15),
        ],
    )
    def test_separable_blobs_high_accuracy(self, factory):
        X, y = _blobs()
        model = factory().fit(X[:180], y[:180])
        assert accuracy(y[180:], model.predict(X[180:])) > 0.9

    def test_logistic_probabilities_bounded(self):
        X, y = _blobs()
        model = LogisticRegression().fit(X, y)
        probs = model.predict_proba(X)
        assert (probs >= 0).all() and (probs <= 1).all()

    def test_labels_required(self):
        with pytest.raises(MLError):
            LogisticRegression().fit(np.zeros((3, 2)))

    def test_non_binary_labels_rejected(self):
        X = np.zeros((4, 2))
        with pytest.raises(MLError):
            LogisticRegression().fit(X, [0, 1, 2, 1])
        with pytest.raises(MLError):
            LinearSVM().fit(X, [0, 2, 0, 2])

    def test_unfitted_predict_raises(self):
        with pytest.raises(MLError):
            LogisticRegression().predict(np.zeros((1, 2)))

    def test_decision_tree_respects_max_depth(self):
        X, y = _blobs(n0=400, n1=400, sep=1.0)
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.depth() <= 3

    def test_naive_bayes_proba_sums_to_one(self):
        X, y = _blobs()
        model = GaussianNaiveBayes().fit(X, y)
        probs = model.predict_proba(X[:10])
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_forest_beats_stump_on_xor(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(-1, 1, (600, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(float)
        stump = DecisionTreeClassifier(max_depth=1).fit(X[:400], y[:400])
        forest = RandomForestClassifier(n_trees=25, max_depth=6, seed=1).fit(
            X[:400], y[:400]
        )
        assert accuracy(y[400:], forest.predict(X[400:])) > accuracy(
            y[400:], stump.predict(X[400:])
        )


class TestRegressors:
    def test_linear_recovers_coefficients(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        y = X @ [2.0, -1.0, 0.5] + 3.0
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.coefficients, [2.0, -1.0, 0.5], atol=1e-6)
        assert model.intercept == pytest.approx(3.0, abs=1e-6)

    def test_ridge_shrinks_toward_zero(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 2))
        y = X @ [5.0, 5.0]
        ols = LinearRegression().fit(X, y)
        ridge = RidgeRegression(alpha=100.0).fit(X, y)
        assert np.abs(ridge.coefficients).sum() < np.abs(ols.coefficients).sum()

    def test_lasso_produces_sparsity(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(300, 6))
        y = X @ [4.0, 0.0, 0.0, -3.0, 0.0, 0.0] + rng.normal(0, 0.01, 300)
        model = LassoRegression(alpha=0.1).fit(X, y)
        assert abs(model.coefficients[0]) > 1.0
        assert abs(model.coefficients[1]) < 0.2
        assert abs(model.coefficients[3]) > 1.0

    def test_lasso_alpha_zero_matches_ols(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(100, 2))
        y = X @ [1.5, -2.0] + 1.0
        lasso = LassoRegression(alpha=0.0, max_iterations=5000).fit(X, y)
        ols = LinearRegression().fit(X, y)
        assert np.allclose(lasso.coefficients, ols.coefficients, atol=1e-3)

    def test_targets_required(self):
        for cls in (LinearRegression, RidgeRegression, LassoRegression):
            with pytest.raises(MLError):
                cls().fit(np.zeros((3, 1)))


from repro.ml import RidgeRegression  # noqa: E402  (used above)


class TestClustering:
    def test_kmeans_finds_blobs(self):
        X, y = _blobs(sep=6.0)
        km = KMeans(k=2, seed=0).fit(X)
        assignments = km.assign(X)
        # Clusters align with the true labels up to permutation.
        agreement = max(
            (assignments == y).mean(), (assignments == 1 - y).mean()
        )
        assert agreement > 0.98

    def test_kmeans_marked_labelling(self):
        X, y = _blobs(sep=6.0)
        km = KMeans(k=2, seed=0).fit(X)
        labels = km.label_clusters(X, y)
        assert sorted(labels.values()) == [False, True]
        assert accuracy(y, km.predict(X)) > 0.98

    def test_kmeans_multi_run_keeps_best_inertia(self):
        X, _ = _blobs(sep=6.0)
        single = KMeans(k=4, runs=1, seed=9).fit(X)
        multi = KMeans(k=4, runs=6, seed=9).fit(X)
        assert multi.inertia <= single.inertia + 1e-9

    def test_kmeans_k_capped_at_rows(self):
        X = np.zeros((3, 2))
        km = KMeans(k=10).fit(X)
        assert km.n_clusters_fitted() == 3

    def test_kmeans_predict_before_labelling_raises(self):
        X, _ = _blobs()
        km = KMeans(k=2).fit(X)
        with pytest.raises(MLError):
            km.predict(X)

    def test_kmeans_distributed_matches_local_shape(self):
        from repro.compute import ComputeCluster, PartitionedDataset

        X, y = _blobs(sep=6.0, n0=400, n1=300)
        ds = PartitionedDataset.from_matrix(X, 4)
        km = KMeans(k=2, seed=0).fit_distributed(ComputeCluster(2), ds)
        km.label_clusters(X, y)
        assert accuracy(y, km.predict(X)) > 0.95

    def test_gmm_separates_blobs(self):
        X, y = _blobs(sep=5.0)
        gmm = GaussianMixture(k=2, seed=1).fit(X)
        gmm.label_clusters(X, y)
        assert accuracy(y, gmm.predict(X)) > 0.95

    def test_gmm_weights_normalised(self):
        X, _ = _blobs()
        gmm = GaussianMixture(k=3, seed=0).fit(X)
        assert gmm.weights.sum() == pytest.approx(1.0)

    def test_som_labels_and_predicts(self):
        X, y = _blobs(sep=5.0)
        som = SelfOrganizingMap(rows=2, cols=2, epochs=5, seed=0).fit(X)
        som.label_clusters(X, y)
        assert accuracy(y, som.predict(X)) > 0.9

    def test_som_quantization_error_decreases_with_units(self):
        X, _ = _blobs(sep=5.0)
        small = SelfOrganizingMap(rows=1, cols=2, epochs=5, seed=0).fit(X)
        large = SelfOrganizingMap(rows=4, cols=4, epochs=5, seed=0).fit(X)
        assert large.quantization_error(X) < small.quantization_error(X)

    def test_cluster_composition_counts(self):
        X, y = _blobs(sep=6.0)
        km = KMeans(k=2, seed=0).fit(X)
        km.label_clusters(X, y)
        composition = km.cluster_composition(X, y)
        total = sum(c["benign"] + c["malicious"] for c in composition.values())
        assert total == len(y)


class TestThreshold:
    def test_fixed_threshold(self):
        detector = ThresholdDetector(column=0, threshold=5.0, op=">")
        X = np.array([[1.0], [6.0], [5.0]])
        assert detector.predict(X).tolist() == [0.0, 1.0, 0.0]

    def test_all_operators(self):
        X = np.array([[5.0]])
        for op, expected in [(">", 0.0), (">=", 1.0), ("<", 0.0), ("<=", 1.0),
                             ("==", 1.0), ("!=", 0.0)]:
            det = ThresholdDetector(column=0, threshold=5.0, op=op)
            assert det.predict(X)[0] == expected

    def test_calibration_from_benign(self):
        rng = np.random.default_rng(0)
        X = rng.normal(10, 1, (500, 1))
        y = np.zeros(500)
        X[::50] += 100
        y[::50] = 1
        detector = ThresholdDetector(column=0).fit(X, y)
        assert 10 < detector.threshold < 20
        assert detection_rate(y, detector.predict(X)) == 1.0

    def test_unknown_op_rejected(self):
        with pytest.raises(MLError):
            ThresholdDetector(op="~=")

    def test_column_out_of_range(self):
        detector = ThresholdDetector(column=5, threshold=1.0)
        with pytest.raises(MLError):
            detector.predict(np.zeros((2, 2)))


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        names = list_algorithms()
        for required in [
            "gradient_boosted_tree", "decision_tree", "logistic_regression",
            "naive_bayes", "random_forest", "svm", "gaussian_mixture",
            "kmeans", "lasso", "linear", "ridge", "threshold",
        ]:
            assert required in names

    def test_categories_match_table4(self):
        assert category_of("kmeans") == "clustering"
        assert category_of("gradient_boosted_tree") == "boosting"
        assert category_of("svm") == "classification"
        assert category_of("ridge") == "regression"
        assert category_of("threshold") == "simple"

    def test_create_with_params(self):
        km = create_algorithm("kmeans", k=3, runs=2)
        assert km.k == 3 and km.runs == 2

    def test_name_normalisation(self):
        assert isinstance(create_algorithm("K-Means"), KMeans)

    def test_unknown_algorithm(self):
        with pytest.raises(MLError):
            create_algorithm("deep_magic")

    def test_bad_params(self):
        with pytest.raises(MLError):
            create_algorithm("kmeans", bogus_param=1)

    def test_category_filter(self):
        clustering = list_algorithms("clustering")
        assert "kmeans" in clustering and "svm" not in clustering


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=99))
    def test_kmeans_assignment_is_nearest_center(self, k, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(60, 3))
        km = KMeans(k=k, seed=seed).fit(X)
        assignments = km.assign(X)
        distances = ((X[:, None, :] - km.centers[None, :, :]) ** 2).sum(axis=2)
        assert (assignments == distances.argmin(axis=1)).all()

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=99))
    def test_minmax_idempotent_on_unit_range(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.uniform(size=(30, 4))
        once = MinMaxNormalizer().fit_transform(X)
        twice = MinMaxNormalizer().fit_transform(once)
        assert np.allclose(once.min(axis=0), twice.min(axis=0))
        assert ((twice >= 0) & (twice <= 1)).all()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=99))
    def test_confusion_counts_partition_total(self, seed):
        rng = np.random.default_rng(seed)
        y_true = rng.integers(0, 2, 50)
        y_pred = rng.integers(0, 2, 50)
        c = confusion_counts(y_true, y_pred)
        assert sum(c.values()) == 50
