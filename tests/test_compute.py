"""Tests for the compute cluster."""

import numpy as np
import pytest

from repro.compute import ClusterConfig, ComputeCluster, PartitionedDataset
from repro.errors import ComputeError


class TestPartitionedDataset:
    def test_from_records_balanced(self):
        ds = PartitionedDataset.from_records(list(range(10)), 3)
        assert ds.n_partitions == 3
        assert ds.total_records() == 10
        sizes = [len(p) for p in ds.partitions]
        assert max(sizes) - min(sizes) <= 1

    def test_from_records_more_partitions_than_records(self):
        ds = PartitionedDataset.from_records([1, 2], 10)
        assert ds.n_partitions == 2

    def test_from_matrix(self):
        matrix = np.arange(20).reshape(10, 2)
        ds = PartitionedDataset.from_matrix(matrix, 4)
        assert ds.n_partitions == 4
        recombined = np.concatenate(ds.partitions)
        assert (recombined == matrix).all()

    def test_from_matrix_with_labels(self):
        matrix = np.zeros((6, 2))
        labels = np.arange(6)
        ds = PartitionedDataset.from_matrix(matrix, 2, labels=labels)
        rows, part_labels = ds.partition(0)
        assert len(rows) == len(part_labels) == 3

    def test_invalid_partition_count(self):
        with pytest.raises(ComputeError):
            PartitionedDataset.from_records([1], 0)

    def test_map_partitions(self):
        ds = PartitionedDataset.from_records([1, 2, 3, 4], 2)
        doubled = ds.map_partitions(lambda part: [x * 2 for x in part])
        assert doubled.partitions == [[2, 4], [6, 8]]

    def test_repartition_matrix(self):
        matrix = np.arange(12).reshape(6, 2)
        ds = PartitionedDataset.from_matrix(matrix, 2).repartition(3)
        assert ds.n_partitions == 3
        assert (np.concatenate(ds.partitions) == matrix).all()


class TestComputeCluster:
    def test_run_map_correctness(self):
        cluster = ComputeCluster(n_workers=3)
        ds = PartitionedDataset.from_records(list(range(100)), 6)
        report = cluster.run_map(
            ds, map_fn=sum, reduce_fn=lambda partials: sum(partials)
        )
        assert report.result == sum(range(100))
        assert report.n_tasks == 6

    def test_all_workers_used(self):
        cluster = ComputeCluster(n_workers=3)
        ds = PartitionedDataset.from_records(list(range(90)), 9)
        cluster.run_map(ds, map_fn=lambda p: sum(x * x for x in p))
        assert all(w.tasks_run > 0 for w in cluster.workers)

    def test_lpt_schedule_balances(self):
        cluster = ComputeCluster(n_workers=2)
        assignment = cluster._schedule([10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 5.0])
        loads = [0.0, 0.0]
        costs = [10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 5.0]
        for task, worker in enumerate(assignment):
            loads[worker] += costs[task]
        assert abs(loads[0] - loads[1]) <= 5.0

    def test_iterative_converges(self):
        cluster = ComputeCluster(n_workers=2)
        ds = PartitionedDataset.from_records([1.0] * 20, 4)

        def map_fn(part, state):
            return sum(part)

        def reduce_fn(partials, state):
            return state + 1

        report = cluster.run_iterative(
            ds,
            map_fn,
            reduce_fn,
            initial_state=0,
            rounds=50,
            converged=lambda old, new: new >= 5,
        )
        assert report.result == 5
        assert report.rounds == 5

    def test_makespan_decreases_with_workers(self):
        """The Figure 10 property: more workers, smaller makespan."""
        matrix = np.random.default_rng(0).normal(size=(20000, 8))

        def heavy(part):
            return float((part @ part.T.mean(axis=1)).sum())

        makespans = []
        for n in (1, 2, 4):
            cluster = ComputeCluster(
                n_workers=n, config=ClusterConfig(t_setup=0.5, t_broadcast=0.05)
            )
            ds = PartitionedDataset.from_matrix(matrix, 8)
            report = cluster.run_map(ds, map_fn=heavy, reduce_fn=sum)
            makespans.append(report.makespan_seconds)
        assert makespans[0] > makespans[1] > makespans[2]

    def test_makespan_includes_fixed_costs(self):
        config = ClusterConfig(t_setup=2.0, t_broadcast=0.0, t_collect=0.0)
        cluster = ComputeCluster(n_workers=1, config=config)
        ds = PartitionedDataset.from_records([1], 1)
        report = cluster.run_map(ds, map_fn=lambda p: p)
        assert report.makespan_seconds >= 2.0

    def test_run_local_has_no_distribution_cost(self):
        cluster = ComputeCluster(
            n_workers=4, config=ClusterConfig(t_setup=100.0)
        )
        ds = PartitionedDataset.from_records([1, 2, 3], 3)
        report = cluster.run_local(ds, map_fn=sum, reduce_fn=sum)
        assert report.result == 6
        assert report.makespan_seconds < 1.0

    def test_invalid_worker_count(self):
        with pytest.raises(ComputeError):
            ComputeCluster(n_workers=0)

    def test_invalid_rounds(self):
        cluster = ComputeCluster(n_workers=1)
        ds = PartitionedDataset.from_records([1], 1)
        with pytest.raises(ComputeError):
            cluster.run_iterative(ds, lambda p, s: p, lambda ps, s: s, None, 0)


class TestTaskRetries:
    def _flaky(self, fail_times):
        state = {"failures": 0}

        def fn(part):
            if state["failures"] < fail_times:
                state["failures"] += 1
                raise RuntimeError("injected task failure")
            return sum(part)

        return fn

    def test_failed_task_retried_and_succeeds(self):
        cluster = ComputeCluster(
            n_workers=2, config=ClusterConfig(task_retries=2)
        )
        ds = PartitionedDataset.from_records([1, 2, 3, 4], 2)
        report = cluster.run_map(
            ds, map_fn=self._flaky(fail_times=1), reduce_fn=sum
        )
        assert report.result == 10
        assert cluster.tasks_retried == 1

    def test_exhausted_retries_abort_job(self):
        cluster = ComputeCluster(
            n_workers=2, config=ClusterConfig(task_retries=1)
        )
        ds = PartitionedDataset.from_records([1, 2], 1)

        def always_fails(part):
            raise RuntimeError("permanent failure")

        with pytest.raises(ComputeError, match="after 2 attempts"):
            cluster.run_map(ds, map_fn=always_fails, reduce_fn=sum)

    def test_failed_attempts_cost_worker_time(self):
        import time as _time

        cluster = ComputeCluster(
            n_workers=2, config=ClusterConfig(task_retries=2)
        )
        ds = PartitionedDataset.from_records([1], 1)
        state = {"failures": 0}

        def slow_flaky(part):
            _time.sleep(0.01)
            if state["failures"] < 1:
                state["failures"] += 1
                raise RuntimeError("boom")
            return 0

        report = cluster.run_map(ds, map_fn=slow_flaky, reduce_fn=sum)
        # Two attempts' time is recorded across the workers.
        assert sum(report.per_worker_busy) >= 0.02


class TestMakespanModel:
    """Assert the modeled makespan term by term (cluster.py's formula).

    makespan = t_setup + rounds * t_broadcast
             + sum over rounds of max_over_workers(round_busy) * work_scale
             + t_collect * n_tasks + measured_reduce_seconds
    """

    def test_formula_matches_report_terms(self):
        config = ClusterConfig(
            t_setup=1.5, t_broadcast=0.25, t_collect=0.05, work_scale=3.0
        )
        cluster = ComputeCluster(n_workers=3, config=config)
        matrix = np.arange(600.0).reshape(100, 6)
        ds = PartitionedDataset.from_matrix(matrix, 5)
        report = cluster.run_iterative(
            ds,
            lambda part, state: part.sum() + state,
            lambda partials, state: state + 1,
            initial_state=0,
            rounds=4,
        )
        assert report.rounds == 4
        assert len(report.per_round_busy) == 4
        assert all(len(busy) == 3 for busy in report.per_round_busy)
        expected = (
            config.t_setup
            + report.rounds * config.t_broadcast
            + sum(max(busy) for busy in report.per_round_busy)
            * config.work_scale
            + config.t_collect * report.n_tasks
            + report.measured_reduce_seconds
        )
        assert report.makespan_seconds == pytest.approx(expected)

    def test_parallel_term_is_per_round_critical_path(self):
        # The parallel term must be the per-round max summed over rounds,
        # not the busiest worker's total across the whole job: with more
        # workers the per-round max shrinks, so the makespan must too.
        config = ClusterConfig(t_setup=0.0, t_broadcast=0.0, t_collect=0.0,
                               work_scale=50.0)
        matrix = np.arange(12_000.0).reshape(2_000, 6)

        def makespan(n_workers):
            cluster = ComputeCluster(n_workers=n_workers, config=config)
            ds = PartitionedDataset.from_matrix(matrix, 8)
            return cluster.run_iterative(
                ds,
                lambda part, state: float((part ** 2).sum()),
                lambda partials, state: state,
                initial_state=None,
                rounds=3,
            ).makespan_seconds

        assert makespan(4) < makespan(1)
