"""Tests for the NB managers: feature, detector, reaction, resource, UI."""

import numpy as np
import pytest

from repro.compute import ComputeCluster
from repro.core.algorithm import GenerateAlgorithm
from repro.core.detector_manager import DetectorManager
from repro.core.feature_format import AthenaFeature, FeatureScope
from repro.core.feature_manager import FEATURE_COLLECTION, FeatureManager
from repro.core.preprocessor import GeneratePreprocessor
from repro.core.query import GenerateQuery, Query
from repro.core.results import ValidationSummary
from repro.core.southbound import AttackDetector
from repro.core.ui_manager import UIManager
from repro.distdb import DatabaseCluster
from repro.errors import AthenaError


def _record(switch_id=1, packets=10.0, ip_src="10.0.0.1", label=0, ts=0.0):
    return AthenaFeature(
        scope=FeatureScope.FLOW,
        switch_id=switch_id,
        instance_id=0,
        timestamp=ts,
        indicators={"ip_src": ip_src, "ip_dst": "10.0.0.9"},
        fields={"FLOW_PACKET_COUNT": packets, "PAIR_FLOW": float(label == 0)},
        label=label,
    )


@pytest.fixture
def feature_manager():
    return FeatureManager(DatabaseCluster(n_shards=2, replication=1))


class TestFeatureManager:
    def test_publish_stores(self, feature_manager):
        feature_manager.publish(_record())
        assert feature_manager.count_features() == 1

    def test_publish_without_store(self):
        manager = FeatureManager(
            DatabaseCluster(n_shards=1, replication=1), store_features=False
        )
        delivered = []
        manager.add_event_handler(Query(), delivered.append)
        manager.publish(_record())
        assert manager.count_features() == 0
        assert len(delivered) == 1

    def test_request_features_with_constraints(self, feature_manager):
        feature_manager.publish(_record(packets=5.0))
        feature_manager.publish(_record(packets=50.0))
        docs = feature_manager.request_features(
            GenerateQuery("FLOW_PACKET_COUNT > 10")
        )
        assert len(docs) == 1
        assert docs[0]["FLOW_PACKET_COUNT"] == 50.0

    def test_request_features_sort_limit(self, feature_manager):
        for packets in (5.0, 50.0, 25.0):
            feature_manager.publish(_record(packets=packets))
        query = GenerateQuery().sort_by("FLOW_PACKET_COUNT", descending=True).limit(2)
        docs = feature_manager.request_features(query)
        assert [d["FLOW_PACKET_COUNT"] for d in docs] == [50.0, 25.0]

    def test_request_features_aggregation(self, feature_manager):
        feature_manager.publish(_record(switch_id=1, packets=10.0))
        feature_manager.publish(_record(switch_id=1, packets=20.0))
        feature_manager.publish(_record(switch_id=2, packets=5.0))
        query = Query().aggregate(["switch_id"], "FLOW_PACKET_COUNT", "sum")
        rows = feature_manager.request_features(query)
        totals = {row["_id"]: row["FLOW_PACKET_COUNT"] for row in rows}
        assert totals == {1: 30.0, 2: 5.0}

    def test_event_delivery_table(self, feature_manager):
        hits, misses = [], []
        feature_manager.add_event_handler(
            GenerateQuery("switch_id == 1"), hits.append
        )
        feature_manager.add_event_handler(
            GenerateQuery("switch_id == 99"), misses.append
        )
        feature_manager.publish(_record(switch_id=1))
        assert len(hits) == 1 and misses == []

    def test_remove_event_handler(self, feature_manager):
        seen = []
        handler_id = feature_manager.add_event_handler(Query(), seen.append)
        assert feature_manager.remove_event_handler(handler_id)
        feature_manager.publish(_record())
        assert seen == []
        assert not feature_manager.remove_event_handler(handler_id)

    def test_clear_features(self, feature_manager):
        feature_manager.publish(_record())
        assert feature_manager.clear_features() == 1
        assert feature_manager.count_features() == 0

    def test_bulk_documents(self, feature_manager):
        docs = [_record(packets=float(i)).to_document() for i in range(10)]
        assert feature_manager.publish_documents(docs) == 10
        assert feature_manager.count_features() == 10


def _training_docs(n=300, seed=0):
    rng = np.random.default_rng(seed)
    docs = []
    for i in range(n):
        malicious = i % 3 == 0
        value = rng.normal(50.0 if malicious else 5.0, 1.0)
        docs.append(
            {
                "feature_scope": "flow",
                "switch_id": 1,
                "timestamp": float(i),
                "ip_src": f"10.0.{i % 5}.{i % 250}",
                "label": int(malicious),
                "FLOW_PACKET_COUNT": float(value),
                "PAIR_FLOW": 0.0 if malicious else 1.0,
            }
        )
    return docs


@pytest.fixture
def detector_manager(feature_manager):
    return DetectorManager(feature_manager, AttackDetector(ComputeCluster(2)))


class TestDetectorManager:
    PRE = dict(
        normalization="minmax",
        marking="label",
        features=["FLOW_PACKET_COUNT", "PAIR_FLOW"],
    )

    def test_kmeans_model_and_validation(self, feature_manager, detector_manager):
        feature_manager.publish_documents(_training_docs())
        query = GenerateQuery("feature_scope == flow")
        pre = GeneratePreprocessor(**self.PRE)
        model = detector_manager.generate_detection_model(
            query, pre, GenerateAlgorithm("kmeans", k=2, seed=1)
        )
        summary = detector_manager.validate_features(query, pre, model)
        assert isinstance(summary, ValidationSummary)
        assert summary.detection_rate > 0.95
        assert summary.false_alarm_rate < 0.05
        assert summary.clusters  # Figure 6 cluster composition present

    def test_classification_model(self, feature_manager, detector_manager):
        feature_manager.publish_documents(_training_docs())
        query = GenerateQuery("feature_scope == flow")
        pre = GeneratePreprocessor(**self.PRE)
        model = detector_manager.generate_detection_model(
            query, pre, GenerateAlgorithm("logistic_regression")
        )
        summary = detector_manager.validate_features(query, pre, model)
        assert summary.accuracy > 0.95
        assert summary.clusters == []  # no cluster report for classifiers

    def test_threshold_has_no_learning_phase(self, feature_manager, detector_manager):
        feature_manager.publish_documents(_training_docs())
        query = GenerateQuery("feature_scope == flow")
        pre = GeneratePreprocessor(**self.PRE)
        model = detector_manager.generate_detection_model(
            query, pre, GenerateAlgorithm("threshold", column=0, threshold=0.5)
        )
        summary = detector_manager.validate_features(query, pre, model)
        assert summary.total_entries == 300

    def test_clustering_requires_marks(self, feature_manager, detector_manager):
        feature_manager.publish_documents(_training_docs())
        query = GenerateQuery("feature_scope == flow")
        pre = GeneratePreprocessor(
            normalization="minmax",
            features=["FLOW_PACKET_COUNT", "PAIR_FLOW"],
        )
        with pytest.raises(AthenaError):
            detector_manager.generate_detection_model(
                query, pre, GenerateAlgorithm("kmeans", k=2)
            )

    def test_classification_requires_marks(self, feature_manager, detector_manager):
        feature_manager.publish_documents(_training_docs())
        query = GenerateQuery("feature_scope == flow")
        pre = GeneratePreprocessor(
            normalization="minmax",
            features=["FLOW_PACKET_COUNT"],
        )
        with pytest.raises(AthenaError):
            detector_manager.generate_detection_model(
                query, pre, GenerateAlgorithm("svm")
            )

    def test_empty_training_set_raises(self, detector_manager):
        with pytest.raises(AthenaError):
            detector_manager.generate_detection_model(
                GenerateQuery("switch_id == 404"),
                GeneratePreprocessor(features=["FLOW_PACKET_COUNT"]),
                GenerateAlgorithm("kmeans", k=2),
            )

    def test_summary_counts_partition(self, feature_manager, detector_manager):
        docs = _training_docs()
        feature_manager.publish_documents(docs)
        query = GenerateQuery("feature_scope == flow")
        pre = GeneratePreprocessor(**self.PRE)
        model = detector_manager.generate_detection_model(
            query, pre, GenerateAlgorithm("kmeans", k=2, seed=1)
        )
        summary = detector_manager.validate_features(query, pre, model)
        assert (
            summary.true_positives + summary.false_negatives
            == summary.malicious_entries
        )
        assert (
            summary.false_positives + summary.true_negatives
            == summary.benign_entries
        )
        assert summary.total_entries == len(docs)

    def test_online_validator(self, feature_manager, detector_manager):
        feature_manager.publish_documents(_training_docs())
        query = GenerateQuery("feature_scope == flow")
        pre = GeneratePreprocessor(**self.PRE)
        model = detector_manager.generate_detection_model(
            query, pre, GenerateAlgorithm("kmeans", k=2, seed=1)
        )
        alerts = []
        validator_id = detector_manager.add_online_validator(
            model, lambda feature, verdict: alerts.append(verdict)
        )
        malicious = _record(packets=50.0, label=1)
        malicious.fields["PAIR_FLOW"] = 0.0
        benign = _record(packets=5.0, label=0)
        assert detector_manager.validate_one(validator_id, malicious)
        assert not detector_manager.validate_one(validator_id, benign)
        stats = detector_manager.validator_stats(validator_id)
        assert stats == {"validated": 2, "alerts": 1}

    def test_distributed_validation_used_for_large_data(self, feature_manager):
        detector = AttackDetector(ComputeCluster(2), distributed_threshold=100)
        manager = DetectorManager(feature_manager, detector)
        feature_manager.publish_documents(_training_docs(n=400))
        query = GenerateQuery("feature_scope == flow")
        pre = GeneratePreprocessor(**self.PRE)
        model = manager.generate_detection_model(
            query, pre, GenerateAlgorithm("kmeans", k=2, seed=1)
        )
        manager.validate_features(query, pre, model)
        assert detector.jobs_distributed >= 1
        assert manager.last_job_report is not None


class TestUIManager:
    def test_show_summary_renders_figure6_layout(self):
        ui = UIManager()
        summary = ValidationSummary(
            total_entries=100, benign_entries=25, malicious_entries=75,
            true_positives=74, false_positives=1, true_negatives=24,
            false_negatives=1, algorithm_description="K-Means",
            cluster_info="K(8), Iterations(20)",
        )
        text = ui.show(summary)
        assert "Detection Rate" in text
        assert "False Alarm Rate" in text
        assert "K(8)" in text

    def test_show_dict_and_list(self):
        ui = UIManager()
        assert "a: 1" in ui.show({"a": 1})
        assert ui.show([1, 2]) == "1\n2"

    def test_alerts_logged(self):
        ui = UIManager()
        ui.alert("app", "something happened")
        assert ui.alerts[0]["source"] == "app"

    def test_timeseries_chart(self):
        ui = UIManager()
        rows = [
            {"timestamp": t, "value": float(t % 5), "switch_id": 6}
            for t in range(20)
        ]
        rows += [
            {"timestamp": t, "value": 2.0, "switch_id": 3} for t in range(20)
        ]
        chart = ui.show_timeseries(rows, group_field="switch_id")
        assert "o = 3" in chart and "x = 6" in chart

    def test_empty_timeseries(self):
        assert UIManager().show_timeseries([]) == "(no data)"


class TestReactionNegativePaths:
    """Mitigation must keep working (or fail typed) around failovers."""

    @pytest.fixture
    def stack(self):
        from repro.controller import ControllerCluster, ReactiveForwarding
        from repro.core import AthenaDeployment
        from repro.dataplane.topologies import linear_topology
        from repro.workloads.flows import TrafficSchedule

        topo = linear_topology(n_switches=2, hosts_per_switch=1)
        cluster = ControllerCluster(topo.network, n_instances=2)
        cluster.adopt_all()
        cluster.start(poll=False)
        ReactiveForwarding().activate(cluster)
        athena = AthenaDeployment(cluster, athena_poll_interval=1.0)
        athena.start(poll=False)
        schedule = TrafficSchedule(topo.network)
        schedule.prime_arp()
        topo.network.sim.run(until=0.5)
        return topo, cluster, athena

    def test_block_enforced_via_new_master_after_failover(self, stack):
        from repro.core.reactions import BlockReaction
        from repro.errors import ReactionError

        topo, cluster, athena = stack
        attacker = topo.network.hosts["h1"]
        cluster.fail_instance(0)
        rules = athena.reaction_manager.enforce(
            BlockReaction(target_ips=[attacker.ip], everywhere=True)
        )
        assert rules == len(topo.network.switches)
        # The promoted instance's reactor did the work, not the dead one.
        assert athena.instances[1].reactor.blocks_installed == rules
        assert athena.instances[0].reactor.blocks_installed == 0

    def test_quarantine_enforced_via_new_master_after_failover(self, stack):
        from repro.core.reactions import QuarantineReaction

        topo, cluster, athena = stack
        attacker = topo.network.hosts["h1"]
        honeypot = topo.network.hosts["h2"]
        cluster.fail_instance(0)
        rules = athena.reaction_manager.enforce(
            QuarantineReaction(
                target_ips=[attacker.ip], honeypot_ip=honeypot.ip
            )
        )
        assert rules >= 1
        assert athena.instances[1].reactor.quarantines_installed == rules

    def test_unadopted_switch_yields_typed_reaction_error(self):
        from repro.controller import ControllerCluster
        from repro.core import AthenaDeployment
        from repro.core.reactions import BlockReaction
        from repro.dataplane.topologies import linear_topology
        from repro.errors import ReactionError

        topo = linear_topology(n_switches=2, hosts_per_switch=1)
        cluster = ControllerCluster(topo.network, n_instances=2)
        # No adoption: no switch has a master, so no reactor covers them.
        cluster.start(poll=False)
        athena = AthenaDeployment(cluster, athena_poll_interval=1.0)
        with pytest.raises(ReactionError, match="no Athena reactor"):
            athena.reaction_manager.enforce(
                BlockReaction(target_ips=["10.0.0.1"], everywhere=True)
            )

    def test_reactor_rejects_non_owned_switch(self, stack):
        from repro.errors import ReactionError

        topo, cluster, athena = stack
        # Instance 1 is pure standby after adopt_all: it owns nothing.
        standby_reactor = athena.instances[1].reactor
        with pytest.raises(ReactionError, match="not managed"):
            standby_reactor.block("10.0.0.1", dpid=1)

    def test_reaction_without_targets_is_typed(self, stack):
        from repro.core.reactions import BlockReaction
        from repro.errors import ReactionError

        topo, cluster, athena = stack
        with pytest.raises(ReactionError, match="no target hosts"):
            athena.reaction_manager.enforce(BlockReaction(target_ips=[]))
