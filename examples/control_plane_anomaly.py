#!/usr/bin/env python3
"""Detecting anomalies inside the SDN stack itself.

The paper's Table X credits Athena with SDN-specific features no prior
monitoring framework exposes: control-plane message counters and rates.
This example uses them to catch a controller-saturation attack — a
PACKET_IN flood from spoofed table misses — which is invisible to
data-plane-only detectors because the *data plane traffic itself* is tiny
(64-byte packets that never match a rule).

The app profiles each switch's control-plane rates during a calibration
window, then alarms when live rates break the learned profile.

Run:  python examples/control_plane_anomaly.py
"""

from repro.apps.control_anomaly import ControlPlaneAnomalyApp
from repro.controller import ControllerCluster, ReactiveForwarding
from repro.core import AthenaDeployment
from repro.dataplane.packet import Packet, flow_headers
from repro.dataplane.topologies import linear_topology
from repro.workloads.flows import FlowSpec, TrafficSchedule

FLOOD_START = 15.0
FLOOD_RATE = 400.0  # spoofed table misses per second


def main() -> None:
    topo = linear_topology(n_switches=3, hosts_per_switch=2)
    network = topo.network
    cluster = ControllerCluster(network, n_instances=1)
    cluster.adopt_all()
    cluster.start(poll=False)
    ReactiveForwarding(idle_timeout=2.0).activate(cluster)

    athena = AthenaDeployment(cluster, athena_poll_interval=1.0)
    athena.ui_manager.echo = True
    athena.start()
    app = ControlPlaneAnomalyApp(calibration_seconds=10.0, sigma=4.0)
    athena.register_app(app)

    # Normal background traffic throughout.
    schedule = TrafficSchedule(network)
    schedule.prime_arp()
    for idx in range(2):
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h5", sport=30000 + idx,
                     rate_pps=8.0, start=1.0, duration=25.0,
                     bidirectional=True)
        )

    # The attack: unique spoofed 5-tuples, each a table miss at switch 1.
    switch = network.switches[1]
    n_packets = int(FLOOD_RATE * 5.0)
    for i in range(n_packets):
        headers = flow_headers(
            "0a:de:ad:00:%02x:%02x" % (i // 256 % 256, i % 256),
            "0a:00:00:00:00:05",
            f"172.16.{(i >> 8) % 250}.{i % 250}", "10.0.0.5",
            proto=17, sport=1024 + i % 60000, dport=53,
        )
        network.sim.at(
            FLOOD_START + i / FLOOD_RATE,
            lambda h=headers: switch.receive_packet(
                100, Packet(headers=h, size=64), network.sim.now
            ),
        )

    print(f"calibrating for 10s, flood hits switch 1 at t={FLOOD_START:.0f}s ...\n")
    network.sim.run(until=28.0)

    print(f"\nlearned profile of switch 1: ", end="")
    profile = app.profile_of(1)
    print({k: round(v["mean"], 2) for k, v in profile.items()})
    print(f"anomalies raised: {len(app.anomalies)} "
          f"on switches {app.anomalous_switches()}")
    first = min(app.anomalies, key=lambda a: a["time"])
    print(f"first alarm: t={first['time']:.0f}s switch {first['switch_id']} "
          f"{first['metric']}={first['value']:.0f}/s "
          f"(threshold {first['threshold']:.0f}/s)")


if __name__ == "__main__":
    main()
