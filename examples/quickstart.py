#!/usr/bin/env python3
"""Quickstart: deploy Athena over a small SDN and query live features.

Builds a 3-switch linear network with a single controller instance, attaches
an Athena deployment, drives a little traffic, and then uses the Northbound
API to retrieve features, register a live event handler, and enforce a
mitigation — the whole Table II surface in ~80 lines.

Run:  python examples/quickstart.py
"""

from repro.controller import ControllerCluster, ReactiveForwarding
from repro.core import AthenaDeployment, BlockReaction, GenerateQuery
from repro.dataplane.topologies import linear_topology
from repro.workloads.flows import FlowSpec, TrafficSchedule


def main() -> None:
    # --- 1. Data plane + controller -------------------------------------
    topo = linear_topology(n_switches=3, hosts_per_switch=2)
    network = topo.network
    cluster = ControllerCluster(network, n_instances=1)
    cluster.adopt_all()
    cluster.start(poll=False)  # Athena does its own (XID-marked) polling
    forwarding = ReactiveForwarding()
    forwarding.activate(cluster)

    # --- 2. Athena on top ------------------------------------------------
    athena = AthenaDeployment(cluster, athena_poll_interval=2.0)
    athena.start()
    nb = athena.northbound

    # Live features: print every flow feature crossing 100 packets.
    hot_flows = []
    nb.AddEventHandler(
        GenerateQuery("feature_scope == flow && FLOW_PACKET_COUNT > 100"),
        hot_flows.append,
    )

    # --- 3. Traffic -------------------------------------------------------
    schedule = TrafficSchedule(network)
    schedule.prime_arp()  # let the controller learn host locations
    schedule.add_flow(
        FlowSpec(src_host="h1", dst_host="h5", rate_pps=50.0,
                 start=1.0, duration=10.0, bidirectional=True)
    )
    schedule.add_flow(
        FlowSpec(src_host="h2", dst_host="h6", sport=41000, dport=443,
                 rate_pps=15.0, start=1.0, duration=10.0, bidirectional=True)
    )
    network.sim.run(until=15.0)

    # --- 4. Query the feature store ---------------------------------------
    print("deployment summary:", athena.summary())
    busiest = nb.RequestFeatures(
        GenerateQuery("feature_scope == flow && FLOW_PACKET_COUNT > 0")
        .sort_by("FLOW_PACKET_COUNT", descending=True)
        .limit(3)
    )
    print("\ntop flows by packet count:")
    for doc in busiest:
        print(
            f"  {doc.get('ip_src')} -> {doc.get('ip_dst')}  "
            f"pkts={doc['FLOW_PACKET_COUNT']:.0f}  "
            f"pair_flow={doc.get('PAIR_FLOW')}"
        )

    totals = nb.RequestFeatures(
        GenerateQuery("feature_scope == flow")
        .aggregate(["switch_id"], "FLOW_PACKET_COUNT", "sum")
        .sort_by("FLOW_PACKET_COUNT", descending=True)
    )
    print("\npacket count per switch (aggregated in the DB cluster):")
    for row in totals:
        print(f"  switch {row['_id']}: {row['FLOW_PACKET_COUNT']:.0f}")

    print(f"\nlive event handler saw {len(hot_flows)} hot-flow features")

    # --- 5. React ------------------------------------------------------------
    h1_ip = network.hosts["h1"].ip
    rules = nb.Reactor(None, BlockReaction(target_ips=[h1_ip]))
    print(f"blocked {h1_ip} with {rules} data-plane rule(s)")


if __name__ == "__main__":
    main()
