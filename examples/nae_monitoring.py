#!/usr/bin/env python3
"""Scenario 3: the Network Application Effectiveness monitor (Section V-C).

The Figure 8 setup: a load balancer spreads FTP/web traffic across the S3
and S6->S7 paths with soft-timeout rules; at t=30 a security application
activates at higher priority and pins all FTP through the inline security
device on S6.  The load balancer keeps running but loses forwarding
control — the NAE monitor detects the violated fair-distribution SLA from
per-application flow features and alerts the operator, rendering the
Figure 9 per-switch packet-count view.

Run:  python examples/nae_monitoring.py
"""

import collections

from repro.apps.nae import NAEMonitorApp
from repro.controller import (
    ControllerCluster,
    LoadBalancerApp,
    ReactiveForwarding,
    SecurityRedirectApp,
)
from repro.core import AthenaDeployment
from repro.dataplane.topologies import nae_topology
from repro.workloads.flows import TrafficSchedule
from repro.workloads.nae import NAEWorkload

ACTIVATION = 30.0


def main() -> None:
    topo = nae_topology(clients_per_edge=2)
    network = topo.network
    cluster = ControllerCluster(network, n_instances=1)
    cluster.adopt_all()
    cluster.start(poll=False)

    ftp_ip = network.hosts["ftp"].ip
    web_ip = network.hosts["web"].ip
    ReactiveForwarding(priority=5).activate(cluster)
    balancer = LoadBalancerApp(server_ips=[ftp_ip, web_ip],
                               priority=20, idle_timeout=4.0)
    balancer.activate(cluster)
    security = SecurityRedirectApp(security_dpid=6, inspect_ports=(20, 21),
                                   priority=30)

    athena = AthenaDeployment(cluster, athena_poll_interval=2.5)
    athena.ui_manager.echo = True
    athena.start()
    monitor = NAEMonitorApp(monitored_switches=(6, 3), bucket_seconds=5.0)
    athena.register_app(monitor)

    schedule = TrafficSchedule(network)
    schedule.prime_arp(0.0)
    workload = NAEWorkload(clients=topo.roles["clients"],
                           duration=60.0, ftp_fraction=0.8)
    schedule.add_flows(workload.flows())
    network.sim.at(ACTIVATION, lambda: security.activate(cluster))

    print(f"running: LB only until t={ACTIVATION:.0f}, then LB vs security app ...")
    network.sim.run(until=70.0)

    print("\n--- Figure 9 view: packet counts per monitored switch ---")
    monitor.show()

    per_phase = collections.defaultdict(float)
    for row in monitor.results_rows():
        phase = "pre " if row["timestamp"] < ACTIVATION else "post"
        per_phase[(phase, row["switch_id"])] += row["value"]
    for (phase, switch), packets in sorted(per_phase.items()):
        print(f"{phase} activation, switch {switch}: {packets:,.0f} packets")

    print(f"\nSLA violations: {len(monitor.violations)} "
          f"(first at t={min(v['time'] for v in monitor.violations):.0f}s)")
    print(f"LB rules installed: {balancer.rules_installed}, "
          f"security rules: {security.rules_installed}")


if __name__ == "__main__":
    main()
