#!/usr/bin/env python3
"""Scenario 1: the large-scale DDoS attack detector (paper Section V-A).

Replays a scaled version of the paper's 37.37M-entry dataset (same 25/75
benign/malicious mix, same attack modes) through the real NB API —
GenerateDetectionModel with K-Means (K=8, 20 iterations, 5 runs), then
ValidateFeatures — and prints the Figure 6 testing summary.  A second pass
shows how the same five NB calls switch the detector to logistic
regression, and a third blocks the flagged sources.

Run:  python examples/ddos_detection.py [scale]
"""

import sys

from repro.apps.ddos import DDoSDetectorApp, ddos_detector_application
from repro.controller import ControllerCluster
from repro.core import AthenaDeployment
from repro.dataplane.topologies import enterprise_topology
from repro.workloads.ddos import DDoSDatasetGenerator, DDoSDatasetSpec


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.002

    print(f"generating dataset at scale {scale} of the paper's 37.37M entries...")
    generator = DDoSDatasetGenerator(DDoSDatasetSpec(scale=scale))
    documents = generator.generate()
    train, test = generator.train_test_split(documents)
    print(f"  {len(documents):,} entries ({len(train):,} train / {len(test):,} test)")

    # The paper's environment: 18 switches / 48 links / 3 controllers.
    topo = enterprise_topology()
    cluster = ControllerCluster(topo.network, n_instances=3)
    cluster.adopt_domains(topo.domains)
    athena = AthenaDeployment(cluster)
    athena.ui_manager.echo = True

    # -- K-Means (the paper's configuration) ------------------------------
    print("\n=== K-Means (K=8, 20 iterations, 5 runs) ===")
    app = DDoSDetectorApp()
    athena.register_app(app)
    summary = app.run_batch(train_documents=train, test_documents=test)
    print(summary.render())
    print(f"paper: DR 0.99237 / FAR 0.04470  —  "
          f"measured: DR {summary.detection_rate:.5f} / "
          f"FAR {summary.false_alarm_rate:.5f}")

    # -- Same app, different algorithm: logistic regression ----------------
    print("\n=== Logistic Regression (same NB calls) ===")
    logistic = DDoSDetectorApp(name="ddos-logistic",
                               algorithm="logistic_regression", params={})
    athena.register_app(logistic)
    summary_lr = logistic.run_batch(train_documents=train, test_documents=test)
    print(f"DR {summary_lr.detection_rate:.5f} / "
          f"FAR {summary_lr.false_alarm_rate:.5f}")

    # -- Pseudocode form (Application 1), via the feature store -------------
    print("\n=== Application 1 pseudocode via the feature store ===")
    athena.feature_manager.publish_documents(documents)
    _model, stored_summary = ddos_detector_application(
        athena.northbound,
        params={"k": 8, "max_iterations": 10, "runs": 2, "seed": 1},
    )
    print(f"DR {stored_summary.detection_rate:.5f} / "
          f"FAR {stored_summary.false_alarm_rate:.5f}")


if __name__ == "__main__":
    main()
