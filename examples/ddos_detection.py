#!/usr/bin/env python3
"""Scenario 1: the large-scale DDoS attack detector (paper Section V-A).

Replays a scaled version of the paper's 37.37M-entry dataset (same 25/75
benign/malicious mix, same attack modes) through the real NB API —
GenerateDetectionModel with K-Means (K=8, 20 iterations, 5 runs), then
ValidateFeatures — and prints the Figure 6 testing summary.  A second pass
shows how the same five NB calls switch the detector to logistic
regression, and a third blocks the flagged sources.

With ``ATHENA_TELEMETRY=1`` the run also drives live southbound traffic
and dumps the full telemetry snapshot as JSON (to the path named by
``ATHENA_TELEMETRY_SNAPSHOT``, default ``athena_metrics.json``), which
``python -m repro.cli metrics --snapshot <path>`` renders.

Run:  python examples/ddos_detection.py [scale]
"""

import os
import sys

from repro.apps.ddos import DDoSDetectorApp, ddos_detector_application
from repro.controller import ControllerCluster, ReactiveForwarding
from repro.core import AthenaDeployment
from repro.dataplane.topologies import enterprise_topology
from repro.telemetry import get_telemetry, to_json
from repro.workloads.ddos import DDoSDatasetGenerator, DDoSDatasetSpec
from repro.workloads.flows import FlowSpec, TrafficSchedule


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.002

    print(f"generating dataset at scale {scale} of the paper's 37.37M entries...")
    generator = DDoSDatasetGenerator(DDoSDatasetSpec(scale=scale))
    documents = generator.generate()
    train, test = generator.train_test_split(documents)
    print(f"  {len(documents):,} entries ({len(train):,} train / {len(test):,} test)")

    # The paper's environment: 18 switches / 48 links / 3 controllers.
    topo = enterprise_topology()
    cluster = ControllerCluster(topo.network, n_instances=3)
    cluster.adopt_domains(topo.domains)
    athena = AthenaDeployment(cluster)
    athena.ui_manager.echo = True

    telemetry = get_telemetry()
    if telemetry.enabled:
        # Drive live southbound traffic so the snapshot covers every
        # layer, not just the batch ML path.
        print("\ntelemetry on: driving live southbound traffic...")
        cluster.start(poll=False)
        ReactiveForwarding().activate(cluster)
        athena.start()
        schedule = TrafficSchedule(topo.network)
        schedule.prime_arp()
        schedule.add_flow(
            FlowSpec(src_host="h1", dst_host="h8", rate_pps=20.0,
                     start=0.5, duration=3.0, bidirectional=True)
        )
        topo.network.sim.run(until=5.0)

    # -- K-Means (the paper's configuration) ------------------------------
    print("\n=== K-Means (K=8, 20 iterations, 5 runs) ===")
    app = DDoSDetectorApp()
    athena.register_app(app)
    summary = app.run_batch(train_documents=train, test_documents=test)
    print(summary.render())
    print(f"paper: DR 0.99237 / FAR 0.04470  —  "
          f"measured: DR {summary.detection_rate:.5f} / "
          f"FAR {summary.false_alarm_rate:.5f}")

    # -- Same app, different algorithm: logistic regression ----------------
    print("\n=== Logistic Regression (same NB calls) ===")
    logistic = DDoSDetectorApp(name="ddos-logistic",
                               algorithm="logistic_regression", params={})
    athena.register_app(logistic)
    summary_lr = logistic.run_batch(train_documents=train, test_documents=test)
    print(f"DR {summary_lr.detection_rate:.5f} / "
          f"FAR {summary_lr.false_alarm_rate:.5f}")

    # -- Pseudocode form (Application 1), via the feature store -------------
    print("\n=== Application 1 pseudocode via the feature store ===")
    athena.feature_manager.publish_documents(documents)
    _model, stored_summary = ddos_detector_application(
        athena.northbound,
        params={"k": 8, "max_iterations": 10, "runs": 2, "seed": 1},
    )
    print(f"DR {stored_summary.detection_rate:.5f} / "
          f"FAR {stored_summary.false_alarm_rate:.5f}")

    if telemetry.enabled:
        path = os.environ.get("ATHENA_TELEMETRY_SNAPSHOT",
                              "athena_metrics.json")
        with open(path, "w") as handle:
            handle.write(to_json(telemetry.snapshot()))
        print(f"\ntelemetry snapshot written to {path}")


if __name__ == "__main__":
    main()
