#!/usr/bin/env python3
"""Distributed deployment: 3 controller domains, LLDP discovery, failover.

Shows the parts of the stack the paper's scalability story rests on:

* the 18-switch / 48-link enterprise topology split into three controller
  domains (Table VI's environment),
* topology learned by real LLDP probing instead of omniscient sync,
* one Athena instance per controller, publishing into the shared DB,
* a controller-instance failure mid-run — mastership fails over and both
  forwarding and feature generation continue,
* a distributed training job on the compute cluster's process backend,
  with a measured 1-vs-N-worker wall-clock comparison.

Run:  python examples/distributed_deployment.py [--workers 4]
                                                [--backend process]
"""

import argparse

from repro.controller import (
    ControllerCluster,
    LinkDiscoveryService,
    ReactiveForwarding,
)
from repro.controller.topology import TopologyService
from repro.controller.hosts import HostService
from repro.core import AthenaDeployment, GenerateQuery
from repro.dataplane.topologies import enterprise_topology
from repro.workloads.flows import FlowSpec, TrafficSchedule


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4,
                        help="compute workers for the training comparison")
    parser.add_argument("--backend", choices=["serial", "process"],
                        default="process",
                        help="execution backend for the N-worker run")
    return parser.parse_args()


def training_speedup(n_workers: int, backend: str) -> None:
    """Train one distributed K-Means job at 1 and N workers, for real."""
    import numpy as np

    from repro.compute import ComputeCluster, PartitionedDataset
    from repro.ml.kmeans import KMeans

    matrix = np.random.default_rng(7).normal(size=(60_000, 8))
    print(f"\ndistributed training: K-Means over {matrix.shape[0]:,} rows, "
          f"backend={backend}")
    print(f"{'workers':>8s} {'wall_s':>8s} {'modeled_s':>10s} {'fallback':>9s}")
    walls = {}
    for workers in (1, n_workers):
        cluster = ComputeCluster(workers, backend=backend)
        dataset = PartitionedDataset.from_matrix(matrix, max(4, 2 * workers))
        model = KMeans(k=6, max_iterations=5, epsilon=0.0, seed=2)
        model.fit_distributed(cluster, dataset)
        report = model.last_job_report
        walls[workers] = report.wall_seconds
        print(f"{workers:>8d} {report.wall_seconds:>8.3f} "
              f"{report.makespan_seconds:>10.3f} {report.fallback_tasks:>9d}")
    if n_workers != 1:
        print(f"measured speedup 1 -> {n_workers} workers: "
              f"{walls[1] / walls[n_workers]:.2f}x "
              f"(real parallelism needs real cores)")


def main() -> None:
    args = parse_args()
    topo = enterprise_topology(hosts_per_edge=1)
    network = topo.network
    cluster = ControllerCluster(network, n_instances=3)
    cluster.adopt_domains(topo.domains)
    cluster.start(poll=False)
    print("domains:", {i.instance_id: i.owned_dpids() for i in cluster.instances})

    # Learn the topology the real way: LLDP probing, not omniscient sync.
    cluster.topology = TopologyService()
    cluster.hosts = HostService(cluster.topology)
    discovery = LinkDiscoveryService(cluster)
    discovery.probe_all()
    network.sim.run(until=0.5)
    print(f"LLDP discovered {cluster.topology.link_count()} links "
          f"across {cluster.topology.switch_count()} switches "
          f"({discovery.probes_sent} probes)")

    forwarding = ReactiveForwarding()
    forwarding.activate(cluster)
    athena = AthenaDeployment(cluster, athena_poll_interval=2.0)
    athena.start()

    schedule = TrafficSchedule(network)
    schedule.prime_arp(network.sim.now)
    hosts = sorted(network.hosts)
    # Cross-domain flows: first host to last, second to second-last, ...
    for idx in range(3):
        schedule.add_flow(
            FlowSpec(src_host=hosts[idx], dst_host=hosts[-1 - idx],
                     sport=40000 + idx, rate_pps=25.0, start=1.0,
                     duration=20.0, bidirectional=True)
        )

    # Fail controller instance 1 mid-run.
    def fail():
        moved = cluster.fail_instance(1)
        print(f"t={network.sim.now:.0f}s: instance 1 failed; "
              f"{len(moved)} switches failed over")

    network.sim.at(10.0, fail)
    network.sim.run(until=25.0)

    per_instance = {
        i.instance_id: i.generator.features_generated for i in athena.instances
    }
    print("features generated per Athena instance:", per_instance)
    docs = athena.northbound.request_features(
        GenerateQuery("feature_scope == flow && FLOW_PACKET_COUNT > 0")
    )
    print(f"flow feature records in the shared DB: {len(docs)}")
    delivered = sum(network.hosts[h].rx_packets for h in hosts)
    print(f"packets delivered end-to-end: {delivered}")
    print("summary:", athena.summary())

    training_speedup(args.workers, args.backend)


if __name__ == "__main__":
    main()
