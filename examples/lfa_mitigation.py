#!/usr/bin/env python3
"""Scenario 2: Link Flooding Attack mitigation (paper Section V-B).

A Crossfire-style adversary drives individually low-rate flows from bot
hosts toward decoy servers so their paths converge on a target link.  The
Athena application detects the congested port from the built-in
``PORT_RX_BYTES_VAR`` feature, applies temporary bandwidth expansion (TBE),
distinguishes non-adaptive bot flows from legitimate adaptive senders via
``FLOW_BYTE_COUNT_VAR``, and blocks the bots — no SNMP, no OpenSketch
switches (Table VII).

Run:  python examples/lfa_mitigation.py
"""

from repro.apps.lfa import LFAMitigationApp
from repro.controller import ControllerCluster, ReactiveForwarding
from repro.core import AthenaDeployment
from repro.dataplane.topologies import linear_topology
from repro.workloads.flows import TrafficSchedule
from repro.workloads.lfa import LFATrafficGenerator


def main() -> None:
    topo = linear_topology(n_switches=3, hosts_per_switch=3)
    network = topo.network
    cluster = ControllerCluster(network, n_instances=1)
    cluster.adopt_all()
    cluster.start(poll=False)
    forwarding = ReactiveForwarding(priority=5)
    forwarding.activate(cluster)

    athena = AthenaDeployment(cluster, athena_poll_interval=1.0)
    athena.start()
    app = LFAMitigationApp(congestion_threshold_bytes=50_000.0, auto_block=True)
    athena.register_app(app)

    schedule = TrafficSchedule(network)
    schedule.prime_arp()
    generator = LFATrafficGenerator(
        bot_hosts=["h1", "h2", "h3"],
        decoy_hosts=["h7", "h8"],
        benign_pairs=[("h4", "h9"), ("h5", "h9")],
        bot_rate_pps=120.0,
        flows_per_bot=2,
        attack_start=3.0,
        attack_duration=10.0,
    )
    schedule.add_flows(generator.all_flows(benign_duration=14.0))

    print("running: benign from t=0, attack from t=3 ...")
    network.sim.run(until=18.0)

    bot_ips = {network.hosts[h].ip for h in ("h1", "h2", "h3")}
    benign_ips = {network.hosts[h].ip for h in ("h4", "h5")}
    flagged = set(app.suspicious_sources)

    print(f"\ncongestion events     : {len(app.congested_ports)} "
          f"(first at t={min(t for _, _, t in app.congested_ports):.1f}s)")
    print(f"flagged sources       : {sorted(flagged)}")
    print(f"  true bots flagged   : {len(flagged & bot_ips)}/3")
    print(f"  benign false alarms : {len(flagged & benign_ips)}")
    print(f"reactions enforced    : {athena.reaction_manager.reactions_enforced}")
    for entry in athena.reaction_manager.history:
        print(f"  {entry['reaction']} -> {entry['rules']} rule(s)")


if __name__ == "__main__":
    main()
