"""Small shared value types and identifier helpers.

The SDN stack identifies entities the way OpenFlow/ONOS do:

* switches by *datapath id* (``Dpid``, a 64-bit integer rendered as
  ``of:0000000000000001``),
* ports by small integers,
* hosts by MAC / IPv4 address strings.

These helpers centralise formatting and parsing so features, flow rules and
reactions all agree on identity.
"""

from __future__ import annotations

import ipaddress
import re
from dataclasses import dataclass

Dpid = int
PortNo = int

#: OpenFlow reserved port numbers (subset used by the simulator).
OFPP_MAX = 0xFF00
OFPP_IN_PORT = 0xFFF8
OFPP_FLOOD = 0xFFFB
OFPP_ALL = 0xFFFC
OFPP_CONTROLLER = 0xFFFD
OFPP_NONE = 0xFFFF

_MAC_RE = re.compile(r"^([0-9a-f]{2}:){5}[0-9a-f]{2}$")


def format_dpid(dpid: Dpid) -> str:
    """Render a datapath id in the ONOS ``of:hex16`` form."""
    if dpid < 0 or dpid > 0xFFFFFFFFFFFFFFFF:
        raise ValueError(f"dpid out of range: {dpid!r}")
    return f"of:{dpid:016x}"


def parse_dpid(text: str) -> Dpid:
    """Parse either ``of:hex16`` or a plain integer string into a dpid."""
    if text.startswith("of:"):
        return int(text[3:], 16)
    return int(text)


def mac_from_int(value: int) -> str:
    """Format a 48-bit integer as a lowercase colon-separated MAC."""
    if value < 0 or value > 0xFFFFFFFFFFFF:
        raise ValueError(f"mac out of range: {value!r}")
    raw = f"{value:012x}"
    return ":".join(raw[i : i + 2] for i in range(0, 12, 2))


def mac_to_int(mac: str) -> int:
    """Parse a colon-separated MAC back to its 48-bit integer value."""
    if not _MAC_RE.match(mac.lower()):
        raise ValueError(f"not a MAC address: {mac!r}")
    return int(mac.replace(":", ""), 16)


def ip_from_int(value: int) -> str:
    """Format a 32-bit integer as dotted-quad IPv4."""
    return str(ipaddress.IPv4Address(value))


def ip_to_int(ip: str) -> int:
    """Parse dotted-quad IPv4 into its 32-bit integer value."""
    return int(ipaddress.IPv4Address(ip))


@dataclass(frozen=True, order=True)
class HostId:
    """Identity of an end host: its MAC plus primary IPv4 address."""

    mac: str
    ip: str

    def __post_init__(self) -> None:
        mac_to_int(self.mac)  # validates
        ip_to_int(self.ip)  # validates

    def __str__(self) -> str:
        return f"{self.mac}/{self.ip}"


@dataclass(frozen=True, order=True)
class ConnectPoint:
    """A (switch, port) attachment point in the data plane."""

    dpid: Dpid
    port: PortNo

    def __str__(self) -> str:
        return f"{format_dpid(self.dpid)}/{self.port}"
