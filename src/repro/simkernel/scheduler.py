"""The discrete-event simulator loop.

A :class:`Simulator` owns a :class:`~repro.simkernel.clock.SimClock` and an
:class:`~repro.simkernel.events.EventQueue`.  Components schedule callbacks
(absolute via :meth:`Simulator.at` or relative via :meth:`Simulator.after`)
and the loop fires them in timestamp order, advancing the clock as it goes.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationError
from repro.simkernel.clock import SimClock
from repro.simkernel.events import Event, EventQueue


class Simulator:
    """Deterministic discrete-event loop shared by the whole SDN substrate."""

    def __init__(self, start: float = 0.0) -> None:
        self.clock = SimClock(start)
        self._queue = EventQueue()
        self._running = False
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of live events waiting in the queue."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Total number of events fired since construction."""
        return self._processed

    def at(self, when: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute simulated time ``when``."""
        if when < self.clock.now:
            raise SimulationError(
                f"cannot schedule event at {when} before now={self.clock.now}"
            )
        return self._queue.push(when, action)

    def after(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self._queue.push(self.clock.now + delay, action)

    def every(
        self,
        interval: float,
        action: Callable[[], None],
        until: Optional[float] = None,
    ) -> Event:
        """Schedule ``action`` periodically.

        The returned handle is the handle of the *next* occurrence only;
        cancelling it stops the whole series because re-arming happens inside
        the fired wrapper.
        """
        if interval <= 0:
            raise SimulationError(f"non-positive interval: {interval}")

        state: dict = {}

        def fire() -> None:
            action()
            next_time = self.clock.now + interval
            if until is None or next_time <= until:
                state["handle"] = self._queue.push(next_time, fire)
                handle.cancelled = state["handle"].cancelled

        handle = self.after(interval, fire)
        state["handle"] = handle
        return handle

    def step(self) -> bool:
        """Fire the earliest event.  Returns ``False`` when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        event.action()
        self._processed += 1
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run the loop until the queue drains, ``until`` passes, or
        ``max_events`` fire.  Returns the number of events fired by this call.
        """
        if self._running:
            raise SimulationError("simulator loop is not reentrant")
        self._running = True
        fired = 0
        try:
            while True:
                if max_events is not None and fired >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    # Drain time up to the horizon without firing the event.
                    self.clock.advance_to(until)
                    break
                if not self.step():
                    break
                fired += 1
        finally:
            self._running = False
        return fired
