"""Discrete-event simulation kernel underpinning the SDN substrate.

The kernel provides a deterministic, seeded, simulated-time environment:
:class:`~repro.simkernel.clock.SimClock` for time, an ordered
:class:`~repro.simkernel.events.EventQueue`, and the
:class:`~repro.simkernel.scheduler.Simulator` event loop that the data plane
and controller subscribe to.
"""

from repro.simkernel.clock import SimClock
from repro.simkernel.events import Event, EventQueue
from repro.simkernel.rng import SeededRng
from repro.simkernel.scheduler import Simulator

__all__ = ["SimClock", "Event", "EventQueue", "SeededRng", "Simulator"]
