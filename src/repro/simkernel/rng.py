"""Seeded random-number helpers.

Every stochastic component (workload generators, ML initialisation) draws
from a :class:`SeededRng` so a run is reproducible from a single root seed.
Child generators are derived deterministically by name, so adding a new
consumer never perturbs the streams of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


class SeededRng:
    """A named tree of deterministic numpy generators."""

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = int(seed)
        self.name = name
        self.generator = np.random.default_rng(self._derive(seed, name))

    @staticmethod
    def _derive(seed: int, name: str) -> int:
        digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def child(self, name: str) -> "SeededRng":
        """Return an independent generator derived from this one by name."""
        return SeededRng(self.seed, f"{self.name}/{name}")

    # Thin conveniences over the numpy generator -------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        return self.generator.uniform(low, high, size)

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        return self.generator.normal(loc, scale, size)

    def exponential(self, scale: float = 1.0, size=None):
        return self.generator.exponential(scale, size)

    def integers(self, low: int, high: int, size=None):
        return self.generator.integers(low, high, size)

    def choice(self, options, size=None, replace: bool = True, p=None):
        return self.generator.choice(options, size=size, replace=replace, p=p)

    def shuffle(self, array) -> None:
        self.generator.shuffle(array)

    def random(self, size=None):
        return self.generator.random(size)
