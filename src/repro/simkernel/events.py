"""Event primitives for the discrete-event kernel.

Events carry a firing time, an insertion sequence number (for stable FIFO
ordering among simultaneous events) and a zero-argument callback.  The queue
is a binary heap keyed on ``(time, seq)``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering compares ``(time, seq)`` only; the callback itself never takes
    part in comparisons.  Cancelled events stay in the heap but are skipped
    when popped.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler discards it instead of firing."""
        self.cancelled = True


class EventQueue:
    """A time-ordered queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at simulated ``time`` and return its handle."""
        event = Event(time=time, seq=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, if any."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
