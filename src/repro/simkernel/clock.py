"""Simulated wall clock.

All data-plane and controller timestamps come from a :class:`SimClock`, so an
entire deployment run is deterministic and reproducible regardless of host
load.  Time is a float number of seconds since the simulation epoch.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """A monotonically advancing simulated clock.

    The clock only moves forward; rewinding raises :class:`SimulationError`.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start before epoch: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises:
            SimulationError: if ``when`` is in the simulated past.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot rewind clock from {self._now} to {when}"
            )
        self._now = float(when)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds."""
        if delta < 0:
            raise SimulationError(f"negative clock delta: {delta}")
        self._now += float(delta)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
