"""The Athena feature format (Figure 4).

A feature record consists of *index fields* — the feature's origin (switch
id, port, OpenFlow match indicators) plus *meta data* (timestamp, controller
instance, control-plane semantics such as the flow's originating
application) — followed by *feature fields*: the protocol-centric,
combination, stateful and variation values themselves.

Records flatten to single-level documents for the distributed database:
index/meta fields keep lowercase names, feature fields keep their uppercase
catalog names, so database filters can mix both ("switch_id == 6 &&
FLOW_PACKET_COUNT > 100").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

from repro.errors import FeatureError

#: Index/meta keys reserved by the format (lowercase namespace).
INDEX_KEYS = (
    "feature_scope",
    "switch_id",
    "instance_id",
    "port_no",
    "timestamp",
    "app_id",
    "eth_src",
    "eth_dst",
    "ip_src",
    "ip_dst",
    "ip_proto",
    "tcp_src",
    "tcp_dst",
    "label",
)


class FeatureScope(Enum):
    """What entity a feature record describes."""

    FLOW = "flow"
    PORT = "port"
    SWITCH = "switch"
    CONTROL = "control"
    #: Sketch-backed per-switch records (repro.sketch, ATHENA_SKETCH).
    SKETCH = "sketch"


@dataclass
class AthenaFeature:
    """One Athena feature record (a row of the paper's dataset entries)."""

    scope: FeatureScope
    switch_id: int
    instance_id: int
    timestamp: float
    #: OpenFlow match indicators identifying a flow-scoped record.
    indicators: Dict[str, Any] = field(default_factory=dict)
    #: Control-plane semantics: the application that originated the flow.
    app_id: Optional[str] = None
    #: Port number for port-scoped records.
    port_no: Optional[int] = None
    #: Feature fields: catalog name -> numeric value.
    fields: Dict[str, float] = field(default_factory=dict)
    #: Ground-truth label when known (used by Marking in evaluations).
    label: Optional[int] = None

    def value(self, name: str) -> float:
        """The value of a feature field, raising on unknown names."""
        if name not in self.fields:
            raise FeatureError(
                f"record has no feature {name!r} (has {sorted(self.fields)[:8]}...)"
            )
        return self.fields[name]

    def flow_key(self) -> tuple:
        """Hashable identity of the flow this record describes."""
        return (
            self.switch_id,
            tuple(sorted(self.indicators.items())),
        )

    def to_document(self) -> Dict[str, Any]:
        """Flatten to a single-level document for the database."""
        doc: Dict[str, Any] = {
            "feature_scope": self.scope.value,
            "switch_id": self.switch_id,
            "instance_id": self.instance_id,
            "timestamp": self.timestamp,
        }
        if self.port_no is not None:
            doc["port_no"] = self.port_no
        if self.app_id is not None:
            doc["app_id"] = self.app_id
        if self.label is not None:
            doc["label"] = self.label
        for key, value in self.indicators.items():
            doc[key] = value
        for name, value in self.fields.items():
            doc[name] = value
        return doc

    @classmethod
    def from_document(cls, doc: Dict[str, Any]) -> "AthenaFeature":
        """Rebuild a record from its flattened document."""
        indicator_keys = (
            "eth_src",
            "eth_dst",
            "ip_src",
            "ip_dst",
            "ip_proto",
            "tcp_src",
            "tcp_dst",
        )
        indicators = {
            key: doc[key] for key in indicator_keys if doc.get(key) is not None
        }
        fields = {
            key: value
            for key, value in doc.items()
            if key == key.upper() and key != "_ID" and isinstance(value, (int, float))
        }
        return cls(
            scope=FeatureScope(doc["feature_scope"]),
            switch_id=doc["switch_id"],
            instance_id=doc.get("instance_id", 0),
            timestamp=doc.get("timestamp", 0.0),
            indicators=indicators,
            app_id=doc.get("app_id"),
            port_no=doc.get("port_no"),
            fields=fields,
            label=doc.get("label"),
        )
