"""The Preprocessor NB parameter (Table IV).

A :class:`Preprocessor` turns feature documents into the numeric matrix an
algorithm consumes, applying the paper's four operators:

* **Weighting** — per-feature multipliers to emphasize certain features,
* **Sampling** — keep a uniform fraction of the entries,
* **Normalization** — min-max or z-score standardisation,
* **Marking** — produce the 0/1 malicious mark per entry, either from a
  marking query ("entries matching this are malicious"), a callable, or the
  ground-truth ``label`` index field (used when replaying labelled
  datasets).

``fit`` learns scaling parameters on the training documents; ``transform``
re-applies them verbatim, so train and test splits see identical scaling.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.feature_format import AthenaFeature
from repro.core.query import Query
from repro.distdb.frame import FeatureFrame, filter_mask
from repro.errors import AthenaError
from repro.ml.preprocessing import MinMaxNormalizer, StandardScaler

Document = Dict[str, object]
MarkingSpec = Union[Query, Callable[[Document], bool], str, None]


class Preprocessor:
    """Feature selection + the Table IV preprocessing operators."""

    def __init__(
        self,
        features: Optional[Sequence[str]] = None,
        normalization: Optional[str] = "minmax",
        weights: Optional[Dict[str, float]] = None,
        sampling: Optional[float] = None,
        marking: MarkingSpec = None,
        sampling_seed: int = 0,
    ) -> None:
        if normalization not in (None, "minmax", "standard"):
            raise AthenaError(f"unknown normalization {normalization!r}")
        if sampling is not None and not 0 < sampling <= 1:
            raise AthenaError(f"sampling fraction must be in (0, 1], got {sampling}")
        self.features: List[str] = list(features or [])
        self.normalization = normalization
        self.weights = dict(weights or {})
        self.sampling = sampling
        self.sampling_seed = sampling_seed
        self.marking = marking
        self._scaler = None

    # -- feature registration (the paper's f.addAll) ------------------------

    def add(self, feature: str) -> "Preprocessor":
        """Register one feature column."""
        if feature not in self.features:
            self.features.append(feature)
        return self

    def add_all(self, features: Sequence[str]) -> "Preprocessor":
        """Register several feature columns (the pseudocode's f.addAll)."""
        for feature in features:
            self.add(feature)
        return self

    def set_weight(self, feature: str, weight: float) -> "Preprocessor":
        if weight < 0:
            raise AthenaError(f"negative weight for {feature}: {weight}")
        self.weights[feature] = weight
        return self

    # -- marking ----------------------------------------------------------------

    def mark(self, doc: Document) -> Optional[int]:
        """The 0/1 malicious mark of one document, or None when unmarked."""
        if self.marking is None:
            return None
        if isinstance(self.marking, str):
            value = doc.get(self.marking)
            return None if value is None else int(bool(value))
        if isinstance(self.marking, Query):
            return 1 if self.marking.matches(doc) else 0
        return 1 if self.marking(doc) else 0

    # -- matrix construction -------------------------------------------------------

    def _to_docs(self, records) -> List[Document]:
        return [
            record.to_document() if isinstance(record, AthenaFeature) else record
            for record in records
        ]

    def _matrix(self, docs: List[Document]) -> np.ndarray:
        if not self.features:
            raise AthenaError("preprocessor has no features registered")
        matrix = np.zeros((len(docs), len(self.features)))
        for row, doc in enumerate(docs):
            for col, feature in enumerate(self.features):
                value = doc.get(feature)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    matrix[row, col] = float(value)
        return matrix

    def _sample(self, docs: List[Document]) -> List[Document]:
        if self.sampling is None or not docs:
            return docs
        rng = np.random.default_rng(self.sampling_seed)
        n_keep = max(1, int(round(len(docs) * self.sampling)))
        keep = np.sort(rng.choice(len(docs), size=n_keep, replace=False))
        return [docs[i] for i in keep]

    def fit(self, records) -> "Preprocessor":
        """Learn normalisation parameters from training documents."""
        docs = self._sample(self._to_docs(records))
        matrix = self._matrix(docs)
        if self.normalization == "minmax":
            self._scaler = MinMaxNormalizer().fit(matrix)
        elif self.normalization == "standard":
            self._scaler = StandardScaler().fit(matrix)
        return self

    def transform(
        self, records, sample: bool = False
    ) -> Tuple[np.ndarray, Optional[np.ndarray], List[Document]]:
        """Produce (matrix, marks, kept_documents).

        ``marks`` is None when no marking is configured; otherwise a 0/1
        vector (unmarkable documents default to benign 0).
        """
        docs = self._to_docs(records)
        if sample:
            docs = self._sample(docs)
        matrix = self._matrix(docs)
        if self._scaler is not None:
            matrix = self._scaler.transform(matrix)
        elif self.normalization is not None and len(docs):
            raise AthenaError("preprocessor not fitted; call fit first")
        if self.weights:
            weight_row = np.array(
                [self.weights.get(feature, 1.0) for feature in self.features]
            )
            matrix = matrix * weight_row
        marks = None
        if self.marking is not None:
            marks = np.array(
                [float(self.mark(doc) or 0) for doc in docs]
            )
        return matrix, marks, docs

    def fit_transform(self, records):
        """Sample, fit, and transform training documents in one step."""
        docs = self._sample(self._to_docs(records))
        self.fit(docs)
        return self.transform(docs)

    # -- columnar path (bit-identical to the document methods above) --------

    def _sample_frame(self, frame: FeatureFrame) -> FeatureFrame:
        if self.sampling is None or not frame.n_rows:
            return frame
        rng = np.random.default_rng(self.sampling_seed)
        n_keep = max(1, int(round(frame.n_rows * self.sampling)))
        keep = np.sort(rng.choice(frame.n_rows, size=n_keep, replace=False))
        return frame.take(keep)

    def _marks_frame(self, frame: FeatureFrame) -> np.ndarray:
        """Vectorised marking: the 0/1 vector :meth:`mark` would produce."""
        if isinstance(self.marking, str):
            column = frame.values(self.marking)
            if column.dtype != object:
                # mark() → int(bool(value)), with missing → None → 0.0;
                # stored NaN is truthy, and NaN != 0 holds, so the
                # comparison reproduces bool() exactly.
                missing = frame.is_missing(self.marking)
                with np.errstate(invalid="ignore"):
                    return ((~missing) & (column != 0)).astype(np.float64)
        if isinstance(self.marking, Query):
            filter_ = self.marking.to_db_filter() or None
            return filter_mask(frame, filter_).astype(np.float64)
        docs = frame.documents()
        return np.fromiter(
            (float(self.mark(doc) or 0) for doc in docs),
            dtype=np.float64,
            count=len(docs),
        )

    def fit_frame(self, frame: FeatureFrame) -> "Preprocessor":
        """Learn normalisation parameters from a training frame."""
        if not self.features:
            raise AthenaError("preprocessor has no features registered")
        matrix = self._sample_frame(frame).to_matrix(self.features)
        if self.normalization == "minmax":
            self._scaler = MinMaxNormalizer().fit(matrix)
        elif self.normalization == "standard":
            self._scaler = StandardScaler().fit(matrix)
        return self

    def transform_frame(
        self, frame: FeatureFrame, sample: bool = False
    ) -> Tuple[np.ndarray, Optional[np.ndarray], FeatureFrame]:
        """Columnar :meth:`transform`: (matrix, marks, kept_frame).

        Same scaling, weighting, and marking semantics, computed on the
        frame's columns without a per-row loop; the returned frame holds
        the (possibly sampled) rows the matrix was built from.
        """
        if not self.features:
            raise AthenaError("preprocessor has no features registered")
        if sample:
            frame = self._sample_frame(frame)
        matrix = frame.to_matrix(self.features)
        if self._scaler is not None:
            matrix = self._scaler.transform(matrix)
        elif self.normalization is not None and frame.n_rows:
            raise AthenaError("preprocessor not fitted; call fit first")
        if self.weights:
            weight_row = np.array(
                [self.weights.get(feature, 1.0) for feature in self.features]
            )
            matrix = matrix * weight_row
        marks = None
        if self.marking is not None:
            marks = self._marks_frame(frame)
        return matrix, marks, frame

    def fit_transform_frame(self, frame: FeatureFrame):
        """Columnar :meth:`fit_transform`, sampling rounds included.

        The document path samples once in ``fit_transform`` and once more
        inside ``fit``; the frame path repeats both rounds so the learned
        scaler — and therefore every downstream byte — matches.
        """
        frame = self._sample_frame(frame)
        self.fit_frame(frame)
        return self.transform_frame(frame)

    def transform_one(self, record) -> np.ndarray:
        """Row vector for a single record (the online-validation path)."""
        matrix, _, _ = self.transform([record])
        return matrix[0]

    def __repr__(self) -> str:
        return (
            f"Preprocessor(features={len(self.features)}, "
            f"normalization={self.normalization!r}, sampling={self.sampling})"
        )


def GeneratePreprocessor(
    normalization: Optional[str] = "minmax",
    weights: Optional[Dict[str, float]] = None,
    sampling: Optional[float] = None,
    marking: MarkingSpec = None,
    features: Optional[Sequence[str]] = None,
) -> Preprocessor:
    """NB utility API: create a preprocessor (the pseudocode's form)."""
    return Preprocessor(
        features=features,
        normalization=normalization,
        weights=weights,
        sampling=sampling,
        marking=marking,
    )
