"""Athena's feature catalog and extractors.

:mod:`repro.core.features.catalog` enumerates the 100+ named features by
Table I category; the sibling modules compute them:

* :mod:`~repro.core.features.protocol` — values copied directly out of
  OpenFlow control messages,
* :mod:`~repro.core.features.combination` — pre-defined formulas over
  protocol features (flow utilization, bytes per packet, ...),
* :mod:`~repro.core.features.stateful` — values that need network state
  (pair flows, flow origins, per-source flow fan-out),
* :mod:`~repro.core.features.variation` — deltas against the previous
  sample of the same entity, kept in hash tables.
"""

from repro.core.features.catalog import (
    FEATURE_CATALOG,
    FeatureCategory,
    FeatureDef,
    feature_names,
    features_by_category,
    features_by_scope,
    is_known_feature,
)

__all__ = [
    "FEATURE_CATALOG",
    "FeatureCategory",
    "FeatureDef",
    "feature_names",
    "features_by_category",
    "features_by_scope",
    "is_known_feature",
]
