"""Stateful extractors.

The Feature Generator "maintains hash tables to track ... network status"
(Section III-A2).  :class:`FlowStateTable` is that state: the live flows of
each monitored switch keyed by their match indicators, from which pair-flow
presence, per-source fan-out, and switch-level ratios (the DDoS detector's
``PAIR_FLOW_RATIO``) are computed.  A garbage collector evicts entries not
refreshed within a configurable horizon.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

FlowKey = Tuple[Any, ...]


def flow_key_from_indicators(indicators: Dict[str, Any]) -> FlowKey:
    """Canonical hashable identity of a flow's match indicators."""
    return tuple(sorted(indicators.items()))


def reverse_indicators(indicators: Dict[str, Any]) -> Dict[str, Any]:
    """Indicators of the reverse direction (for pair-flow detection)."""
    flipped = dict(indicators)
    for a, b in (("eth_src", "eth_dst"), ("ip_src", "ip_dst"), ("tcp_src", "tcp_dst")):
        va, vb = indicators.get(a), indicators.get(b)
        if va is not None or vb is not None:
            flipped[a], flipped[b] = vb, va
    return {k: v for k, v in flipped.items() if v is not None}


@dataclass
class _FlowState:
    """Tracked state of one live flow."""

    indicators: Dict[str, Any]
    first_seen: float
    last_seen: float
    samples: int = 0
    packet_count: float = 0.0


@dataclass
class _SwitchState:
    """Per-switch hash tables.

    ``src_counts`` / ``dst_counts`` are maintained incrementally so fan-out
    lookups stay O(1) per observation regardless of table size.
    """

    flows: Dict[FlowKey, _FlowState] = field(default_factory=dict)
    src_counts: Dict[Any, int] = field(default_factory=dict)
    dst_counts: Dict[Any, int] = field(default_factory=dict)
    pair_count: int = 0
    new_flows_since_sample: int = 0
    expired_since_sample: int = 0
    last_sample_time: Optional[float] = None

    @staticmethod
    def endpoints(indicators: Dict[str, Any]):
        src = indicators.get("ip_src") or indicators.get("eth_src")
        dst = indicators.get("ip_dst") or indicators.get("eth_dst")
        return src, dst

    def add_flow(self, key: FlowKey, flow: "_FlowState") -> None:
        self.flows[key] = flow
        src, dst = self.endpoints(flow.indicators)
        self.src_counts[src] = self.src_counts.get(src, 0) + 1
        self.dst_counts[dst] = self.dst_counts.get(dst, 0) + 1
        reverse_key = flow_key_from_indicators(
            reverse_indicators(flow.indicators)
        )
        if reverse_key in self.flows and reverse_key != key:
            self.pair_count += 2

    def drop_flow(self, key: FlowKey) -> Optional["_FlowState"]:
        flow = self.flows.pop(key, None)
        if flow is None:
            return None
        src, dst = self.endpoints(flow.indicators)
        for counts, endpoint in ((self.src_counts, src), (self.dst_counts, dst)):
            remaining = counts.get(endpoint, 1) - 1
            if remaining <= 0:
                counts.pop(endpoint, None)
            else:
                counts[endpoint] = remaining
        reverse_key = flow_key_from_indicators(
            reverse_indicators(flow.indicators)
        )
        if reverse_key in self.flows and reverse_key != key:
            self.pair_count -= 2
        return flow


class FlowStateTable:
    """Live-flow state for the switches one Athena instance monitors."""

    def __init__(self, stale_after: float = 60.0) -> None:
        self.stale_after = stale_after
        self._switches: Dict[int, _SwitchState] = {}

    def _state(self, dpid: int) -> _SwitchState:
        if dpid not in self._switches:
            self._switches[dpid] = _SwitchState()
        return self._switches[dpid]

    # -- updates -----------------------------------------------------------

    def observe_flow(
        self,
        dpid: int,
        indicators: Dict[str, Any],
        now: float,
        packet_count: float = 0.0,
    ) -> Dict[str, float]:
        """Record a sample of a flow; returns its flow-scoped stateful fields."""
        state = self._state(dpid)
        key = flow_key_from_indicators(indicators)
        flow = state.flows.get(key)
        is_new = flow is None
        if is_new:
            flow = _FlowState(
                indicators=dict(indicators), first_seen=now, last_seen=now
            )
            state.add_flow(key, flow)
            state.new_flows_since_sample += 1
        flow.last_seen = now
        flow.samples += 1
        flow.packet_count = packet_count
        reverse_key = flow_key_from_indicators(reverse_indicators(indicators))
        has_pair = reverse_key in state.flows and reverse_key != key
        src, dst = state.endpoints(indicators)
        fanout = state.src_counts.get(src, 0)
        fanin = state.dst_counts.get(dst, 0)
        return {
            "PAIR_FLOW": 1.0 if has_pair else 0.0,
            "FLOW_IS_NEW": 1.0 if is_new else 0.0,
            "FLOW_SAMPLE_COUNT": float(flow.samples),
            "SRC_FLOW_FANOUT": float(fanout),
            "DST_FLOW_FANIN": float(fanin),
        }

    def remove_flow(self, dpid: int, indicators: Dict[str, Any]) -> bool:
        """Drop a flow on FLOW_REMOVED; returns whether it was tracked."""
        state = self._state(dpid)
        key = flow_key_from_indicators(indicators)
        if state.drop_flow(key) is not None:
            state.expired_since_sample += 1
            return True
        return False

    # -- switch-level snapshot --------------------------------------------------

    def switch_fields(self, dpid: int, now: float) -> Dict[str, float]:
        """Stateful switch-scope features, resetting per-sample counters."""
        state = self._state(dpid)
        flows = list(state.flows.values())
        total = len(flows)
        paired = state.pair_count
        sources = state.src_counts
        destinations = state.dst_counts
        elapsed = (
            now - state.last_sample_time if state.last_sample_time is not None else 0.0
        )
        new_rate = state.new_flows_since_sample / elapsed if elapsed > 0 else 0.0
        expired_rate = state.expired_since_sample / elapsed if elapsed > 0 else 0.0
        single = total - paired
        fields = {
            "PAIR_FLOW_RATIO": paired / total if total else 0.0,
            "SINGLE_FLOW_RATIO": single / total if total else 0.0,
            "TOTAL_TRACKED_FLOWS": float(total),
            "UNIQUE_SRC_COUNT": float(len(sources)),
            "UNIQUE_DST_COUNT": float(len(destinations)),
            "FLOWS_PER_SRC": total / len(sources) if sources else 0.0,
            "FLOWS_PER_DST": total / len(destinations) if destinations else 0.0,
            "NEW_FLOW_RATE": new_rate,
            "EXPIRED_FLOW_RATE": expired_rate,
            "MEDIAN_FLOW_PACKETS": (
                float(statistics.median(f.packet_count for f in flows)) if flows else 0.0
            ),
            "GROWTH_SINGLE_FLOWS": float(
                state.new_flows_since_sample - state.expired_since_sample
            ),
        }
        state.new_flows_since_sample = 0
        state.expired_since_sample = 0
        state.last_sample_time = now
        return fields

    def switch_snapshot(self, dpid: int) -> Dict[str, float]:
        """Read-only switch-scope view that does NOT reset sample counters.

        The streaming pipeline reads switch state on every event, far more
        often than the batch sampling round; resetting the per-sample
        counters here would starve :meth:`switch_fields` (and rate features)
        of their accumulation window, so this snapshot leaves all state
        untouched.
        """
        state = self._state(dpid)
        total = len(state.flows)
        paired = state.pair_count
        sources = state.src_counts
        destinations = state.dst_counts
        return {
            "PAIR_FLOW_RATIO": paired / total if total else 0.0,
            "SINGLE_FLOW_RATIO": (total - paired) / total if total else 0.0,
            "TOTAL_TRACKED_FLOWS": float(total),
            "UNIQUE_SRC_COUNT": float(len(sources)),
            "UNIQUE_DST_COUNT": float(len(destinations)),
            "FLOWS_PER_SRC": total / len(sources) if sources else 0.0,
            "FLOWS_PER_DST": total / len(destinations) if destinations else 0.0,
        }

    # -- garbage collection ----------------------------------------------------

    def collect_garbage(self, now: float) -> int:
        """Evict flows not refreshed within ``stale_after`` seconds."""
        evicted = 0
        for state in self._switches.values():
            stale = [
                key
                for key, flow in state.flows.items()
                if now - flow.last_seen > self.stale_after
            ]
            for key in stale:
                state.drop_flow(key)
                evicted += 1
        return evicted

    def tracked_flow_count(self, dpid: Optional[int] = None) -> int:
        if dpid is not None:
            return len(self._state(dpid).flows)
        return sum(len(s.flows) for s in self._switches.values())
