"""Variation tracking.

The Feature Generator "maintains hash tables to track the status of the
previous features for generating Variation".  :class:`VariationTracker`
keeps, per entity (a flow on a switch, a port, a switch, a control channel),
the previous sample's numeric fields and emits ``<NAME>_VAR`` deltas on the
next sample.  Entities not refreshed within the GC horizon are evicted.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Tuple

from repro.core.features.catalog import FEATURE_CATALOG


#: Which base features produce a *_VAR sibling (precomputed from the catalog).
_VARYING = frozenset(
    name for name, definition in FEATURE_CATALOG.items() if definition.varies
)


class VariationTracker:
    """Previous-sample hash table with delta computation."""

    def __init__(self, stale_after: float = 120.0) -> None:
        self.stale_after = stale_after
        self._previous: Dict[Hashable, Tuple[float, Dict[str, float]]] = {}

    def __len__(self) -> int:
        return len(self._previous)

    def diff(
        self, entity: Hashable, fields: Dict[str, float], now: float
    ) -> Dict[str, float]:
        """Return ``*_VAR`` deltas vs the previous sample and remember this one.

        The first sample of an entity produces deltas equal to the values
        themselves (variation from an implicit zero baseline), which matches
        counters that start at zero on flow installation.
        """
        stamped = self._previous.get(entity)
        previous = stamped[1] if stamped else {}
        variations: Dict[str, float] = {}
        for name, value in fields.items():
            if name in _VARYING:
                variations[name + "_VAR"] = value - previous.get(name, 0.0)
        self._previous[entity] = (
            now,
            {name: value for name, value in fields.items() if name in _VARYING},
        )
        return variations

    def previous_fields(self, entity: Hashable) -> Dict[str, float]:
        stamped = self._previous.get(entity)
        return dict(stamped[1]) if stamped else {}

    def last_sample_time(self, entity: Hashable):
        stamped = self._previous.get(entity)
        return stamped[0] if stamped else None

    def forget(self, entity: Hashable) -> None:
        self._previous.pop(entity, None)

    def collect_garbage(self, now: float) -> int:
        """Evict entities not sampled within ``stale_after`` seconds."""
        stale = [
            entity
            for entity, (stamp, _) in self._previous.items()
            if now - stamp > self.stale_after
        ]
        for entity in stale:
            del self._previous[entity]
        return len(stale)
