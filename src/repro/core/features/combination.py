"""Combination extractors — pre-defined formulas over protocol features.

All ratios guard against zero denominators by yielding 0.0, so downstream
matrices never contain NaN/inf (the paper's example: Flow Utilization =
how much traffic a flow delivers relative to its output port).
"""

from __future__ import annotations

from typing import Dict, Optional


def _ratio(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else 0.0


def flow_fields(
    protocol: Dict[str, float], port_speed_bps: Optional[float] = None
) -> Dict[str, float]:
    """Combination features of a flow record from its protocol fields."""
    packets = protocol.get("FLOW_PACKET_COUNT", 0.0)
    bytes_ = protocol.get("FLOW_BYTE_COUNT", 0.0)
    duration = protocol.get("FLOW_DURATION_SEC", 0.0) + protocol.get(
        "FLOW_DURATION_N_SEC", 0.0
    ) / 1e9
    hard = protocol.get("FLOW_HARD_TIMEOUT", 0.0)
    idle = protocol.get("FLOW_IDLE_TIMEOUT", 0.0)
    byte_rate = _ratio(bytes_, duration)
    return {
        "FLOW_BYTE_PER_PACKET": _ratio(bytes_, packets),
        "FLOW_PACKET_PER_DURATION": _ratio(packets, duration),
        "FLOW_BYTE_PER_DURATION": byte_rate,
        "FLOW_UTILIZATION": _ratio(byte_rate * 8.0, port_speed_bps or 0.0),
        "FLOW_LIFETIME_RATIO": _ratio(duration, hard),
        "FLOW_IDLE_RATIO": _ratio(idle, duration),
    }


def port_fields(
    protocol: Dict[str, float],
    port_speed_bps: Optional[float] = None,
    delta_seconds: Optional[float] = None,
    delta_bytes: Optional[float] = None,
) -> Dict[str, float]:
    """Combination features of a port record.

    ``PORT_UTILIZATION`` needs a rate, so it uses the byte delta since the
    previous sample when available and otherwise reports 0.
    """
    rx_packets = protocol.get("PORT_RX_PACKETS", 0.0)
    tx_packets = protocol.get("PORT_TX_PACKETS", 0.0)
    rx_bytes = protocol.get("PORT_RX_BYTES", 0.0)
    tx_bytes = protocol.get("PORT_TX_BYTES", 0.0)
    drops = protocol.get("PORT_RX_DROPPED", 0.0) + protocol.get("PORT_TX_DROPPED", 0.0)
    errors = protocol.get("PORT_RX_ERRORS", 0.0) + protocol.get("PORT_TX_ERRORS", 0.0)
    handled = rx_packets + tx_packets
    utilization = 0.0
    if delta_seconds and delta_bytes is not None and port_speed_bps:
        utilization = _ratio(delta_bytes * 8.0 / delta_seconds, port_speed_bps)
    return {
        "PORT_RX_BYTE_PER_PACKET": _ratio(rx_bytes, rx_packets),
        "PORT_TX_BYTE_PER_PACKET": _ratio(tx_bytes, tx_packets),
        "PORT_UTILIZATION": min(1.0, utilization),
        "PORT_DROP_RATIO": _ratio(drops, drops + handled),
        "PORT_ERROR_RATIO": _ratio(errors, handled),
        "PORT_RX_TX_RATIO": _ratio(rx_packets, tx_packets),
    }


def switch_fields(
    table: Dict[str, float],
    aggregate: Dict[str, float],
    table_capacity: float = 65536.0,
) -> Dict[str, float]:
    """Combination features at switch scope."""
    active = table.get("TABLE_ACTIVE_COUNT", 0.0)
    lookups = table.get("TABLE_LOOKUP_COUNT", 0.0)
    matched = table.get("TABLE_MATCHED_COUNT", 0.0)
    flows = aggregate.get("AGG_FLOW_COUNT", 0.0)
    return {
        "TABLE_UTILIZATION": _ratio(active, table_capacity),
        "TABLE_HIT_RATIO": _ratio(matched, lookups),
        "AGG_BYTE_PER_FLOW": _ratio(aggregate.get("AGG_BYTE_COUNT", 0.0), flows),
        "AGG_PACKET_PER_FLOW": _ratio(aggregate.get("AGG_PACKET_COUNT", 0.0), flows),
    }


def control_fields(
    counters: Dict[str, float], delta_seconds: Optional[float]
) -> Dict[str, float]:
    """Combination features at control scope (message rates)."""
    if not delta_seconds or delta_seconds <= 0:
        return {"PACKET_IN_RATE": 0.0, "FLOW_MOD_RATE": 0.0, "CONTROL_MSG_RATE": 0.0}
    return {
        "PACKET_IN_RATE": counters.get("PACKET_IN_COUNT_DELTA", 0.0) / delta_seconds,
        "FLOW_MOD_RATE": counters.get("FLOW_MOD_COUNT_DELTA", 0.0) / delta_seconds,
        "CONTROL_MSG_RATE": counters.get("CONTROL_MSG_TOTAL_DELTA", 0.0) / delta_seconds,
    }
