"""Protocol-centric extractors.

These functions copy values straight out of OpenFlow structures — no state,
no formulas — producing the Table I *protocol-centric* fields.
"""

from __future__ import annotations

from typing import Dict

from repro.openflow.messages import (
    FlowRemoved,
    FlowStatsEntry,
    PortStatsEntry,
    TableStatsEntry,
)


def flow_fields(entry: FlowStatsEntry) -> Dict[str, float]:
    """Protocol features of one flow-stats entry."""
    duration = float(entry.duration_sec)
    return {
        "FLOW_PACKET_COUNT": float(entry.packet_count),
        "FLOW_BYTE_COUNT": float(entry.byte_count),
        "FLOW_DURATION_SEC": float(int(duration)),
        "FLOW_DURATION_N_SEC": (duration - int(duration)) * 1e9,
        "FLOW_PRIORITY": float(entry.priority),
        "FLOW_IDLE_TIMEOUT": float(entry.idle_timeout),
        "FLOW_HARD_TIMEOUT": float(entry.hard_timeout),
        "FLOW_TABLE_ID": float(entry.table_id),
    }


def removed_flow_fields(msg: FlowRemoved) -> Dict[str, float]:
    """Protocol features carried by a FLOW_REMOVED notification."""
    duration = float(msg.duration_sec)
    return {
        "FLOW_PACKET_COUNT": float(msg.packet_count),
        "FLOW_BYTE_COUNT": float(msg.byte_count),
        "FLOW_DURATION_SEC": float(int(duration)),
        "FLOW_DURATION_N_SEC": (duration - int(duration)) * 1e9,
        "FLOW_PRIORITY": float(msg.priority),
        "FLOW_IDLE_TIMEOUT": 0.0,
        "FLOW_HARD_TIMEOUT": 0.0,
        "FLOW_TABLE_ID": 0.0,
    }


def port_fields(entry: PortStatsEntry) -> Dict[str, float]:
    """Protocol features of one port-stats entry."""
    return {
        "PORT_RX_PACKETS": float(entry.rx_packets),
        "PORT_TX_PACKETS": float(entry.tx_packets),
        "PORT_RX_BYTES": float(entry.rx_bytes),
        "PORT_TX_BYTES": float(entry.tx_bytes),
        "PORT_RX_DROPPED": float(entry.rx_dropped),
        "PORT_TX_DROPPED": float(entry.tx_dropped),
        "PORT_RX_ERRORS": float(entry.rx_errors),
        "PORT_TX_ERRORS": float(entry.tx_errors),
    }


def table_fields(entry: TableStatsEntry) -> Dict[str, float]:
    """Protocol features of one table-stats entry."""
    return {
        "TABLE_ACTIVE_COUNT": float(entry.active_count),
        "TABLE_LOOKUP_COUNT": float(entry.lookup_count),
        "TABLE_MATCHED_COUNT": float(entry.matched_count),
    }


def aggregate_fields(packet_count: int, byte_count: int, flow_count: int) -> Dict[str, float]:
    """Protocol features of an aggregate-stats reply."""
    return {
        "AGG_PACKET_COUNT": float(packet_count),
        "AGG_BYTE_COUNT": float(byte_count),
        "AGG_FLOW_COUNT": float(flow_count),
    }


def control_counter_fields(counters: Dict[str, int]) -> Dict[str, float]:
    """Protocol features from the per-switch control-message counters."""
    total = sum(
        counters.get(key, 0)
        for key in (
            "packet_in",
            "packet_out",
            "flow_mod",
            "flow_removed",
            "port_status",
            "stats_request",
            "stats_reply",
            "echo",
            "barrier",
        )
    )
    return {
        "PACKET_IN_COUNT": float(counters.get("packet_in", 0)),
        "PACKET_OUT_COUNT": float(counters.get("packet_out", 0)),
        "FLOW_MOD_COUNT": float(counters.get("flow_mod", 0)),
        "FLOW_REMOVED_COUNT": float(counters.get("flow_removed", 0)),
        "PORT_STATUS_COUNT": float(counters.get("port_status", 0)),
        "STATS_REQUEST_COUNT": float(counters.get("stats_request", 0)),
        "STATS_REPLY_COUNT": float(counters.get("stats_reply", 0)),
        "ECHO_COUNT": float(counters.get("echo", 0)),
        "BARRIER_COUNT": float(counters.get("barrier", 0)),
        "CONTROL_MSG_TOTAL": float(total),
        "CONTROL_MSG_BYTES": float(counters.get("bytes", 0)),
    }
