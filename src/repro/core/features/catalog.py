"""The feature catalog.

Every feature Athena can generate is declared here with its Table I
category, its scope (flow / port / switch / control-plane) and a short
description.  Variation features are derived systematically: every numeric
base feature marked ``varies`` gains a ``*_VAR`` sibling holding the delta
since the previous sample of the same entity — the paper's ``Variation``
field.  The full catalog comfortably exceeds the paper's "over 100 network
monitoring features".
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional

from repro.core.feature_format import FeatureScope
from repro.errors import FeatureError


class FeatureCategory(Enum):
    """Table I feature types."""

    PROTOCOL = "protocol-centric"
    COMBINATION = "combination"
    STATEFUL = "stateful"
    VARIATION = "variation"


@dataclass(frozen=True)
class FeatureDef:
    """Declaration of one catalog feature."""

    name: str
    category: FeatureCategory
    scope: FeatureScope
    description: str
    varies: bool = False  # whether a *_VAR sibling is generated


class FeatureCatalog(Dict[str, FeatureDef]):
    """The catalog mapping with name-resolution helpers.

    Both the framework (``FeatureManager``) and the static analyser
    (``repro.analysis``) resolve user-supplied feature names through the
    same two entry points, so a misspelling fails identically at lint
    time and at run time — with the same did-you-mean suggestion.
    """

    def suggest(self, name: str) -> Optional[str]:
        """The closest catalog name to ``name``, or None when nothing is near.

        When the name carries a scope-like prefix shared with catalog
        features (``SKETCH_``, ``FLOW_``, ``PORT_``, ...), matching is
        restricted to that family first with a lower cutoff — a global
        fuzzy match over 100+ names otherwise drowns family-local typos
        like ``SKETCH_UNIQ_SRC_EST`` in unrelated suggestions.
        """
        prefix, _, _ = name.partition("_")
        if prefix and prefix != name:
            family = [n for n in self if n.startswith(prefix + "_")]
            if family:
                matches = difflib.get_close_matches(name, family, n=1, cutoff=0.4)
                if matches:
                    return matches[0]
        matches = difflib.get_close_matches(name, list(self), n=1, cutoff=0.6)
        return matches[0] if matches else None

    def resolve(self, name: str) -> FeatureDef:
        """Look up ``name``, raising :class:`FeatureError` with a
        nearest-match suggestion when it is unknown."""
        definition = self.get(name)
        if definition is not None:
            return definition
        nearest = self.suggest(name)
        hint = f" (did you mean {nearest!r}?)" if nearest else ""
        raise FeatureError(f"unknown Athena feature {name!r}{hint}")

    def validate(self, names: Iterable[str]) -> None:
        """Resolve every name, raising on the first unknown one."""
        for name in names:
            self.resolve(name)


def _build_catalog() -> "FeatureCatalog":
    P, C, S = FeatureCategory.PROTOCOL, FeatureCategory.COMBINATION, FeatureCategory.STATEFUL
    FLOW, PORT, SWITCH, CTRL, SKETCH = (
        FeatureScope.FLOW,
        FeatureScope.PORT,
        FeatureScope.SWITCH,
        FeatureScope.CONTROL,
        FeatureScope.SKETCH,
    )
    base: List[FeatureDef] = [
        # -- protocol-centric, flow scope (from FLOW stats / FLOW_REMOVED) --
        FeatureDef("FLOW_PACKET_COUNT", P, FLOW, "packets matched by the flow entry", True),
        FeatureDef("FLOW_BYTE_COUNT", P, FLOW, "bytes matched by the flow entry", True),
        FeatureDef("FLOW_DURATION_SEC", P, FLOW, "seconds since flow installation", True),
        FeatureDef("FLOW_DURATION_N_SEC", P, FLOW, "nanosecond remainder of the duration"),
        FeatureDef("FLOW_PRIORITY", P, FLOW, "flow entry priority"),
        FeatureDef("FLOW_IDLE_TIMEOUT", P, FLOW, "idle (soft) timeout of the entry"),
        FeatureDef("FLOW_HARD_TIMEOUT", P, FLOW, "hard timeout of the entry"),
        FeatureDef("FLOW_TABLE_ID", P, FLOW, "table hosting the entry"),
        # -- protocol-centric, port scope (from PORT stats) --
        FeatureDef("PORT_RX_PACKETS", P, PORT, "packets received on the port", True),
        FeatureDef("PORT_TX_PACKETS", P, PORT, "packets transmitted on the port", True),
        FeatureDef("PORT_RX_BYTES", P, PORT, "bytes received on the port", True),
        FeatureDef("PORT_TX_BYTES", P, PORT, "bytes transmitted on the port", True),
        FeatureDef("PORT_RX_DROPPED", P, PORT, "packets dropped on receive", True),
        FeatureDef("PORT_TX_DROPPED", P, PORT, "packets dropped on transmit", True),
        FeatureDef("PORT_RX_ERRORS", P, PORT, "receive errors", True),
        FeatureDef("PORT_TX_ERRORS", P, PORT, "transmit errors", True),
        # -- protocol-centric, switch scope (aggregate / table stats) --
        FeatureDef("AGG_PACKET_COUNT", P, SWITCH, "aggregate packets over all flows", True),
        FeatureDef("AGG_BYTE_COUNT", P, SWITCH, "aggregate bytes over all flows", True),
        FeatureDef("AGG_FLOW_COUNT", P, SWITCH, "number of installed flows", True),
        FeatureDef("TABLE_ACTIVE_COUNT", P, SWITCH, "active entries in the flow table", True),
        FeatureDef("TABLE_LOOKUP_COUNT", P, SWITCH, "table lookups performed", True),
        FeatureDef("TABLE_MATCHED_COUNT", P, SWITCH, "table lookups that matched", True),
        # -- protocol-centric, control-plane message counters --
        FeatureDef("PACKET_IN_COUNT", P, CTRL, "PACKET_IN messages from the switch", True),
        FeatureDef("PACKET_OUT_COUNT", P, CTRL, "PACKET_OUT messages to the switch", True),
        FeatureDef("FLOW_MOD_COUNT", P, CTRL, "FLOW_MOD messages to the switch", True),
        FeatureDef("FLOW_REMOVED_COUNT", P, CTRL, "FLOW_REMOVED notifications", True),
        FeatureDef("PORT_STATUS_COUNT", P, CTRL, "PORT_STATUS notifications", True),
        FeatureDef("STATS_REQUEST_COUNT", P, CTRL, "statistics requests issued", True),
        FeatureDef("STATS_REPLY_COUNT", P, CTRL, "statistics replies received", True),
        FeatureDef("ECHO_COUNT", P, CTRL, "echo request/replies exchanged", True),
        FeatureDef("BARRIER_COUNT", P, CTRL, "barrier request/replies exchanged", True),
        FeatureDef("CONTROL_MSG_TOTAL", P, CTRL, "all control messages exchanged", True),
        FeatureDef("CONTROL_MSG_BYTES", P, CTRL, "wire bytes of control messages", True),
        # -- combination, flow scope --
        FeatureDef("FLOW_BYTE_PER_PACKET", C, FLOW, "byte count / packet count"),
        FeatureDef("FLOW_PACKET_PER_DURATION", C, FLOW, "packet count / duration", True),
        FeatureDef("FLOW_BYTE_PER_DURATION", C, FLOW, "byte count / duration", True),
        FeatureDef("FLOW_UTILIZATION", C, FLOW, "flow byte rate / output port speed", True),
        FeatureDef("FLOW_LIFETIME_RATIO", C, FLOW, "duration / hard timeout (0 if none)"),
        FeatureDef("FLOW_IDLE_RATIO", C, FLOW, "idle timeout / duration (0 if none)"),
        # -- combination, port scope --
        FeatureDef("PORT_RX_BYTE_PER_PACKET", C, PORT, "rx bytes / rx packets"),
        FeatureDef("PORT_TX_BYTE_PER_PACKET", C, PORT, "tx bytes / tx packets"),
        FeatureDef("PORT_UTILIZATION", C, PORT, "port byte rate / port speed", True),
        FeatureDef("PORT_DROP_RATIO", C, PORT, "drops / (drops + delivered)"),
        FeatureDef("PORT_ERROR_RATIO", C, PORT, "errors / packets handled"),
        FeatureDef("PORT_RX_TX_RATIO", C, PORT, "rx packets / tx packets"),
        # -- combination, switch scope --
        FeatureDef("TABLE_UTILIZATION", C, SWITCH, "active entries / table capacity", True),
        FeatureDef("TABLE_HIT_RATIO", C, SWITCH, "matched lookups / lookups"),
        FeatureDef("AGG_BYTE_PER_FLOW", C, SWITCH, "aggregate bytes / flow count"),
        FeatureDef("AGG_PACKET_PER_FLOW", C, SWITCH, "aggregate packets / flow count"),
        # -- combination, control scope --
        FeatureDef("PACKET_IN_RATE", C, CTRL, "PACKET_INs per second since last sample", True),
        FeatureDef("FLOW_MOD_RATE", C, CTRL, "FLOW_MODs per second since last sample", True),
        FeatureDef("CONTROL_MSG_RATE", C, CTRL, "control messages per second", True),
        # -- stateful, flow scope --
        FeatureDef("PAIR_FLOW", S, FLOW, "1 if the reverse-direction flow is live"),
        FeatureDef("FLOW_IS_NEW", S, FLOW, "1 on the first sample of this flow"),
        FeatureDef("FLOW_SAMPLE_COUNT", S, FLOW, "samples taken of this flow so far"),
        FeatureDef("SRC_FLOW_FANOUT", S, FLOW, "live flows sharing this source", True),
        FeatureDef("DST_FLOW_FANIN", S, FLOW, "live flows sharing this destination", True),
        # -- stateful, switch scope --
        FeatureDef("PAIR_FLOW_RATIO", S, SWITCH, "paired flows / total flows", True),
        FeatureDef("SINGLE_FLOW_RATIO", S, SWITCH, "unpaired flows / total flows", True),
        FeatureDef("TOTAL_TRACKED_FLOWS", S, SWITCH, "flows in the state tables", True),
        FeatureDef("UNIQUE_SRC_COUNT", S, SWITCH, "distinct sources across live flows", True),
        FeatureDef("UNIQUE_DST_COUNT", S, SWITCH, "distinct destinations across live flows", True),
        FeatureDef("FLOWS_PER_SRC", S, SWITCH, "mean live flows per source", True),
        FeatureDef("FLOWS_PER_DST", S, SWITCH, "mean live flows per destination", True),
        FeatureDef("NEW_FLOW_RATE", S, SWITCH, "new flows per second since last sample", True),
        FeatureDef("EXPIRED_FLOW_RATE", S, SWITCH, "expirations per second since last sample", True),
        FeatureDef("MEDIAN_FLOW_PACKETS", S, SWITCH, "median packet count over live flows"),
        FeatureDef("GROWTH_SINGLE_FLOWS", S, SWITCH, "growth of unpaired flows", True),
        # -- sketch scope: sublinear-memory per-switch window features
        #    (repro.sketch, behind ATHENA_SKETCH; windows are already
        #    per-sample deltas, so no *_VAR siblings are derived).
        FeatureDef("SKETCH_OBSERVATIONS", P, SKETCH, "flow observations in the window"),
        FeatureDef("SKETCH_TOTAL_PACKETS", P, SKETCH, "packets observed in the window"),
        FeatureDef("SKETCH_TOTAL_BYTES", P, SKETCH, "bytes observed in the window"),
        FeatureDef("SKETCH_HEAVY_HITTER_PACKETS", S, SKETCH, "CMS max per-flow packet estimate"),
        FeatureDef("SKETCH_HEAVY_HITTER_BYTES", S, SKETCH, "CMS max per-flow byte estimate"),
        FeatureDef("SKETCH_HH_PACKET_SHARE", C, SKETCH, "heavy-hitter packets / window packets"),
        FeatureDef("SKETCH_UNIQUE_SRC_EST", S, SKETCH, "HLL distinct source estimate"),
        FeatureDef("SKETCH_UNIQUE_DST_PORT_EST", S, SKETCH, "HLL distinct dst-port estimate"),
        FeatureDef("SKETCH_FLOWS_PER_SRC_EST", C, SKETCH, "observations / distinct source estimate"),
        FeatureDef("SKETCH_PORTS_PER_SRC_EST", C, SKETCH, "distinct ports / distinct sources"),
        FeatureDef("SKETCH_SEEN_HOST_RATIO", S, SKETCH, "Bloom previously-seen-source ratio"),
    ]
    catalog: FeatureCatalog = FeatureCatalog()
    for definition in base:
        catalog[definition.name] = definition
        if definition.varies:
            var_name = definition.name + "_VAR"
            catalog[var_name] = FeatureDef(
                name=var_name,
                category=FeatureCategory.VARIATION,
                scope=definition.scope,
                description=f"delta of {definition.name} since the previous sample",
            )
    return catalog


#: name -> FeatureDef for every feature Athena can generate.
FEATURE_CATALOG: FeatureCatalog = _build_catalog()


def feature_names() -> List[str]:
    """All catalog feature names, sorted."""
    return sorted(FEATURE_CATALOG)


def is_known_feature(name: str) -> bool:
    return name in FEATURE_CATALOG


def require_known(name: str) -> FeatureDef:
    return FEATURE_CATALOG.resolve(name)


def features_by_category(category: FeatureCategory) -> List[str]:
    return sorted(
        name for name, d in FEATURE_CATALOG.items() if d.category == category
    )


def features_by_scope(scope: FeatureScope) -> List[str]:
    return sorted(name for name, d in FEATURE_CATALOG.items() if d.scope == scope)
