"""Deploying Athena over a controller cluster.

An :class:`AthenaInstance` is hosted above each controller instance (the
paper's fully-distributed hosting model): it owns that instance's Feature
Generator and southbound element and runs its own statistics polling and
garbage collection on the simulator.

:class:`AthenaDeployment` wires the whole framework: one Athena instance
per controller instance, the shared database and compute clusters, the
northbound manager layer, and the :class:`~repro.core.northbound.AthenaNorthbound`
facade applications use.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.compute import ComputeCluster
from repro.controller.cluster import ControllerCluster
from repro.controller.instance import ControllerInstance
from repro.core.detector_manager import DetectorManager
from repro.core.feature_manager import FeatureManager
from repro.core.generator import FeatureGenerator
from repro.core.northbound import AthenaNorthbound
from repro.core.reaction_manager import ReactionManager
from repro.core.resource_manager import ResourceManager
from repro.core.southbound import SouthboundElement
from repro.core.ui_manager import UIManager
from repro.distdb import DatabaseCluster
from repro.errors import AthenaError, ControllerError
from repro.telemetry import get_telemetry


class AthenaInstance:
    """One Athena instance hosted above one controller instance."""

    def __init__(
        self,
        controller: ControllerInstance,
        southbound: SouthboundElement,
        athena_poll_interval: float = 5.0,
        gc_interval: float = 30.0,
    ) -> None:
        self.controller = controller
        self.southbound = southbound
        self.athena_poll_interval = athena_poll_interval
        self.gc_interval = gc_interval
        self._started = False

    @property
    def instance_id(self) -> int:
        return self.controller.instance_id

    @property
    def generator(self) -> FeatureGenerator:
        return self.southbound.generator

    @property
    def reactor(self):
        return self.southbound.reactor

    def start(self, poll: bool = True) -> None:
        """Attach the SB interface and arm periodic polling + GC."""
        if self._started:
            return
        self._started = True
        self.southbound.attach()
        sim = self.controller.sim
        if poll:
            sim.every(self.athena_poll_interval, self.southbound.poll_now)
        sim.every(
            self.gc_interval,
            lambda: self.generator.collect_garbage(sim.now),
        )

    def stop(self) -> None:
        self.southbound.detach()
        self._started = False


class AthenaDeployment:
    """The full Athena framework over a controller cluster."""

    def __init__(
        self,
        cluster: ControllerCluster,
        database: Optional[DatabaseCluster] = None,
        compute: Optional[ComputeCluster] = None,
        store_features: bool = True,
        athena_poll_interval: float = 5.0,
        gc_interval: float = 30.0,
        distributed_threshold: int = 50_000,
    ) -> None:
        self.cluster = cluster
        self.database = database or DatabaseCluster(n_shards=3)
        self.compute = compute or ComputeCluster(n_workers=4)
        # Spans record deterministic sim-clock durations alongside wall time.
        sim = cluster.network.sim
        get_telemetry().set_sim_time_source(lambda: sim.now)
        # The sim scheduler arms the feature manager's retry queue, so DB
        # outages buffer feature writes instead of failing the pipeline.
        self.feature_manager = FeatureManager(
            self.database, store_features=store_features, scheduler=sim
        )
        self.instances: List[AthenaInstance] = []
        network = cluster.network
        for controller in cluster.instances:
            generator = FeatureGenerator(
                instance_id=controller.instance_id,
                sink=self.feature_manager.publish,
                flow_rule_lookup=cluster.flow_rules.app_of_flow,
                port_speed_lookup=lambda dpid, port: self._port_speed(
                    network, dpid, port
                ),
            )
            southbound = SouthboundElement(
                controller,
                cluster.flow_rules,
                generator,
                compute=self.compute,
                distributed_threshold=distributed_threshold,
                mac_resolver=self._mac_of_ip,
            )
            self.instances.append(
                AthenaInstance(
                    controller,
                    southbound,
                    athena_poll_interval=athena_poll_interval,
                    gc_interval=gc_interval,
                )
            )
        self.detector_manager = DetectorManager(
            self.feature_manager,
            self.instances[0].southbound.detector,
        )
        self.reaction_manager = ReactionManager(
            self.feature_manager,
            reactor_lookup=self._reactor_for,
            host_locator=cluster.hosts.locate_ip,
            all_dpids=lambda: list(cluster.network.switches),
        )
        self.resource_manager = ResourceManager(lambda: list(self.instances))
        self.ui_manager = UIManager()
        self.northbound = AthenaNorthbound(
            self.feature_manager,
            self.detector_manager,
            self.reaction_manager,
            self.resource_manager,
            self.ui_manager,
            all_dpids=lambda: list(cluster.network.switches),
        )
        self._apps: Dict[str, object] = {}
        #: The streaming runtime, once enable_streaming() has been called.
        self.streaming = None

    def _mac_of_ip(self, ip: str):
        location = self.cluster.hosts.locate_ip(ip)
        return location.mac if location is not None else None

    @staticmethod
    def _port_speed(network, dpid: int, port: int) -> float:
        switch = network.switches.get(dpid)
        if switch is None:
            return 1e9
        if port in switch.ports:
            return switch.ports[port].speed_bps
        speeds = [p.speed_bps for p in switch.ports.values()]
        return max(speeds) if speeds else 1e9

    def _reactor_for(self, dpid: int):
        try:
            master = self.cluster.mastership.master_of(dpid)
        except ControllerError:
            # No master (never adopted, or mid-failover with no standby):
            # the reaction manager turns None into a typed ReactionError.
            return None
        for instance in self.instances:
            if instance.instance_id == master:
                return instance.reactor
        return None

    # -- lifecycle ------------------------------------------------------------

    def start(self, poll: bool = True) -> None:
        """Start every Athena instance (polling, GC)."""
        for instance in self.instances:
            instance.start(poll=poll)

    def stop(self) -> None:
        for instance in self.instances:
            instance.stop()

    # -- streaming ------------------------------------------------------------

    def enable_streaming(
        self,
        refresh_interval: float = 5.0,
        gc_interval: float = 30.0,
        stale_after: float = 60.0,
    ):
        """Wire the event-driven detection pipeline (docs/STREAMING.md).

        Subscribes a :class:`~repro.streaming.StreamingPipeline` to every
        controller instance's bus, routes its stream events into a
        :class:`~repro.streaming.StreamingDetectorManager`, and arms the
        periodic off-path model refresh + state GC on the sim clock.
        Idempotent: repeated calls return the same runtime.
        """
        if self.streaming is not None:
            return self.streaming
        from repro.streaming import (
            StreamingDetectorManager,
            StreamingPipeline,
            StreamingRuntime,
        )

        pipeline = StreamingPipeline(stale_after=stale_after)
        detectors = StreamingDetectorManager()
        pipeline.add_sink(detectors.on_event)
        pipeline.attach(self)
        sim = self.cluster.network.sim
        sim.every(refresh_interval, detectors.refresh)
        sim.every(gc_interval, lambda: pipeline.collect_garbage(sim.now))
        self.streaming = StreamingRuntime(pipeline=pipeline, detectors=detectors)
        return self.streaming

    # -- applications -------------------------------------------------------------

    def register_app(self, app) -> None:
        """Attach an Athena application to this deployment."""
        if app.name in self._apps:
            raise AthenaError(f"app {app.name!r} already registered")
        self._apps[app.name] = app
        app.attach(self)

    def unregister_app(self, name: str) -> None:
        app = self._apps.pop(name, None)
        if app is not None:
            app.detach()

    def app(self, name: str):
        return self._apps.get(name)

    # -- stats ------------------------------------------------------------------------

    def total_features_generated(self) -> int:
        return sum(i.generator.features_generated for i in self.instances)

    def sketch_stats(self) -> Dict[str, float]:
        """Sketch fill/error stats aggregated across instance generators.

        Sums the additive fields (switch count, observations, resident
        bytes) and takes the worst case of the error bounds, so the
        northbound view stays meaningful however many instances carry
        sketch state.  All-zero when no generator has sketched yet.
        """
        totals: Dict[str, float] = {
            "switches": 0,
            "observations": 0,
            "nbytes": 0,
            "cms_fill_ratio": 0.0,
            "cms_error_bound": 0.0,
            "hll_fill_ratio": 0.0,
            "hll_relative_error": 0.0,
            "bloom_fill_ratio": 0.0,
            "bloom_fp_bound": 0.0,
        }
        active = 0
        for instance in self.instances:
            stats = instance.generator.sketch_stats()
            if stats is None:
                continue
            active += 1
            for key in ("switches", "observations", "nbytes"):
                totals[key] += stats[key]
            for key in ("cms_error_bound", "bloom_fp_bound", "hll_relative_error"):
                totals[key] = max(totals[key], stats[key])
            for key in ("cms_fill_ratio", "hll_fill_ratio", "bloom_fill_ratio"):
                totals[key] += stats[key]
        if active:
            for key in ("cms_fill_ratio", "hll_fill_ratio", "bloom_fill_ratio"):
                totals[key] /= active
        return totals

    def summary(self) -> Dict[str, int]:
        return {
            "athena_instances": len(self.instances),
            "features_generated": self.total_features_generated(),
            "features_published": self.feature_manager.features_published,
            "features_stored": self.feature_manager.count_features(),
            "models_generated": self.detector_manager.models_generated,
            "reactions_enforced": self.reaction_manager.reactions_enforced,
        }
