"""The Athena Northbound API (Table II).

:class:`AthenaNorthbound` is the configuration-based facade applications
program against.  The eight core functions are exposed both in Python
style (``request_features``) and under the paper's exact names
(``RequestFeatures``), so the example applications read like the paper's
pseudocode.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Union

from repro.core.algorithm import Algorithm
from repro.core.detector_manager import DetectionModel, DetectorManager
from repro.core.feature_manager import FeatureManager
from repro.core.preprocessor import Preprocessor
from repro.core.query import BooleanNode, Condition, Query
from repro.core.reaction_manager import ReactionManager
from repro.core.reactions import Reaction
from repro.core.resource_manager import ResourceManager
from repro.core.results import ValidationSummary
from repro.core.ui_manager import UIManager
from repro.errors import AthenaError


def _collect_switch_ids(node: Union[BooleanNode, Condition]) -> List[int]:
    """Extract ``switch_id == N`` constraints from a query tree."""
    if isinstance(node, Condition):
        if node.fieldname == "switch_id" and node.op == "==":
            return [int(node.value)]
        return []
    found: List[int] = []
    for child in node.children:
        found.extend(_collect_switch_ids(child))
    return found


class AthenaNorthbound:
    """The eight core NB APIs over the manager layer."""

    @classmethod
    def core_api_names(cls) -> List[str]:
        """The paper-style names of the core NB functions, introspected.

        Every core function carries a ``PascalCase`` alias matching the
        paper's pseudocode; counting those aliases keeps banners, docs,
        and the static analyser in sync with the class itself.
        """
        return sorted(
            name
            for name, member in vars(cls).items()
            if callable(member) and not name.startswith("_") and name[0].isupper()
        )

    def __init__(
        self,
        feature_manager: FeatureManager,
        detector_manager: DetectorManager,
        reaction_manager: ReactionManager,
        resource_manager: ResourceManager,
        ui_manager: UIManager,
        all_dpids: Callable[[], List[int]],
    ) -> None:
        self.features = feature_manager
        self.detector = detector_manager
        self.reactions = reaction_manager
        self.resources = resource_manager
        self.ui = ui_manager
        self._all_dpids = all_dpids

    # -- 1. RequestFeatures(q) ------------------------------------------------

    def request_features(self, query: Query) -> List[Dict[str, Any]]:
        """``RequestFeatures(q)`` — retrieve stored Athena features.

        Table II, row 1.  ``q`` is a feature-constraint
        :class:`~repro.core.query.Query` (Table III); matching feature
        documents come back from the distributed feature store via the
        Feature Manager, with the query's sort/aggregation/limit clauses
        already applied.
        """
        return self.features.request_features(query)

    # -- 2. ManageMonitor(q, o) --------------------------------------------------

    def manage_monitor(self, query: Optional[Query], operation: bool) -> None:
        """``ManageMonitor(q, o)`` — switch feature monitoring on or off.

        Table II, row 2.  ``o`` is the monitoring operation flag (Table
        III's *o*): ``True`` enables feature generation, ``False``
        disables it.  With ``q`` of ``None`` the flag applies
        network-wide; otherwise it applies to the switches named by the
        query's ``switch_id == N`` constraints, leaving the rest of the
        network untouched.
        """
        switch_ids = _collect_switch_ids(query._root) if query is not None else []
        if not switch_ids:
            self.resources.set_monitoring(operation)
            return
        every = set(self._all_dpids())
        if operation:
            self.resources.set_monitored_switches(None)
        else:
            self.resources.set_monitored_switches(every - set(switch_ids))

    # -- 3. GenerateDetectionModel(q, f, a) ------------------------------------------

    def generate_detection_model(
        self,
        query: Query,
        preprocessor: Preprocessor,
        algorithm: Algorithm,
        documents: Optional[List[Dict[str, Any]]] = None,
        backend: Optional[str] = None,
    ) -> DetectionModel:
        """``GenerateDetectionModel(q, f, a)`` — train an anomaly model.

        Table II, row 3.  Features matching ``q`` are shaped by the
        preprocessor ``f`` (weighting / sampling / normalization /
        marking, Table III) and fitted with algorithm ``a``; the Detector
        Manager auto-configures the pipeline from the algorithm's
        category.  Large datasets train on the compute cluster —
        ``backend`` selects the execution backend for this detection task
        (``"serial"``/``"process"``, ``None`` = cluster default).
        Returns the generated :class:`DetectionModel` (Table III's *m*).
        """
        return self.detector.generate_detection_model(
            query, preprocessor, algorithm, documents=documents, backend=backend
        )

    # -- 4. ValidateFeatures(q, f, m) ---------------------------------------------------

    def validate_features(
        self,
        query: Query,
        preprocessor: Preprocessor,
        model: DetectionModel,
        documents: Optional[List[Dict[str, Any]]] = None,
        backend: Optional[str] = None,
    ) -> ValidationSummary:
        """``ValidateFeatures(q, f, m)`` — test features against a model.

        Table II, row 4.  Features matching ``q`` are transformed by the
        model's fitted preprocessor (``f`` contributes marking when the
        fitted one lacks it) and classified by detection model ``m``;
        large validations run on the compute cluster (``backend`` selects
        this task's execution backend).  Returns the Figure 6
        :class:`ValidationSummary` (Table III's *r'*).
        """
        return self.detector.validate_features(
            query, preprocessor, model, documents=documents, backend=backend
        )

    # -- 5. AddEventHandler(q) ---------------------------------------------------------

    def add_event_handler(self, query: Query, handler: Callable) -> int:
        """``AddEventHandler(q)`` — subscribe to live feature delivery.

        Table II, row 5.  Registers ``handler`` (Table III's *e*) in the
        Feature Manager's event delivery table; every incoming feature
        matching ``q`` is delivered to it as it is generated.  Returns a
        handler id for :meth:`remove_event_handler`.
        """
        return self.features.add_event_handler(query, handler)

    def remove_event_handler(self, handler_id: int) -> bool:
        return self.features.remove_event_handler(handler_id)

    # -- 6. AddOnlineValidator(f, m, e) ----------------------------------------------------

    def add_online_validator(
        self,
        preprocessor: Preprocessor,
        model: DetectionModel,
        event_handler: Callable[[Any, bool], None],
        query: Optional[Query] = None,
    ) -> int:
        """``AddOnlineValidator(f, m, e)`` — validate live features online.

        Table II, row 6.  Each incoming feature is transformed by the
        fitted preprocessor ``f`` and examined against detection model
        ``m``; ``event_handler`` (Table III's *e*) receives
        ``(feature, verdict)`` per validation.  ``query`` narrows which
        live features are validated (default: all).  Returns the
        validator id used by ``validator_stats``.
        """
        if model.preprocessor is None and preprocessor is None:
            raise AthenaError("online validation needs a fitted preprocessor")
        validator_id = self.detector.add_online_validator(model, event_handler)
        self.features.add_event_handler(
            query or Query(),
            lambda feature: self.detector.validate_one(validator_id, feature),
        )
        return validator_id

    # -- 7. Reactor(q, r) -----------------------------------------------------------------

    def reactor(self, query: Optional[Query], reaction: Reaction) -> int:
        """``Reactor(q, r)`` — enforce a mitigation on the data plane.

        Table II, row 7.  ``r`` is the :class:`Reaction` (Table III) —
        Block or Quarantine — enforced through the owning instance's
        Attack Reactor as flow rules; ``q`` scopes which hosts/switches
        the reaction applies to.  Returns the number of rules issued.
        """
        return self.reactions.enforce(reaction, query=query)

    # -- 8. ShowResults(r') ------------------------------------------------------------------

    def show_results(self, results: Any) -> str:
        """``ShowResults(r')`` — render results to the operator.

        Table II, row 8.  ``r'`` is any result object (a Figure 6
        :class:`ValidationSummary`, a Figure 9 series, an alert) handed to
        the UI Manager for terminal rendering; returns the rendered text.
        """
        return self.ui.show(results)

    # Paper-style aliases, so application code reads like the pseudocode.
    RequestFeatures = request_features
    ManageMonitor = manage_monitor
    GenerateDetectionModel = generate_detection_model
    ValidateFeatures = validate_features
    AddEventHandler = add_event_handler
    AddOnlineValidator = add_online_validator
    Reactor = reactor
    ShowResults = show_results
