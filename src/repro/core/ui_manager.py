"""The UI Manager (Figure 3, component 2E).

A terminal-rendering stand-in for the paper's JFreeChart GUI: validation
summaries render in the Figure 6 text layout, grouped time series render as
ASCII charts (the Figure 9 view), and alerts accumulate in an operator log.
``ShowResults`` routes through here.
"""

from __future__ import annotations

import sys
from collections import defaultdict
from typing import Any, Dict, List, Optional, Sequence, TextIO

from repro.core.results import ValidationSummary


class UIManager:
    """Operator-facing result rendering and alert log.

    Output goes to an injectable ``stream`` (any text file object), so
    tests and the lint reporters capture renderings deterministically;
    without one, ``echo=True`` mirrors to the current stdout.
    """

    def __init__(self, echo: bool = False, stream: Optional[TextIO] = None) -> None:
        #: When True, rendered output is also emitted (to ``stream`` or stdout).
        self.echo = echo
        #: Destination for emitted output; providing one implies emission.
        self.stream = stream
        self.alerts: List[Dict[str, Any]] = []
        self.rendered: List[str] = []

    def _emit(self, text: str) -> None:
        out = self.stream if self.stream is not None else sys.stdout
        print(text, file=out)

    def _record(self, text: str) -> str:
        self.rendered.append(text)
        if self.echo or self.stream is not None:
            self._emit(text)
        return text

    def show(self, results: Any) -> str:
        """Render any supported result object (ShowResults)."""
        if isinstance(results, ValidationSummary):
            return self._record(results.render())
        if isinstance(results, str):
            return self._record(results)
        if isinstance(results, dict):
            lines = [f"{key}: {value}" for key, value in results.items()]
            return self._record("\n".join(lines))
        if isinstance(results, Sequence):
            return self._record("\n".join(str(row) for row in results))
        return self._record(str(results))

    def alert(self, source: str, message: str, severity: str = "warning") -> None:
        """Record an operator alert (the NAE monitor's SLA violations)."""
        entry = {"source": source, "message": message, "severity": severity}
        self.alerts.append(entry)
        if self.echo or self.stream is not None:
            self._emit(f"[{severity.upper()}] {source}: {message}")

    def show_timeseries(
        self,
        rows: List[Dict[str, Any]],
        time_field: str = "timestamp",
        value_field: str = "value",
        group_field: Optional[str] = None,
        width: int = 60,
        height: int = 12,
    ) -> str:
        """ASCII chart of grouped time series (the Figure 9 rendering).

        Each group gets its own glyph; points are bucketed into ``width``
        time columns and ``height`` value rows.
        """
        if not rows:
            return self._record("(no data)")
        times = [float(r[time_field]) for r in rows]
        values = [float(r[value_field]) for r in rows]
        t_min, t_max = min(times), max(times)
        v_min, v_max = min(values), max(values)
        t_span = (t_max - t_min) or 1.0
        v_span = (v_max - v_min) or 1.0
        groups: Dict[Any, List[tuple]] = defaultdict(list)
        for row in rows:
            key = row.get(group_field, "series") if group_field else "series"
            groups[key].append((float(row[time_field]), float(row[value_field])))
        glyphs = "ox+*#@%&"
        canvas = [[" "] * width for _ in range(height)]
        legend = []
        for idx, (key, points) in enumerate(sorted(groups.items(), key=lambda kv: str(kv[0]))):
            glyph = glyphs[idx % len(glyphs)]
            legend.append(f"{glyph} = {key}")
            for t, v in points:
                col = min(width - 1, int((t - t_min) / t_span * (width - 1)))
                row_ = min(height - 1, int((v - v_min) / v_span * (height - 1)))
                canvas[height - 1 - row_][col] = glyph
        lines = [f"{v_max:>12.1f} +" + "".join(canvas[0])]
        for canvas_row in canvas[1:-1]:
            lines.append(" " * 13 + "|" + "".join(canvas_row))
        lines.append(f"{v_min:>12.1f} +" + "".join(canvas[-1]))
        lines.append(" " * 14 + f"t=[{t_min:.1f}, {t_max:.1f}]  " + "  ".join(legend))
        return self._record("\n".join(lines))

    def show_metrics(self, snapshot: Dict[str, Any]) -> str:
        """Aligned summary table of a telemetry snapshot."""
        from repro.telemetry import summary_rows

        rows = summary_rows(snapshot)
        if not rows:
            return self._record("(no metrics; telemetry is disabled)")
        name_width = max(len(r["metric"]) for r in rows)
        label_width = max(len(r["labels"]) for r in rows)
        lines = [
            f"{'metric':<{name_width}}  {'labels':<{label_width}}  value",
            "-" * (name_width + label_width + 9),
        ]
        for row in rows:
            lines.append(
                f"{row['metric']:<{name_width}}  "
                f"{row['labels']:<{label_width}}  {row['value']}"
            )
        return self._record("\n".join(lines))

    def last_output(self) -> Optional[str]:
        return self.rendered[-1] if self.rendered else None
