"""The Athena Southbound element (Figure 3, components 1A-1D).

One :class:`SouthboundElement` attaches to each controller instance:

* :class:`AthenaProxy` (within 1A) — the small controller-side stub through
  which Athena issues flow rules and statistics requests, so the controller
  updates its internal state consistently; statistics requests get their
  XIDs marked so replies are attributed to Athena's polling;
* the SB Interface (1A) — subscribes the instance's message taps and event
  bus and routes everything into the Feature Generator (1B);
* :class:`AttackDetector` (1C) — executes training/validation jobs, on a
  single instance for small datasets or on the compute cluster otherwise;
* :class:`AttackReactor` (1D) — translates Block/Quarantine requests into
  flow rules issued through the proxy.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.chaos.retry import RetryPolicy
from repro.compute import ComputeCluster, PartitionedDataset
from repro.controller.events import FlowRemovedEvent, PacketInEvent, StatsEvent
from repro.controller.instance import ControllerInstance
from repro.core.generator import FeatureGenerator
from repro.errors import ControllerError, ReactionError
from repro.ml.base import Estimator
from repro.openflow.actions import ActionDrop, ActionOutput, ActionSetIpDst
from repro.openflow.match import Match
from repro.openflow.messages import (
    AggregateStatsRequest,
    FlowStatsRequest,
    PortStatsRequest,
    TableStatsRequest,
)
from repro.telemetry import get_telemetry

#: App id attached to every rule Athena itself installs.
ATHENA_APP_ID = "athena"


class AthenaProxy:
    """The controller-side code stub Athena drives the network through."""

    def __init__(self, instance: ControllerInstance, flow_rules) -> None:
        self._instance = instance
        self._flow_rules = flow_rules
        self.rules_issued = 0
        self.stats_requests_issued = 0
        registry = get_telemetry().registry
        self._metric_rules = registry.counter(
            "athena_southbound_rules_issued_total",
            "Flow rules installed through the Athena proxy.",
        )
        self._metric_stats_requests = registry.counter(
            "athena_southbound_stats_requests_total",
            "Athena-marked statistics polling rounds issued.",
        )

    def issue_flow_rule(
        self,
        dpid: int,
        match: Match,
        actions,
        priority: int,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
    ) -> None:
        """Install a rule through the FlowRule subsystem (state-consistent)."""
        self._flow_rules.install(
            dpid,
            match,
            list(actions),
            priority=priority,
            app_id=ATHENA_APP_ID,
            idle_timeout=idle_timeout,
            hard_timeout=hard_timeout,
            now=self._instance.sim.now,
        )
        self.rules_issued += 1
        self._metric_rules.inc()

    def remove_flow_rule(self, dpid: int, match: Match, priority: int) -> int:
        return self._flow_rules.remove(dpid, match, priority, app_id=ATHENA_APP_ID)

    def issue_stats_requests(
        self, dpid: int, include_switch_scope: bool = True
    ) -> List[int]:
        """Poll one switch with Athena-marked XIDs.

        Flow and port statistics always; aggregate and table statistics
        (the switch-scope feature sources) unless the Resource Manager has
        dialled fidelity down via ``include_switch_scope``.
        """
        requests = [FlowStatsRequest(match=Match()), PortStatsRequest()]
        if include_switch_scope:
            requests.append(AggregateStatsRequest(match=Match()))
            requests.append(TableStatsRequest())
        xids = []
        for request in requests:
            self._instance.mark_athena_xid(request.xid)
            xids.append(request.xid)
            self._instance.send(dpid, request)
        self.stats_requests_issued += 1
        self._metric_stats_requests.inc()
        return xids


class AttackDetector:
    """Job execution: single-instance for small data, distributed otherwise.

    ``backend`` is this detector's default execution backend for
    distributed jobs (``None`` defers to the compute cluster's own
    default); every job method also accepts a per-task override, which is
    what the northbound API's per-detection-task backend selection
    resolves to.
    """

    def __init__(
        self,
        compute: Optional[ComputeCluster] = None,
        distributed_threshold: int = 50_000,
        partitions_per_worker: int = 2,
        backend=None,
    ) -> None:
        self.compute = compute
        self.distributed_threshold = distributed_threshold
        self.partitions_per_worker = partitions_per_worker
        self.backend = backend
        self.jobs_local = 0
        self.jobs_distributed = 0
        jobs = get_telemetry().registry.counter(
            "athena_detector_jobs_total",
            "Detection jobs executed, by execution mode.",
            labelnames=("mode",),
        )
        self._metric_jobs_local = jobs.labels(mode="local")
        self._metric_jobs_distributed = jobs.labels(mode="distributed")

    def _should_distribute(self, n_rows: int) -> bool:
        return self.compute is not None and n_rows >= self.distributed_threshold

    def _partitions(self) -> int:
        return max(1, self.compute.n_workers * self.partitions_per_worker)

    def _backend(self, backend):
        return backend if backend is not None else self.backend

    def run_training(
        self,
        estimator: Estimator,
        matrix: np.ndarray,
        labels: Optional[np.ndarray],
        algorithm,
        backend=None,
    ):
        """Fit ``estimator``; returns a JobReport when run distributed.

        Any estimator exposing ``fit_distributed(compute, dataset,
        backend=...)`` (K-Means, Gaussian naive Bayes) trains on the
        compute cluster once the dataset crosses the distribution
        threshold; everything else fits in-process.
        """
        if self._should_distribute(matrix.shape[0]) and hasattr(
            estimator, "fit_distributed"
        ):
            dataset = PartitionedDataset.from_matrix(
                matrix, self._partitions(), labels=labels
            )
            estimator.fit_distributed(
                self.compute, dataset, backend=self._backend(backend)
            )
            self.jobs_distributed += 1
            self._metric_jobs_distributed.inc()
            return estimator.last_job_report
        estimator.fit(matrix, labels)
        self.jobs_local += 1
        self._metric_jobs_local.inc()
        return None

    def run_validation(
        self, estimator: Estimator, matrix: np.ndarray, backend=None
    ) -> Tuple[np.ndarray, object]:
        """Predict over ``matrix``; distributed when the dataset is large."""
        if not self._should_distribute(matrix.shape[0]):
            self.jobs_local += 1
            self._metric_jobs_local.inc()
            return estimator.predict(matrix), None
        dataset = PartitionedDataset.from_matrix(matrix, self._partitions())
        report = self.compute.run_map(
            dataset,
            map_fn=estimator.predict,
            reduce_fn=lambda partials: np.concatenate(partials),
            backend=self._backend(backend),
        )
        self.jobs_distributed += 1
        self._metric_jobs_distributed.inc()
        return report.result, report


class AttackReactor:
    """Mitigation enforcement through the Athena Proxy (1D)."""

    def __init__(self, proxy: AthenaProxy, owned_dpids, mac_resolver=None) -> None:
        self._proxy = proxy
        self._owned_dpids = owned_dpids
        #: Optional ip -> mac lookup so quarantine rewrites L2 and L3
        #: consistently (set by the deployment from the host service).
        self._mac_resolver = mac_resolver
        self.blocks_installed = 0
        self.quarantines_installed = 0
        registry = get_telemetry().registry
        self._metric_blocks = registry.counter(
            "athena_reaction_blocks_total",
            "Block rules installed by the attack reactor.",
        )
        self._metric_quarantines = registry.counter(
            "athena_reaction_quarantines_total",
            "Quarantine rules installed by the attack reactor.",
        )

    def _require_owned(self, dpid: int) -> None:
        if dpid not in self._owned_dpids():
            raise ReactionError(f"switch {dpid} is not managed by this instance")

    def block(self, ip_src: str, dpid: Optional[int] = None, priority: int = 1000) -> int:
        """Drop all traffic from ``ip_src`` (on one switch or all owned)."""
        dpids = [dpid] if dpid is not None else self._owned_dpids()
        for target in dpids:
            self._require_owned(target)
            self._proxy.issue_flow_rule(
                target,
                Match(eth_type=0x0800, ip_src=ip_src),
                [ActionDrop()],
                priority=priority,
            )
            self.blocks_installed += 1
            self._metric_blocks.inc()
        return len(dpids)

    def quarantine(
        self,
        ip_src: str,
        honeypot_ip: str,
        dpid: Optional[int] = None,
        priority: int = 1000,
        honeypot_port: Optional[int] = None,
    ) -> int:
        """Redirect ``ip_src`` traffic to the honeynet destination."""
        dpids = [dpid] if dpid is not None else self._owned_dpids()
        for target in dpids:
            self._require_owned(target)
            actions = [ActionSetIpDst(ip=honeypot_ip)]
            honeypot_mac = (
                self._mac_resolver(honeypot_ip) if self._mac_resolver else None
            )
            if honeypot_mac is not None:
                from repro.openflow.actions import ActionSetEthDst

                actions.append(ActionSetEthDst(mac=honeypot_mac))
            if honeypot_port is not None:
                actions.append(ActionOutput(port=honeypot_port))
            else:
                # Rewritten packets re-enter forwarding via the controller.
                from repro.openflow.actions import ActionController

                actions.append(ActionController())
            self._proxy.issue_flow_rule(
                target,
                Match(eth_type=0x0800, ip_src=ip_src),
                actions,
                priority=priority,
            )
            self.quarantines_installed += 1
            self._metric_quarantines.inc()
        return len(dpids)

    def undo(self, ip_src: str) -> int:
        """Withdraw mitigation rules previously installed for ``ip_src``."""
        removed = 0
        for dpid in self._owned_dpids():
            removed += self._proxy.remove_flow_rule(
                dpid, Match(eth_type=0x0800, ip_src=ip_src), 1000
            )
        return removed


class SouthboundElement:
    """Wiring of components 1A-1D onto one controller instance."""

    def __init__(
        self,
        instance: ControllerInstance,
        flow_rules,
        generator: FeatureGenerator,
        compute: Optional[ComputeCluster] = None,
        distributed_threshold: int = 50_000,
        mac_resolver=None,
        poll_retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.instance = instance
        self.generator = generator
        self.proxy = AthenaProxy(instance, flow_rules)
        self.detector = AttackDetector(compute, distributed_threshold)
        self.reactor = AttackReactor(
            self.proxy, instance.owned_dpids, mac_resolver=mac_resolver
        )
        self._attached = False
        self.poll_retry_policy = poll_retry_policy or RetryPolicy(
            max_attempts=3, base_delay=0.25, max_delay=1.0
        )
        self.polls_retried = 0
        self.polls_skipped = 0
        registry = get_telemetry().registry
        self._metric_table_entries = registry.gauge(
            "athena_dataplane_flow_table_entries",
            "Flow-table occupancy per switch at the last Athena poll.",
            labelnames=("switch",),
        )
        self._metric_polls_retried = registry.counter(
            "athena_southbound_polls_retried_total",
            "Per-switch stats polls re-armed after a controller error.",
        )
        self._metric_polls_skipped = registry.counter(
            "athena_southbound_polls_skipped_total",
            "Per-switch stats polls abandoned (mastership moved or budget "
            "exhausted).",
        )

    def attach(self) -> None:
        """Subscribe the SB interface to the instance's taps and events."""
        if self._attached:
            return
        self._attached = True
        self.instance.add_message_tap(self.generator.on_message_tap)
        self.instance.bus.subscribe(StatsEvent, self._on_stats)
        self.instance.bus.subscribe(FlowRemovedEvent, self.generator.on_flow_removed)
        self.instance.bus.subscribe(PacketInEvent, self.generator.on_packet_in)

    def detach(self) -> None:
        if not self._attached:
            return
        self._attached = False
        self.instance.remove_message_tap(self.generator.on_message_tap)
        self.instance.bus.unsubscribe(StatsEvent, self._on_stats)
        self.instance.bus.unsubscribe(
            FlowRemovedEvent, self.generator.on_flow_removed
        )
        self.instance.bus.unsubscribe(PacketInEvent, self.generator.on_packet_in)

    def _on_stats(self, event: StatsEvent) -> None:
        # Variation features are computed over Athena-marked samples only;
        # the controller's own background polls still update raw counters.
        if event.athena_marked:
            self.generator.on_stats_event(event)

    def poll_now(self) -> None:
        """One Athena-marked statistics round over the owned switches."""
        from repro.core.feature_format import FeatureScope

        include_switch = FeatureScope.SWITCH in self.generator.enabled_scopes
        for dpid in self.instance.owned_dpids():
            self._poll_one(dpid, include_switch, attempt=1)

    def _poll_one(self, dpid: int, include_switch: bool, attempt: int) -> None:
        """Poll one switch; on controller errors retry with sim-clock
        backoff, skipping once the budget runs out or mastership moves."""
        if dpid not in self.instance.switches:
            # Mastership moved since this poll (or its retry) was armed.
            self.polls_skipped += 1
            self._metric_polls_skipped.inc()
            return
        try:
            self.proxy.issue_stats_requests(
                dpid, include_switch_scope=include_switch
            )
        except ControllerError:
            if attempt >= self.poll_retry_policy.max_attempts:
                self.polls_skipped += 1
                self._metric_polls_skipped.inc()
                return
            self.polls_retried += 1
            self._metric_polls_retried.inc()
            self.instance.sim.after(
                self.poll_retry_policy.delay_for(attempt),
                lambda: self._poll_one(dpid, include_switch, attempt + 1),
            )
            return
        switch = self.instance.switches.get(dpid)
        if switch is not None:
            self._metric_table_entries.labels(switch=switch.name).set(
                switch.flow_count()
            )
