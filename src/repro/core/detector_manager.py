"""The Detector Manager (Figure 3, component 2B).

Orchestrates detection tasks with transparency to algorithm details: the
operator describes an :class:`~repro.core.algorithm.Algorithm` and the
manager auto-configures the pipeline from its category — clustering needs
marks for cluster labelling, classification/boosting/regression need labels
for training, 'simple' exports a pre-defined model without a learning phase.

Model generation and large-scale validation execute on the compute cluster
through an instance's Attack Detector (which decides single vs distributed
execution by dataset size); results come back as
:class:`~repro.core.results.ValidationSummary`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.core.algorithm import Algorithm
from repro.core.feature_manager import FeatureManager
from repro.core.preprocessor import Preprocessor
from repro.core.query import Query
from repro.core.results import ClusterReport, ValidationSummary
from repro.distdb.frame import FeatureFrame
from repro.errors import AthenaError, DatabaseError
from repro.ml.base import ClusteringModel, Estimator
from repro.perf import columnar as _columnar
from repro.telemetry import Stopwatch, get_telemetry

Document = Dict[str, Any]


@dataclass
class DetectionModel:
    """A generated detection model: fitted estimator + fitted preprocessor."""

    algorithm: Algorithm
    estimator: Estimator
    preprocessor: Preprocessor
    trained_entries: int = 0
    training_seconds: float = 0.0
    job_report: Any = None

    def describe(self) -> str:
        return str(self.algorithm)


@dataclass
class _OnlineValidator:
    """One registered online validator (AddOnlineValidator)."""

    validator_id: int
    model: DetectionModel
    handler: Callable[[Any, bool], None]
    validated: int = 0
    alerts: int = 0


class DetectorManager:
    """ML orchestration over the feature store and compute cluster."""

    def __init__(
        self,
        feature_manager: FeatureManager,
        attack_detector,
    ) -> None:
        self.feature_manager = feature_manager
        self.attack_detector = attack_detector
        self._online_validators: List[_OnlineValidator] = []
        self._validator_ids = 0
        self.models_generated = 0
        self.validations_run = 0
        #: Poll rounds skipped because the feature store was unreachable
        #: or returned nothing (graceful degradation, not failure).
        self.degraded_rounds = 0
        #: Times a poll round succeeded right after a degraded streak.
        self.rounds_recovered = 0
        self._degraded_streak = 0
        #: JobReport of the most recent distributed validation (None when
        #: the last validation ran on a single instance).
        self.last_job_report = None
        self._telemetry = get_telemetry()
        registry = self._telemetry.registry
        self._metric_models = registry.counter(
            "athena_detector_models_total",
            "Detection models generated.",
        )
        self._metric_validations = registry.counter(
            "athena_detector_validations_total",
            "Batch validations run.",
        )
        self._metric_training_seconds = registry.histogram(
            "athena_detector_training_seconds",
            "Wall seconds per model generation.",
        )
        self._metric_validation_seconds = registry.histogram(
            "athena_detector_validation_seconds",
            "Wall seconds per batch validation.",
        )
        degraded = registry.counter(
            "athena_detector_degraded_rounds_total",
            "Poll rounds skipped-and-flagged instead of failing, by reason.",
            labelnames=("reason",),
        )
        self._metric_degraded_db = degraded.labels(reason="database")
        self._metric_degraded_empty = degraded.labels(reason="no_features")
        self._metric_recovered = registry.counter(
            "athena_detector_recovered_total",
            "Successful poll rounds immediately following a degraded streak.",
        )

    # -- model generation ------------------------------------------------------

    def _fetch_training_data(self, query: Query):
        """Documents or — under ``ATHENA_COLUMNAR`` — a feature frame.

        Aggregation queries have no frame shape and always take the
        document path; both paths feed the same downstream bytes
        (docs/PERF.md equivalence contract).
        """
        if _columnar.ENABLED and query.to_db_pipeline() is None:
            return self.feature_manager.request_frame(query)
        return self.feature_manager.request_features(query)

    def generate_detection_model(
        self,
        query: Query,
        preprocessor: Preprocessor,
        algorithm: Algorithm,
        documents: Optional[List[Document]] = None,
        backend: Optional[str] = None,
    ) -> DetectionModel:
        """GenerateDetectionModel(q, f, a).

        ``documents`` short-circuits the feature fetch when the caller
        already holds the training documents (bench replay path).
        ``backend`` selects the compute execution backend for this
        detection task's distributed training job (``"serial"`` /
        ``"process"``; ``None`` keeps the cluster default).
        """
        watch = Stopwatch()
        with self._telemetry.span("detector.generate_model"):
            if documents is None:
                documents = self._fetch_training_data(query)
            if not documents:
                raise AthenaError("no features matched the training query")
            if isinstance(documents, FeatureFrame):
                matrix, marks, _frame = preprocessor.fit_transform_frame(documents)
            else:
                matrix, marks, _docs = preprocessor.fit_transform(documents)
            estimator = algorithm.instantiate()
            job_report = None
            if not algorithm.has_learning_phase:
                # Simple algorithms export a pre-defined model (threshold may
                # still calibrate a bound when none was configured).
                estimator.fit(matrix, marks)
            elif algorithm.needs_labels:
                if marks is None:
                    raise AthenaError(
                        f"{algorithm.name} needs labels; configure Marking in the preprocessor"
                    )
                job_report = self.attack_detector.run_training(
                    estimator, matrix, marks, algorithm, backend=backend
                )
            else:
                job_report = self.attack_detector.run_training(
                    estimator, matrix, None, algorithm, backend=backend
                )
                if algorithm.needs_marks:
                    if marks is None:
                        raise AthenaError(
                            f"{algorithm.name} needs Marking to label clusters"
                        )
                    estimator.label_clusters(matrix, marks)
            self.models_generated += 1
            self._metric_models.inc()
            elapsed = watch.elapsed()
            self._metric_training_seconds.observe(elapsed)
            return DetectionModel(
                algorithm=algorithm,
                estimator=estimator,
                preprocessor=preprocessor,
                trained_entries=matrix.shape[0],
                training_seconds=elapsed,
                job_report=job_report,
            )

    # -- batch validation ------------------------------------------------------

    def validate_features(
        self,
        query: Query,
        preprocessor: Preprocessor,
        model: DetectionModel,
        documents: Optional[List[Document]] = None,
        backend: Optional[str] = None,
    ) -> ValidationSummary:
        """ValidateFeatures(q, f, m) → testing summary (Figure 6).

        ``backend`` selects the compute execution backend for this
        validation task when it runs distributed (``None`` = cluster
        default).
        """
        watch = Stopwatch()
        with self._telemetry.span("detector.validate"):
            if documents is None:
                documents = self._fetch_training_data(query)
            if not documents:
                raise AthenaError("no features matched the validation query")
            # The model's *fitted* preprocessor guarantees train/test consistency;
            # the passed preprocessor contributes marking if the fitted one lacks it.
            active = model.preprocessor
            if active.marking is None and preprocessor is not None:
                active.marking = preprocessor.marking
            if isinstance(documents, FeatureFrame):
                matrix, marks, kept = active.transform_frame(documents)
                docs = kept.documents()
            else:
                matrix, marks, docs = active.transform(documents)
            predictions, job_report = self.attack_detector.run_validation(
                model.estimator, matrix, backend=backend
            )
            summary = self._summarise(model, matrix, marks, docs, predictions)
            summary.elapsed_seconds = watch.elapsed()
            if job_report is not None:
                summary.elapsed_seconds = max(
                    summary.elapsed_seconds, job_report.makespan_seconds
                )
            self.validations_run += 1
            self._metric_validations.inc()
            self._metric_validation_seconds.observe(summary.elapsed_seconds)
            self.last_job_report = job_report
            return summary

    def poll_round(
        self,
        query: Query,
        preprocessor: Preprocessor,
        model: DetectionModel,
        backend: Optional[str] = None,
    ) -> Optional[ValidationSummary]:
        """One periodic detection round with graceful degradation.

        Unlike :meth:`validate_features`, a round that cannot reach the
        feature store (``DatabaseError``) or finds nothing to validate is
        *skipped and flagged* — counted in
        ``athena_detector_degraded_rounds_total`` and returned as ``None``
        — instead of raising into the scheduler.  The first successful
        round after a degraded streak bumps
        ``athena_detector_recovered_total``.
        """
        try:
            documents = self._fetch_training_data(query)
        except DatabaseError:
            self._flag_degraded(self._metric_degraded_db)
            return None
        if not documents:
            self._flag_degraded(self._metric_degraded_empty)
            return None
        summary = self.validate_features(
            query, preprocessor, model, documents=documents, backend=backend
        )
        if self._degraded_streak:
            self._degraded_streak = 0
            self.rounds_recovered += 1
            self._metric_recovered.inc()
        return summary

    def _flag_degraded(self, metric) -> None:
        self.degraded_rounds += 1
        self._degraded_streak += 1
        metric.inc()

    def _summarise(
        self,
        model: DetectionModel,
        matrix: np.ndarray,
        marks: Optional[np.ndarray],
        docs: List[Document],
        predictions: np.ndarray,
    ) -> ValidationSummary:
        predictions = np.asarray(predictions).ravel()
        if marks is None:
            marks = np.zeros(len(predictions))
        malicious = marks == 1
        positive = predictions == 1
        benign_flows: set = set()
        malicious_flows: set = set()
        for doc, is_malicious in zip(docs, malicious):
            key = (
                doc.get("ip_src"),
                doc.get("ip_dst"),
                doc.get("ip_proto"),
                doc.get("tcp_src"),
                doc.get("tcp_dst"),
            )
            (malicious_flows if is_malicious else benign_flows).add(key)
        summary = ValidationSummary(
            total_entries=len(predictions),
            benign_entries=int((~malicious).sum()),
            malicious_entries=int(malicious.sum()),
            true_positives=int((malicious & positive).sum()),
            false_positives=int((~malicious & positive).sum()),
            true_negatives=int((~malicious & ~positive).sum()),
            false_negatives=int((malicious & ~positive).sum()),
            unique_benign_flows=len(benign_flows),
            unique_malicious_flows=len(malicious_flows),
            algorithm_description=model.algorithm.name,
            predictions=predictions,
        )
        estimator = model.estimator
        if isinstance(estimator, ClusteringModel):
            params = model.algorithm.params
            summary.cluster_info = ", ".join(
                f"{key}({value})" for key, value in sorted(params.items())
            )
            composition = estimator.cluster_composition(matrix, marks)
            labelled = estimator.cluster_is_malicious or {}
            summary.clusters = [
                ClusterReport(
                    cluster_id=cluster_id,
                    benign_entries=counts["benign"],
                    malicious_entries=counts["malicious"],
                    is_malicious=labelled.get(cluster_id, False),
                )
                for cluster_id, counts in sorted(composition.items())
            ]
        return summary

    # -- online validation -------------------------------------------------------

    def add_online_validator(
        self,
        model: DetectionModel,
        handler: Callable[[Any, bool], None],
    ) -> int:
        """Register a model for per-feature live validation."""
        self._validator_ids += 1
        self._online_validators.append(
            _OnlineValidator(self._validator_ids, model, handler)
        )
        return self._validator_ids

    def validate_one(self, validator_id: int, feature) -> bool:
        """Validate one incoming feature against a registered validator."""
        validator = self._find_validator(validator_id)
        row = validator.model.preprocessor.transform_one(feature)
        verdict = bool(validator.model.estimator.predict(row.reshape(1, -1))[0])
        validator.validated += 1
        if verdict:
            validator.alerts += 1
        validator.handler(feature, verdict)
        return verdict

    def _find_validator(self, validator_id: int) -> _OnlineValidator:
        for validator in self._online_validators:
            if validator.validator_id == validator_id:
                return validator
        raise AthenaError(f"no online validator {validator_id}")

    def validator_stats(self, validator_id: int) -> Dict[str, int]:
        validator = self._find_validator(validator_id)
        return {"validated": validator.validated, "alerts": validator.alerts}

    def online_validator_summaries(self) -> List[Dict[str, Any]]:
        """Read-only view of every registered online validator.

        The serving tier's ``/api/models`` endpoint exposes this, so the
        keys are API surface (docs/API.md).
        """
        return [
            {
                "validator_id": validator.validator_id,
                "algorithm": validator.model.algorithm.name,
                "validated": validator.validated,
                "alerts": validator.alerts,
            }
            for validator in self._online_validators
        ]
