"""The Reaction Manager (Figure 3, component 2C).

Translates declarative reactions into Attack Reactor invocations.  The
manager resolves target hosts — either given explicitly in the reaction or
discovered by running a query over stored features and collecting distinct
suspicious sources — locates each host in the data plane, and asks the
reactor of the mastering Athena instance to enforce the mitigation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.feature_manager import FeatureManager
from repro.core.query import Query
from repro.core.reactions import BlockReaction, QuarantineReaction, Reaction
from repro.errors import ReactionError
from repro.telemetry import get_telemetry


class ReactionManager:
    """Mitigation orchestration across the Athena instances."""

    def __init__(
        self,
        feature_manager: FeatureManager,
        reactor_lookup: Callable[[int], object],
        host_locator: Callable[[str], Optional[object]],
        all_dpids: Callable[[], List[int]],
    ) -> None:
        self.feature_manager = feature_manager
        self._reactor_lookup = reactor_lookup
        self._host_locator = host_locator
        self._all_dpids = all_dpids
        self.reactions_enforced = 0
        self.history: List[Dict] = []
        registry = get_telemetry().registry
        self._metric_enforced = registry.counter(
            "athena_reaction_enforced_total",
            "Declarative reactions enforced by the reaction manager.",
        )
        self._metric_rules = registry.counter(
            "athena_reaction_rules_total",
            "Mitigation rules issued across all enforced reactions.",
        )

    def resolve_targets(self, query: Query) -> List[str]:
        """Distinct suspicious source IPs among features matching ``query``."""
        docs = self.feature_manager.request_features(query)
        targets = []
        for doc in docs:
            ip = doc.get("ip_src")
            if ip and ip not in targets:
                targets.append(ip)
        return targets

    def enforce(self, reaction: Reaction, query: Optional[Query] = None) -> int:
        """Apply a reaction; returns the number of mitigation rules issued."""
        targets = list(reaction.target_ips)
        if query is not None:
            targets.extend(
                ip for ip in self.resolve_targets(query) if ip not in targets
            )
        if not targets:
            raise ReactionError("reaction resolved no target hosts")
        rules = 0
        for ip in targets:
            rules += self._enforce_one(reaction, ip)
        self.reactions_enforced += 1
        self._metric_enforced.inc()
        self._metric_rules.inc(rules)
        self.history.append(
            {"reaction": reaction.describe(), "targets": targets, "rules": rules}
        )
        return rules

    def _enforce_one(self, reaction: Reaction, ip: str) -> int:
        location = self._host_locator(ip)
        if isinstance(reaction, BlockReaction) and reaction.everywhere:
            dpids = self._all_dpids()
        elif location is not None:
            dpids = [location.point.dpid]
        else:
            # Unknown attachment: fall back to network-wide enforcement.
            dpids = self._all_dpids()
        rules = 0
        for dpid in dpids:
            reactor = self._reactor_lookup(dpid)
            if reactor is None:
                raise ReactionError(f"no Athena reactor covers switch {dpid}")
            # Pin the rule to this dpid: the reactor would otherwise fan
            # out to every switch it owns, duplicating rules across the
            # enforcement loop.
            if isinstance(reaction, QuarantineReaction):
                if not reaction.honeypot_ip:
                    raise ReactionError("quarantine reaction needs a honeypot_ip")
                rules += reactor.quarantine(
                    ip, reaction.honeypot_ip, dpid=dpid,
                    priority=reaction.priority,
                )
            else:
                rules += reactor.block(
                    ip, dpid=dpid, priority=reaction.priority
                )
        return rules
