"""The Feature Management Manager (Figure 3, component 2A).

The unified mechanism applications use to retrieve and receive features:

* :meth:`FeatureManager.publish` — the southbound elements push every
  generated feature here; it is stored in the distributed database (unless
  storage is disabled, the Table IX "no DB" ablation) and matched against
  the *event delivery table*;
* :meth:`FeatureManager.request_features` — translates an Athena query into
  database queries (filters or aggregation pipelines) and returns documents;
* the event delivery table — registered (query, handler) pairs evaluated
  against every live feature, feeding applications and online validators.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.chaos.retry import RetryPolicy, RetryQueue
from repro.core.feature_format import INDEX_KEYS, AthenaFeature
from repro.core.features.catalog import FEATURE_CATALOG
from repro.core.query import Query
from repro.distdb import DatabaseCluster
from repro.distdb.frame import ChunkExtractor, FeatureFrame, assemble_chunks
from repro.errors import AthenaError
from repro.telemetry import get_telemetry

FeatureHandler = Callable[[AthenaFeature], None]

#: Collection holding every published feature document.
FEATURE_COLLECTION = "athena_features"


@dataclass
class _DeliveryEntry:
    """One row of the event delivery table."""

    entry_id: int
    query: Query
    handler: FeatureHandler
    delivered: int = 0


class FeatureManager:
    """Unified feature retrieval and live delivery."""

    def __init__(
        self,
        database: DatabaseCluster,
        store_features: bool = True,
        scheduler=None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.database = database
        self.store_features = store_features
        # With a simulator scheduler, feature-store writes that hit a
        # DatabaseError are buffered and retried with backoff instead of
        # failing the publish — live delivery keeps flowing either way.
        self._retry: Optional[RetryQueue] = None
        if scheduler is not None:
            self._retry = RetryQueue(
                scheduler,
                retry_policy or RetryPolicy(),
                name="feature_writes",
            )
        self._delivery_table: List[_DeliveryEntry] = []
        self._entry_ids = itertools.count(1)
        self.features_published = 0
        self.features_delivered = 0
        registry = get_telemetry().registry
        self._metric_published = registry.counter(
            "athena_feature_published_total",
            "Features published into the feature manager.",
        )
        self._metric_delivered = registry.counter(
            "athena_feature_delivered_total",
            "Features delivered to event-table handlers.",
        )
        self._metric_requests = registry.counter(
            "athena_feature_requests_total",
            "RequestFeatures queries served.",
        )
        self._metric_request_seconds = registry.histogram(
            "athena_feature_request_seconds",
            "Wall seconds per RequestFeatures query.",
        )
        self.database.create_index(FEATURE_COLLECTION, "switch_id")
        self.database.create_index(FEATURE_COLLECTION, "feature_scope")
        self.database.create_index(FEATURE_COLLECTION, "ip_src")
        # Compound index backing the per-flow feature queries, whose
        # filters pin (feature_scope, switch_id) inside an $and.
        self.database.create_index(FEATURE_COLLECTION, "feature_scope", "switch_id")

    # -- southbound-facing ---------------------------------------------------

    def publish(self, feature: AthenaFeature) -> None:
        """Store a feature and deliver it to matching handlers.

        With a retry queue armed, a database failure buffers the write
        (retried on the sim clock, never dropped) and the feature is still
        delivered to live handlers — detection degrades gracefully rather
        than stalling on the store.
        """
        self.features_published += 1
        self._metric_published.inc()
        doc = feature.to_document()
        if self.store_features:
            if self._retry is not None:
                self._retry.submit(
                    lambda d=doc: self.database.insert_one(FEATURE_COLLECTION, d)
                )
            else:
                self.database.insert_one(FEATURE_COLLECTION, doc)
        for entry in self._delivery_table:
            if entry.query.matches(doc):
                entry.delivered += 1
                self.features_delivered += 1
                self._metric_delivered.inc()
                entry.handler(feature)

    def publish_documents(self, docs: List[Dict[str, Any]]) -> int:
        """Bulk-load pre-built feature documents (dataset replay path)."""
        if self.store_features:
            self.database.insert_many(FEATURE_COLLECTION, [dict(d) for d in docs])
        return len(docs)

    # -- application-facing ------------------------------------------------------

    @staticmethod
    def validate_query_features(query: Query) -> None:
        """Resolve every catalog-looking field the query names.

        Uppercase names are the feature namespace (lowercase names are
        index/meta fields), so a misspelled catalog name fails loudly with
        a did-you-mean suggestion instead of silently matching nothing.
        """
        for name in query.fieldnames():
            if name[:1].isalpha() and name == name.upper() and name not in INDEX_KEYS:
                FEATURE_CATALOG.resolve(name)

    def request_features(self, query: Query) -> List[Dict[str, Any]]:
        """Retrieve stored features satisfying ``query`` (RequestFeatures)."""
        self.validate_query_features(query)
        self._metric_requests.inc()
        with self._metric_request_seconds.time():
            pipeline = query.to_db_pipeline()
            if pipeline is not None:
                return self.database.aggregate(FEATURE_COLLECTION, pipeline)
            return self.database.find(
                FEATURE_COLLECTION,
                filter_=query.to_db_filter() or None,
                sort=query.sort_spec or None,
                limit=query.limit_value,
            )

    def request_frame(
        self,
        query: Query,
        columns: Optional[List[str]] = None,
        compute=None,
        backend=None,
        n_partitions: Optional[int] = None,
    ) -> FeatureFrame:
        """RequestFeatures on the columnar path: a frame, not documents.

        Compiles the query to a boolean mask over numpy columns and
        returns a :class:`~repro.distdb.frame.FeatureFrame` holding
        exactly the rows :meth:`request_features` would return, in the
        same order, as zero-copy views over the stored documents.  Pass a
        :class:`~repro.compute.cluster.ComputeCluster` as ``compute`` to
        extract shard partitions in parallel through its execution
        backends (``backend``/``n_partitions`` as for any map job).
        Aggregation queries have no frame shape and raise
        :class:`~repro.errors.AthenaError`.
        """
        self.validate_query_features(query)
        if query.to_db_pipeline() is not None:
            raise AthenaError(
                "request_frame serves filter queries; aggregation queries "
                "return reduced rows — use request_features"
            )
        self._metric_requests.inc()
        with self._metric_request_seconds.time():
            filter_ = query.to_db_filter() or None
            sort = query.sort_spec or None
            limit = query.limit_value
            frame_columns = tuple(columns) if columns is not None else None
            if compute is None or not hasattr(self.database, "shard_candidates"):
                return self.database.find_frame(
                    FEATURE_COLLECTION,
                    filter_,
                    sort=sort,
                    limit=limit,
                    columns=frame_columns,
                )
            # Parallel extraction: the shard candidate lists become map
            # partitions; workers return column arrays plus the surviving
            # row indices, and the driver (which keeps the shared document
            # references — fork-inherited, never pickled back) reassembles
            # the frame in partition order.
            from repro.compute.partition import PartitionedDataset

            partitions = self.database.shard_candidates(
                FEATURE_COLLECTION, filter_
            )
            partitions = [p for p in partitions if p] or [[]]
            if n_partitions is not None and n_partitions > len(partitions):
                rebalanced: List[List[Dict[str, Any]]] = []
                per_shard = max(1, n_partitions // len(partitions))
                for part in partitions:
                    splits = PartitionedDataset.from_records(
                        part, per_shard
                    ).partitions
                    rebalanced.extend(s for s in splits if s)
                partitions = rebalanced or [[]]
            dataset = PartitionedDataset(partitions)
            report = compute.run_map(
                dataset,
                ChunkExtractor(frame_columns, filter_),
                backend=backend,
            )
            frame = assemble_chunks(report.result, partitions)
            if sort:
                frame = frame.sort(sort)
            if limit is not None:
                frame = frame.head(limit)
            return frame

    def count_features(self, query: Optional[Query] = None) -> int:
        filter_ = query.to_db_filter() if query is not None else None
        return self.database.count(FEATURE_COLLECTION, filter_ or None)

    def add_event_handler(self, query: Query, handler: FeatureHandler) -> int:
        """Register a delivery-table entry; returns its id (AddEventHandler)."""
        if handler is None:
            raise AthenaError("event handler must be callable")
        entry = _DeliveryEntry(next(self._entry_ids), query, handler)
        self._delivery_table.append(entry)
        return entry.entry_id

    def remove_event_handler(self, entry_id: int) -> bool:
        before = len(self._delivery_table)
        self._delivery_table = [
            e for e in self._delivery_table if e.entry_id != entry_id
        ]
        return len(self._delivery_table) < before

    def delivery_table_size(self) -> int:
        return len(self._delivery_table)

    def clear_features(self) -> int:
        """Drop every stored feature (test and bench housekeeping)."""
        return self.database.delete_many(FEATURE_COLLECTION, None)

    # -- write buffering -----------------------------------------------------

    @property
    def pending_writes(self) -> int:
        """Feature-store writes buffered by the retry queue."""
        return self._retry.pending if self._retry is not None else 0

    def flush_pending(self) -> int:
        """Retry buffered writes immediately; returns commits achieved."""
        return self._retry.flush() if self._retry is not None else 0
