"""The Resource Manager (Figure 3, component 2D).

Exports the monitoring-fidelity controls: which switches are monitored,
which feature scopes and categories are generated, and how often Athena's
own statistics polling runs.  Applications call these to trade monitoring
coverage against overhead under dynamic network conditions (ManageMonitor
is implemented on top of these controls).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Set

from repro.core.feature_format import FeatureScope
from repro.core.features.catalog import FeatureCategory
from repro.errors import AthenaError


class ResourceManager:
    """Fidelity control over every Athena instance's Feature Generator."""

    def __init__(self, instances_lookup: Callable[[], List[object]]) -> None:
        self._instances = instances_lookup
        self.monitoring_enabled = True

    def _generators(self) -> List[object]:
        return [instance.generator for instance in self._instances()]

    # -- global switch ------------------------------------------------------

    def set_monitoring(self, enabled: bool) -> None:
        """Master on/off for feature generation (ManageMonitor's flag)."""
        self.monitoring_enabled = enabled
        for generator in self._generators():
            generator.enabled_scopes = set(FeatureScope) if enabled else set()

    # -- entity selection ------------------------------------------------------

    def set_monitored_switches(self, dpids: Optional[Iterable[int]]) -> None:
        """Restrict monitoring to a switch subset (None = all switches)."""
        selected: Optional[Set[int]] = None if dpids is None else set(dpids)
        for generator in self._generators():
            generator.monitored_switches = selected

    def set_scopes(self, scopes: Iterable[FeatureScope]) -> None:
        """Enable only the given feature scopes (flow/port/switch/control)."""
        selected = set(scopes)
        unknown = selected - set(FeatureScope)
        if unknown:
            raise AthenaError(f"unknown scopes: {unknown}")
        for generator in self._generators():
            generator.enabled_scopes = set(selected)

    def set_categories(self, categories: Iterable[FeatureCategory]) -> None:
        """Enable only the given Table I categories."""
        selected = set(categories)
        unknown = selected - set(FeatureCategory)
        if unknown:
            raise AthenaError(f"unknown categories: {unknown}")
        for generator in self._generators():
            generator.enabled_categories = set(selected)

    # -- polling cadence ----------------------------------------------------------

    def set_poll_interval(self, seconds: float) -> None:
        """Adjust Athena's own statistics-polling cadence on every instance."""
        if seconds <= 0:
            raise AthenaError(f"poll interval must be positive, got {seconds}")
        for instance in self._instances():
            instance.athena_poll_interval = seconds

    def current_fidelity(self) -> dict:
        """A snapshot of the fidelity knobs (first instance's view)."""
        generators = self._generators()
        if not generators:
            return {}
        generator = generators[0]
        return {
            "monitoring_enabled": self.monitoring_enabled,
            "scopes": sorted(s.value for s in generator.enabled_scopes),
            "categories": sorted(c.value for c in generator.enabled_categories),
            "monitored_switches": (
                sorted(generator.monitored_switches)
                if generator.monitored_switches is not None
                else "all"
            ),
        }
