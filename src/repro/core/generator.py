"""The Feature Generator (Figure 3, component 1B).

Consumes the control messages and events of one controller instance and
produces :class:`~repro.core.feature_format.AthenaFeature` records:

* FLOW stats replies → flow-scoped records (protocol + combination +
  stateful + variation fields), with the originating application attached
  from the FlowRule subsystem (flow-origin meta data);
* PORT stats replies → port-scoped records;
* TABLE/AGGREGATE stats replies → switch-scoped records;
* FLOW_REMOVED → final flow records and state-table eviction;
* the message tap → per-switch control-plane counters that become
  control-scoped records each sampling round.

Fidelity controls (which scopes, categories, and switches are monitored)
are mutated by the Resource Manager; the garbage collector periodically
drops stale hash-table entries.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from repro.controller.events import (
    FlowRemovedEvent,
    MessageDirection,
    PacketInEvent,
    StatsEvent,
)
from repro.core.feature_format import AthenaFeature, FeatureScope
from repro.core.features import combination, protocol
from repro.core.features.catalog import FEATURE_CATALOG, FeatureCategory
from repro.core.features.stateful import FlowStateTable
from repro.core.features.variation import VariationTracker
from repro.openflow.messages import (
    AggregateStatsReply,
    FlowStatsReply,
    OpenFlowMessage,
    PortStatsReply,
    TableStatsReply,
)
from repro.perf import sketch as _sketch
from repro.sketch.features import SketchFeatureState
from repro.telemetry import StageProfiler, get_telemetry

FeatureSink = Callable[[AthenaFeature], None]

#: Indicator keys copied from a flow match into record index fields.
_INDICATOR_KEYS = (
    "eth_src",
    "eth_dst",
    "ip_src",
    "ip_dst",
    "ip_proto",
    "tcp_src",
    "tcp_dst",
)

_TAP_COUNTER_KEYS = {
    "PACKET_IN": "packet_in",
    "PACKET_OUT": "packet_out",
    "FLOW_MOD": "flow_mod",
    "FLOW_REMOVED": "flow_removed",
    "PORT_STATUS": "port_status",
    "STATS_REQUEST": "stats_request",
    "STATS_REPLY": "stats_reply",
    "ECHO_REQUEST": "echo",
    "ECHO_REPLY": "echo",
    "BARRIER_REQUEST": "barrier",
    "BARRIER_REPLY": "barrier",
}


class FeatureGenerator:
    """Feature extraction state machine for one Athena instance."""

    def __init__(
        self,
        instance_id: int,
        sink: Optional[FeatureSink] = None,
        flow_rule_lookup: Optional[Callable] = None,
        port_speed_lookup: Optional[Callable[[int, int], float]] = None,
        stale_after: float = 60.0,
    ) -> None:
        self.instance_id = instance_id
        self.sink = sink
        self._flow_rule_lookup = flow_rule_lookup
        self._port_speed_lookup = port_speed_lookup
        self.flow_state = FlowStateTable(stale_after=stale_after)
        self.variation = VariationTracker(stale_after=2 * stale_after)
        self._control_counters: Dict[int, Dict[str, int]] = {}
        self._last_table_fields: Dict[int, Dict[str, float]] = {}
        self._last_agg_fields: Dict[int, Dict[str, float]] = {}
        # Fidelity controls (driven by the Resource Manager).
        self.enabled_scopes: Set[FeatureScope] = set(FeatureScope)
        self.enabled_categories: Set[FeatureCategory] = set(FeatureCategory)
        self.monitored_switches: Optional[Set[int]] = None  # None == all
        self.features_generated = 0
        self.records_suppressed = 0
        # Telemetry: per-scope emission counters plus per-extraction-stage
        # timings (null objects when telemetry is disabled).
        registry = get_telemetry().registry
        records = registry.counter(
            "athena_feature_records_total",
            "Feature records emitted by the generator, by scope.",
            labelnames=("scope",),
        )
        self._metric_records = {
            scope: records.labels(scope=scope.value) for scope in FeatureScope
        }
        self._profiler = StageProfiler(
            metric="athena_feature_stage_seconds", registry=registry
        )
        # Sketch path (ATHENA_SKETCH): lazily built so exact-only runs pay
        # nothing; seeded from the instance id for run-to-run determinism.
        self.sketch_state: Optional[SketchFeatureState] = None
        self._metric_sketch_fill = registry.gauge(
            "athena_sketch_fill_ratio",
            "Mean sketch fill ratio across switches, by structure.",
            labelnames=("structure",),
        )
        self._metric_sketch_error = registry.gauge(
            "athena_sketch_error_bound",
            "Worst-case sketch error bound across switches, by structure.",
            labelnames=("structure",),
        )
        # Cache for _filter_categories: names suppressed under a given
        # enabled-category set, recomputed only when the Resource Manager
        # swaps enabled_categories (it reassigns the set, so identity of
        # the frozen key is enough to detect a change).
        self._suppressed_key: Optional[frozenset] = None
        self._suppressed_names: frozenset = frozenset()

    # -- configuration ------------------------------------------------------

    def _monitoring(self, dpid: int, scope: FeatureScope) -> bool:
        if scope not in self.enabled_scopes:
            return False
        if self.monitored_switches is not None and dpid not in self.monitored_switches:
            return False
        return True

    def _emit(self, record: AthenaFeature) -> None:
        self.features_generated += 1
        self._metric_records[record.scope].inc()
        if self.sink is not None:
            self.sink(record)

    def _suppressed_under(self, enabled: Set[FeatureCategory]) -> frozenset:
        """Catalog names suppressed under ``enabled``, cached per set.

        The per-record hot loop used to re-import the catalog and look up
        every field's category on each call; the suppressed-name set only
        changes when the Resource Manager adjusts fidelity, so it is
        precomputed once per ``enabled_categories`` value.
        """
        key = frozenset(enabled)
        if key != self._suppressed_key:
            self._suppressed_key = key
            self._suppressed_names = frozenset(
                name
                for name, definition in FEATURE_CATALOG.items()
                if definition.category not in key
            )
        return self._suppressed_names

    def _filter_categories(self, fields: Dict[str, float]) -> Dict[str, float]:
        if self.enabled_categories == set(FeatureCategory):
            return fields
        suppressed = self._suppressed_under(self.enabled_categories)
        if not suppressed:
            return fields
        kept = {}
        for name, value in fields.items():
            if name in suppressed:
                self.records_suppressed += 1
            else:
                kept[name] = value
        return kept

    # -- sketch path (ATHENA_SKETCH) ----------------------------------------

    def _sketch_observe(
        self, dpid: int, indicators: Dict, packets: float, bytes_: float
    ) -> None:
        """Fold one flow observation into the sketch window (flag-gated)."""
        if not _sketch.ENABLED or not self._monitoring(dpid, FeatureScope.SKETCH):
            return
        if self.sketch_state is None:
            self.sketch_state = SketchFeatureState(seed=self.instance_id)
        src = indicators.get("ip_src") or indicators.get("eth_src") or ""
        dst_port = indicators.get("tcp_dst") or 0
        flow_key = tuple(sorted(indicators.items()))
        self.sketch_state.observe(
            dpid, flow_key, src, dst_port, packets=int(packets), bytes_=int(bytes_)
        )

    def _emit_sketch_record(self, dpid: int, now: float) -> None:
        """Roll the switch's sketch window into one sketch-scoped record."""
        if (
            not _sketch.ENABLED
            or self.sketch_state is None
            or not self._monitoring(dpid, FeatureScope.SKETCH)
            or not self.sketch_state.observations(dpid)
        ):
            return
        # Snapshot fill/error stats before the roll resets the window.
        stats = self.sketch_state.fill_stats()
        fields = self.sketch_state.roll(dpid)
        self._metric_sketch_fill.labels(structure="cms").set(stats["cms_fill_ratio"])
        self._metric_sketch_fill.labels(structure="hll").set(stats["hll_fill_ratio"])
        self._metric_sketch_fill.labels(structure="bloom").set(
            stats["bloom_fill_ratio"]
        )
        self._metric_sketch_error.labels(structure="cms").set(
            stats["cms_error_bound"]
        )
        self._metric_sketch_error.labels(structure="hll").set(
            stats["hll_relative_error"]
        )
        self._metric_sketch_error.labels(structure="bloom").set(
            stats["bloom_fp_bound"]
        )
        self._emit(
            AthenaFeature(
                scope=FeatureScope.SKETCH,
                switch_id=dpid,
                instance_id=self.instance_id,
                timestamp=now,
                fields=self._filter_categories(fields),
            )
        )

    def sketch_stats(self) -> Optional[Dict[str, float]]:
        """Aggregate sketch fill/error stats, or None while inactive."""
        if self.sketch_state is None:
            return None
        return self.sketch_state.fill_stats()

    # -- event entry points -----------------------------------------------------

    def on_stats_event(self, event: StatsEvent) -> None:
        """Handle a statistics reply from the local controller."""
        message = event.message
        if isinstance(message, FlowStatsReply):
            with self._profiler.stage("flow_stats"):
                self._on_flow_stats(event.dpid, message, event.time)
        elif isinstance(message, PortStatsReply):
            with self._profiler.stage("port_stats"):
                self._on_port_stats(event.dpid, message, event.time)
        elif isinstance(message, TableStatsReply):
            with self._profiler.stage("table_stats"):
                self._on_table_stats(event.dpid, message, event.time)
        elif isinstance(message, AggregateStatsReply):
            with self._profiler.stage("aggregate_stats"):
                self._on_aggregate_stats(event.dpid, message, event.time)

    def on_packet_in(self, event: PacketInEvent) -> None:
        """Derive a flow record from a PACKET_IN (a new-flow observation).

        This is the per-event extraction path the Cbench experiment
        stresses: every punted packet updates the stateful tables and emits
        a record (which the deployment then publishes to the database).
        """
        dpid = event.dpid
        if not self._monitoring(dpid, FeatureScope.FLOW):
            return
        with self._profiler.stage("packet_in"):
            self._on_packet_in(event, dpid)

    def _on_packet_in(self, event: PacketInEvent, dpid: int) -> None:
        indicators = self._indicators(event.message.headers)
        fields = self.flow_state.observe_flow(dpid, indicators, event.time)
        fields["FLOW_PACKET_COUNT"] = 0.0
        fields["FLOW_BYTE_COUNT"] = float(event.message.total_len)
        self._sketch_observe(dpid, indicators, 1, event.message.total_len)
        self._emit(
            AthenaFeature(
                scope=FeatureScope.FLOW,
                switch_id=dpid,
                instance_id=self.instance_id,
                timestamp=event.time,
                indicators=indicators,
                fields=self._filter_categories(fields),
            )
        )

    def on_flow_removed(self, event: FlowRemovedEvent) -> None:
        """Final sample of an evicted flow, then forget its state."""
        dpid = event.dpid
        if not self._monitoring(dpid, FeatureScope.FLOW):
            return
        with self._profiler.stage("flow_removed"):
            self._on_flow_removed(event, dpid)

    def _on_flow_removed(self, event: FlowRemovedEvent, dpid: int) -> None:
        indicators = self._indicators(event.message.match.to_dict())
        fields = protocol.removed_flow_fields(event.message)
        fields.update(combination.flow_fields(fields))
        fields.update(
            self.flow_state.observe_flow(
                dpid, indicators, event.time, fields.get("FLOW_PACKET_COUNT", 0.0)
            )
        )
        entity = (
            dpid,
            "flow",
            tuple(sorted(indicators.items())),
            event.message.priority,
            event.message.cookie,
        )
        fields.update(self.variation.diff(entity, fields, event.time))
        self.flow_state.remove_flow(dpid, indicators)
        self.variation.forget(entity)
        self._emit(
            AthenaFeature(
                scope=FeatureScope.FLOW,
                switch_id=dpid,
                instance_id=self.instance_id,
                timestamp=event.time,
                indicators=indicators,
                app_id=event.message.app_id,
                fields=self._filter_categories(fields),
            )
        )

    def on_message_tap(
        self, msg: OpenFlowMessage, direction: MessageDirection, instance_id: int
    ) -> None:
        """Count every control message crossing the instance."""
        counters = self._control_counters.setdefault(
            msg.dpid, {"bytes": 0}
        )
        key = _TAP_COUNTER_KEYS.get(msg.msg_type.name)
        if key is not None:
            counters[key] = counters.get(key, 0) + 1
        counters["bytes"] += msg.size_bytes()

    # -- per-message-type handlers ---------------------------------------------------

    @staticmethod
    def _indicators(match_dict: Dict) -> Dict:
        return {k: v for k, v in match_dict.items() if k in _INDICATOR_KEYS}

    def _on_flow_stats(self, dpid: int, reply: FlowStatsReply, now: float) -> None:
        if not self._monitoring(dpid, FeatureScope.FLOW):
            return
        for entry in reply.entries:
            indicators = self._indicators(entry.match.to_dict())
            fields = protocol.flow_fields(entry)
            port_speed = None
            if self._port_speed_lookup is not None:
                port_speed = self._port_speed_lookup(dpid, -1)
            fields.update(combination.flow_fields(fields, port_speed))
            fields.update(
                self.flow_state.observe_flow(
                    dpid, indicators, now, fields["FLOW_PACKET_COUNT"]
                )
            )
            # The entity is the *rule* (priority + cookie), not just the
            # match: distinct rules covering the same headers must not share
            # a variation baseline, and a reinstalled rule (fresh cookie)
            # restarts from zero rather than producing a negative delta.
            entity = (
                dpid,
                "flow",
                tuple(sorted(indicators.items())),
                entry.priority,
                entry.cookie,
            )
            fields.update(self.variation.diff(entity, fields, now))
            # Sketch ingestion uses the per-sample delta when the flow was
            # seen before (cumulative counters would double-count), and
            # the full count on its first sample.
            self._sketch_observe(
                dpid,
                indicators,
                fields.get("FLOW_PACKET_COUNT_VAR", fields["FLOW_PACKET_COUNT"]),
                fields.get("FLOW_BYTE_COUNT_VAR", fields["FLOW_BYTE_COUNT"]),
            )
            app_id = entry.app_id
            if app_id is None and self._flow_rule_lookup is not None:
                app_id = self._flow_rule_lookup(dpid, entry.match)
            self._emit(
                AthenaFeature(
                    scope=FeatureScope.FLOW,
                    switch_id=dpid,
                    instance_id=self.instance_id,
                    timestamp=now,
                    indicators=indicators,
                    app_id=app_id,
                    fields=self._filter_categories(fields),
                )
            )
        # One switch-scope stateful record per flow-stats round.
        if self._monitoring(dpid, FeatureScope.SWITCH):
            switch_fields = self.flow_state.switch_fields(dpid, now)
            entity = (dpid, "switch-state")
            switch_fields.update(self.variation.diff(entity, switch_fields, now))
            self._emit(
                AthenaFeature(
                    scope=FeatureScope.SWITCH,
                    switch_id=dpid,
                    instance_id=self.instance_id,
                    timestamp=now,
                    fields=self._filter_categories(switch_fields),
                )
            )
        # Sketch-scope record: the window accumulated since the last round.
        self._emit_sketch_record(dpid, now)
        # Control-plane record: counters accumulated since the last round.
        self._emit_control_record(dpid, now)

    def _on_port_stats(self, dpid: int, reply: PortStatsReply, now: float) -> None:
        if not self._monitoring(dpid, FeatureScope.PORT):
            return
        for entry in reply.entries:
            fields = protocol.port_fields(entry)
            entity = (dpid, "port", entry.port_no)
            previous = self.variation.previous_fields(entity)
            last_time = self.variation.last_sample_time(entity)
            delta_seconds = now - last_time if last_time is not None else None
            delta_bytes = None
            if previous:
                delta_bytes = (
                    fields["PORT_RX_BYTES"]
                    + fields["PORT_TX_BYTES"]
                    - previous.get("PORT_RX_BYTES", 0.0)
                    - previous.get("PORT_TX_BYTES", 0.0)
                )
            speed = None
            if self._port_speed_lookup is not None:
                speed = self._port_speed_lookup(dpid, entry.port_no)
            fields.update(
                combination.port_fields(fields, speed, delta_seconds, delta_bytes)
            )
            fields.update(self.variation.diff(entity, fields, now))
            self._emit(
                AthenaFeature(
                    scope=FeatureScope.PORT,
                    switch_id=dpid,
                    instance_id=self.instance_id,
                    timestamp=now,
                    port_no=entry.port_no,
                    fields=self._filter_categories(fields),
                )
            )

    def _on_table_stats(self, dpid: int, reply: TableStatsReply, now: float) -> None:
        if not self._monitoring(dpid, FeatureScope.SWITCH):
            return
        for entry in reply.entries:
            fields = protocol.table_fields(entry)
            self._last_table_fields[dpid] = fields
            merged = dict(fields)
            merged.update(
                combination.switch_fields(
                    fields,
                    self._last_agg_fields.get(dpid, {}),
                    table_capacity=float(entry.max_entries),
                )
            )
            entity = (dpid, "table", entry.table_id)
            merged.update(self.variation.diff(entity, merged, now))
            self._emit(
                AthenaFeature(
                    scope=FeatureScope.SWITCH,
                    switch_id=dpid,
                    instance_id=self.instance_id,
                    timestamp=now,
                    fields=self._filter_categories(merged),
                )
            )

    def _on_aggregate_stats(
        self, dpid: int, reply: AggregateStatsReply, now: float
    ) -> None:
        if not self._monitoring(dpid, FeatureScope.SWITCH):
            return
        fields = protocol.aggregate_fields(
            reply.packet_count, reply.byte_count, reply.flow_count
        )
        self._last_agg_fields[dpid] = fields
        merged = dict(fields)
        merged.update(
            combination.switch_fields(self._last_table_fields.get(dpid, {}), fields)
        )
        entity = (dpid, "aggregate")
        merged.update(self.variation.diff(entity, merged, now))
        self._emit(
            AthenaFeature(
                scope=FeatureScope.SWITCH,
                switch_id=dpid,
                instance_id=self.instance_id,
                timestamp=now,
                fields=self._filter_categories(merged),
            )
        )

    def _emit_control_record(self, dpid: int, now: float) -> None:
        if not self._monitoring(dpid, FeatureScope.CONTROL):
            return
        counters = self._control_counters.get(dpid)
        if not counters:
            return
        fields = protocol.control_counter_fields(counters)
        entity = (dpid, "control")
        previous = self.variation.previous_fields(entity)
        last_time = self.variation.last_sample_time(entity)
        variations = self.variation.diff(entity, fields, now)
        fields.update(variations)
        delta_seconds = now - last_time if last_time is not None else None
        fields.update(
            combination.control_fields(
                {
                    "PACKET_IN_COUNT_DELTA": fields.get("PACKET_IN_COUNT_VAR", 0.0),
                    "FLOW_MOD_COUNT_DELTA": fields.get("FLOW_MOD_COUNT_VAR", 0.0),
                    "CONTROL_MSG_TOTAL_DELTA": fields.get("CONTROL_MSG_TOTAL_VAR", 0.0),
                },
                delta_seconds,
            )
        )
        self._emit(
            AthenaFeature(
                scope=FeatureScope.CONTROL,
                switch_id=dpid,
                instance_id=self.instance_id,
                timestamp=now,
                fields=self._filter_categories(fields),
            )
        )

    # -- housekeeping ---------------------------------------------------------------

    def collect_garbage(self, now: float) -> int:
        """Evict stale entries from every hash table; returns eviction count."""
        return self.flow_state.collect_garbage(now) + self.variation.collect_garbage(
            now
        )
