"""Athena reactions (Table IV): Block and Quarantine.

A reaction is a declarative mitigation: the Reaction Manager resolves the
target hosts from a query or explicit list and the Attack Reactor translates
it to flow rules via the Athena Proxy.

* **Block** installs a high-priority drop rule for the suspicious source at
  its attachment switch (or everywhere, for insider threats).
* **Quarantine** rewrites the suspicious source's traffic toward a honeynet
  destination, so the attacker keeps talking while isolated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Reaction:
    """Base reaction: which hosts to act on."""

    target_ips: List[str] = field(default_factory=list)
    kind: str = "base"
    #: Priority used for mitigation rules; above every forwarding app.
    priority: int = 1000

    def describe(self) -> str:
        return f"{self.kind}({', '.join(self.target_ips)})"


@dataclass
class BlockReaction(Reaction):
    """Drop all traffic sourced from the target hosts."""

    #: Install on every switch (insider threat coverage) or edge-only.
    everywhere: bool = False
    kind: str = "block"


@dataclass
class QuarantineReaction(Reaction):
    """Redirect the target hosts' traffic into a honeynet."""

    honeypot_ip: Optional[str] = None
    kind: str = "quarantine"
