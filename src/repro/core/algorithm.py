"""The Algorithm NB parameter (Table IV).

An :class:`Algorithm` is a named description — "K-Means with k=8, 20
iterations" — that the Detector Manager later instantiates through the ML
registry.  Keeping it declarative lets applications stay agnostic to the
ML implementation, and lets the Detector Manager auto-configure the
surrounding pipeline from the algorithm's category.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.ml.base import Estimator
from repro.ml.registry import category_of, create_algorithm


@dataclass
class Algorithm:
    """Declarative algorithm description with parameters."""

    name: str
    params: Dict[str, Any] = field(default_factory=dict)

    @property
    def category(self) -> str:
        """Table IV category: boosting / classification / clustering /
        regression / simple — plus ``streaming`` for the online learners
        behind :mod:`repro.streaming`."""
        return category_of(self.name)

    @property
    def needs_labels(self) -> bool:
        """Whether training requires labels (classification-style learning)."""
        return self.category in ("boosting", "classification", "regression")

    @property
    def needs_marks(self) -> bool:
        """Whether cluster labelling via Marking is required (clustering)."""
        return self.category == "clustering"

    @property
    def has_learning_phase(self) -> bool:
        """Simple (threshold) algorithms export a pre-defined model."""
        return self.category != "simple"

    def instantiate(self) -> Estimator:
        """Create the concrete estimator from the registry."""
        return create_algorithm(self.name, **self.params)

    def __str__(self) -> str:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.name}({rendered})"


def GenerateAlgorithm(name: str, **params: Any) -> Algorithm:
    """NB utility API: describe a detection algorithm with its parameters."""
    return Algorithm(name=name, params=dict(params))
