"""The Athena query language (Table IV).

A :class:`Query` combines

* a constraint tree over feature/index fields with the arithmetic operators
  ``> >= == != <= <`` joined by ``and`` / ``or``, and
* result options: sorting, aggregation, and limiting,

plus an optional time window.  Queries can be built programmatically::

    q = (GenerateQuery()
         .where("FLOW_PACKET_COUNT", ">", 100)
         .and_where("ip_dst", "==", "10.0.0.1")
         .sort_by("FLOW_BYTE_COUNT", descending=True)
         .limit(10))

or parsed from the paper's textual form::

    q = GenerateQuery("FLOW_PACKET_COUNT > 100 && ip_dst == 10.0.0.1")

and compile to document-store filters (:meth:`Query.to_db_filter`) or
evaluate directly against feature records / documents
(:meth:`Query.matches`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.feature_format import AthenaFeature
from repro.errors import QueryError

ARITHMETIC_OPS = (">", ">=", "==", "!=", "<=", "<")

_OP_TO_MONGO = {
    ">": "$gt",
    ">=": "$gte",
    "==": "$eq",
    "!=": "$ne",
    "<=": "$lte",
    "<": "$lt",
}


@dataclass
class Condition:
    """A single ``field op value`` constraint."""

    fieldname: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in ARITHMETIC_OPS:
            raise QueryError(
                f"unknown operator {self.op!r}; supported: {ARITHMETIC_OPS}"
            )

    def evaluate(self, doc: Dict[str, Any]) -> bool:
        actual = doc.get(self.fieldname)
        if self.op == "==":
            return actual == self.value
        if self.op == "!=":
            return actual != self.value
        if actual is None:
            return False
        try:
            if self.op == ">":
                return actual > self.value
            if self.op == ">=":
                return actual >= self.value
            if self.op == "<":
                return actual < self.value
            return actual <= self.value
        except TypeError:
            return False

    def to_db_filter(self) -> Dict[str, Any]:
        return {self.fieldname: {_OP_TO_MONGO[self.op]: self.value}}


@dataclass
class BooleanNode:
    """An ``and`` / ``or`` combination of sub-constraints."""

    connective: str  # "and" | "or"
    children: List[Union["BooleanNode", Condition]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.connective not in ("and", "or"):
            raise QueryError(f"unknown connective {self.connective!r}")

    def evaluate(self, doc: Dict[str, Any]) -> bool:
        if not self.children:
            return True
        results = (child.evaluate(doc) for child in self.children)
        return all(results) if self.connective == "and" else any(results)

    def to_db_filter(self) -> Dict[str, Any]:
        if not self.children:
            return {}
        parts = [child.to_db_filter() for child in self.children]
        if len(parts) == 1:
            return parts[0]
        return {"$and" if self.connective == "and" else "$or": parts}


# ---------------------------------------------------------------------------
# Textual parser: "A > 1 && (B == x || C < 2)"
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<and>&&|\band\b)|(?P<or>\|\||\bor\b)"
    r"|(?P<op>>=|<=|==|!=|>|<)|(?P<value>\"[^\"]*\"|'[^']*'|[\w.:/-]+))"
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None or match.end() == position:
            raise QueryError(f"cannot tokenize query at: {text[position:]!r}")
        position = match.end()
        for kind in ("lparen", "rparen", "and", "or", "op", "value"):
            captured = match.group(kind)
            if captured is not None:
                tokens.append((kind, captured))
                break
    return tokens


def _coerce(raw: str) -> Any:
    if raw.startswith(("'", '"')) and raw.endswith(("'", '"')):
        return raw[1:-1]
    lowered = raw.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


class _Parser:
    """Recursive-descent parser with 'and' binding tighter than 'or'."""

    def __init__(self, tokens: List[Tuple[str, str]]) -> None:
        self.tokens = tokens
        self.position = 0

    def _peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.position] if self.position < len(self.tokens) else None

    def _take(self, kind: str) -> str:
        token = self._peek()
        if token is None or token[0] != kind:
            raise QueryError(f"expected {kind}, got {token}")
        self.position += 1
        return token[1]

    def parse(self) -> Union[BooleanNode, Condition]:
        node = self._parse_or()
        if self._peek() is not None:
            raise QueryError(f"trailing tokens from {self._peek()!r}")
        return node

    def _parse_or(self):
        left = self._parse_and()
        children = [left]
        while self._peek() and self._peek()[0] == "or":
            self._take("or")
            children.append(self._parse_and())
        if len(children) == 1:
            return left
        return BooleanNode("or", children)

    def _parse_and(self):
        left = self._parse_atom()
        children = [left]
        while self._peek() and self._peek()[0] == "and":
            self._take("and")
            children.append(self._parse_atom())
        if len(children) == 1:
            return left
        return BooleanNode("and", children)

    def _parse_atom(self):
        token = self._peek()
        if token is None:
            raise QueryError("unexpected end of query")
        if token[0] == "lparen":
            self._take("lparen")
            node = self._parse_or()
            self._take("rparen")
            return node
        fieldname = self._take("value")
        op = self._take("op")
        value = _coerce(self._take("value"))
        return Condition(fieldname, op, value)


def parse_constraints(text: str) -> Union[BooleanNode, Condition]:
    """Parse the textual constraint syntax into a constraint tree."""
    tokens = _tokenize(text)
    if not tokens:
        return BooleanNode("and", [])
    return _Parser(tokens).parse()


# ---------------------------------------------------------------------------
# The Query object
# ---------------------------------------------------------------------------


@dataclass
class AggregationSpec:
    """Aggregation option: group by index fields, fold a feature field."""

    group_by: List[str]
    field: str
    func: str = "sum"  # sum | avg | min | max | count

    def __post_init__(self) -> None:
        if self.func not in ("sum", "avg", "min", "max", "count"):
            raise QueryError(f"unknown aggregation function {self.func!r}")


class Query:
    """A composed Athena feature query."""

    def __init__(self, constraints: Optional[str] = None) -> None:
        self._root = (
            parse_constraints(constraints)
            if constraints
            else BooleanNode("and", [])
        )
        self._sort: List[Tuple[str, int]] = []
        self._limit: Optional[int] = None
        self._aggregation: Optional[AggregationSpec] = None
        self._time_window: Optional[Tuple[float, float]] = None

    # -- builder interface ----------------------------------------------------

    def where(self, fieldname: str, op: str, value: Any) -> "Query":
        """Add a constraint AND-ed with the existing tree."""
        condition = Condition(fieldname, op, value)
        if isinstance(self._root, BooleanNode) and self._root.connective == "and":
            self._root.children.append(condition)
        else:
            self._root = BooleanNode("and", [self._root, condition])
        return self

    #: ``and_where`` reads better after a bare ``where`` in app code.
    and_where = where

    def or_where(self, fieldname: str, op: str, value: Any) -> "Query":
        """Add a constraint OR-ed with the existing tree."""
        condition = Condition(fieldname, op, value)
        if isinstance(self._root, BooleanNode) and not self._root.children:
            # An empty tree matches everything; OR-ing against it would
            # keep matching everything, so the condition replaces it.
            self._root = BooleanNode("or", [condition])
        elif isinstance(self._root, BooleanNode) and self._root.connective == "or":
            self._root.children.append(condition)
        else:
            self._root = BooleanNode("or", [self._root, condition])
        return self

    def sort_by(self, fieldname: str, descending: bool = False) -> "Query":
        self._sort.append((fieldname, -1 if descending else 1))
        return self

    def limit(self, count: int) -> "Query":
        if count < 0:
            raise QueryError(f"negative limit {count}")
        self._limit = count
        return self

    def aggregate(
        self, group_by: List[str], fieldname: str, func: str = "sum"
    ) -> "Query":
        self._aggregation = AggregationSpec(list(group_by), fieldname, func)
        return self

    def time_window(self, start: float, end: float) -> "Query":
        if end < start:
            raise QueryError(f"empty time window [{start}, {end}]")
        self._time_window = (start, end)
        return self

    # -- accessors --------------------------------------------------------------

    @property
    def sort_spec(self) -> List[Tuple[str, int]]:
        return list(self._sort)

    @property
    def limit_value(self) -> Optional[int]:
        return self._limit

    @property
    def aggregation(self) -> Optional[AggregationSpec]:
        return self._aggregation

    def fieldnames(self) -> List[str]:
        """Every field this query references, in first-use order.

        Covers the constraint tree, sort keys, and aggregation spec; the
        Feature Manager validates the catalog-looking ones before hitting
        the database.
        """
        seen: List[str] = []

        def _add(name: str) -> None:
            if name not in seen:
                seen.append(name)

        def _walk(node: Union[BooleanNode, Condition]) -> None:
            if isinstance(node, Condition):
                _add(node.fieldname)
                return
            for child in node.children:
                _walk(child)

        _walk(self._root)
        for fieldname, _direction in self._sort:
            _add(fieldname)
        if self._aggregation is not None:
            for fieldname in self._aggregation.group_by:
                _add(fieldname)
            _add(self._aggregation.field)
        return seen

    # -- evaluation ----------------------------------------------------------------

    def matches(self, record: Union[AthenaFeature, Dict[str, Any]]) -> bool:
        """Evaluate the constraint tree against a record or document."""
        doc = record.to_document() if isinstance(record, AthenaFeature) else record
        if self._time_window is not None:
            stamp = doc.get("timestamp")
            if stamp is None or not (
                self._time_window[0] <= stamp <= self._time_window[1]
            ):
                return False
        return self._root.evaluate(doc)

    def to_db_filter(self) -> Dict[str, Any]:
        """Compile the constraints (and window) to a document-store filter."""
        base = self._root.to_db_filter()
        if self._time_window is None:
            return base
        window = {
            "timestamp": {
                "$gte": self._time_window[0],
                "$lte": self._time_window[1],
            }
        }
        if not base:
            return window
        return {"$and": [base, window]}

    def to_db_pipeline(self) -> Optional[List[Dict[str, Any]]]:
        """Compile to an aggregation pipeline when aggregation is requested."""
        if self._aggregation is None:
            return None
        spec = self._aggregation
        accumulator = {
            "sum": {"$sum": f"${spec.field}"},
            "avg": {"$avg": f"${spec.field}"},
            "min": {"$min": f"${spec.field}"},
            "max": {"$max": f"${spec.field}"},
            "count": {"$count": 1},
        }[spec.func]
        group_id = (
            {name: f"${name}" for name in spec.group_by}
            if len(spec.group_by) > 1
            else f"${spec.group_by[0]}"
        )
        pipeline: List[Dict[str, Any]] = []
        filter_ = self.to_db_filter()
        if filter_:
            pipeline.append({"$match": filter_})
        pipeline.append({"$group": {"_id": group_id, spec.field: accumulator}})
        if self._sort:
            pipeline.append({"$sort": dict(self._sort)})
        if self._limit is not None:
            pipeline.append({"$limit": self._limit})
        return pipeline

    def __repr__(self) -> str:
        return f"Query(filter={self.to_db_filter()}, sort={self._sort}, limit={self._limit})"


def GenerateQuery(constraints: Optional[str] = None) -> Query:
    """NB utility API: create a query, optionally from textual constraints."""
    return Query(constraints)
