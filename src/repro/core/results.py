"""Validation results (the Figure 6 testing summary).

:class:`ValidationSummary` carries the confusion counts, detection/false
alarm rates, unique-flow counts, and — for clustering algorithms — the
per-cluster benign/malicious composition, and renders itself in the same
layout as the paper's DDoS detector output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class ClusterReport:
    """Composition of one cluster in a clustering-based validation."""

    cluster_id: int
    benign_entries: int
    malicious_entries: int
    is_malicious: bool


@dataclass
class ValidationSummary:
    """Outcome of ValidateFeatures over a dataset."""

    total_entries: int
    benign_entries: int
    malicious_entries: int
    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int
    unique_benign_flows: int = 0
    unique_malicious_flows: int = 0
    algorithm_description: str = ""
    cluster_info: Optional[str] = None
    clusters: List[ClusterReport] = field(default_factory=list)
    predictions: Optional[np.ndarray] = None
    elapsed_seconds: float = 0.0

    @property
    def detection_rate(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def false_alarm_rate(self) -> float:
        denominator = self.false_positives + self.true_negatives
        return self.false_positives / denominator if denominator else 0.0

    @property
    def accuracy(self) -> float:
        correct = self.true_positives + self.true_negatives
        return correct / self.total_entries if self.total_entries else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "total_entries": self.total_entries,
            "benign_entries": self.benign_entries,
            "malicious_entries": self.malicious_entries,
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "true_negatives": self.true_negatives,
            "false_negatives": self.false_negatives,
            "detection_rate": self.detection_rate,
            "false_alarm_rate": self.false_alarm_rate,
            "accuracy": self.accuracy,
        }

    def render(self) -> str:
        """The Figure 6 text layout."""
        lines = [
            "-" * 72,
            f"Total : {self.total_entries:,} entries",
            (
                f"Benign : {self.benign_entries:,} entries"
                + (
                    f" ({self.unique_benign_flows:,} unique flows)"
                    if self.unique_benign_flows
                    else ""
                )
            ),
            (
                f"Malicious : {self.malicious_entries:,} entries"
                + (
                    f" ({self.unique_malicious_flows:,} unique flows)"
                    if self.unique_malicious_flows
                    else ""
                )
            ),
            f"True Positive : {self.true_positives:,} entries",
            f"False Positive : {self.false_positives:,} entries",
            f"True Negative : {self.true_negatives:,} entries",
            f"False Negative : {self.false_negatives:,} entries",
            f"Detection Rate : {self.detection_rate}",
            f"False Alarm Rate: {self.false_alarm_rate}",
        ]
        if self.cluster_info:
            lines.append(f"Cluster ({self.algorithm_description})")
            lines.append(f"Cluster Information : {self.cluster_info}")
        for cluster in self.clusters:
            lines.append(
                f"Cluster #{cluster.cluster_id}: "
                f"Benign ({cluster.benign_entries:,} entries), "
                f"Malicious ({cluster.malicious_entries:,} entries)"
            )
        lines.append("-" * 72)
        return "\n".join(lines)
