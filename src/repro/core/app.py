"""The Athena application base class.

Applications (Figure 5) select off-the-shelf strategies — features,
detection algorithms, reactions — and drive them through the NB API.  The
base class handles attachment to a deployment and gives subclasses the
``self.nb`` handle plus optional lifecycle hooks.
"""

from __future__ import annotations

from typing import Optional

from repro.core.northbound import AthenaNorthbound
from repro.errors import AthenaError


class AthenaApp:
    """Base class for applications built on the Athena NB API."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.deployment = None
        self._attached = False

    @property
    def nb(self) -> AthenaNorthbound:
        """The NB API facade (valid once attached)."""
        if self.deployment is None:
            raise AthenaError(f"app {self.name!r} is not attached")
        return self.deployment.northbound

    def attach(self, deployment) -> None:
        """Called by AthenaDeployment.register_app."""
        self.deployment = deployment
        self._attached = True
        self.on_attach()

    def detach(self) -> None:
        if self._attached:
            self.on_detach()
        self._attached = False
        self.deployment = None

    # -- hooks for subclasses ------------------------------------------------

    def on_attach(self) -> None:
        """Override: register handlers, build models."""

    def on_detach(self) -> None:
        """Override: withdraw handlers and rules."""
