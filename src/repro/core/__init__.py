"""The Athena framework — the paper's primary contribution.

Layout mirrors Figure 3:

* southbound element (:mod:`repro.core.southbound`): the SB interface and
  Athena Proxy, the Feature Generator, the Attack Detector and the Attack
  Reactor — one per controller instance;
* northbound element (:mod:`repro.core.northbound` and the manager
  modules): the Feature/Detector/Reaction/Resource/UI managers and the
  eight core NB APIs of Table II;
* off-the-shelf strategies: the feature catalog
  (:mod:`repro.core.features`), the query language
  (:mod:`repro.core.query`), preprocessors, algorithms and reactions.

:class:`~repro.core.deployment.AthenaDeployment` wires everything to a
controller cluster, a database cluster and a compute cluster.
"""

from repro.core.algorithm import Algorithm, GenerateAlgorithm
from repro.core.deployment import AthenaDeployment, AthenaInstance
from repro.core.feature_format import AthenaFeature, FeatureScope
from repro.core.northbound import AthenaNorthbound
from repro.core.preprocessor import GeneratePreprocessor, Preprocessor
from repro.core.query import GenerateQuery, Query
from repro.core.reactions import BlockReaction, QuarantineReaction, Reaction
from repro.core.results import ValidationSummary

__all__ = [
    "Algorithm",
    "GenerateAlgorithm",
    "AthenaDeployment",
    "AthenaInstance",
    "AthenaFeature",
    "FeatureScope",
    "AthenaNorthbound",
    "GeneratePreprocessor",
    "Preprocessor",
    "GenerateQuery",
    "Query",
    "BlockReaction",
    "QuarantineReaction",
    "Reaction",
    "ValidationSummary",
]
