"""The Athena utility API surface.

The paper ships "8 core and 70 utility APIs" (Section III).  The eight core
functions live on :class:`~repro.core.northbound.AthenaNorthbound`; this
module is the utility layer: small, documented helpers for building
queries, selecting features, configuring preprocessors and algorithms,
composing reactions, and digesting results.  Every helper is registered via
the ``@utility_api`` decorator so the surface is enumerable
(:func:`utility_api_names`) and tested against the paper's count.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.algorithm import Algorithm
from repro.core.feature_format import FeatureScope
from repro.core.features.catalog import (
    FEATURE_CATALOG,
    FeatureCategory,
    features_by_category,
    features_by_scope,
    require_known,
)
from repro.core.preprocessor import Preprocessor
from repro.core.query import Query
from repro.core.reactions import BlockReaction, QuarantineReaction
from repro.core.results import ValidationSummary

_UTILITY_REGISTRY: Dict[str, Callable] = {}


def utility_api(fn: Callable) -> Callable:
    """Register ``fn`` as part of the utility API surface."""
    _UTILITY_REGISTRY[fn.__name__] = fn
    return fn


def utility_api_names() -> List[str]:
    """Every registered utility API name (the paper counts 70)."""
    return sorted(_UTILITY_REGISTRY)


def utility_api_count() -> int:
    return len(_UTILITY_REGISTRY)


# ---------------------------------------------------------------------------
# Query construction helpers
# ---------------------------------------------------------------------------


@utility_api
def q() -> Query:
    """A fresh, unconstrained query."""
    return Query()


@utility_api
def q_text(constraints: str) -> Query:
    """Parse the textual constraint syntax into a query."""
    return Query(constraints)


@utility_api
def where_eq(query: Query, fieldname: str, value: Any) -> Query:
    """Constrain ``fieldname == value``."""
    return query.where(fieldname, "==", value)


@utility_api
def where_ne(query: Query, fieldname: str, value: Any) -> Query:
    """Constrain ``fieldname != value``."""
    return query.where(fieldname, "!=", value)


@utility_api
def where_gt(query: Query, fieldname: str, value: Any) -> Query:
    """Constrain ``fieldname > value``."""
    return query.where(fieldname, ">", value)


@utility_api
def where_gte(query: Query, fieldname: str, value: Any) -> Query:
    """Constrain ``fieldname >= value``."""
    return query.where(fieldname, ">=", value)


@utility_api
def where_lt(query: Query, fieldname: str, value: Any) -> Query:
    """Constrain ``fieldname < value``."""
    return query.where(fieldname, "<", value)


@utility_api
def where_lte(query: Query, fieldname: str, value: Any) -> Query:
    """Constrain ``fieldname <= value``."""
    return query.where(fieldname, "<=", value)


@utility_api
def where_between(query: Query, fieldname: str, low: Any, high: Any) -> Query:
    """Constrain ``low <= fieldname <= high``."""
    return query.where(fieldname, ">=", low).where(fieldname, "<=", high)


@utility_api
def where_any_of(query: Query, fieldname: str, values: Sequence[Any]) -> Query:
    """Constrain ``fieldname`` to any of ``values`` (OR expansion)."""
    from repro.core.query import BooleanNode, Condition

    disjunction = BooleanNode(
        "or", [Condition(fieldname, "==", value) for value in values]
    )
    if isinstance(query._root, BooleanNode) and query._root.connective == "and":
        query._root.children.append(disjunction)
    else:
        query._root = BooleanNode("and", [query._root, disjunction])
    return query


@utility_api
def flow_features_query() -> Query:
    """All flow-scoped feature records."""
    return Query().where("feature_scope", "==", "flow")


@utility_api
def port_features_query() -> Query:
    """All port-scoped feature records."""
    return Query().where("feature_scope", "==", "port")


@utility_api
def switch_features_query() -> Query:
    """All switch-scoped feature records."""
    return Query().where("feature_scope", "==", "switch")


@utility_api
def control_features_query() -> Query:
    """All control-plane-scoped feature records."""
    return Query().where("feature_scope", "==", "control")


@utility_api
def flows_of_switch(dpid: int) -> Query:
    """Flow records observed at one switch."""
    return flow_features_query().where("switch_id", "==", dpid)


@utility_api
def flows_between(ip_src: str, ip_dst: str) -> Query:
    """Flow records for one (source, destination) pair."""
    return (
        flow_features_query()
        .where("ip_src", "==", ip_src)
        .where("ip_dst", "==", ip_dst)
    )


@utility_api
def flows_of_app(app_id: str) -> Query:
    """Flow records attributed to one network application."""
    return flow_features_query().where("app_id", "==", app_id)


@utility_api
def flows_to_port(tcp_dst: int) -> Query:
    """Flow records toward one L4 destination port (e.g. 80)."""
    return flow_features_query().where("tcp_dst", "==", tcp_dst)


@utility_api
def top_talkers(n: int = 10) -> Query:
    """The ``n`` flows with the highest byte counts (paper's example)."""
    return (
        flow_features_query()
        .sort_by("FLOW_BYTE_COUNT", descending=True)
        .limit(n)
    )


@utility_api
def top_congested_ports(n: int = 10) -> Query:
    """The ``n`` most-utilised ports ('top 10 congested links')."""
    return (
        port_features_query()
        .sort_by("PORT_UTILIZATION", descending=True)
        .limit(n)
    )


@utility_api
def unstable_ports(window_start: float, window_end: float) -> Query:
    """Ports with volume variation inside a temporal window."""
    return (
        port_features_query()
        .where("PORT_RX_BYTES_VAR", ">", 0)
        .time_window(window_start, window_end)
    )


@utility_api
def utilization_per_app() -> Query:
    """'Flow utilization per network application' (the Section IV example)."""
    return flow_features_query().aggregate(["app_id"], "FLOW_UTILIZATION", "avg")


@utility_api
def paired_flows_only(query: Optional[Query] = None) -> Query:
    """Restrict to flows with a live reverse direction."""
    return (query or flow_features_query()).where("PAIR_FLOW", "==", 1.0)


@utility_api
def unpaired_flows_only(query: Optional[Query] = None) -> Query:
    """Restrict to one-way flows (the DDoS signature)."""
    return (query or flow_features_query()).where("PAIR_FLOW", "==", 0.0)


@utility_api
def within_last(query: Query, now: float, seconds: float) -> Query:
    """Constrain a query to the trailing ``seconds`` window."""
    return query.time_window(max(0.0, now - seconds), now)


# ---------------------------------------------------------------------------
# Feature-selection helpers
# ---------------------------------------------------------------------------


@utility_api
def all_feature_names() -> List[str]:
    """Every feature in the catalog (100+)."""
    return sorted(FEATURE_CATALOG)


@utility_api
def protocol_features() -> List[str]:
    """Table I protocol-centric features."""
    return features_by_category(FeatureCategory.PROTOCOL)


@utility_api
def combination_features() -> List[str]:
    """Table I combination features."""
    return features_by_category(FeatureCategory.COMBINATION)


@utility_api
def stateful_features() -> List[str]:
    """Table I stateful features."""
    return features_by_category(FeatureCategory.STATEFUL)


@utility_api
def variation_features() -> List[str]:
    """All ``*_VAR`` delta features."""
    return features_by_category(FeatureCategory.VARIATION)


@utility_api
def flow_scope_features() -> List[str]:
    """Features describing individual flows."""
    return features_by_scope(FeatureScope.FLOW)


@utility_api
def port_scope_features() -> List[str]:
    """Features describing switch ports."""
    return features_by_scope(FeatureScope.PORT)


@utility_api
def ddos_candidate_features() -> List[str]:
    """The Table V candidate set for DDoS detection (the 10-tuple)."""
    from repro.workloads.ddos import DDOS_FEATURES

    return list(DDOS_FEATURES)


@utility_api
def lfa_candidate_features() -> List[str]:
    """The volume/variation candidates of the LFA scenario."""
    return ["PORT_RX_BYTES", "PORT_RX_BYTES_VAR", "FLOW_BYTE_COUNT",
            "FLOW_BYTE_COUNT_VAR", "PORT_UTILIZATION"]


@utility_api
def feature_description(name: str) -> str:
    """Human-readable description of a catalog feature."""
    return require_known(name).description


@utility_api
def feature_category(name: str) -> str:
    """Table I category of a catalog feature."""
    return require_known(name).category.value


@utility_api
def is_variation_feature(name: str) -> bool:
    """Whether ``name`` is a ``*_VAR`` delta feature."""
    return require_known(name).category is FeatureCategory.VARIATION


@utility_api
def base_feature_of(name: str) -> str:
    """The base feature a ``*_VAR`` feature derives from."""
    if not is_variation_feature(name):
        return name
    return name[: -len("_VAR")]


# ---------------------------------------------------------------------------
# Preprocessor helpers
# ---------------------------------------------------------------------------


@utility_api
def preprocessor(features: Sequence[str], **kwargs: Any) -> Preprocessor:
    """A preprocessor over ``features`` (minmax normalization by default)."""
    return Preprocessor(features=list(features), **kwargs)


@utility_api
def normalized_minmax(features: Sequence[str]) -> Preprocessor:
    """Min-max normalization over ``features``."""
    return Preprocessor(features=list(features), normalization="minmax")


@utility_api
def normalized_standard(features: Sequence[str]) -> Preprocessor:
    """Z-score standardisation over ``features``."""
    return Preprocessor(features=list(features), normalization="standard")


@utility_api
def with_weights(pre: Preprocessor, weights: Dict[str, float]) -> Preprocessor:
    """Emphasize features with per-column weights (Table IV Weighting)."""
    for feature, weight in weights.items():
        pre.set_weight(feature, weight)
    return pre


@utility_api
def with_sampling(pre: Preprocessor, fraction: float, seed: int = 0) -> Preprocessor:
    """Sample a fraction of the entries (Table IV Sampling)."""
    pre.sampling = fraction
    pre.sampling_seed = seed
    return pre


@utility_api
def mark_by_label(pre: Preprocessor) -> Preprocessor:
    """Mark entries malicious from the ground-truth ``label`` field."""
    pre.marking = "label"
    return pre


@utility_api
def mark_by_query(pre: Preprocessor, query: Query) -> Preprocessor:
    """Mark entries matching ``query`` as malicious (Table IV Marking)."""
    pre.marking = query
    return pre


@utility_api
def mark_by_sources(pre: Preprocessor, suspicious_ips: Sequence[str]) -> Preprocessor:
    """Mark entries whose source is in a suspicious-host set."""
    wanted = set(suspicious_ips)
    pre.marking = lambda doc: doc.get("ip_src") in wanted
    return pre


# ---------------------------------------------------------------------------
# Algorithm helpers (one per Table IV algorithm)
# ---------------------------------------------------------------------------


def _algorithm(name: str, **params: Any) -> Algorithm:
    return Algorithm(name=name, params=dict(params))


@utility_api
def kmeans(k: int = 8, max_iterations: int = 20, runs: int = 5, **kw: Any) -> Algorithm:
    """K-Means (the paper's DDoS configuration by default)."""
    return _algorithm("kmeans", k=k, max_iterations=max_iterations, runs=runs, **kw)


@utility_api
def gaussian_mixture(k: int = 2, **kw: Any) -> Algorithm:
    """Gaussian mixture clustering."""
    return _algorithm("gaussian_mixture", k=k, **kw)


@utility_api
def decision_tree(max_depth: int = 8, **kw: Any) -> Algorithm:
    """CART decision-tree classification."""
    return _algorithm("decision_tree", max_depth=max_depth, **kw)


@utility_api
def logistic_regression(**kw: Any) -> Algorithm:
    """Binary logistic-regression classification."""
    return _algorithm("logistic_regression", **kw)


@utility_api
def naive_bayes(**kw: Any) -> Algorithm:
    """Gaussian naive-Bayes classification."""
    return _algorithm("naive_bayes", **kw)


@utility_api
def random_forest(n_trees: int = 20, **kw: Any) -> Algorithm:
    """Random-forest classification."""
    return _algorithm("random_forest", n_trees=n_trees, **kw)


@utility_api
def svm(**kw: Any) -> Algorithm:
    """Linear SVM classification."""
    return _algorithm("svm", **kw)


@utility_api
def gradient_boosted_tree(n_estimators: int = 30, **kw: Any) -> Algorithm:
    """Gradient-boosted-tree classification (Table IV Boosting)."""
    return _algorithm("gradient_boosted_tree", n_estimators=n_estimators, **kw)


@utility_api
def lasso(alpha: float = 1.0, **kw: Any) -> Algorithm:
    """Lasso regression."""
    return _algorithm("lasso", alpha=alpha, **kw)


@utility_api
def linear(**kw: Any) -> Algorithm:
    """Ordinary least-squares regression."""
    return _algorithm("linear", **kw)


@utility_api
def ridge(alpha: float = 1.0, **kw: Any) -> Algorithm:
    """Ridge regression."""
    return _algorithm("ridge", alpha=alpha, **kw)


@utility_api
def threshold(column: int = 0, bound: Optional[float] = None, op: str = ">") -> Algorithm:
    """Simple threshold detection (no learning phase)."""
    return _algorithm("threshold", column=column, threshold=bound, op=op)


@utility_api
def som(rows: int = 3, cols: int = 3, **kw: Any) -> Algorithm:
    """Self-organizing map (the [10] baseline, usable like any algorithm)."""
    return _algorithm("som", rows=rows, cols=cols, **kw)


# ---------------------------------------------------------------------------
# Reaction helpers
# ---------------------------------------------------------------------------


@utility_api
def block_hosts(ips: Sequence[str]) -> BlockReaction:
    """Block the listed hosts at their attachment switches."""
    return BlockReaction(target_ips=list(ips))


@utility_api
def block_everywhere(ips: Sequence[str]) -> BlockReaction:
    """Block the listed hosts on every switch (insider-threat coverage)."""
    return BlockReaction(target_ips=list(ips), everywhere=True)


@utility_api
def quarantine_hosts(ips: Sequence[str], honeypot_ip: str) -> QuarantineReaction:
    """Redirect the listed hosts' traffic into a honeynet."""
    return QuarantineReaction(target_ips=list(ips), honeypot_ip=honeypot_ip)


@utility_api
def suspicious_sources_query(ips: Sequence[str]) -> Query:
    """The paper's 'IP_SRC in {suspicious hosts}' reactor query."""
    query = Query()
    for ip in ips:
        query.or_where("ip_src", "==", ip)
    return query


# ---------------------------------------------------------------------------
# Results helpers (the ResultsGenerator surface)
# ---------------------------------------------------------------------------


@utility_api
def results_generator(rows: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Normalise aggregated rows into a result list (ResultsGenerator)."""
    return [dict(row) for row in rows]


@utility_api
def detection_rate_of(summary: ValidationSummary) -> float:
    """DR = TP / (TP + FN)."""
    return summary.detection_rate


@utility_api
def false_alarm_rate_of(summary: ValidationSummary) -> float:
    """FAR = FP / (FP + TN)."""
    return summary.false_alarm_rate


@utility_api
def accuracy_of(summary: ValidationSummary) -> float:
    """Overall accuracy of a validation."""
    return summary.accuracy


@utility_api
def confusion_of(summary: ValidationSummary) -> Dict[str, int]:
    """TP/FP/TN/FN counts of a validation."""
    return {
        "tp": summary.true_positives,
        "fp": summary.false_positives,
        "tn": summary.true_negatives,
        "fn": summary.false_negatives,
    }


@utility_api
def malicious_clusters_of(summary: ValidationSummary) -> List[int]:
    """Ids of clusters labelled malicious in a clustering validation."""
    return [c.cluster_id for c in summary.clusters if c.is_malicious]


@utility_api
def render_results(summary: ValidationSummary) -> str:
    """The Figure 6 text rendering of a validation summary."""
    return summary.render()


@utility_api
def results_to_dict(summary: ValidationSummary) -> Dict[str, float]:
    """Flatten a validation summary for logging/export."""
    return summary.to_dict()
