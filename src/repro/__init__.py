"""Reproduction of *Athena: A Framework for Scalable Anomaly Detection in
Software-Defined Networks* (DSN 2017).

The package is organised bottom-up:

* :mod:`repro.simkernel` — deterministic discrete-event simulation kernel
* :mod:`repro.openflow` — OpenFlow messages, matches, flow entries, codec
* :mod:`repro.dataplane` — switches, links, hosts, topology builders
* :mod:`repro.controller` — the distributed (ONOS-like) controller cluster
* :mod:`repro.distdb` — the sharded document store (MongoDB stand-in)
* :mod:`repro.compute` — the data-parallel compute cluster (Spark stand-in)
* :mod:`repro.ml` — from-scratch implementations of every Table IV algorithm
* :mod:`repro.core` — the Athena framework itself (features, SB/NB, APIs)
* :mod:`repro.apps` — the paper's three use-case applications
* :mod:`repro.workloads` — traffic and dataset generators
* :mod:`repro.baselines` — raw Spark-style jobs and the Braga SOM detector
* :mod:`repro.cbench` — the Cbench-equivalent throughput harness

The most common entry points re-export here for convenience.
"""

from repro.core import (
    AthenaDeployment,
    AthenaNorthbound,
    BlockReaction,
    GenerateAlgorithm,
    GeneratePreprocessor,
    GenerateQuery,
    QuarantineReaction,
)
from repro.controller import ControllerCluster, ReactiveForwarding
from repro.dataplane import Network

__version__ = "1.0.0"

__all__ = [
    "AthenaDeployment",
    "AthenaNorthbound",
    "BlockReaction",
    "GenerateAlgorithm",
    "GeneratePreprocessor",
    "GenerateQuery",
    "QuarantineReaction",
    "ControllerCluster",
    "ReactiveForwarding",
    "Network",
    "__version__",
]
