"""The OpenFlow switch model.

An :class:`OpenFlowSwitch` owns ports, a flow table, and a control channel.
Packet handling follows the spec pipeline: look up the flow table, update
flow and port counters on a hit, punt a PACKET_IN on a miss (buffering the
packet so a later FLOW_MOD/PACKET_OUT with the buffer id releases it), and
emit FLOW_REMOVED when entries expire.  Statistics requests are answered
from live counters, which is where Athena's polled features originate.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import DataPlaneError
from repro.openflow.actions import (
    Action,
    ActionController,
    ActionDrop,
    ActionOutput,
    ActionSetEthDst,
    ActionSetEthSrc,
    ActionSetIpDst,
    ActionSetIpSrc,
)
from repro.openflow.constants import FlowModCommand, FlowRemovedReason
from repro.openflow.flow import FlowEntry
from repro.openflow.match import Match
from repro.openflow.messages import (
    AggregateStatsReply,
    AggregateStatsRequest,
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    FlowStatsEntry,
    FlowStatsReply,
    FlowStatsRequest,
    OpenFlowMessage,
    PacketIn,
    PacketInReason,
    PacketOut,
    PortStatsReply,
    PortStatsRequest,
    PortStatus,
    PortReason,
    StatsRequest,
    TableStatsEntry,
    TableStatsReply,
    TableStatsRequest,
)
from repro.dataplane.flowtable import FlowTable
from repro.dataplane.packet import Packet
from repro.dataplane.port import Port
from repro.types import (
    Dpid,
    OFPP_ALL,
    OFPP_CONTROLLER,
    OFPP_FLOOD,
    OFPP_IN_PORT,
    format_dpid,
)

#: Signature of the upcall delivering a switch-originated message.
ControlChannel = Callable[[OpenFlowMessage], None]
#: Signature of the downcall transmitting a packet out of a port.
TransmitFn = Callable[["OpenFlowSwitch", int, Packet], None]


class OpenFlowSwitch:
    """A software model of an OpenFlow 1.0/1.3 switch."""

    def __init__(
        self,
        dpid: Dpid,
        name: str = "",
        n_tables: int = 1,
        miss_send_len: int = 128,
        hardware: bool = False,
    ) -> None:
        self.dpid = dpid
        self.name = name or format_dpid(dpid)
        #: Physical switches vs OVS instances (Table VI distinguishes them).
        self.hardware = hardware
        self.miss_send_len = miss_send_len
        self.tables = [FlowTable(table_id=i) for i in range(n_tables)]
        self.ports: Dict[int, Port] = {}
        self._buffered: Dict[int, Tuple[Packet, int]] = {}
        self._buffer_ids = itertools.count(1)
        self._channel: Optional[ControlChannel] = None
        self._transmit: Optional[TransmitFn] = None
        # Counters for the Cbench harness and CPU-usage experiment.
        self.packet_in_count = 0
        self.flow_mod_count = 0
        self.packets_forwarded = 0
        self.packets_dropped = 0

    # -- wiring ----------------------------------------------------------

    @property
    def table(self) -> FlowTable:
        """The first (and usually only) flow table."""
        return self.tables[0]

    def add_port(self, port_no: int, speed_bps: float = 1e9) -> Port:
        if port_no in self.ports:
            raise DataPlaneError(f"{self.name}: duplicate port {port_no}")
        port = Port(port_no=port_no, name=f"{self.name}-eth{port_no}", speed_bps=speed_bps)
        self.ports[port_no] = port
        return port

    def connect_controller(self, channel: ControlChannel) -> None:
        """Attach the control channel used for switch→controller messages."""
        self._channel = channel

    def attach_transmitter(self, transmit: TransmitFn) -> None:
        """Attach the network-provided packet transmitter."""
        self._transmit = transmit

    def _send_to_controller(self, msg: OpenFlowMessage) -> None:
        msg.dpid = self.dpid
        if self._channel is not None:
            self._channel(msg)

    # -- data path -------------------------------------------------------

    def receive_packet(self, in_port: int, packet: Packet, now: float) -> None:
        """Entry point for a packet arriving on ``in_port``."""
        port = self.ports.get(in_port)
        if port is None:
            raise DataPlaneError(f"{self.name}: no such port {in_port}")
        if not port.up:
            port.record_rx_drop()
            self.packets_dropped += 1
            return
        port.record_rx(packet.size)
        headers = dict(packet.headers)
        headers["in_port"] = in_port
        entry = self.table.lookup(headers)
        if entry is None:
            self._punt(in_port, packet, now)
            return
        entry.stats.record(packet.size, now)
        self._apply_actions(entry.actions, in_port, packet, now)

    def _punt(self, in_port: int, packet: Packet, now: float) -> None:
        """Table miss: buffer the packet and raise PACKET_IN."""
        buffer_id = next(self._buffer_ids)
        self._buffered[buffer_id] = (packet, in_port)
        if len(self._buffered) > 4096:
            # Bound the buffer the way real switches do; oldest goes first.
            oldest = min(self._buffered)
            del self._buffered[oldest]
        self.packet_in_count += 1
        self._send_to_controller(
            PacketIn(
                buffer_id=buffer_id,
                in_port=in_port,
                reason=PacketInReason.NO_MATCH,
                headers=dict(packet.headers),
                total_len=packet.size,
            )
        )

    def _apply_actions(
        self, actions: List[Action], in_port: int, packet: Packet, now: float
    ) -> None:
        if not actions:
            self.packets_dropped += 1
            return
        current = packet
        for action in actions:
            if isinstance(action, ActionDrop):
                self.packets_dropped += 1
                return
            if isinstance(action, ActionSetEthSrc):
                current = current.rewritten(eth_src=action.mac)
            elif isinstance(action, ActionSetEthDst):
                current = current.rewritten(eth_dst=action.mac)
            elif isinstance(action, ActionSetIpSrc):
                current = current.rewritten(ip_src=action.ip)
            elif isinstance(action, ActionSetIpDst):
                current = current.rewritten(ip_dst=action.ip)
            elif isinstance(action, ActionController):
                self._punt(in_port, current, now)
            elif isinstance(action, ActionOutput):
                self._output(action.port, in_port, current, now)

    def _output(self, out_port: int, in_port: int, packet: Packet, now: float) -> None:
        if out_port == OFPP_CONTROLLER:
            self._punt(in_port, packet, now)
            return
        if out_port in (OFPP_FLOOD, OFPP_ALL):
            for port_no in self.ports:
                if port_no != in_port:
                    self._transmit_out(port_no, packet, now)
            return
        if out_port == OFPP_IN_PORT:
            self._transmit_out(in_port, packet, now)
            return
        self._transmit_out(out_port, packet, now)

    def _transmit_out(self, port_no: int, packet: Packet, now: float) -> None:
        port = self.ports.get(port_no)
        if port is None or not port.up:
            self.packets_dropped += 1
            return
        port.record_tx(packet.size)
        self.packets_forwarded += 1
        if self._transmit is not None:
            self._transmit(self, port_no, packet, now)

    # -- control path ----------------------------------------------------

    def handle_message(self, msg: OpenFlowMessage, now: float) -> None:
        """Process a controller→switch message."""
        if isinstance(msg, FlowMod):
            self._handle_flow_mod(msg, now)
        elif isinstance(msg, PacketOut):
            self._handle_packet_out(msg, now)
        elif isinstance(msg, StatsRequest):
            self._handle_stats_request(msg, now)
        elif isinstance(msg, EchoRequest):
            self._send_to_controller(EchoReply(xid=msg.xid))
        elif isinstance(msg, BarrierRequest):
            self._send_to_controller(BarrierReply(xid=msg.xid))
        elif isinstance(msg, FeaturesRequest):
            self._send_to_controller(
                FeaturesReply(
                    xid=msg.xid,
                    n_tables=len(self.tables),
                    ports=sorted(self.ports),
                )
            )
        else:
            raise DataPlaneError(
                f"{self.name}: unsupported message {type(msg).__name__}"
            )

    def _handle_flow_mod(self, msg: FlowMod, now: float) -> None:
        self.flow_mod_count += 1
        table = self.tables[msg.table_id if msg.table_id < len(self.tables) else 0]
        if msg.command == FlowModCommand.ADD:
            entry = FlowEntry(
                match=msg.match,
                priority=msg.priority,
                actions=list(msg.actions),
                idle_timeout=msg.idle_timeout,
                hard_timeout=msg.hard_timeout,
                cookie=msg.cookie,
                app_id=msg.app_id,
            )
            table.insert(entry, now)
            self._maybe_release_buffer(msg, entry, now)
        elif msg.command in (FlowModCommand.MODIFY, FlowModCommand.MODIFY_STRICT):
            table.modify(
                msg.match,
                msg.actions,
                priority=msg.priority,
                strict=msg.command == FlowModCommand.MODIFY_STRICT,
            )
        else:
            removed = table.delete(
                msg.match,
                priority=msg.priority,
                strict=msg.command == FlowModCommand.DELETE_STRICT,
                out_port=msg.out_port,
            )
            for entry in removed:
                self._notify_removed(entry, FlowRemovedReason.DELETE, now)

    def _maybe_release_buffer(self, msg: FlowMod, entry: FlowEntry, now: float) -> None:
        """OF semantics: a FLOW_MOD naming a buffer forwards that packet."""
        buffered = self._buffered.pop(getattr(msg, "buffer_id", -1), None)
        if buffered is None:
            return
        packet, in_port = buffered
        entry.stats.record(packet.size, now)
        self._apply_actions(entry.actions, in_port, packet, now)

    def release_buffer(self, buffer_id: int, actions: List[Action], now: float) -> bool:
        """Apply ``actions`` to a buffered packet (PACKET_OUT path)."""
        buffered = self._buffered.pop(buffer_id, None)
        if buffered is None:
            return False
        packet, in_port = buffered
        self._apply_actions(actions, in_port, packet, now)
        return True

    def _handle_packet_out(self, msg: PacketOut, now: float) -> None:
        if msg.buffer_id >= 0 and self.release_buffer(msg.buffer_id, msg.actions, now):
            return
        packet = Packet(headers=dict(msg.headers), size=msg.total_len or 64)
        self._apply_actions(msg.actions, msg.in_port, packet, now)

    def _handle_stats_request(self, msg: StatsRequest, now: float) -> None:
        if isinstance(msg, FlowStatsRequest):
            entries = [
                FlowStatsEntry(
                    match=e.match,
                    priority=e.priority,
                    duration_sec=e.stats.duration(now),
                    packet_count=e.stats.packet_count,
                    byte_count=e.stats.byte_count,
                    idle_timeout=e.idle_timeout,
                    hard_timeout=e.hard_timeout,
                    cookie=e.cookie,
                    app_id=e.app_id,
                    table_id=e.table_id,
                )
                for table in self.tables
                for e in table.select(msg.match)
            ]
            self._send_to_controller(FlowStatsReply(xid=msg.xid, entries=entries))
        elif isinstance(msg, PortStatsRequest):
            if msg.port_no is None:
                entries = [p.stats_entry() for _, p in sorted(self.ports.items())]
            else:
                port = self.ports.get(msg.port_no)
                entries = [port.stats_entry()] if port else []
            self._send_to_controller(PortStatsReply(xid=msg.xid, entries=entries))
        elif isinstance(msg, AggregateStatsRequest):
            selected = [
                e for table in self.tables for e in table.select(msg.match)
            ]
            self._send_to_controller(
                AggregateStatsReply(
                    xid=msg.xid,
                    packet_count=sum(e.stats.packet_count for e in selected),
                    byte_count=sum(e.stats.byte_count for e in selected),
                    flow_count=len(selected),
                )
            )
        elif isinstance(msg, TableStatsRequest):
            entries = [
                TableStatsEntry(
                    table_id=t.table_id,
                    active_count=len(t),
                    lookup_count=t.lookup_count,
                    matched_count=t.matched_count,
                    max_entries=t.max_entries,
                )
                for t in self.tables
            ]
            self._send_to_controller(TableStatsReply(xid=msg.xid, entries=entries))
        else:
            raise DataPlaneError(
                f"{self.name}: unsupported stats request {type(msg).__name__}"
            )

    # -- housekeeping ------------------------------------------------------

    def expire_flows(self, now: float) -> int:
        """Evict timed-out entries, notifying the controller. Returns count."""
        evicted = 0
        for table in self.tables:
            for entry, reason in table.expire(now):
                self._notify_removed(entry, reason, now)
                evicted += 1
        return evicted

    def _notify_removed(
        self, entry: FlowEntry, reason: FlowRemovedReason, now: float
    ) -> None:
        self._send_to_controller(
            FlowRemoved(
                match=entry.match,
                priority=entry.priority,
                reason=reason,
                duration_sec=entry.stats.duration(now),
                packet_count=entry.stats.packet_count,
                byte_count=entry.stats.byte_count,
                cookie=entry.cookie,
                app_id=entry.app_id,
            )
        )

    def set_port_state(self, port_no: int, up: bool) -> None:
        """Administratively flip a port, emitting PORT_STATUS."""
        port = self.ports.get(port_no)
        if port is None:
            raise DataPlaneError(f"{self.name}: no such port {port_no}")
        if port.up == up:
            return
        port.up = up
        self._send_to_controller(
            PortStatus(port_no=port_no, reason=PortReason.MODIFY, link_up=up)
        )

    def flow_count(self) -> int:
        return sum(len(t) for t in self.tables)

    def __repr__(self) -> str:
        return f"OpenFlowSwitch({self.name}, ports={len(self.ports)}, flows={self.flow_count()})"
