"""Switch ports with OpenFlow-style counters.

Port counters (rx/tx packets, bytes, drops) feed Athena's port-scoped
protocol-centric features (``PORT_RX_BYTES`` etc.) and, via differencing,
the ``*_VAR`` variation features the LFA detector keys on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.openflow.messages import PortStatsEntry


@dataclass
class PortCounters:
    """Mutable rx/tx counters, mirroring ofp_port_stats."""

    rx_packets: int = 0
    tx_packets: int = 0
    rx_bytes: int = 0
    tx_bytes: int = 0
    rx_dropped: int = 0
    tx_dropped: int = 0
    rx_errors: int = 0
    tx_errors: int = 0


@dataclass
class Port:
    """A single switch port; ``peer`` is wired up by the Network."""

    port_no: int
    name: str = ""
    up: bool = True
    speed_bps: float = 1e9
    counters: PortCounters = field(default_factory=PortCounters)
    #: The Link object attached to this port (set by Network.wire).
    link: Optional[object] = None

    def record_rx(self, size: int, packets: int = 1) -> None:
        self.counters.rx_packets += packets
        self.counters.rx_bytes += size

    def record_tx(self, size: int, packets: int = 1) -> None:
        self.counters.tx_packets += packets
        self.counters.tx_bytes += size

    def record_rx_drop(self, packets: int = 1) -> None:
        self.counters.rx_dropped += packets

    def record_tx_drop(self, packets: int = 1) -> None:
        self.counters.tx_dropped += packets

    def stats_entry(self) -> PortStatsEntry:
        """Snapshot the counters as a PORT stats reply entry."""
        c = self.counters
        return PortStatsEntry(
            port_no=self.port_no,
            rx_packets=c.rx_packets,
            tx_packets=c.tx_packets,
            rx_bytes=c.rx_bytes,
            tx_bytes=c.tx_bytes,
            rx_dropped=c.rx_dropped,
            tx_dropped=c.tx_dropped,
            rx_errors=c.rx_errors,
            tx_errors=c.tx_errors,
        )
