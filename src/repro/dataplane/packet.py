"""Packets as header dictionaries.

The simulator does not carry payload bytes; a :class:`Packet` is a header
dict (the same field names :class:`repro.openflow.match.Match` uses) plus a
size.  That is exactly the information OpenFlow matching and counters need,
and it keeps per-packet simulation cheap enough to run scenario traffic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.openflow.constants import (
    ETH_TYPE_ARP,
    ETH_TYPE_IPV4,
    IPPROTO_ICMP,
    IPPROTO_TCP,
    IPPROTO_UDP,
)

_packet_ids = itertools.count(1)


def flow_headers(
    eth_src: str,
    eth_dst: str,
    ip_src: Optional[str] = None,
    ip_dst: Optional[str] = None,
    proto: Optional[int] = IPPROTO_TCP,
    sport: Optional[int] = None,
    dport: Optional[int] = None,
    eth_type: Optional[int] = None,
) -> Dict[str, Any]:
    """Build a header dict for one direction of a flow.

    The dict deliberately uses the match-field vocabulary so
    ``Match.exact_from_headers`` and feature indexing work unchanged.
    """
    if eth_type is None:
        eth_type = ETH_TYPE_IPV4 if ip_src else ETH_TYPE_ARP
    headers: Dict[str, Any] = {
        "eth_src": eth_src,
        "eth_dst": eth_dst,
        "eth_type": eth_type,
    }
    if ip_src is not None:
        headers["ip_src"] = ip_src
        headers["ip_dst"] = ip_dst
        headers["ip_proto"] = proto
        if proto in (IPPROTO_TCP, IPPROTO_UDP):
            headers["tcp_src"] = sport
            headers["tcp_dst"] = dport
    return headers


def reverse_headers(headers: Dict[str, Any]) -> Dict[str, Any]:
    """Header dict of the reverse direction of a flow (for pair-flow logic)."""
    flipped = dict(headers)
    for a, b in (("eth_src", "eth_dst"), ("ip_src", "ip_dst"), ("tcp_src", "tcp_dst")):
        if a in headers or b in headers:
            flipped[a], flipped[b] = headers.get(b), headers.get(a)
    return {k: v for k, v in flipped.items() if v is not None}


@dataclass
class Packet:
    """A simulated packet: headers + size + trace metadata."""

    headers: Dict[str, Any]
    size: int = 1000
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    created_at: float = 0.0
    hops: int = 0

    def header(self, name: str, default: Any = None) -> Any:
        return self.headers.get(name, default)

    @property
    def is_ip(self) -> bool:
        return self.headers.get("eth_type") == ETH_TYPE_IPV4

    @property
    def is_tcp(self) -> bool:
        return self.headers.get("ip_proto") == IPPROTO_TCP

    @property
    def is_udp(self) -> bool:
        return self.headers.get("ip_proto") == IPPROTO_UDP

    @property
    def is_icmp(self) -> bool:
        return self.headers.get("ip_proto") == IPPROTO_ICMP

    def rewritten(self, **updates: Any) -> "Packet":
        """Copy of the packet with some header fields replaced (set-field)."""
        headers = dict(self.headers)
        headers.update(updates)
        return Packet(
            headers=headers,
            size=self.size,
            packet_id=self.packet_id,
            created_at=self.created_at,
            hops=self.hops,
        )
