"""End hosts.

A :class:`Host` owns an identity (MAC + IP), an attachment point, receive
counters, and an optional receive callback so scenario code can observe
deliveries (e.g. the quarantine honeypot counts redirected packets).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.dataplane.packet import Packet
from repro.types import ConnectPoint, HostId


class Host:
    """A simulated end host attached to one switch port."""

    def __init__(
        self,
        name: str,
        mac: str,
        ip: str,
        attachment: Optional[ConnectPoint] = None,
    ) -> None:
        self.name = name
        self.host_id = HostId(mac=mac, ip=ip)
        self.attachment = attachment
        self.rx_packets = 0
        self.rx_bytes = 0
        self.on_receive: Optional[Callable[[Packet, float], None]] = None
        #: The network this host is wired into (set by Network.add_host).
        self.network: Optional[object] = None

    @property
    def mac(self) -> str:
        return self.host_id.mac

    @property
    def ip(self) -> str:
        return self.host_id.ip

    def deliver(self, packet: Packet, now: float) -> None:
        """Called by the network when a packet reaches this host."""
        self.rx_packets += 1
        self.rx_bytes += packet.size
        if self.on_receive is not None:
            self.on_receive(packet, now)

    def __repr__(self) -> str:
        return f"Host({self.name}, {self.host_id})"
