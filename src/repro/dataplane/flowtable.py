"""Priority-ordered flow tables.

Lookup semantics follow the OpenFlow specification: the highest-priority
entry whose match covers the packet wins; among equal priorities the more
specific match wins (a deterministic tie-break the spec leaves undefined).
The table also implements strict/non-strict modify and delete, and timeout
scanning that yields evicted entries so the switch can emit FLOW_REMOVED.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import DataPlaneError
from repro.openflow.constants import FlowRemovedReason
from repro.openflow.flow import FlowEntry
from repro.openflow.match import Match


class FlowTable:
    """One flow table of a switch."""

    def __init__(self, table_id: int = 0, max_entries: int = 65536) -> None:
        self.table_id = table_id
        self.max_entries = max_entries
        self._entries: List[FlowEntry] = []
        self._sorted = True
        self.lookup_count = 0
        self.matched_count = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        self._ensure_sorted()
        return iter(list(self._entries))

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._entries.sort(key=FlowEntry.sort_key)
            self._sorted = True

    @property
    def entries(self) -> List[FlowEntry]:
        """Entries in match-precedence order (copy)."""
        self._ensure_sorted()
        return list(self._entries)

    def insert(self, entry: FlowEntry, now: float) -> FlowEntry:
        """Add an entry; an identical (match, priority) pair is replaced,
        preserving OpenFlow overlap semantics for ADD."""
        if len(self._entries) >= self.max_entries:
            raise DataPlaneError(
                f"flow table {self.table_id} full ({self.max_entries} entries)"
            )
        self._entries = [
            existing
            for existing in self._entries
            if not (
                existing.priority == entry.priority
                and existing.match == entry.match
            )
        ]
        entry.table_id = self.table_id
        entry.stats.install_time = now
        entry.stats.last_packet_time = now
        self._entries.append(entry)
        self._sorted = False
        return entry

    def lookup(self, headers: Dict[str, Any]) -> Optional[FlowEntry]:
        """Find the winning entry for a packet-header dict."""
        self._ensure_sorted()
        self.lookup_count += 1
        for entry in self._entries:
            if entry.match.matches(headers):
                self.matched_count += 1
                return entry
        return None

    def modify(
        self,
        match: Match,
        actions,
        priority: Optional[int] = None,
        strict: bool = False,
    ) -> int:
        """MODIFY / MODIFY_STRICT: update actions of covered entries.

        Returns the number of entries touched.  Non-strict modify touches
        every entry whose match is a subset of ``match``; strict requires an
        exact (match, priority) pair.
        """
        touched = 0
        for entry in self._entries:
            if strict:
                hit = entry.match == match and (
                    priority is None or entry.priority == priority
                )
            else:
                hit = entry.match.is_subset_of(match)
            if hit:
                entry.actions = list(actions)
                touched += 1
        return touched

    def delete(
        self,
        match: Match,
        priority: Optional[int] = None,
        strict: bool = False,
        out_port: Optional[int] = None,
    ) -> List[FlowEntry]:
        """DELETE / DELETE_STRICT: remove covered entries and return them."""
        kept: List[FlowEntry] = []
        removed: List[FlowEntry] = []
        for entry in self._entries:
            if strict:
                hit = entry.match == match and (
                    priority is None or entry.priority == priority
                )
            else:
                hit = entry.match.is_subset_of(match)
            if hit and out_port is not None:
                hit = any(
                    getattr(action, "port", None) == out_port
                    for action in entry.actions
                )
            (removed if hit else kept).append(entry)
        self._entries = kept
        return removed

    def expire(self, now: float) -> List[Tuple[FlowEntry, FlowRemovedReason]]:
        """Evict timed-out entries, returning them with the eviction reason."""
        expired: List[Tuple[FlowEntry, FlowRemovedReason]] = []
        kept: List[FlowEntry] = []
        for entry in self._entries:
            if entry.is_hard_expired(now):
                expired.append((entry, FlowRemovedReason.HARD_TIMEOUT))
            elif entry.is_idle_expired(now):
                expired.append((entry, FlowRemovedReason.IDLE_TIMEOUT))
            else:
                kept.append(entry)
        self._entries = kept
        return expired

    def find(self, match: Match, priority: Optional[int] = None) -> Optional[FlowEntry]:
        """Exact (match, priority) lookup, for tests and the controller."""
        for entry in self._entries:
            if entry.match == match and (
                priority is None or entry.priority == priority
            ):
                return entry
        return None

    def select(self, match: Match) -> Iterable[FlowEntry]:
        """Entries whose match is a subset of ``match`` (stats filtering)."""
        return [e for e in self._entries if e.match.is_subset_of(match)]
