"""Priority-ordered flow tables.

Lookup semantics follow the OpenFlow specification: the highest-priority
entry whose match covers the packet wins; among equal priorities the more
specific match wins (a deterministic tie-break the spec leaves undefined).
The table also implements strict/non-strict modify and delete, and timeout
scanning that yields evicted entries so the switch can emit FLOW_REMOVED.

Two implementations share this class (docs/PERF.md):

* the **fast path** (default) keeps three auxiliary structures in sync —
  an exact-match hash index from a match's full header tuple to its
  entries, a priority-ordered bucket of wildcard entries consulted only
  up to the exact hit's precedence, and a lazy min-heap of expiry
  deadlines so an idle table costs O(1) per timeout tick.  Inserts
  bisect into the precedence-sorted list instead of re-sorting.
* the **reference path** (``ATHENA_FAST_PATH=0``) is the original
  linear-scan implementation, retained verbatim as the equivalence
  oracle for scenario tests and ``benchmarks/bench_hotpath.py``.

Both paths return identical winners, counters, and eviction sequences;
evictions and stats selections are reported in precedence order.
"""

# athena-lint: hot-path

from __future__ import annotations

import heapq
from bisect import bisect_left, insort_right
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import DataPlaneError
from repro.openflow.constants import FlowRemovedReason
from repro.openflow.flow import FlowEntry
from repro.openflow.match import MATCH_FIELDS, Match
from repro.perf import fastpath as _fastpath

#: Header names probed by the exact-match index, frozen locally so the
#: lookup loop never re-reads the module global.
_FIELDS = MATCH_FIELDS


class FlowTable:
    """One flow table of a switch."""

    def __init__(
        self,
        table_id: int = 0,
        max_entries: int = 65536,
        fast_path: Optional[bool] = None,
    ) -> None:
        self.table_id = table_id
        self.max_entries = max_entries
        self.fast_path = _fastpath.ENABLED if fast_path is None else bool(fast_path)
        self._entries: List[FlowEntry] = []
        self._sorted = True
        self.lookup_count = 0
        self.matched_count = 0
        # Fast-path structures (empty and unused on the reference path):
        # match key tuple -> entries with exactly that match, best first.
        self._by_match: Dict[Tuple[Any, ...], List[FlowEntry]] = {}
        #: Entries with at least one wildcarded field, precedence-sorted.
        self._wildcards: List[FlowEntry] = []
        #: Lazy expiry heap of (deadline, seq, entry); stale items are
        #: dropped on pop by checking the entry is still live.
        self._heap: List[Tuple[float, int, FlowEntry]] = []
        self._live: Dict[int, FlowEntry] = {}
        self._heap_seq = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        self._ensure_sorted()
        return iter(list(self._entries))

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._entries.sort(key=FlowEntry.sort_key)
            self._sorted = True

    @property
    def entries(self) -> List[FlowEntry]:
        """Entries in match-precedence order (copy)."""
        self._ensure_sorted()
        return list(self._entries)

    # -- fast-path index maintenance --------------------------------------

    def _index_insert(self, entry: FlowEntry) -> None:
        insort_right(self._entries, entry, key=FlowEntry.sort_key)
        key = entry.match.key_tuple()
        bucket = self._by_match.setdefault(key, [])
        position = 0
        sort_key = entry.sort_key()
        while position < len(bucket) and bucket[position].sort_key() <= sort_key:
            position += 1
        bucket.insert(position, entry)
        if entry.match.specificity() < len(_FIELDS):
            insort_right(self._wildcards, entry, key=FlowEntry.sort_key)
        self._live[id(entry)] = entry
        deadline = self._next_deadline(entry)
        if deadline is not None:
            self._heap_seq += 1
            heapq.heappush(self._heap, (deadline, self._heap_seq, entry))

    def _index_remove(self, entry: FlowEntry) -> None:
        self._remove_from_sorted(self._entries, entry)
        key = entry.match.key_tuple()
        bucket = self._by_match.get(key)
        if bucket is not None:
            bucket[:] = [e for e in bucket if e is not entry]
            if not bucket:
                del self._by_match[key]
        if entry.match.specificity() < len(_FIELDS):
            self._remove_from_sorted(self._wildcards, entry)
        self._live.pop(id(entry), None)
        # Any heap item for the entry goes stale and is skipped on pop.

    @staticmethod
    def _remove_from_sorted(entries: List[FlowEntry], entry: FlowEntry) -> None:
        """Remove ``entry`` (by identity) from a precedence-sorted list."""
        position = bisect_left(entries, entry.sort_key(), key=FlowEntry.sort_key)
        for index in range(position, len(entries)):
            if entries[index] is entry:
                del entries[index]
                return
        # Defensive: identity not found at its sort position (should not
        # happen); fall back to a full identity scan.
        for index, existing in enumerate(entries):
            if existing is entry:
                del entries[index]
                return

    @staticmethod
    def _next_deadline(entry: FlowEntry) -> Optional[float]:
        """Earliest instant the entry could expire, or None if immortal."""
        deadline: Optional[float] = None
        if entry.hard_timeout > 0:
            deadline = entry.stats.install_time + entry.hard_timeout
        if entry.idle_timeout > 0:
            reference = max(entry.stats.last_packet_time, entry.stats.install_time)
            idle_deadline = reference + entry.idle_timeout
            if deadline is None or idle_deadline < deadline:
                deadline = idle_deadline
        return deadline

    # -- writes ------------------------------------------------------------

    def insert(self, entry: FlowEntry, now: float) -> FlowEntry:
        """Add an entry; an identical (match, priority) pair is replaced,
        preserving OpenFlow overlap semantics for ADD."""
        if len(self._entries) >= self.max_entries:
            raise DataPlaneError(
                f"flow table {self.table_id} full ({self.max_entries} entries)"
            )
        if self.fast_path:
            bucket = self._by_match.get(entry.match.key_tuple(), ())
            for existing in list(bucket):
                if existing.priority == entry.priority:
                    self._index_remove(existing)
            entry.table_id = self.table_id
            entry.stats.install_time = now
            entry.stats.last_packet_time = now
            self._index_insert(entry)
            return entry
        self._entries = [
            existing
            for existing in self._entries
            if not (
                existing.priority == entry.priority
                and existing.match == entry.match
            )
        ]
        entry.table_id = self.table_id
        entry.stats.install_time = now
        entry.stats.last_packet_time = now
        self._entries.append(entry)
        self._sorted = False
        return entry

    # -- lookup ------------------------------------------------------------

    def lookup(self, headers: Dict[str, Any]) -> Optional[FlowEntry]:
        """Find the winning entry for a packet-header dict."""
        if self.fast_path:
            return self._lookup_fast(headers)
        self._ensure_sorted()
        self.lookup_count += 1
        for entry in self._entries:
            if entry.match.matches(headers):
                self.matched_count += 1
                return entry
        return None

    def _lookup_fast(self, headers: Dict[str, Any]) -> Optional[FlowEntry]:
        self.lookup_count += 1
        get = headers.get
        try:
            bucket = self._by_match.get((
                get("in_port"),
                get("eth_src"),
                get("eth_dst"),
                get("eth_type"),
                get("vlan_id"),
                get("ip_src"),
                get("ip_dst"),
                get("ip_proto"),
                get("ip_tos"),
                get("tcp_src"),
                get("tcp_dst"),
            ))
        except TypeError:
            # Unhashable header value: no exact entry can cover it either,
            # so the wildcard scan below decides alone.
            bucket = None
        exact = bucket[0] if bucket else None
        if exact is None:
            for candidate in self._wildcards:
                if candidate.match.matches(headers):
                    self.matched_count += 1
                    return candidate
            return None
        # The exact hit has maximal specificity among covering entries, so
        # only strictly higher-precedence wildcards can still beat it.
        limit = exact.sort_key()
        for candidate in self._wildcards:
            if candidate.sort_key() >= limit:
                break
            if candidate.match.matches(headers):
                self.matched_count += 1
                return candidate
        self.matched_count += 1
        return exact

    # -- modify / delete ----------------------------------------------------

    def modify(
        self,
        match: Match,
        actions,
        priority: Optional[int] = None,
        strict: bool = False,
    ) -> int:
        """MODIFY / MODIFY_STRICT: update actions of covered entries.

        Returns the number of entries touched.  Non-strict modify touches
        every entry whose match is a subset of ``match``; strict requires an
        exact (match, priority) pair.  Entries are visited in precedence
        order on both paths, and strict modify resolves its targets through
        the same exact-match index insert uses.
        """
        if strict and self.fast_path:
            touched = 0
            for entry in list(self._by_match.get(match.key_tuple(), ())):
                if priority is None or entry.priority == priority:
                    entry.actions = list(actions)
                    touched += 1
            return touched
        self._ensure_sorted()
        touched = 0
        for entry in self._entries:
            if strict:
                hit = entry.match == match and (
                    priority is None or entry.priority == priority
                )
            else:
                hit = entry.match.is_subset_of(match)
            if hit:
                entry.actions = list(actions)
                touched += 1
        return touched

    def delete(
        self,
        match: Match,
        priority: Optional[int] = None,
        strict: bool = False,
        out_port: Optional[int] = None,
    ) -> List[FlowEntry]:
        """DELETE / DELETE_STRICT: remove covered entries and return them."""
        self._ensure_sorted()
        kept: List[FlowEntry] = []
        removed: List[FlowEntry] = []
        for entry in self._entries:
            if strict:
                hit = entry.match == match and (
                    priority is None or entry.priority == priority
                )
            else:
                hit = entry.match.is_subset_of(match)
            if hit and out_port is not None:
                # Management path (flow-mod, not per-packet); the dynamic
                # port probe across action kinds is fine here.
                hit = any(
                    getattr(action, "port", None) == out_port  # athena-lint: disable=ATH602
                    for action in entry.actions
                )
            (removed if hit else kept).append(entry)
        if self.fast_path:
            for entry in removed:
                self._index_remove(entry)
        else:
            self._entries = kept
        return removed

    # -- expiry --------------------------------------------------------------

    def expire(self, now: float) -> List[Tuple[FlowEntry, FlowRemovedReason]]:
        """Evict timed-out entries, returning them with the eviction reason.

        Evictions are reported in precedence order on both paths.  The fast
        path consults the deadline heap first, so a tick with nothing to
        evict costs O(1) regardless of table size.
        """
        if self.fast_path:
            return self._expire_fast(now)
        self._ensure_sorted()
        expired: List[Tuple[FlowEntry, FlowRemovedReason]] = []
        kept: List[FlowEntry] = []
        for entry in self._entries:
            if entry.is_hard_expired(now):
                expired.append((entry, FlowRemovedReason.HARD_TIMEOUT))
            elif entry.is_idle_expired(now):
                expired.append((entry, FlowRemovedReason.IDLE_TIMEOUT))
            else:
                kept.append(entry)
        self._entries = kept
        return expired

    def _expire_fast(self, now: float) -> List[Tuple[FlowEntry, FlowRemovedReason]]:
        heap = self._heap
        doomed: Dict[int, FlowRemovedReason] = {}
        while heap and heap[0][0] <= now:
            _deadline, _seq, entry = heapq.heappop(heap)
            if self._live.get(id(entry)) is not entry:
                continue  # removed or replaced since scheduling
            if entry.is_hard_expired(now):
                doomed[id(entry)] = FlowRemovedReason.HARD_TIMEOUT
            elif entry.is_idle_expired(now):
                doomed[id(entry)] = FlowRemovedReason.IDLE_TIMEOUT
            else:
                # Traffic pushed the idle deadline out; reschedule.  The
                # new deadline is strictly in the future, so this loop
                # always terminates.
                deadline = self._next_deadline(entry)
                if deadline is not None:
                    self._heap_seq += 1
                    heapq.heappush(heap, (deadline, self._heap_seq, entry))
        if not doomed:
            return []
        expired = [
            (entry, doomed[id(entry)])
            for entry in self._entries
            if id(entry) in doomed
        ]
        for entry, _reason in expired:
            self._index_remove(entry)
        return expired

    # -- queries -------------------------------------------------------------

    def find(self, match: Match, priority: Optional[int] = None) -> Optional[FlowEntry]:
        """Exact (match, priority) lookup, for tests and the controller."""
        if self.fast_path:
            for entry in self._by_match.get(match.key_tuple(), ()):
                if priority is None or entry.priority == priority:
                    return entry
            return None
        self._ensure_sorted()
        for entry in self._entries:
            if entry.match == match and (
                priority is None or entry.priority == priority
            ):
                return entry
        return None

    def select(self, match: Match) -> Iterable[FlowEntry]:
        """Entries whose match is a subset of ``match`` (stats filtering)."""
        self._ensure_sorted()
        return [e for e in self._entries if e.match.is_subset_of(match)]
