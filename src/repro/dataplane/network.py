"""The network container: switches, hosts, links, and packet transport.

:class:`Network` owns the wiring between data-plane elements and the
discrete-event simulator.  It is deliberately controller-agnostic — the
controller package attaches itself through each switch's control channel —
so the same topology can run bare (Cbench), under a single controller, or
under a three-instance cluster as in the paper's evaluation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.dataplane.host import Host
from repro.dataplane.link import Link, LinkEndpoint
from repro.dataplane.packet import Packet
from repro.dataplane.switch import OpenFlowSwitch
from repro.errors import DataPlaneError
from repro.simkernel import Simulator
from repro.types import ConnectPoint, Dpid


class Network:
    """A data plane: topology plus packet transport over the simulator."""

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self.sim = sim or Simulator()
        self.switches: Dict[Dpid, OpenFlowSwitch] = {}
        self.hosts: Dict[str, Host] = {}
        self.links: List[Link] = []
        self._attachments: Dict[ConnectPoint, Link] = {}
        self._host_links: Dict[str, Link] = {}
        self._expiry_interval = 1.0
        self._expiry_armed = False

    # -- construction ------------------------------------------------------

    def add_switch(
        self, dpid: Dpid, name: str = "", hardware: bool = False
    ) -> OpenFlowSwitch:
        if dpid in self.switches:
            raise DataPlaneError(f"duplicate dpid {dpid}")
        switch = OpenFlowSwitch(dpid=dpid, name=name, hardware=hardware)
        switch.attach_transmitter(self._transmit)
        self.switches[dpid] = switch
        return switch

    def add_host(self, name: str, mac: str, ip: str) -> Host:
        if name in self.hosts:
            raise DataPlaneError(f"duplicate host {name}")
        host = Host(name=name, mac=mac, ip=ip)
        host.network = self
        self.hosts[name] = host
        return host

    def add_link(
        self,
        a_dpid: Dpid,
        a_port: int,
        b_dpid: Dpid,
        b_port: int,
        latency: float = 0.001,
        capacity_bps: float = 1e9,
    ) -> Link:
        """Wire two switches together, creating the ports as needed."""
        point_a = ConnectPoint(a_dpid, a_port)
        point_b = ConnectPoint(b_dpid, b_port)
        for point in (point_a, point_b):
            if point in self._attachments:
                raise DataPlaneError(f"port already wired: {point}")
            switch = self._require_switch(point.dpid)
            if point.port not in switch.ports:
                switch.add_port(point.port, speed_bps=capacity_bps)
        link = Link(
            LinkEndpoint(switch_point=point_a),
            LinkEndpoint(switch_point=point_b),
            latency=latency,
            capacity_bps=capacity_bps,
        )
        self.links.append(link)
        self._attachments[point_a] = link
        self._attachments[point_b] = link
        return link

    def attach_host(
        self,
        host_name: str,
        dpid: Dpid,
        port: int,
        latency: float = 0.0005,
        capacity_bps: float = 1e9,
    ) -> Link:
        """Wire a host to an edge switch port."""
        host = self._require_host(host_name)
        point = ConnectPoint(dpid, port)
        if point in self._attachments:
            raise DataPlaneError(f"port already wired: {point}")
        switch = self._require_switch(dpid)
        if port not in switch.ports:
            switch.add_port(port, speed_bps=capacity_bps)
        link = Link(
            LinkEndpoint(switch_point=point),
            LinkEndpoint(host_name=host_name),
            latency=latency,
            capacity_bps=capacity_bps,
        )
        self.links.append(link)
        self._attachments[point] = link
        self._host_links[host_name] = link
        host.attachment = point
        return link

    def _require_switch(self, dpid: Dpid) -> OpenFlowSwitch:
        switch = self.switches.get(dpid)
        if switch is None:
            raise DataPlaneError(f"unknown switch dpid {dpid}")
        return switch

    def _require_host(self, name: str) -> Host:
        host = self.hosts.get(name)
        if host is None:
            raise DataPlaneError(f"unknown host {name}")
        return host

    # -- transport ---------------------------------------------------------

    def _transmit(self, switch: OpenFlowSwitch, port_no: int, packet: Packet, now: float) -> None:
        """Carry a packet leaving ``switch``:``port_no`` across its link."""
        point = ConnectPoint(switch.dpid, port_no)
        link = self._attachments.get(point)
        if link is None:
            # Unwired port: packet leaves the modeled network.
            return
        endpoint = link.a if link.a.switch_point == point else link.b
        direction = link.direction_from(endpoint)
        if not link.try_send(direction, packet.size, now):
            return
        destination = link.other_end(endpoint)
        packet = Packet(
            headers=packet.headers,
            size=packet.size,
            packet_id=packet.packet_id,
            created_at=packet.created_at,
            hops=packet.hops + 1,
        )
        if destination.is_host:
            host = self.hosts[destination.host_name]
            self.sim.after(link.latency, lambda: host.deliver(packet, self.sim.now))
        else:
            target = self.switches[destination.switch_point.dpid]
            in_port = destination.switch_point.port
            self.sim.after(
                link.latency,
                lambda: target.receive_packet(in_port, packet, self.sim.now),
            )

    def inject_from_host(self, host_name: str, packet: Packet, when: Optional[float] = None) -> None:
        """Schedule a packet originating at a host."""
        host = self._require_host(host_name)
        link = self._host_links.get(host_name)
        if link is None or host.attachment is None:
            raise DataPlaneError(f"host {host_name} is not attached")
        point = host.attachment
        switch = self.switches[point.dpid]

        def deliver() -> None:
            now = self.sim.now
            direction = link.direction_from(
                link.b if link.b.is_host else link.a
            )
            if link.try_send(direction, packet.size, now):
                switch.receive_packet(point.port, packet, now)

        when = self.sim.now if when is None else when
        self.sim.at(when + link.latency, deliver)

    # -- housekeeping --------------------------------------------------------

    def start_flow_expiry(self, interval: float = 1.0) -> None:
        """Arm the periodic flow-timeout scan on every switch."""
        if self._expiry_armed:
            return
        self._expiry_armed = True
        self._expiry_interval = interval

        def sweep() -> None:
            for switch in self.switches.values():
                switch.expire_flows(self.sim.now)

        self.sim.every(interval, sweep)

    # -- introspection -------------------------------------------------------

    def link_between(self, a: Dpid, b: Dpid) -> Optional[Link]:
        """The switch-switch link between two dpids, if wired."""
        for link in self.links:
            ends = link.endpoints()
            if any(e.is_host for e in ends):
                continue
            dpids = {ends[0].switch_point.dpid, ends[1].switch_point.dpid}
            if dpids == {a, b}:
                return link
        return None

    def switch_links(self) -> Iterable[Tuple[ConnectPoint, ConnectPoint]]:
        """All switch-to-switch adjacencies as connect-point pairs."""
        for link in self.links:
            a, b = link.endpoints()
            if not a.is_host and not b.is_host:
                yield (a.switch_point, b.switch_point)

    def host_by_ip(self, ip: str) -> Optional[Host]:
        for host in self.hosts.values():
            if host.ip == ip:
                return host
        return None

    def host_by_mac(self, mac: str) -> Optional[Host]:
        for host in self.hosts.values():
            if host.mac == mac:
                return host
        return None

    def summary(self) -> Dict[str, int]:
        """Row used by the Table VI environment bench."""
        return {
            "switches": len(self.switches),
            "physical_switches": sum(
                1 for s in self.switches.values() if s.hardware
            ),
            "ovs_switches": sum(
                1 for s in self.switches.values() if not s.hardware
            ),
            "links": len(self.links),
            "hosts": len(self.hosts),
        }
