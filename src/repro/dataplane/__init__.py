"""Discrete-event OpenFlow data-plane simulator.

This package replaces the paper's physical Pica8/Arista switches, OVS
instances and Mininet environment.  Switches hold real flow tables with
priority matching, per-flow and per-port counters, and idle/hard timeouts;
links carry packets with latency and capacity; hosts inject traffic.  The
counters produced here are the ground truth that Athena's Feature Generator
turns into features.
"""

from repro.dataplane.host import Host
from repro.dataplane.link import Link
from repro.dataplane.network import Network
from repro.dataplane.packet import Packet, flow_headers
from repro.dataplane.port import Port
from repro.dataplane.switch import OpenFlowSwitch
from repro.dataplane.flowtable import FlowTable

__all__ = [
    "Host",
    "Link",
    "Network",
    "Packet",
    "flow_headers",
    "Port",
    "OpenFlowSwitch",
    "FlowTable",
]
