"""Links between attachment points.

A link connects two endpoints (switch ports or hosts), has a propagation
latency and a capacity, and tracks how many bytes it carried inside the
current accounting window so utilisation features and the NAE/LFA scenarios
can observe congestion.  Delivery is scheduled on the simulator with the
link latency; packets beyond capacity within a window are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.types import ConnectPoint


@dataclass
class LinkEndpoint:
    """One side of a link: either a switch connect-point or a host name."""

    switch_point: Optional[ConnectPoint] = None
    host_name: Optional[str] = None

    @property
    def is_host(self) -> bool:
        return self.host_name is not None

    def __str__(self) -> str:
        return self.host_name if self.is_host else str(self.switch_point)


class Link:
    """A bidirectional link with latency, capacity and utilisation tracking."""

    def __init__(
        self,
        a: LinkEndpoint,
        b: LinkEndpoint,
        latency: float = 0.001,
        capacity_bps: float = 1e9,
        window: float = 1.0,
    ) -> None:
        self.a = a
        self.b = b
        self.latency = latency
        self.capacity_bps = capacity_bps
        self.window = window
        self.up = True
        # Per-direction byte accounting for the current window.
        self._window_start = 0.0
        self._window_bytes = {0: 0, 1: 0}
        self.total_bytes = {0: 0, 1: 0}
        self.total_packets = {0: 0, 1: 0}
        self.dropped_packets = {0: 0, 1: 0}

    def endpoints(self) -> Tuple[LinkEndpoint, LinkEndpoint]:
        return (self.a, self.b)

    def other_end(self, endpoint: LinkEndpoint) -> LinkEndpoint:
        return self.b if endpoint is self.a else self.a

    def direction_from(self, endpoint: LinkEndpoint) -> int:
        """0 for a→b traffic, 1 for b→a traffic."""
        return 0 if endpoint is self.a else 1

    def _roll_window(self, now: float) -> None:
        if now - self._window_start >= self.window:
            self._window_start = now - ((now - self._window_start) % self.window)
            self._window_bytes = {0: 0, 1: 0}

    def try_send(self, direction: int, size: int, now: float) -> bool:
        """Account a packet; returns False (drop) if the window is saturated."""
        if not self.up:
            self.dropped_packets[direction] += 1
            return False
        self._roll_window(now)
        budget = self.capacity_bps * self.window / 8.0
        if self._window_bytes[direction] + size > budget:
            self.dropped_packets[direction] += 1
            return False
        self._window_bytes[direction] += size
        self.total_bytes[direction] += size
        self.total_packets[direction] += 1
        return True

    def utilization(self, direction: int, now: float) -> float:
        """Fraction of capacity used in the current window (0..1)."""
        self._roll_window(now)
        budget = self.capacity_bps * self.window / 8.0
        if budget <= 0:
            return 0.0
        return min(1.0, self._window_bytes[direction] / budget)

    def __str__(self) -> str:
        return f"Link({self.a} <-> {self.b}, {self.capacity_bps / 1e6:.0f}Mbps)"
