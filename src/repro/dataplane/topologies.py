"""Topology builders, including the paper's evaluation environments.

* :func:`braga_topology` — the 3-switch / 3-link / 1-controller environment
  of Braga et al. [10], the prior-work row of Table VI.
* :func:`enterprise_topology` — the paper's Figure 7 environment: 18 OpenFlow
  switches (6 physical core, 12 OVS edge), 48 switch-to-switch links, three
  controller domains.
* :func:`nae_topology` — the Figure 8 seven-switch environment for the
  Network Application Effectiveness scenario (edge switches S1/S5, alternate
  S3 vs S6/S7 paths, servers behind S4, a security device on S6).
* generic :func:`linear_topology` and :func:`tree_topology` for tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dataplane.network import Network
from repro.simkernel import Simulator
from repro.types import ip_from_int, mac_from_int

#: First host port number on every switch; lower ports carry inter-switch links.
HOST_PORT_BASE = 100


@dataclass
class TopologyInfo:
    """A built network plus layout metadata the controller cluster needs."""

    network: Network
    #: Controller domain assignments: domain index -> list of dpids.
    domains: List[List[int]] = field(default_factory=list)
    #: Hosts by role, e.g. {"clients": [...], "servers": [...]}.
    roles: Dict[str, List[str]] = field(default_factory=dict)
    #: Dpid of notable switches, e.g. {"security_device": 6}.
    landmarks: Dict[str, int] = field(default_factory=dict)


def _host_identity(index: int) -> Tuple[str, str]:
    """Deterministic (mac, ip) pair for the index-th host."""
    return mac_from_int(0x0A0000000000 + index), ip_from_int((10 << 24) + index)


def add_hosts(
    network: Network,
    dpid: int,
    count: int,
    prefix: str,
    start_index: int,
) -> List[str]:
    """Attach ``count`` hosts to a switch, returning their names."""
    names = []
    for offset in range(count):
        index = start_index + offset
        mac, ip = _host_identity(index)
        name = f"{prefix}{index}"
        network.add_host(name, mac, ip)
        network.attach_host(name, dpid, HOST_PORT_BASE + offset)
        names.append(name)
    return names


def linear_topology(
    n_switches: int = 3,
    hosts_per_switch: int = 1,
    sim: Optional[Simulator] = None,
) -> TopologyInfo:
    """S1 - S2 - ... - Sn with hosts hanging off each switch."""
    network = Network(sim)
    for dpid in range(1, n_switches + 1):
        network.add_switch(dpid, name=f"s{dpid}")
    for dpid in range(1, n_switches):
        network.add_link(dpid, 2, dpid + 1, 1)
    hosts: List[str] = []
    index = 1
    for dpid in range(1, n_switches + 1):
        hosts.extend(add_hosts(network, dpid, hosts_per_switch, "h", index))
        index += hosts_per_switch
    return TopologyInfo(
        network=network,
        domains=[list(network.switches)],
        roles={"hosts": hosts},
    )


def tree_topology(
    depth: int = 2,
    fanout: int = 2,
    hosts_per_leaf: int = 1,
    sim: Optional[Simulator] = None,
) -> TopologyInfo:
    """A rooted tree of switches with hosts on the leaves."""
    network = Network(sim)
    next_dpid = 1
    root = next_dpid
    network.add_switch(root, name=f"s{root}")
    next_dpid += 1
    frontier = [root]
    leaves = [root] if depth == 0 else []
    for level in range(depth):
        new_frontier = []
        for parent in frontier:
            for child_idx in range(fanout):
                child = next_dpid
                next_dpid += 1
                network.add_switch(child, name=f"s{child}")
                network.add_link(parent, 10 + child_idx + len(new_frontier), child, 1)
                new_frontier.append(child)
        frontier = new_frontier
        if level == depth - 1:
            leaves = frontier
    hosts: List[str] = []
    index = 1
    for leaf in leaves:
        hosts.extend(add_hosts(network, leaf, hosts_per_leaf, "h", index))
        index += hosts_per_leaf
    return TopologyInfo(
        network=network,
        domains=[list(network.switches)],
        roles={"hosts": hosts},
    )


def braga_topology(
    hosts_per_switch: int = 4, sim: Optional[Simulator] = None
) -> TopologyInfo:
    """The environment of [10]: 3 switches in a triangle, one controller."""
    network = Network(sim)
    for dpid in (1, 2, 3):
        network.add_switch(dpid, name=f"s{dpid}")
    network.add_link(1, 2, 2, 1)
    network.add_link(2, 2, 3, 1)
    network.add_link(3, 2, 1, 1)
    hosts: List[str] = []
    index = 1
    for dpid in (1, 2, 3):
        hosts.extend(add_hosts(network, dpid, hosts_per_switch, "h", index))
        index += hosts_per_switch
    return TopologyInfo(
        network=network,
        domains=[[1, 2, 3]],
        roles={"hosts": hosts},
    )


def enterprise_topology(
    hosts_per_edge: int = 2, sim: Optional[Simulator] = None
) -> TopologyInfo:
    """The paper's Figure 7 environment.

    Six physical core switches (dpids 1-6) in a full mesh (15 links), twelve
    OVS edge switches (dpids 11-22) dual-homed to consecutive core switches
    (24 links), and a ring of nine edge-to-edge cross-links (9 links) — 48
    switch-to-switch links total, managed as three controller domains of six
    switches each.
    """
    network = Network(sim)
    core = list(range(1, 7))
    edge = list(range(11, 23))
    for dpid in core:
        network.add_switch(dpid, name=f"core{dpid}", hardware=True)
    for dpid in edge:
        network.add_switch(dpid, name=f"edge{dpid}")

    port_counter: Dict[int, int] = {dpid: 1 for dpid in core + edge}

    def next_port(dpid: int) -> int:
        port = port_counter[dpid]
        port_counter[dpid] += 1
        return port

    links = 0
    # Core full mesh: C(6,2) = 15 links.
    for i, a in enumerate(core):
        for b in core[i + 1 :]:
            network.add_link(a, next_port(a), b, next_port(b))
            links += 1
    # Each edge switch dual-homed to two consecutive cores: 24 links.
    for idx, dpid in enumerate(edge):
        primary = core[idx % len(core)]
        secondary = core[(idx + 1) % len(core)]
        network.add_link(dpid, next_port(dpid), primary, next_port(primary))
        network.add_link(dpid, next_port(dpid), secondary, next_port(secondary))
        links += 2
    # Edge ring cross-links between nine consecutive edge pairs: 9 links.
    for idx in range(9):
        a, b = edge[idx], edge[idx + 1]
        network.add_link(a, next_port(a), b, next_port(b))
        links += 1
    assert links == 48, f"expected 48 switch links, built {links}"

    hosts: List[str] = []
    index = 1
    for dpid in edge:
        hosts.extend(add_hosts(network, dpid, hosts_per_edge, "h", index))
        index += hosts_per_edge

    # Three controller domains: two cores + four edges each (six switches).
    domains = [
        [core[0], core[1], *edge[0:4]],
        [core[2], core[3], *edge[4:8]],
        [core[4], core[5], *edge[8:12]],
    ]
    return TopologyInfo(
        network=network,
        domains=domains,
        roles={"hosts": hosts},
        landmarks={"core": core[0]},
    )


def nae_topology(
    clients_per_edge: int = 2, sim: Optional[Simulator] = None
) -> TopologyInfo:
    """The Figure 8 environment for the NAE scenario.

    Clients sit behind edge switches S1 and S5; the FTP and web servers sit
    behind S4; traffic from the aggregation switch S2 may reach S4 either
    via S3 (the path the load balancer can use) or via S6 → S7 (the path the
    security app forces, S6 hosting the inline security device).
    """
    network = Network(sim)
    for dpid in range(1, 8):
        network.add_switch(dpid, name=f"s{dpid}")
    wiring = [
        (1, 2),  # S1 - S2 (edge to aggregation)
        (5, 2),  # S5 - S2 (edge to aggregation)
        (2, 3),  # S2 - S3 (alternate path)
        (2, 6),  # S2 - S6 (security path)
        (3, 4),  # S3 - S4 (alternate path to servers)
        (6, 7),  # S6 - S7 (security device egress)
        (7, 4),  # S7 - S4 (to servers)
    ]
    port_counter = {dpid: 1 for dpid in range(1, 8)}

    def next_port(dpid: int) -> int:
        port = port_counter[dpid]
        port_counter[dpid] += 1
        return port

    for a, b in wiring:
        network.add_link(a, next_port(a), b, next_port(b))

    clients: List[str] = []
    index = 1
    for dpid in (1, 5):
        clients.extend(add_hosts(network, dpid, clients_per_edge, "h", index))
        index += clients_per_edge

    # Servers behind S4: one FTP, one web.
    ftp_mac, ftp_ip = _host_identity(900)
    web_mac, web_ip = _host_identity(901)
    network.add_host("ftp", ftp_mac, ftp_ip)
    network.attach_host("ftp", 4, HOST_PORT_BASE)
    network.add_host("web", web_mac, web_ip)
    network.attach_host("web", 4, HOST_PORT_BASE + 1)
    # The inline security device behind S6.
    sec_mac, sec_ip = _host_identity(902)
    network.add_host("secdev", sec_mac, sec_ip)
    network.attach_host("secdev", 6, HOST_PORT_BASE)

    return TopologyInfo(
        network=network,
        domains=[list(range(1, 8))],
        roles={"clients": clients, "servers": ["ftp", "web"], "security": ["secdev"]},
        landmarks={"security_switch": 6, "alternate_switch": 3, "server_switch": 4},
    )
