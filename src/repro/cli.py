"""Operator command-line interface.

The paper gives operators a GUI/CLI to receive alerts and manage Athena
applications.  This module is the CLI half: a small argparse front-end over
the reproduction's main entry points.

    python -m repro.cli info                 # stack inventory
    python -m repro.cli features             # the feature catalog
    python -m repro.cli ddos --scale 0.001   # Scenario 1 end-to-end
    python -m repro.cli cbench --rounds 3    # the Table IX experiment
    python -m repro.cli serve --port 8080    # northbound HTTP API + /metrics
    python -m repro.cli lint src/repro       # athena-lint static analysis
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.compute import available_backends
    from repro.core.features.catalog import FEATURE_CATALOG
    from repro.core.northbound import AthenaNorthbound
    from repro.core.utility import utility_api_count
    from repro.ml.registry import list_algorithms

    print("Athena reproduction (DSN 2017)")
    print(f"  features in catalog : {len(FEATURE_CATALOG)}")
    print(f"  core NB APIs        : {len(AthenaNorthbound.core_api_names())}")
    print(f"  utility APIs        : {utility_api_count()}")
    print(f"  ML algorithms       : {len(list_algorithms())} "
          f"({', '.join(list_algorithms())})")
    print(f"  compute backends    : {', '.join(available_backends())}")
    return 0


def _cmd_features(args: argparse.Namespace) -> int:
    from repro.core.features.catalog import FEATURE_CATALOG

    for name in sorted(FEATURE_CATALOG):
        definition = FEATURE_CATALOG[name]
        if args.category and definition.category.value != args.category:
            continue
        print(f"{name:32s} {definition.category.value:16s} "
              f"{definition.scope.value:8s} {definition.description}")
    return 0


def _cmd_ddos(args: argparse.Namespace) -> int:
    from repro.apps.ddos import DDoSDetectorApp
    from repro.compute import ComputeCluster
    from repro.controller import ControllerCluster
    from repro.core import AthenaDeployment
    from repro.dataplane.topologies import enterprise_topology
    from repro.workloads.ddos import DDoSDatasetGenerator, DDoSDatasetSpec

    if args.columnar:
        from repro.perf import set_columnar

        set_columnar(True)
    generator = DDoSDatasetGenerator(DDoSDatasetSpec(scale=args.scale))
    documents = generator.generate()
    train, test = generator.train_test_split(documents)
    path = "columnar" if args.columnar else "document"
    print(f"dataset: {len(documents):,} entries at scale {args.scale} "
          f"({path} batch path)")
    topo = enterprise_topology()
    cluster = ControllerCluster(topo.network, n_instances=3)
    cluster.adopt_domains(topo.domains)
    compute = ComputeCluster(n_workers=args.workers, backend=args.backend)
    athena = AthenaDeployment(
        cluster,
        compute=compute,
        distributed_threshold=args.distributed_threshold,
    )
    app = DDoSDetectorApp(algorithm=args.algorithm)
    athena.register_app(app)
    # Load the train split into the feature store so the training fetch
    # goes through the Feature Manager — request_features on the document
    # path, request_frame under --columnar — and the two paths stay
    # byte-equivalent on the same store state (docs/PERF.md).
    athena.feature_manager.publish_documents(train)
    summary = app.run_batch(test_documents=test)
    print(summary.render())
    report = getattr(athena.detector_manager, "last_job_report", None)
    if report is not None:
        print(f"compute: backend={report.backend} workers={report.n_workers} "
              f"wall={report.wall_seconds:.3f}s "
              f"modeled_makespan={report.makespan_seconds:.3f}s")
    return 0


def _cmd_cbench(args: argparse.Namespace) -> int:
    import statistics

    from repro.cbench.harness import CbenchHarness

    harness = CbenchHarness(n_switches=8, match_pool=128,
                            db_backend=args.backend)
    print(f"{'mode':12s} {'min':>12s} {'max':>12s} {'avg':>12s}")
    baselines = {}
    for mode in ("without", "with_no_db", "with"):
        rates = [
            harness.run_throughput(mode, duration_seconds=args.seconds)
            .responses_per_second
            for _ in range(args.rounds)
        ]
        baselines[mode] = statistics.mean(rates)
        print(f"{mode:12s} {min(rates):>12,.0f} {max(rates):>12,.0f} "
              f"{statistics.mean(rates):>12,.0f}")
    overhead = 1 - baselines["with"] / baselines["without"]
    print(f"overhead with Athena+DB: {overhead:.1%} (paper: 53.1%)")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from repro import telemetry

    if args.snapshot:
        with open(args.snapshot) as handle:
            snapshot = json.load(handle)
        _render_metrics(args, snapshot)
        return 0

    # Live mini-scenario: enable telemetry *before* building anything so
    # every component binds real instruments, then exercise each layer —
    # southbound traffic, feature extraction, database writes, a
    # distributed training job, and a mitigation.
    tel = telemetry.configure(enabled=True)

    from repro.compute import ComputeCluster
    from repro.controller import ControllerCluster, ReactiveForwarding
    from repro.core import AthenaDeployment, BlockReaction, GenerateQuery
    from repro.core.algorithm import GenerateAlgorithm
    from repro.core.preprocessor import GeneratePreprocessor
    from repro.dataplane.topologies import linear_topology
    from repro.workloads.ddos import DDoSDatasetGenerator, DDoSDatasetSpec
    from repro.workloads.flows import FlowSpec, TrafficSchedule

    topo = linear_topology(n_switches=3, hosts_per_switch=2)
    cluster = ControllerCluster(topo.network, n_instances=1)
    cluster.adopt_all()
    cluster.start(poll=False)
    forwarding = ReactiveForwarding()
    forwarding.activate(cluster)
    athena = AthenaDeployment(
        cluster,
        compute=ComputeCluster(n_workers=2),
        athena_poll_interval=1.0,
        distributed_threshold=200,
    )
    athena.start()
    schedule = TrafficSchedule(topo.network)
    schedule.prime_arp()
    schedule.add_flow(
        FlowSpec(src_host="h1", dst_host="h5", rate_pps=20.0,
                 start=0.5, duration=3.0, bidirectional=True)
    )
    topo.network.sim.run(until=5.0)

    documents = DDoSDatasetGenerator(
        DDoSDatasetSpec(scale=args.scale)
    ).generate()
    preprocessor = GeneratePreprocessor(
        normalization="minmax",
        marking="label",
        features=[
            "FLOW_PACKET_COUNT",
            "FLOW_BYTE_PER_PACKET",
            "FLOW_PACKET_PER_DURATION",
            "PAIR_FLOW",
        ],
    )
    model = athena.detector_manager.generate_detection_model(
        GenerateQuery(),
        preprocessor,
        GenerateAlgorithm("kmeans", k=4, max_iterations=10, runs=1, seed=1),
        documents=documents,
    )
    athena.detector_manager.validate_features(
        GenerateQuery(), preprocessor, model, documents=documents
    )
    athena.northbound.reactor(
        None, BlockReaction(target_ips=[topo.network.hosts["h2"].ip])
    )
    _render_metrics(args, tel.snapshot(deterministic_only=args.deterministic))
    return 0


def _render_metrics(args: argparse.Namespace, snapshot) -> int:
    from repro import telemetry

    if args.json:
        print(telemetry.to_json(snapshot))
    elif args.table:
        from repro.core.ui_manager import UIManager

        print(UIManager().show_metrics(snapshot))
    else:
        print(telemetry.to_prometheus_text(snapshot), end="")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import FaultPlan, canned_plan, canned_plan_names
    from repro.chaos.scenarios import RECALL_TOLERANCE, run_scenario

    if args.list_plans:
        for name in canned_plan_names():
            plan = canned_plan(name)
            print(f"{name:20s} {len(plan)} events, horizon {plan.horizon():.1f}s")
        return 0
    if args.plan_file:
        plan = FaultPlan.load(args.plan_file)
    elif args.plan:
        plan = canned_plan(args.plan)
    else:
        plan = None
    result = run_scenario(
        args.scenario, plan=plan, seed=args.seed, duration=args.duration
    )
    print(f"scenario : {result.scenario}")
    print(f"plan     : {result.plan or '(none)'}  seed={result.seed}")
    print(f"detected : {result.detected}  recall={result.recall:.3f}  "
          f"(tolerance {RECALL_TOLERANCE})")
    print(f"faults   : applied={result.faults_applied} "
          f"skipped={result.faults_skipped} recoveries={result.recoveries}")
    print(f"degraded : rounds={result.degraded_rounds} "
          f"recovered={result.rounds_recovered} "
          f"pending_writes={result.pending_writes}")
    for line in result.chaos_log:
        print(f"  {line}")
    if args.snapshot:
        with open(args.snapshot, "w", encoding="utf-8") as handle:
            handle.write(result.snapshot_json)
        print(f"snapshot : {args.snapshot} ({len(result.snapshot_json)} bytes)")
    return 0 if result.detected else 1


def _cmd_sketch(args: argparse.Namespace) -> int:
    from repro.sketch.scenarios import (
        SKETCH_RECALL_TOLERANCE,
        run_sketch_scenario,
    )
    from repro.workloads.sketchscale import SketchScaleSpec

    spec = SketchScaleSpec(
        scenario=args.scenario,
        n_flows=args.flows,
        n_hosts=args.hosts,
        n_switches=args.switches,
        n_windows=args.windows,
        seed=args.seed,
    )
    sketch = run_sketch_scenario(spec, use_sketch=True)
    print(f"scenario : {sketch.scenario}  seed={sketch.seed}")
    print(f"stream   : {args.flows} flows over {args.hosts} hosts, "
          f"{args.switches} switches x {args.windows} windows")
    print(f"sketch   : recall={sketch.recall:.3f} "
          f"far={sketch.false_alarm_rate:.3f} "
          f"threshold={sketch.threshold:.1f} "
          f"resident={sketch.state_nbytes / 1e6:.2f}MB")
    print(f"alerts   : {len(sketch.alerts)} cells, "
          f"digest {sketch.alert_digest[:16]}")
    print(f"state    : digest {sketch.state_digest[:16]}")
    if args.compare_exact:
        exact = run_sketch_scenario(spec, use_sketch=False)
        drift = abs(sketch.recall - exact.recall)
        print(f"exact    : recall={exact.recall:.3f} "
              f"resident={exact.state_nbytes / 1e6:.2f}MB")
        print(f"drift    : {drift:.3f} (tolerance {SKETCH_RECALL_TOLERANCE})")
        return 0 if drift <= SKETCH_RECALL_TOLERANCE else 1
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.streaming.scenarios import (
        STREAMING_RECALL_TOLERANCE,
        run_streaming_scenario,
    )

    result = run_streaming_scenario(
        args.scenario, seed=args.seed, duration=args.duration
    )
    print(f"scenario  : {result.scenario}  seed={result.seed}")
    print(f"events    : {result.events_processed} folded, "
          f"{result.alerts_emitted} alert(s)")
    print(f"batch     : detected={result.batch_detected}  "
          f"recall={result.batch_recall:.3f}")
    print(f"streaming : detected={result.streaming_detected}  "
          f"recall={result.streaming_recall:.3f}  "
          f"(tolerance {STREAMING_RECALL_TOLERANCE})")
    print(f"flagged   : {', '.join(result.streaming_flagged) or '(none)'}")
    for summary in result.detector_summaries:
        print(f"  detector {summary['name']}: {summary['algorithm']} over "
              f"{', '.join(summary['features'])} — "
              f"{summary['events_seen']} events, "
              f"{summary['alerts_emitted']} alerts")
    if args.alerts:
        with open(args.alerts, "w", encoding="utf-8") as handle:
            handle.write(result.alert_stream_json)
        print(f"alerts    : {args.alerts} "
              f"(sha256 {result.alert_stream_digest[:16]}…)")
    parity = result.streaming_recall >= result.batch_recall - STREAMING_RECALL_TOLERANCE
    return 0 if result.streaming_detected and parity else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro import telemetry

    # Telemetry first: instruments bind at construction time, and the API's
    # request/cache counters are part of what /metrics exposes.
    telemetry.configure(enabled=True)

    from repro.northbound import NorthboundAPI, build_demo_stack, make_api_server

    stack = build_demo_stack(scale=args.scale, horizon=args.duration,
                             seed=args.seed)
    print(f"running demo scenario to t={args.duration:.1f}s ...")
    stack.run(until=args.duration)
    stack.enforce_block()
    summary = stack.athena.summary()
    print(f"deployment ready: {summary['features_stored']} features stored, "
          f"{summary['models_generated']} model(s), "
          f"{summary['reactions_enforced']} reaction(s)")
    app = NorthboundAPI(stack.athena)
    server = make_api_server(app, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port}/  (routes at /, scrape /metrics)")
    try:
        if args.once:
            server.handle_request()
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        JsonReporter,
        LintEngine,
        TextReporter,
        default_checkers,
        find_pyproject,
        load_config,
    )

    engine = LintEngine(
        checkers=default_checkers(),
        config=None if args.no_config else load_config(
            args.config or find_pyproject()
        ),
    )
    if args.list_rules:
        for rule, description in engine.rule_catalog().items():
            print(f"{rule}  {description}")
        return 0
    report = engine.run(args.paths)
    reporter = JsonReporter() if args.format == "json" else TextReporter()
    reporter.report(report)
    return 1 if report.failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Athena reproduction operator CLI"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("info", help="stack inventory").set_defaults(
        handler=_cmd_info
    )

    features = commands.add_parser("features", help="list the feature catalog")
    features.add_argument(
        "--category",
        choices=["protocol-centric", "combination", "stateful", "variation"],
        help="restrict to one Table I category",
    )
    features.set_defaults(handler=_cmd_features)

    ddos = commands.add_parser("ddos", help="run the Scenario 1 detector")
    ddos.add_argument("--scale", type=float, default=0.001,
                      help="fraction of the paper's 37.37M entries")
    ddos.add_argument("--algorithm", default="kmeans",
                      help="any registered algorithm name")
    ddos.add_argument("--backend", choices=["serial", "process"], default=None,
                      help="compute execution backend (default: "
                           "$ATHENA_COMPUTE_BACKEND or serial)")
    ddos.add_argument("--workers", type=int, default=4,
                      help="compute cluster worker count")
    ddos.add_argument("--columnar", action="store_true",
                      help="run batch detection on the numpy frame path "
                      "(equivalent to ATHENA_COLUMNAR=1)")
    ddos.add_argument("--distributed-threshold", type=int, default=50_000,
                      help="dataset rows above which jobs run distributed")
    ddos.set_defaults(handler=_cmd_ddos)

    cbench = commands.add_parser("cbench", help="run the Table IX experiment")
    cbench.add_argument("--rounds", type=int, default=3)
    cbench.add_argument("--seconds", type=float, default=0.4,
                        help="duration of each round")
    cbench.add_argument("--backend", choices=["mongo", "cassandra"],
                        default="mongo")
    cbench.set_defaults(handler=_cmd_cbench)

    metrics = commands.add_parser(
        "metrics", help="run a live scenario and expose its telemetry"
    )
    metrics.add_argument("--json", action="store_true",
                         help="emit the JSON snapshot instead of "
                              "Prometheus text")
    metrics.add_argument("--table", action="store_true",
                         help="emit the UI Manager summary table")
    metrics.add_argument("--snapshot", default=None,
                         help="render a previously dumped JSON snapshot "
                              "instead of running the live scenario")
    metrics.add_argument("--scale", type=float, default=0.0005,
                         help="DDoS dataset scale for the live scenario")
    metrics.add_argument("--deterministic", action="store_true",
                         help="drop wall-time metrics from the snapshot")
    metrics.set_defaults(handler=_cmd_metrics)

    chaos = commands.add_parser(
        "chaos", help="run a detection scenario under a fault plan"
    )
    chaos.add_argument("--scenario", choices=["portscan", "ddos"],
                       default="ddos", help="detection scenario to run")
    chaos.add_argument("--plan", default=None,
                       help="canned fault plan name (see --list-plans)")
    chaos.add_argument("--plan-file", default=None,
                       help="JSON fault-plan file (FaultPlan.save format)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="chaos RNG seed (same plan + seed replays "
                            "byte-identically)")
    chaos.add_argument("--duration", type=float, default=None,
                       help="sim horizon override in seconds")
    chaos.add_argument("--snapshot", default=None,
                       help="write the deterministic telemetry snapshot "
                            "JSON to this path")
    chaos.add_argument("--list-plans", action="store_true",
                       help="list canned fault plans and exit")
    chaos.set_defaults(handler=_cmd_chaos)

    stream = commands.add_parser(
        "stream", help="run a scenario through the event-driven streaming "
                       "detection pipeline"
    )
    stream.add_argument("--scenario", choices=["portscan", "ddos"],
                        default="ddos", help="detection scenario to run")
    stream.add_argument("--seed", type=int, default=0,
                        help="run seed (same seed replays the alert stream "
                             "byte-identically)")
    stream.add_argument("--duration", type=float, default=12.0,
                        help="sim horizon in seconds")
    stream.add_argument("--alerts", default=None,
                        help="write the canonical alert-stream JSON to "
                             "this path")
    stream.set_defaults(handler=_cmd_stream)

    serve = commands.add_parser(
        "serve", help="serve the northbound HTTP API over a demo deployment"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port (0 picks a free port)")
    serve.add_argument("--scale", type=float, default=0.0005,
                       help="DDoS dataset scale for the demo scenario")
    serve.add_argument("--duration", type=float, default=8.0,
                       help="sim seconds of traffic to run before serving")
    serve.add_argument("--seed", type=int, default=1,
                       help="training seed for the demo model")
    serve.add_argument("--once", action="store_true",
                       help="handle exactly one request, then exit "
                            "(smoke-test mode)")
    serve.set_defaults(handler=_cmd_serve)

    sketch = commands.add_parser(
        "sketch", help="run a detection scenario on sketch features"
    )
    sketch.add_argument("--scenario", choices=["ddos", "portscan"],
                        default="ddos", help="attack mixed into the stream")
    sketch.add_argument("--flows", type=int, default=100_000,
                        help="distinct flows across the run")
    sketch.add_argument("--hosts", type=int, default=10_000,
                        help="benign source-host pool size")
    sketch.add_argument("--switches", type=int, default=8,
                        help="switches sharing the stream")
    sketch.add_argument("--windows", type=int, default=8,
                        help="sampling windows")
    sketch.add_argument("--seed", type=int, default=7,
                        help="workload seed (same seed replays "
                             "byte-identically)")
    sketch.add_argument("--compare-exact", action="store_true",
                        help="also run the exact path and check the "
                             "recall drift tolerance")
    sketch.set_defaults(handler=_cmd_sketch)

    lint = commands.add_parser(
        "lint", help="athena-lint: framework-aware static analysis"
    )
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories to lint")
    lint.add_argument("--format", choices=["text", "json"], default="text")
    lint.add_argument("--config", default=None,
                      help="pyproject.toml carrying [tool.athena-lint] "
                           "(default: nearest upward from the cwd)")
    lint.add_argument("--no-config", action="store_true",
                      help="ignore any [tool.athena-lint] configuration")
    lint.add_argument("--list-rules", action="store_true",
                      help="print every rule id and exit")
    lint.set_defaults(handler=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
