"""Pluggable execution backends for the compute cluster.

The paper trains and validates detection models on a Spark/MLlib cluster;
Figure 10 sweeps compute nodes and reads total test time off the wall
clock.  The :class:`~repro.compute.cluster.ComputeCluster` keeps its
explicit distribution-cost *model* (so scaled-down datasets still produce
the paper's curve), but task execution itself is now a strategy:

* :class:`SerialBackend` — every task runs in the driver process, one at
  a time, on the LPT-assigned :class:`~repro.compute.worker.Worker`.
  Fully deterministic, zero IPC; the default.
* :class:`ProcessBackend` — tasks run on a real
  ``concurrent.futures.ProcessPoolExecutor``.  Partitions are cached in
  each pool process once per job (zero-copy under ``fork``), tasks are
  dispatched in scheduler-aligned chunks, and each round ships only the
  map function + broadcast state out and the partial results back.  Worker
  crashes and timeouts are retried a bounded number of times
  (``ClusterConfig.task_retries``) by restarting the pool, after which the
  surviving tasks fall back to in-process serial execution — a job never
  fails because parallelism did.

**Determinism.**  Both backends run the same map function over the same
partitions and return results in task-index order, so a deterministic map
function produces *bit-identical* job results on either backend (asserted
in ``tests/test_compute_backends.py``).  Map functions that need
randomness must derive it per task with :func:`task_rng`, which depends
only on ``(seed, task_index)`` — never on worker identity, scheduling
order, or process boundaries.

Backend selection: pass ``backend="serial" | "process"`` (or an
:class:`ExecutionBackend` instance) to :class:`ComputeCluster` or to a
single job; with neither, the ``ATHENA_COMPUTE_BACKEND`` environment
variable decides, defaulting to serial.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.compute import worker as worker_module
from repro.compute.worker import (
    Worker,
    execute_task_chunk,
    initialize_pool_worker,
)
from repro.errors import ComputeError

#: Environment variable consulted when no backend is named explicitly.
BACKEND_ENV_VAR = "ATHENA_COMPUTE_BACKEND"

TaskFn = Callable[[Any, Any], Any]


def task_rng(seed: int, task_index: int) -> np.random.Generator:
    """Derive the RNG for one task, identically on every backend.

    The stream depends only on the job seed and the task's partition
    index, so a stochastic map function draws the same numbers whether it
    runs in the driver, in a pool process, or after a crash-triggered
    retry on a different worker.  ``seed`` must be non-negative.
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy=(int(seed), int(task_index)))
    )


def partition_costs(partitions: Sequence[Any]) -> List[float]:
    """Scheduling cost estimate per partition: its record count."""
    return [
        float(len(p[0]) if isinstance(p, tuple) else len(p)) for p in partitions
    ]


def lpt_assignment(costs: Sequence[float], n_workers: int) -> List[int]:
    """Longest-processing-time-first: task index -> worker index.

    The classic greedy bound within 4/3 of the optimal makespan, which
    matches how Spark's scheduler balances skewed partitions well enough
    for the Figure 10 experiment's shape.
    """
    order = sorted(range(len(costs)), key=lambda i: -costs[i])
    loads = [0.0] * n_workers
    assignment = [0] * len(costs)
    for task_idx in order:
        worker_idx = loads.index(min(loads))
        assignment[task_idx] = worker_idx
        loads[worker_idx] += costs[task_idx]
    return assignment


@dataclass
class RoundStats:
    """Execution accounting for one map round.

    ``results`` is ordered by task index regardless of completion order —
    the reduce step must see partials in partition order on every backend
    for results to stay bit-identical.
    """

    results: List[Any]
    #: Seconds of task time attributed to each worker slot this round.
    busy: List[float]
    task_seconds: float = 0.0
    retried: int = 0
    #: Tasks that ended up executing in-process after the parallel path
    #: was exhausted (crash/timeout beyond retries, unpicklable closure).
    fallback_tasks: int = 0
    #: Approximate bytes moved across the process boundary this round.
    bytes_shuffled: int = 0


class ExecutionBackend:
    """Strategy interface: how one round of map tasks is executed.

    Lifecycle: ``open(partitions, workers, config)`` once per job, then
    ``run_round(map_fn, state)`` per round, then ``close()``.  The map
    function always has the two-argument task shape
    ``map_fn(partition, state)``.
    """

    name = "abstract"

    def open(
        self,
        partitions: List[Any],
        workers: List[Worker],
        config: Any,
    ) -> None:
        self.partitions = partitions
        self.workers = workers
        self.config = config
        self.costs = partition_costs(partitions)
        self.assignment = lpt_assignment(self.costs, len(workers))

    def run_round(self, map_fn: TaskFn, state: Any) -> RoundStats:
        raise NotImplementedError

    def close(self) -> None:
        """Release per-job resources; open() may be called again after."""


class SerialBackend(ExecutionBackend):
    """In-process execution on the LPT-assigned workers (the default).

    Behaviour is identical to the pre-backend compute cluster: tasks run
    one at a time in the driver, failures are retried on the next worker
    up to ``config.task_retries`` times, and every attempt's measured
    time lands on the worker that spent it.
    """

    name = "serial"

    def run_round(self, map_fn: TaskFn, state: Any) -> RoundStats:
        stats = RoundStats(
            results=[None] * len(self.partitions),
            busy=[0.0] * len(self.workers),
        )
        self._run_serial(map_fn, state, range(len(self.partitions)), stats)
        return stats

    def _run_serial(
        self,
        map_fn: TaskFn,
        state: Any,
        indices: Sequence[int],
        stats: RoundStats,
    ) -> None:
        """Execute the listed tasks in-process, with retry accounting."""
        for index in indices:
            result, attempts = self._execute_with_retries(
                self.assignment[index], map_fn, self.partitions[index], state
            )
            for worker_id, elapsed in attempts:
                stats.busy[worker_id] += elapsed
                stats.task_seconds += elapsed
            stats.retried += len(attempts) - 1
            stats.results[index] = result

    def _execute_with_retries(self, worker_idx: int, map_fn, payload, state):
        """Run a task, retrying on another worker after a failure.

        Returns (result, [(worker_idx, elapsed), ...]) so every attempt's
        time lands on the worker that spent it — failed attempts cost real
        makespan, as they do on Spark.
        """
        attempts = []
        last_error: Optional[BaseException] = None
        n_workers = len(self.workers)
        for attempt in range(self.config.task_retries + 1):
            worker = self.workers[(worker_idx + attempt) % n_workers]
            started_busy = worker.busy_seconds
            try:
                result, elapsed = worker.execute(
                    lambda part: map_fn(part, state), payload
                )
                attempts.append((worker.worker_id, elapsed))
                return result, attempts
            except ComputeError:
                raise
            except Exception as exc:  # noqa: BLE001 - task code is arbitrary
                attempts.append(
                    (worker.worker_id, worker.busy_seconds - started_busy)
                )
                last_error = exc
        raise ComputeError(
            f"task failed after {self.config.task_retries + 1} attempts: "
            f"{last_error}"
        ) from last_error


def _pickled_size(obj: Any) -> int:
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # pragma: no cover - size accounting is best-effort
        return 0


class ProcessBackend(SerialBackend):
    """Real parallel execution on a process pool.

    Inherits the serial task runner as its graceful-degradation path: any
    task the pool cannot execute (unpicklable closure, crash or timeout
    beyond the retry budget) runs in-process instead, and the job's
    :class:`RoundStats` records how many tasks fell back.

    Known limitation: a task that blocks forever cannot be killed through
    the executor API — the timed-out pool is abandoned (its futures
    cancelled) and replaced, but the stuck OS process exits only when its
    task returns.
    """

    name = "process"

    def __init__(self) -> None:
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pid_slots: Dict[int, int] = {}
        self.pool_restarts = 0

    # -- pool lifecycle --------------------------------------------------------

    def open(self, partitions, workers, config) -> None:
        super().open(partitions, workers, config)
        self._pid_slots = {}
        self._start_pool()

    def _start_pool(self) -> None:
        # Parent-side cache first: fork-started children inherit it
        # copy-on-write and the initializer ships nothing.
        worker_module.set_cached_partitions(self.partitions)
        initargs = (
            (None,)
            if multiprocessing.get_start_method() == "fork"
            else (self.partitions,)
        )
        self._pool = ProcessPoolExecutor(
            max_workers=len(self.workers),
            initializer=initialize_pool_worker,
            initargs=initargs,
        )

    def _restart_pool(self) -> None:
        # The old pool may be broken or wedged on a stuck task — abandon
        # it without waiting rather than block the retry.
        self.pool_restarts += 1
        self._shutdown_pool(wait=False)
        self._start_pool()

    def _shutdown_pool(self, wait: bool = True) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        # A healthy pool is drained synchronously; abandoning it
        # (wait=False) races the interpreter's own executor atexit handler.
        self._shutdown_pool(wait=True)
        worker_module.set_cached_partitions(None)

    # -- dispatch --------------------------------------------------------------

    def _chunks(self) -> List[List[int]]:
        """Scheduler-aligned task chunks.

        Tasks grouped by their LPT worker form one chunk each (balanced
        dispatch, one IPC round-trip per worker); ``config.chunk_size``
        splits groups further when finer-grained work stealing matters.
        """
        groups: List[List[int]] = [[] for _ in self.workers]
        for index, worker_idx in enumerate(self.assignment):
            groups[worker_idx].append(index)
        chunk_size = getattr(self.config, "chunk_size", None)
        chunks: List[List[int]] = []
        for group in groups:
            if not group:
                continue
            size = chunk_size or len(group)
            for start in range(0, len(group), size):
                chunks.append(group[start : start + size])
        return chunks

    def run_round(self, map_fn: TaskFn, state: Any) -> RoundStats:
        n_tasks = len(self.partitions)
        stats = RoundStats(
            results=[None] * n_tasks, busy=[0.0] * len(self.workers)
        )
        # Pre-flight: closures and lambdas cannot cross a process boundary.
        # Run the whole round in-process rather than failing the job.
        try:
            dispatch_bytes = len(
                pickle.dumps((map_fn, state), protocol=pickle.HIGHEST_PROTOCOL)
            )
        except Exception:
            stats.fallback_tasks = n_tasks
            self._run_serial(map_fn, state, range(n_tasks), stats)
            return stats

        pending = self._chunks()
        for attempt in range(self.config.task_retries + 1):
            if not pending:
                break
            failed = self._dispatch(pending, map_fn, state, dispatch_bytes, stats)
            if failed:
                if attempt < self.config.task_retries:
                    stats.retried += sum(len(chunk) for chunk in failed)
                # Restart even on the last attempt: a broken or stuck pool
                # must not poison the next round.
                self._restart_pool()
            pending = failed
        if pending:
            remaining = [index for chunk in pending for index in chunk]
            stats.fallback_tasks += len(remaining)
            self._run_serial(map_fn, state, remaining, stats)
        return stats

    def _dispatch(
        self,
        chunks: List[List[int]],
        map_fn: TaskFn,
        state: Any,
        dispatch_bytes: int,
        stats: RoundStats,
    ) -> List[List[int]]:
        """Submit every chunk; harvest results; return the failed chunks."""
        futures = [
            (chunk, self._pool.submit(execute_task_chunk, chunk, map_fn, state))
            for chunk in chunks
        ]
        task_timeout = getattr(self.config, "task_timeout", None)
        failed: List[List[int]] = []
        for chunk, future in futures:
            timeout = None if task_timeout is None else task_timeout * len(chunk)
            try:
                pid, task_results = future.result(timeout=timeout)
            except Exception:  # noqa: BLE001 - crash, timeout, or task error
                failed.append(chunk)
                continue
            slot = self._slot_for(pid)
            stats.bytes_shuffled += dispatch_bytes + _pickled_size(task_results)
            for index, result, elapsed in task_results:
                stats.results[index] = result
                stats.busy[slot] += elapsed
                stats.task_seconds += elapsed
                self.workers[slot].credit(elapsed)
        return failed

    def _slot_for(self, pid: int) -> int:
        """Map a pool process to a driver-side worker accounting slot."""
        if pid not in self._pid_slots:
            self._pid_slots[pid] = len(self._pid_slots) % len(self.workers)
        return self._pid_slots[pid]


_BACKENDS = {
    SerialBackend.name: SerialBackend,
    ProcessBackend.name: ProcessBackend,
}


def available_backends() -> List[str]:
    """Names accepted by :func:`create_backend` (and the CLI/env var)."""
    return sorted(_BACKENDS)


def create_backend(backend: Any = None) -> ExecutionBackend:
    """Resolve a backend choice to an :class:`ExecutionBackend` instance.

    ``backend`` may be an instance (returned as-is), a name, or ``None`` —
    in which case the ``ATHENA_COMPUTE_BACKEND`` environment variable is
    consulted, defaulting to ``"serial"``.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or SerialBackend.name
    key = str(backend).strip().lower()
    if key not in _BACKENDS:
        raise ComputeError(
            f"unknown compute backend {backend!r}; "
            f"available: {', '.join(available_backends())}"
        )
    return _BACKENDS[key]()
