"""The compute cluster: scheduling, execution, and the makespan model.

**Cost model.**  The paper measures total test time of a distributed
validation job as compute nodes are added (Figure 10).  A single Python
process cannot physically run six executors, so the cluster executes every
task for real (measuring each task's wall time) and derives the job
makespan from those measurements plus an explicit model of distribution
costs::

    makespan = t_setup                        # job submission / scheduling
             + rounds * t_broadcast           # model broadcast per round
             + max_over_workers(busy_seconds) # parallel task execution
             + t_collect * n_tasks            # result collection at driver
             + t_reduce                       # measured driver-side reduce

Tasks are placed with longest-processing-time-first onto the currently
least-loaded worker, the classic greedy bound within 4/3 of optimal, which
matches how Spark's scheduler balances skewed partitions well enough for
this experiment's shape.  Every constant is configurable and ablated in the
Figure 10 bench.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.compute.partition import PartitionedDataset
from repro.compute.worker import Worker
from repro.errors import ComputeError


@dataclass
class ClusterConfig:
    """Distribution-cost constants (seconds)."""

    #: One-off job submission and DAG scheduling cost.
    t_setup: float = 0.9
    #: Broadcast of the model / closure to every worker, per round.
    t_broadcast: float = 0.12
    #: Result collection cost per task (serialized partial results).
    t_collect: float = 0.02
    #: Calibration multiplier applied to measured task time, so scaled-down
    #: datasets occupy workers the way the paper's 37M-entry dataset did.
    work_scale: float = 1.0
    #: Times a failed task is re-executed before the job aborts (Spark's
    #: ``spark.task.maxFailures`` analogue).
    task_retries: int = 2


@dataclass
class JobReport:
    """What one job cost."""

    n_workers: int
    n_tasks: int
    rounds: int
    measured_task_seconds: float
    measured_reduce_seconds: float
    makespan_seconds: float
    per_worker_busy: List[float] = field(default_factory=list)
    result: Any = None


class ComputeCluster:
    """A fixed-size pool of workers executing partitioned jobs."""

    def __init__(self, n_workers: int = 4, config: Optional[ClusterConfig] = None) -> None:
        if n_workers < 1:
            raise ComputeError("cluster needs at least one worker")
        self.workers = [Worker(i) for i in range(n_workers)]
        self.config = config or ClusterConfig()
        self.jobs_run = 0
        self.tasks_retried = 0

    def _execute_with_retries(self, worker_idx: int, fn, payload):
        """Run a task, retrying on another worker after a failure.

        Returns (result, [(worker_idx, elapsed), ...]) so every attempt's
        time lands on the worker that spent it — failed attempts cost real
        makespan, as they do on Spark.
        """
        attempts = []
        last_error: Optional[BaseException] = None
        for attempt in range(self.config.task_retries + 1):
            worker = self.workers[(worker_idx + attempt) % self.n_workers]
            started_busy = worker.busy_seconds
            try:
                result, elapsed = worker.execute(fn, payload)
                attempts.append((worker.worker_id, elapsed))
                return result, attempts
            except ComputeError:
                raise
            except Exception as exc:  # noqa: BLE001 - task code is arbitrary
                attempts.append(
                    (worker.worker_id, worker.busy_seconds - started_busy)
                )
                self.tasks_retried += 1
                last_error = exc
        raise ComputeError(
            f"task failed after {self.config.task_retries + 1} attempts: "
            f"{last_error}"
        ) from last_error

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    def _schedule(self, costs: Sequence[float]) -> List[int]:
        """LPT assignment: task index -> worker index."""
        order = sorted(range(len(costs)), key=lambda i: -costs[i])
        loads = [0.0] * self.n_workers
        assignment = [0] * len(costs)
        for task_idx in order:
            worker_idx = loads.index(min(loads))
            assignment[task_idx] = worker_idx
            loads[worker_idx] += costs[task_idx]
        return assignment

    def run_map(
        self,
        dataset: PartitionedDataset,
        map_fn: Callable[[Any], Any],
        reduce_fn: Optional[Callable[[List[Any]], Any]] = None,
    ) -> JobReport:
        """One map round over every partition plus a driver-side reduce."""
        return self.run_iterative(
            dataset,
            lambda part, _state: map_fn(part),
            lambda partials, _state: (
                reduce_fn(partials) if reduce_fn else partials
            ),
            initial_state=None,
            rounds=1,
        )

    def run_iterative(
        self,
        dataset: PartitionedDataset,
        map_fn: Callable[[Any, Any], Any],
        reduce_fn: Callable[[List[Any], Any], Any],
        initial_state: Any,
        rounds: int,
        converged: Optional[Callable[[Any, Any], bool]] = None,
    ) -> JobReport:
        """Iterative map/reduce (the K-Means / gradient-descent shape).

        Each round maps ``map_fn(partition, state)`` over all partitions and
        folds the partial results with ``reduce_fn(partials, state)`` into
        the next state.  ``converged(old, new)`` may stop the loop early.
        """
        if rounds < 1:
            raise ComputeError(f"invalid round count {rounds}")
        for worker in self.workers:
            worker.reset()
        self.jobs_run += 1
        state = initial_state
        total_task_seconds = 0.0
        total_reduce_seconds = 0.0
        n_tasks = 0
        rounds_run = 0
        per_round_busy: List[List[float]] = []
        for _round in range(rounds):
            rounds_run += 1
            partitions = dataset.partitions
            # Cost estimate for scheduling: records per partition.
            costs = [
                float(len(p[0]) if isinstance(p, tuple) else len(p))
                for p in partitions
            ]
            assignment = self._schedule(costs)
            round_busy = [0.0] * self.n_workers
            partials: List[Any] = []
            for task_idx, part in enumerate(partitions):
                current_state = state
                result, attempts = self._execute_with_retries(
                    assignment[task_idx],
                    lambda payload: map_fn(payload, current_state),
                    part,
                )
                for attempt_worker, elapsed in attempts:
                    round_busy[attempt_worker] += elapsed
                    total_task_seconds += elapsed
                partials.append(result)
                n_tasks += 1
            per_round_busy.append(round_busy)
            reduce_started = time.perf_counter()
            new_state = reduce_fn(partials, state)
            total_reduce_seconds += time.perf_counter() - reduce_started
            if converged is not None and converged(state, new_state):
                state = new_state
                break
            state = new_state
        cfg = self.config
        # Makespan: per-round critical path is the busiest worker that round.
        parallel_seconds = sum(
            max(busy) if busy else 0.0 for busy in per_round_busy
        ) * cfg.work_scale
        makespan = (
            cfg.t_setup
            + rounds_run * cfg.t_broadcast
            + parallel_seconds
            + cfg.t_collect * n_tasks
            + total_reduce_seconds
        )
        return JobReport(
            n_workers=self.n_workers,
            n_tasks=n_tasks,
            rounds=rounds_run,
            measured_task_seconds=total_task_seconds,
            measured_reduce_seconds=total_reduce_seconds,
            makespan_seconds=makespan,
            per_worker_busy=[w.busy_seconds for w in self.workers],
            result=state,
        )

    def run_local(
        self,
        dataset: PartitionedDataset,
        map_fn: Callable[[Any], Any],
        reduce_fn: Optional[Callable[[List[Any]], Any]] = None,
    ) -> JobReport:
        """Single-instance execution: no distribution costs at all.

        The Attack Detector uses this path for small datasets, where the
        paper notes handling the request on a single instance avoids the
        communication overhead.
        """
        started = time.perf_counter()
        partials = [map_fn(part) for part in dataset.partitions]
        result = reduce_fn(partials) if reduce_fn else partials
        elapsed = time.perf_counter() - started
        self.jobs_run += 1
        return JobReport(
            n_workers=1,
            n_tasks=dataset.n_partitions,
            rounds=1,
            measured_task_seconds=elapsed,
            measured_reduce_seconds=0.0,
            makespan_seconds=elapsed,
            per_worker_busy=[elapsed],
            result=result,
        )
