"""The compute cluster: scheduling, execution backends, and the makespan model.

**Execution.**  Every job runs for real through a pluggable
:class:`~repro.compute.backends.ExecutionBackend`: serially in the driver
process (default, bit-for-bit deterministic) or across genuine worker
processes (``backend="process"``), with each task's wall time measured
either way.  ``JobReport.wall_seconds`` is the job's real elapsed time —
the number the measured Figure 10 curve plots.

**Cost model.**  The paper measures total test time of a distributed
validation job as compute nodes are added (Figure 10) over a 37M-entry
dataset this reproduction scales down.  So alongside the measured wall
time, the cluster derives a *modeled* makespan from per-task measurements
plus an explicit model of distribution costs::

    makespan = t_setup                     # job submission / scheduling
             + rounds * t_broadcast        # model broadcast per round
             + sum over rounds of          # per-round critical path:
                 max_over_workers(round_busy_seconds) * work_scale
             + t_collect * n_tasks         # result collection at driver
             + t_reduce                    # measured driver-side reduce

Each round ends at a barrier (the driver-side reduce), so the parallel
term is the busiest worker *per round*, summed over rounds — not the
busiest worker's total across the job.  The formula is asserted term by
term in ``tests/test_compute.py::TestMakespanModel``.

Tasks are placed with longest-processing-time-first onto the currently
least-loaded worker, the classic greedy bound within 4/3 of optimal, which
matches how Spark's scheduler balances skewed partitions well enough for
this experiment's shape.  Every constant is configurable and ablated in the
Figure 10 bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.compute.backends import ExecutionBackend, create_backend, lpt_assignment
from repro.compute.partition import PartitionedDataset
from repro.compute.worker import Worker
from repro.errors import ComputeError
from repro.telemetry import Stopwatch, get_telemetry


@dataclass
class ClusterConfig:
    """Distribution-cost constants (seconds) and execution limits."""

    #: One-off job submission and DAG scheduling cost.
    t_setup: float = 0.9
    #: Broadcast of the model / closure to every worker, per round.
    t_broadcast: float = 0.12
    #: Result collection cost per task (serialized partial results).
    t_collect: float = 0.02
    #: Calibration multiplier applied to measured task time, so scaled-down
    #: datasets occupy workers the way the paper's 37M-entry dataset did.
    work_scale: float = 1.0
    #: Times a failed task is re-executed before the job aborts (Spark's
    #: ``spark.task.maxFailures`` analogue).  The process backend restarts
    #: its pool this many times before falling back to serial execution.
    task_retries: int = 2
    #: Per-task wall-clock limit on the process backend (None = unlimited).
    #: A timed-out chunk counts as a failed attempt.
    task_timeout: Optional[float] = None
    #: Maximum tasks per dispatch chunk on the process backend (None = one
    #: chunk per scheduled worker).
    chunk_size: Optional[int] = None


@dataclass
class JobReport:
    """What one job cost — measured, modeled, and accounted."""

    n_workers: int
    n_tasks: int
    rounds: int
    measured_task_seconds: float
    measured_reduce_seconds: float
    makespan_seconds: float
    #: Real elapsed time of the whole job (the measured Fig. 10 number).
    wall_seconds: float = 0.0
    #: Which execution backend ran the tasks.
    backend: str = "serial"
    #: Approximate bytes moved across process boundaries (process backend).
    bytes_shuffled: int = 0
    #: Failed task attempts that were retried during this job.
    tasks_retried: int = 0
    #: Tasks that fell back to in-process execution (process backend only).
    fallback_tasks: int = 0
    per_worker_busy: List[float] = field(default_factory=list)
    #: Per-round, per-worker busy seconds — the makespan model's input.
    per_round_busy: List[List[float]] = field(default_factory=list)
    result: Any = None


class ComputeCluster:
    """A fixed-size pool of workers executing partitioned jobs.

    ``backend`` selects how tasks execute: ``"serial"`` (default),
    ``"process"``, an :class:`ExecutionBackend` instance, or ``None`` to
    defer to the ``ATHENA_COMPUTE_BACKEND`` environment variable.  Every
    job method also takes a per-job ``backend`` override, which is how the
    northbound API selects a backend per detection task.
    """

    def __init__(
        self,
        n_workers: int = 4,
        config: Optional[ClusterConfig] = None,
        backend: Any = None,
    ) -> None:
        if n_workers < 1:
            raise ComputeError("cluster needs at least one worker")
        self.workers = [Worker(i) for i in range(n_workers)]
        self.config = config or ClusterConfig()
        self.backend = create_backend(backend)
        self.jobs_run = 0
        self.tasks_retried = 0
        self.tasks_fallback = 0
        # Telemetry: JobReport fields fold into these after every job.
        registry = get_telemetry().registry
        self._metric_jobs = registry.counter(
            "athena_compute_jobs_total",
            "Compute jobs run, by execution backend.",
            labelnames=("backend",),
        )
        self._metric_tasks = registry.counter(
            "athena_compute_tasks_total",
            "Tasks dispatched across all compute jobs.",
        )
        self._metric_retried = registry.counter(
            "athena_compute_tasks_retried_total",
            "Failed task attempts that were retried.",
        )
        self._metric_fallback = registry.counter(
            "athena_compute_fallback_tasks_total",
            "Tasks that fell back to in-process execution.",
        )
        self._metric_shuffle_bytes = registry.counter(
            "athena_compute_shuffle_bytes_total",
            "Bytes moved across process boundaries.",
        )
        self._metric_job_wall = registry.histogram(
            "athena_compute_job_wall_seconds",
            "Real elapsed seconds per compute job.",
            labelnames=("backend",),
        )

    def _record_job(self, report: "JobReport") -> "JobReport":
        """Fold one job's report into the cluster's telemetry."""
        self._metric_jobs.labels(backend=report.backend).inc()
        self._metric_tasks.inc(report.n_tasks)
        self._metric_retried.inc(report.tasks_retried)
        self._metric_fallback.inc(report.fallback_tasks)
        self._metric_shuffle_bytes.inc(report.bytes_shuffled)
        self._metric_job_wall.labels(backend=report.backend).observe(
            report.wall_seconds
        )
        return report

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    @property
    def backend_name(self) -> str:
        return self.backend.name

    def _backend_for(self, backend: Any) -> ExecutionBackend:
        """Per-job backend override; ``None`` keeps the cluster default."""
        return self.backend if backend is None else create_backend(backend)

    def _schedule(self, costs: Sequence[float]) -> List[int]:
        """LPT assignment: task index -> worker index."""
        return lpt_assignment(costs, self.n_workers)

    def run_map(
        self,
        dataset: PartitionedDataset,
        map_fn: Callable[[Any], Any],
        reduce_fn: Optional[Callable[[List[Any]], Any]] = None,
        backend: Any = None,
    ) -> JobReport:
        """One map round over every partition plus a driver-side reduce."""
        return self.run_iterative(
            dataset,
            _StatelessTask(map_fn),
            lambda partials, _state: (
                reduce_fn(partials) if reduce_fn else partials
            ),
            initial_state=None,
            rounds=1,
            backend=backend,
        )

    def run_iterative(
        self,
        dataset: PartitionedDataset,
        map_fn: Callable[[Any, Any], Any],
        reduce_fn: Callable[[List[Any], Any], Any],
        initial_state: Any,
        rounds: int,
        converged: Optional[Callable[[Any, Any], bool]] = None,
        backend: Any = None,
    ) -> JobReport:
        """Iterative map/reduce (the K-Means / gradient-descent shape).

        Each round maps ``map_fn(partition, state)`` over all partitions and
        folds the partial results with ``reduce_fn(partials, state)`` into
        the next state.  ``converged(old, new)`` may stop the loop early.
        The reduce always sees partials in partition order, whichever
        backend (and completion order) produced them.
        """
        if rounds < 1:
            raise ComputeError(f"invalid round count {rounds}")
        for worker in self.workers:
            worker.reset()
        self.jobs_run += 1
        engine = self._backend_for(backend)
        wall_watch = Stopwatch()
        state = initial_state
        total_task_seconds = 0.0
        total_reduce_seconds = 0.0
        bytes_shuffled = 0
        job_retried = 0
        job_fallback = 0
        n_tasks = 0
        rounds_run = 0
        per_round_busy: List[List[float]] = []
        engine.open(dataset.partitions, self.workers, self.config)
        try:
            for _round in range(rounds):
                rounds_run += 1
                stats = engine.run_round(map_fn, state)
                per_round_busy.append(stats.busy)
                total_task_seconds += stats.task_seconds
                bytes_shuffled += stats.bytes_shuffled
                job_retried += stats.retried
                job_fallback += stats.fallback_tasks
                n_tasks += len(stats.results)
                reduce_watch = Stopwatch()
                new_state = reduce_fn(stats.results, state)
                total_reduce_seconds += reduce_watch.elapsed()
                if converged is not None and converged(state, new_state):
                    state = new_state
                    break
                state = new_state
        finally:
            engine.close()
        self.tasks_retried += job_retried
        self.tasks_fallback += job_fallback
        cfg = self.config
        # Makespan: per-round critical path is the busiest worker that
        # round (rounds end at the driver-side reduce barrier).
        parallel_seconds = sum(
            max(busy) if busy else 0.0 for busy in per_round_busy
        ) * cfg.work_scale
        makespan = (
            cfg.t_setup
            + rounds_run * cfg.t_broadcast
            + parallel_seconds
            + cfg.t_collect * n_tasks
            + total_reduce_seconds
        )
        return self._record_job(JobReport(
            n_workers=self.n_workers,
            n_tasks=n_tasks,
            rounds=rounds_run,
            measured_task_seconds=total_task_seconds,
            measured_reduce_seconds=total_reduce_seconds,
            makespan_seconds=makespan,
            wall_seconds=wall_watch.elapsed(),
            backend=engine.name,
            bytes_shuffled=bytes_shuffled,
            tasks_retried=job_retried,
            fallback_tasks=job_fallback,
            per_worker_busy=[w.busy_seconds for w in self.workers],
            per_round_busy=per_round_busy,
            result=state,
        ))

    def run_local(
        self,
        dataset: PartitionedDataset,
        map_fn: Callable[[Any], Any],
        reduce_fn: Optional[Callable[[List[Any]], Any]] = None,
    ) -> JobReport:
        """Single-instance execution: no distribution costs at all.

        The Attack Detector uses this path for small datasets, where the
        paper notes handling the request on a single instance avoids the
        communication overhead.
        """
        watch = Stopwatch()
        partials = [map_fn(part) for part in dataset.partitions]
        result = reduce_fn(partials) if reduce_fn else partials
        elapsed = watch.elapsed()
        self.jobs_run += 1
        return self._record_job(JobReport(
            n_workers=1,
            n_tasks=dataset.n_partitions,
            rounds=1,
            measured_task_seconds=elapsed,
            measured_reduce_seconds=0.0,
            makespan_seconds=elapsed,
            wall_seconds=elapsed,
            backend="local",
            per_worker_busy=[elapsed],
            result=result,
        ))


class _StatelessTask:
    """Adapts a one-argument map function to the (partition, state) task
    shape without capturing a closure, so it stays picklable whenever the
    wrapped function is."""

    def __init__(self, fn: Callable[[Any], Any]) -> None:
        self.fn = fn

    def __call__(self, part: Any, _state: Any) -> Any:
        return self.fn(part)
