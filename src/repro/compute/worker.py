"""Compute workers.

A worker executes tasks and accumulates its busy time.  Execution is real
(the task function runs in-process and its wall time is measured); the
cluster's scheduler decides which worker each task lands on, and the job's
makespan is derived from the resulting per-worker busy times.
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Tuple


class Worker:
    """One executor node."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.busy_seconds = 0.0
        self.tasks_run = 0

    def execute(self, fn: Callable[[Any], Any], payload: Any) -> Tuple[Any, float]:
        """Run a task, returning (result, measured seconds).

        Failed tasks still consume the worker's time (accounted in
        ``busy_seconds``) before the exception propagates to the scheduler.
        """
        started = time.perf_counter()
        try:
            result = fn(payload)
        finally:
            elapsed = time.perf_counter() - started
            self.busy_seconds += elapsed
            self.tasks_run += 1
        return result, elapsed

    def reset(self) -> None:
        self.busy_seconds = 0.0
        self.tasks_run = 0
