"""Compute workers: in-process executors and the process-pool task runner.

Two kinds of worker live here:

* :class:`Worker` — the driver-side executor record.  Under the serial
  backend it *runs* tasks (in-process, wall time measured); under the
  process backend it is the accounting slot that real pool processes map
  onto, so per-worker busy time and task counts stay meaningful either
  way.
* the pool side — :func:`initialize_pool_worker` and
  :func:`execute_task_chunk` are the functions a
  ``ProcessPoolExecutor`` child runs.  The job's partitions are cached
  once per process (inherited zero-copy under the ``fork`` start method,
  shipped through the pool initializer otherwise) so each round only
  moves the map function, the broadcast state, and the partial results —
  the Spark dataflow shape, not a per-round re-shuffle of the dataset.
"""

from __future__ import annotations

import os
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import ComputeError
from repro.telemetry.clocks import Stopwatch


class InjectedWorkerCrash(RuntimeError):
    """A chaos-injected worker crash.

    Deliberately *not* a :class:`~repro.errors.ComputeError`: the
    execution backends treat ComputeError as fatal but retry arbitrary
    task exceptions on another worker, which is exactly the failover path
    a crash should exercise.
    """


class Worker:
    """One executor node (driver-side accounting record)."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.busy_seconds = 0.0
        self.tasks_run = 0
        self.injected_crashes = 0
        self.crashes_fired = 0

    def inject_crashes(self, count: int = 1) -> None:
        """Arm the next ``count`` tasks on this worker to crash."""
        self.injected_crashes += int(count)

    def execute(self, fn: Callable[[Any], Any], payload: Any) -> Tuple[Any, float]:
        """Run a task, returning (result, measured seconds).

        Failed tasks still consume the worker's time (accounted in
        ``busy_seconds``) before the exception propagates to the scheduler.
        """
        watch = Stopwatch()
        try:
            if self.injected_crashes > 0:
                self.injected_crashes -= 1
                self.crashes_fired += 1
                raise InjectedWorkerCrash(
                    f"worker {self.worker_id} crashed (injected fault)"
                )
            result = fn(payload)
        finally:
            elapsed = watch.elapsed()
            self.credit(elapsed)
        return result, elapsed

    def credit(self, elapsed: float) -> None:
        """Account time spent on this slot by an out-of-process executor."""
        self.busy_seconds += elapsed
        self.tasks_run += 1

    def reset(self) -> None:
        """Per-job accounting reset; armed chaos crashes survive it."""
        self.busy_seconds = 0.0
        self.tasks_run = 0


# -- process-pool side --------------------------------------------------------

#: The current job's partitions, cached per process.  In the pool parent
#: this is set before the pool is created so ``fork``-started children
#: inherit it copy-on-write; under other start methods the initializer
#: receives a pickled copy instead.
_CACHED_PARTITIONS: Optional[List[Any]] = None


def set_cached_partitions(partitions: Optional[List[Any]]) -> None:
    """Install (or clear) the partition cache in this process."""
    global _CACHED_PARTITIONS
    _CACHED_PARTITIONS = partitions


def cached_partitions() -> Optional[List[Any]]:
    return _CACHED_PARTITIONS


def initialize_pool_worker(partitions: Optional[List[Any]]) -> None:
    """Pool initializer: adopt the job's partitions in a child process.

    ``partitions`` is ``None`` under the ``fork`` start method — the child
    already inherited the parent's cache and nothing needs to be shipped.
    """
    if partitions is not None:
        set_cached_partitions(partitions)


def execute_task_chunk(
    indices: Sequence[int],
    map_fn: Callable[[Any, Any], Any],
    state: Any,
) -> Tuple[int, List[Tuple[int, Any, float]]]:
    """Run one chunk of tasks against the cached partitions (pool side).

    Returns ``(pid, [(task_index, result, elapsed_seconds), ...])`` so the
    driver can both reassemble results in task order and attribute each
    task's measured time to the pool process that spent it.
    """
    partitions = cached_partitions()
    if partitions is None:
        raise ComputeError(
            "pool worker has no cached partitions; the pool initializer "
            "did not run (or the job was already closed)"
        )
    results: List[Tuple[int, Any, float]] = []
    watch = Stopwatch()
    for index in indices:
        watch.restart()
        result = map_fn(partitions[index], state)
        results.append((index, result, watch.elapsed()))
    return os.getpid(), results
