"""A data-parallel compute cluster modeled on Spark.

Athena ships detection-model training and large-scale validation to a
computing cluster (the paper uses Spark 1.6 + MLlib).  Here a
:class:`ComputeCluster` executes map/reduce-style jobs over a
:class:`PartitionedDataset`: each partition becomes a task, tasks are
scheduled to workers, and execution runs through a pluggable
:class:`ExecutionBackend` — in-process (:class:`SerialBackend`, default)
or across real worker processes (:class:`ProcessBackend`), with results
bit-identical either way.  Each job reports both its real wall time and a
*makespan* combining measured per-task execution with an explicit cost
model for the parts a scaled-down dataset cannot exhibit (task dispatch,
result collection, per-round broadcast).  The model is documented in
:mod:`repro.compute.cluster`, the backends in
:mod:`repro.compute.backends` and ``docs/COMPUTE.md``; both are exercised
by the Figure 10 bench.
"""

from repro.compute.backends import (
    BACKEND_ENV_VAR,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    available_backends,
    create_backend,
    task_rng,
)
from repro.compute.cluster import ClusterConfig, ComputeCluster, JobReport
from repro.compute.partition import PartitionedDataset
from repro.compute.worker import InjectedWorkerCrash, Worker

__all__ = [
    "BACKEND_ENV_VAR",
    "ClusterConfig",
    "ComputeCluster",
    "ExecutionBackend",
    "InjectedWorkerCrash",
    "JobReport",
    "PartitionedDataset",
    "ProcessBackend",
    "SerialBackend",
    "Worker",
    "available_backends",
    "create_backend",
    "task_rng",
]
