"""A data-parallel compute cluster modeled on Spark.

Athena ships detection-model training and large-scale validation to a
computing cluster (the paper uses Spark 1.6 + MLlib).  Here a
:class:`ComputeCluster` executes map/reduce-style jobs over a
:class:`PartitionedDataset`: each partition becomes a task, tasks are
scheduled to workers, and the job's *makespan* combines measured per-task
execution time with an explicit cost model for the parts a single process
cannot exhibit (task dispatch, result collection, per-round broadcast).
The model is documented in :mod:`repro.compute.cluster` and ablated in the
Figure 10 bench.
"""

from repro.compute.cluster import ClusterConfig, ComputeCluster, JobReport
from repro.compute.partition import PartitionedDataset
from repro.compute.worker import Worker

__all__ = [
    "ClusterConfig",
    "ComputeCluster",
    "JobReport",
    "PartitionedDataset",
    "Worker",
]
