"""Partitioned datasets (the RDD analogue).

A dataset is a list of partitions.  Numeric feature matrices keep each
partition as a contiguous numpy array so map tasks run vectorised; generic
record datasets keep lists.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Sequence

import numpy as np

from repro.errors import ComputeError


class PartitionedDataset:
    """An immutable, partitioned collection."""

    def __init__(self, partitions: List[Any]) -> None:
        if not partitions:
            raise ComputeError("dataset needs at least one partition")
        self._partitions = list(partitions)

    @classmethod
    def from_records(cls, records: Sequence[Any], n_partitions: int) -> "PartitionedDataset":
        """Split a record sequence into ``n_partitions`` near-equal chunks."""
        if n_partitions < 1:
            raise ComputeError(f"invalid partition count {n_partitions}")
        records = list(records)
        if not records:
            return cls([[]])
        n_partitions = min(n_partitions, len(records))
        bounds = np.linspace(0, len(records), n_partitions + 1).astype(int)
        return cls(
            [records[bounds[i]: bounds[i + 1]] for i in range(n_partitions)]
        )

    @classmethod
    def from_matrix(
        cls, matrix: np.ndarray, n_partitions: int, labels: np.ndarray = None
    ) -> "PartitionedDataset":
        """Split a feature matrix (optionally with labels) row-wise."""
        if n_partitions < 1:
            raise ComputeError(f"invalid partition count {n_partitions}")
        n_rows = matrix.shape[0]
        n_partitions = max(1, min(n_partitions, n_rows)) if n_rows else 1
        bounds = np.linspace(0, n_rows, n_partitions + 1).astype(int)
        partitions = []
        for i in range(n_partitions):
            rows = matrix[bounds[i]: bounds[i + 1]]
            if labels is not None:
                partitions.append((rows, labels[bounds[i]: bounds[i + 1]]))
            else:
                partitions.append(rows)
        return cls(partitions)

    @classmethod
    def from_frame(
        cls,
        frame,
        n_partitions: int,
        features: Sequence[str] = None,
        labels: str = None,
    ) -> "PartitionedDataset":
        """Split a :class:`~repro.distdb.frame.FeatureFrame` row-wise.

        The frame's columns become one contiguous matrix (the same values
        the per-row ``to_vector`` loop would produce); with ``labels``
        naming a column, partitions are ``(rows, labels)`` tuples — the
        shape the distributed estimators consume.
        """
        matrix = frame.to_matrix(features)
        label_values = None
        if labels is not None:
            label_values = np.asarray(
                [doc.get(labels) for doc in frame.documents()]
            )
        return cls.from_matrix(matrix, n_partitions, label_values)

    @property
    def n_partitions(self) -> int:
        return len(self._partitions)

    @property
    def partitions(self) -> List[Any]:
        return list(self._partitions)

    def partition(self, index: int) -> Any:
        return self._partitions[index]

    def total_records(self) -> int:
        total = 0
        for part in self._partitions:
            if isinstance(part, tuple):
                total += len(part[0])
            else:
                total += len(part)
        return total

    def map_partitions(
        self, fn: Callable[[Any], Any], cluster=None, backend=None
    ) -> "PartitionedDataset":
        """Eagerly apply ``fn`` per partition.

        Driver-local by default; pass a
        :class:`~repro.compute.cluster.ComputeCluster` (and optionally a
        ``backend`` name) to execute the transformation as a distributed
        map job on that cluster's workers instead.
        """
        if cluster is None:
            return PartitionedDataset([fn(part) for part in self._partitions])
        report = cluster.run_map(self, fn, backend=backend)
        return PartitionedDataset(report.result)

    def repartition(self, n_partitions: int) -> "PartitionedDataset":
        """Re-split the concatenation of all partitions."""
        flattened: List[Any] = []
        matrices = all(isinstance(p, np.ndarray) for p in self._partitions)
        if matrices:
            matrix = np.concatenate(self._partitions, axis=0)
            return PartitionedDataset.from_matrix(matrix, n_partitions)
        for part in self._partitions:
            flattened.extend(part)
        return PartitionedDataset.from_records(flattened, n_partitions)
