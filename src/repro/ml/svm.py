"""Linear support vector machine trained with Pegasos-style SGD.

Hinge-loss minimisation with L2 regularisation, the standard primal SGD
formulation.  Labels are 0/1 on the outside (Athena's convention) and
mapped to ±1 internally.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import MLError
from repro.ml.base import Estimator, as_matrix, as_vector


class LinearSVM(Estimator):
    """Primal linear SVM via Pegasos SGD."""

    def __init__(
        self,
        lambda_reg: float = 1e-3,
        epochs: int = 20,
        seed: int = 0,
    ) -> None:
        if lambda_reg <= 0:
            raise MLError(f"lambda_reg must be positive, got {lambda_reg}")
        self.lambda_reg = lambda_reg
        self.epochs = epochs
        self.seed = seed
        self.coefficients: Optional[np.ndarray] = None
        self.intercept: float = 0.0

    def fit(self, X, y=None) -> "LinearSVM":
        if y is None:
            raise MLError("LinearSVM requires 0/1 labels")
        X = as_matrix(X)
        y = as_vector(y, X.shape[0])
        if not np.isin(np.unique(y), (0.0, 1.0)).all():
            raise MLError("LinearSVM labels must be 0/1")
        signs = np.where(y > 0, 1.0, -1.0)
        n, d = X.shape
        rng = np.random.default_rng(self.seed)
        weights = np.zeros(d)
        intercept = 0.0
        step = 0
        for _epoch in range(self.epochs):
            order = rng.permutation(n)
            for idx in order:
                step += 1
                eta = 1.0 / (self.lambda_reg * step)
                margin = signs[idx] * (X[idx] @ weights + intercept)
                weights *= 1.0 - eta * self.lambda_reg
                if margin < 1.0:
                    weights += eta * signs[idx] * X[idx]
                    intercept += eta * signs[idx]
        self.coefficients = weights
        self.intercept = intercept
        return self

    def decision_scores(self, X) -> np.ndarray:
        self._require_fitted("coefficients")
        return as_matrix(X) @ self.coefficients + self.intercept

    def predict(self, X) -> np.ndarray:
        return (self.decision_scores(X) >= 0).astype(float)
