"""Linear-family regressors: ordinary least squares, Ridge, and Lasso.

OLS and Ridge solve their normal equations directly; Lasso uses cyclic
coordinate descent with soft-thresholding.  All three standardise nothing
themselves — Athena's preprocessor owns scaling — but they do fit an
intercept by centring.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import MLError
from repro.ml.base import Estimator, as_matrix, as_vector


class LinearRegression(Estimator):
    """Ordinary least squares via the pseudo-inverse."""

    def __init__(self) -> None:
        self.coefficients: Optional[np.ndarray] = None
        self.intercept: float = 0.0

    def fit(self, X, y=None) -> "LinearRegression":
        if y is None:
            raise MLError("LinearRegression requires targets")
        X = as_matrix(X)
        y = as_vector(y, X.shape[0])
        x_mean = X.mean(axis=0)
        y_mean = y.mean()
        self.coefficients, *_ = np.linalg.lstsq(X - x_mean, y - y_mean, rcond=None)
        self.intercept = float(y_mean - x_mean @ self.coefficients)
        return self

    def predict(self, X) -> np.ndarray:
        self._require_fitted("coefficients")
        return as_matrix(X) @ self.coefficients + self.intercept


class RidgeRegression(Estimator):
    """L2-penalised least squares (closed form)."""

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha < 0:
            raise MLError(f"alpha must be non-negative, got {alpha}")
        self.alpha = alpha
        self.coefficients: Optional[np.ndarray] = None
        self.intercept: float = 0.0

    def fit(self, X, y=None) -> "RidgeRegression":
        if y is None:
            raise MLError("RidgeRegression requires targets")
        X = as_matrix(X)
        y = as_vector(y, X.shape[0])
        x_mean = X.mean(axis=0)
        y_mean = y.mean()
        Xc = X - x_mean
        gram = Xc.T @ Xc + self.alpha * np.eye(X.shape[1])
        self.coefficients = np.linalg.solve(gram, Xc.T @ (y - y_mean))
        self.intercept = float(y_mean - x_mean @ self.coefficients)
        return self

    def predict(self, X) -> np.ndarray:
        self._require_fitted("coefficients")
        return as_matrix(X) @ self.coefficients + self.intercept


class LassoRegression(Estimator):
    """L1-penalised least squares via cyclic coordinate descent."""

    def __init__(
        self,
        alpha: float = 1.0,
        max_iterations: int = 1000,
        tolerance: float = 1e-6,
    ) -> None:
        if alpha < 0:
            raise MLError(f"alpha must be non-negative, got {alpha}")
        self.alpha = alpha
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.coefficients: Optional[np.ndarray] = None
        self.intercept: float = 0.0
        self.iterations_run = 0

    @staticmethod
    def _soft_threshold(value: float, bound: float) -> float:
        if value > bound:
            return value - bound
        if value < -bound:
            return value + bound
        return 0.0

    def fit(self, X, y=None) -> "LassoRegression":
        if y is None:
            raise MLError("LassoRegression requires targets")
        X = as_matrix(X)
        y = as_vector(y, X.shape[0])
        n, d = X.shape
        x_mean = X.mean(axis=0)
        y_mean = y.mean()
        Xc = X - x_mean
        yc = y - y_mean
        beta = np.zeros(d)
        column_sq = (Xc ** 2).sum(axis=0)
        residual = yc - Xc @ beta
        penalty = self.alpha * n
        for iteration in range(self.max_iterations):
            self.iterations_run = iteration + 1
            max_delta = 0.0
            for j in range(d):
                if column_sq[j] == 0:
                    continue
                old = beta[j]
                rho = Xc[:, j] @ residual + column_sq[j] * old
                new = self._soft_threshold(rho, penalty) / column_sq[j]
                if new != old:
                    residual += Xc[:, j] * (old - new)
                    beta[j] = new
                    max_delta = max(max_delta, abs(new - old))
            if max_delta < self.tolerance:
                break
        self.coefficients = beta
        self.intercept = float(y_mean - x_mean @ beta)
        return self

    def predict(self, X) -> np.ndarray:
        self._require_fitted("coefficients")
        return as_matrix(X) @ self.coefficients + self.intercept
