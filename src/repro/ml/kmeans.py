"""K-Means clustering with k-means++ initialisation.

This is the algorithm the paper's flagship DDoS experiment runs (Figure 6:
``K(8), Iterations(20), Runs(5), InitializedMode(k-means||), Epsilon(1e-4)``).
Multiple runs with different seeds keep the best inertia, matching Spark
MLlib's ``runs`` parameter.  ``fit_distributed`` exposes the per-iteration
map/reduce decomposition the compute cluster executes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import MLError
from repro.ml.base import ClusteringModel, as_matrix


def _kmeanspp_init(X: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding (the single-machine analogue of k-means||)."""
    n = X.shape[0]
    centers = np.empty((k, X.shape[1]))
    centers[0] = X[rng.integers(0, n)]
    closest_sq = np.full(n, np.inf)
    for i in range(1, k):
        distances = np.sum((X - centers[i - 1]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, distances)
        total = closest_sq.sum()
        if total <= 0:
            centers[i:] = X[rng.integers(0, n, size=k - i)]
            break
        probabilities = closest_sq / total
        centers[i] = X[rng.choice(n, p=probabilities)]
    return centers


def assign_to_centers(X: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Index of the nearest center for each row."""
    # (n, k) squared distances without materialising (n, k, d).
    cross = X @ centers.T
    sq_norms = (centers ** 2).sum(axis=1)
    distances = sq_norms[None, :] - 2 * cross
    return np.argmin(distances, axis=1)


def partial_sums(
    X: np.ndarray, centers: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Map-side K-Means statistics: per-cluster sums, counts, inertia."""
    assignments = assign_to_centers(X, centers)
    k, d = centers.shape
    sums = np.zeros((k, d))
    counts = np.zeros(k)
    np.add.at(sums, assignments, X)
    np.add.at(counts, assignments, 1.0)
    inertia = float(np.sum((X - centers[assignments]) ** 2))
    return sums, counts, inertia


def _kmeans_partial_sums(part, centers):
    """The distributed map task: per-partition K-Means statistics.

    Module-level (not a closure) so the process execution backend can
    ship it to pool workers; labelled partitions carry ``(rows, labels)``
    tuples whose labels the unsupervised map ignores.
    """
    rows = part[0] if isinstance(part, tuple) else part
    return partial_sums(as_matrix(rows), centers)


class KMeans(ClusteringModel):
    """Lloyd's algorithm with k-means++ seeding and multi-run selection."""

    def __init__(
        self,
        k: int = 8,
        max_iterations: int = 20,
        runs: int = 1,
        epsilon: float = 1e-4,
        seed: int = 0,
        malicious_threshold: float = 0.5,
    ) -> None:
        super().__init__(malicious_threshold)
        if k < 1:
            raise MLError(f"k must be positive, got {k}")
        self.k = k
        self.max_iterations = max_iterations
        self.runs = runs
        self.epsilon = epsilon
        self.seed = seed
        self.centers: Optional[np.ndarray] = None
        self.inertia: Optional[float] = None
        self.iterations_run = 0

    def _single_run(
        self, X: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, float, int]:
        k = min(self.k, X.shape[0])
        centers = _kmeanspp_init(X, k, rng)
        inertia = np.inf
        iterations = 0
        for _ in range(self.max_iterations):
            iterations += 1
            sums, counts, inertia = partial_sums(X, centers)
            new_centers = centers.copy()
            nonempty = counts > 0
            new_centers[nonempty] = sums[nonempty] / counts[nonempty, None]
            shift = float(np.sqrt(((new_centers - centers) ** 2).sum(axis=1)).max())
            centers = new_centers
            if shift <= self.epsilon:
                break
        return centers, inertia, iterations

    def fit(self, X, y=None) -> "KMeans":
        X = as_matrix(X)
        if X.shape[0] == 0:
            raise MLError("cannot fit K-Means on an empty dataset")
        best: Optional[Tuple[np.ndarray, float, int]] = None
        for run in range(max(1, self.runs)):
            rng = np.random.default_rng(self.seed + run)
            candidate = self._single_run(X, rng)
            if best is None or candidate[1] < best[1]:
                best = candidate
        self.centers, self.inertia, self.iterations_run = best
        return self

    def fit_distributed(self, compute_cluster, dataset, backend=None) -> "KMeans":
        """Fit via per-partition map/reduce on a compute cluster.

        Each round maps :func:`_kmeans_partial_sums` over partitions; the
        driver merges sums/counts into new centers — the MLlib
        decomposition.  ``backend`` picks the cluster's execution backend
        for this job (``"serial"``/``"process"``); results are
        bit-identical across backends because initialisation happens on
        the driver and the reduce folds partials in partition order.
        """
        first = dataset.partition(0)
        sample = first[0] if isinstance(first, tuple) else first
        sample = as_matrix(sample)
        rng = np.random.default_rng(self.seed)
        k = min(self.k, sample.shape[0])
        initial = _kmeanspp_init(sample, k, rng)

        def reduce_fn(partials, centers):
            sums = sum(p[0] for p in partials)
            counts = sum(p[1] for p in partials)
            self.inertia = float(sum(p[2] for p in partials))
            new_centers = centers.copy()
            nonempty = counts > 0
            new_centers[nonempty] = sums[nonempty] / counts[nonempty, None]
            return new_centers

        def converged(old, new):
            shift = float(np.sqrt(((new - old) ** 2).sum(axis=1)).max())
            return shift <= self.epsilon

        report = compute_cluster.run_iterative(
            dataset,
            _kmeans_partial_sums,
            reduce_fn,
            initial_state=initial,
            rounds=self.max_iterations,
            converged=converged,
            backend=backend,
        )
        self.centers = report.result
        self.iterations_run = report.rounds
        self.last_job_report = report
        return self

    def assign(self, X) -> np.ndarray:
        self._require_fitted("centers")
        return assign_to_centers(as_matrix(X), self.centers)

    def n_clusters_fitted(self) -> int:
        self._require_fitted("centers")
        return self.centers.shape[0]

    def decision_scores(self, X) -> np.ndarray:
        """Distance to the nearest center (an anomaly score)."""
        self._require_fitted("centers")
        X = as_matrix(X)
        assignments = assign_to_centers(X, self.centers)
        return np.sqrt(np.sum((X - self.centers[assignments]) ** 2, axis=1))
