"""Gaussian naive Bayes classification."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import MLError
from repro.ml.base import Estimator, as_matrix, as_vector

_MIN_VARIANCE = 1e-9


class GaussianNaiveBayes(Estimator):
    """Per-class independent Gaussians over each feature."""

    def __init__(self) -> None:
        self.classes: Optional[np.ndarray] = None
        self.priors: Optional[np.ndarray] = None
        self.means: Optional[np.ndarray] = None
        self.variances: Optional[np.ndarray] = None

    def fit(self, X, y=None) -> "GaussianNaiveBayes":
        if y is None:
            raise MLError("GaussianNaiveBayes requires labels")
        X = as_matrix(X)
        y = as_vector(y, X.shape[0])
        self.classes = np.unique(y)
        if len(self.classes) < 2:
            raise MLError("GaussianNaiveBayes needs at least two classes")
        n_classes, d = len(self.classes), X.shape[1]
        self.priors = np.empty(n_classes)
        self.means = np.empty((n_classes, d))
        self.variances = np.empty((n_classes, d))
        # Shared variance smoothing keeps near-constant columns usable.
        smoothing = 1e-9 * X.var(axis=0).max() if X.shape[0] > 1 else _MIN_VARIANCE
        for idx, cls in enumerate(self.classes):
            rows = X[y == cls]
            self.priors[idx] = len(rows) / len(X)
            self.means[idx] = rows.mean(axis=0)
            self.variances[idx] = rows.var(axis=0) + max(smoothing, _MIN_VARIANCE)
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        scores = np.empty((X.shape[0], len(self.classes)))
        for idx in range(len(self.classes)):
            var = self.variances[idx]
            diff = X - self.means[idx]
            scores[:, idx] = (
                np.log(self.priors[idx])
                - 0.5 * (np.log(2 * np.pi * var).sum() + ((diff ** 2) / var).sum(axis=1))
            )
        return scores

    def predict(self, X) -> np.ndarray:
        self._require_fitted("classes")
        X = as_matrix(X)
        return self.classes[np.argmax(self._joint_log_likelihood(X), axis=1)]

    def predict_proba(self, X) -> np.ndarray:
        self._require_fitted("classes")
        scores = self._joint_log_likelihood(as_matrix(X))
        scores -= scores.max(axis=1, keepdims=True)
        probabilities = np.exp(scores)
        return probabilities / probabilities.sum(axis=1, keepdims=True)

    def decision_scores(self, X) -> np.ndarray:
        """Probability of the highest class (1 when binary malicious)."""
        probabilities = self.predict_proba(X)
        if set(self.classes.tolist()) == {0.0, 1.0}:
            return probabilities[:, list(self.classes).index(1.0)]
        return probabilities.max(axis=1)
