"""Gaussian naive Bayes classification.

Training reduces to per-class sufficient statistics (count, sum, sum of
squares per feature), so :meth:`GaussianNaiveBayes.fit_distributed` fits
the same model as a single map/reduce round over labelled partitions —
the second trainer (after K-Means) that fans out over the compute
cluster's execution backends.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import MLError
from repro.ml.base import Estimator, as_matrix, as_vector

_MIN_VARIANCE = 1e-9


def _nb_partial_stats(part):
    """Distributed map task: per-class and global sufficient statistics.

    Module-level (picklable) so the process execution backend can ship it
    to pool workers.  Partitions must be labelled ``(rows, labels)``
    tuples.  Returns ``(per_class, total)`` where ``per_class`` maps each
    class to ``(count, sum_vector, sum_of_squares_vector)`` and ``total``
    carries the same triple over all rows (for the shared variance
    smoothing term).
    """
    if not isinstance(part, tuple):
        raise MLError("GaussianNaiveBayes needs labelled (rows, labels) partitions")
    X = as_matrix(part[0])
    y = as_vector(part[1], X.shape[0])
    per_class = {}
    for cls in np.unique(y):
        rows = X[y == cls]
        per_class[float(cls)] = (
            rows.shape[0],
            rows.sum(axis=0),
            np.square(rows).sum(axis=0),
        )
    total = (X.shape[0], X.sum(axis=0), np.square(X).sum(axis=0))
    return per_class, total


class GaussianNaiveBayes(Estimator):
    """Per-class independent Gaussians over each feature."""

    def __init__(self) -> None:
        self.classes: Optional[np.ndarray] = None
        self.priors: Optional[np.ndarray] = None
        self.means: Optional[np.ndarray] = None
        self.variances: Optional[np.ndarray] = None

    def fit(self, X, y=None) -> "GaussianNaiveBayes":
        if y is None:
            raise MLError("GaussianNaiveBayes requires labels")
        X = as_matrix(X)
        y = as_vector(y, X.shape[0])
        self.classes = np.unique(y)
        if len(self.classes) < 2:
            raise MLError("GaussianNaiveBayes needs at least two classes")
        n_classes, d = len(self.classes), X.shape[1]
        self.priors = np.empty(n_classes)
        self.means = np.empty((n_classes, d))
        self.variances = np.empty((n_classes, d))
        # Shared variance smoothing keeps near-constant columns usable.
        smoothing = 1e-9 * X.var(axis=0).max() if X.shape[0] > 1 else _MIN_VARIANCE
        for idx, cls in enumerate(self.classes):
            rows = X[y == cls]
            self.priors[idx] = len(rows) / len(X)
            self.means[idx] = rows.mean(axis=0)
            self.variances[idx] = rows.var(axis=0) + max(smoothing, _MIN_VARIANCE)
        return self

    def fit_distributed(
        self, compute_cluster, dataset, backend=None
    ) -> "GaussianNaiveBayes":
        """Fit from per-partition sufficient statistics on a compute cluster.

        One map round computes per-class ``(count, sum, sum_of_squares)``
        on each labelled partition; the driver-side reduce merges them and
        closes the moments into priors, means, and variances.  Results are
        bit-identical across execution backends (same partials, same merge
        order); against the in-memory :meth:`fit` they agree to floating
        rounding, since the variance is formed from moments instead of
        centred residuals.

        ``dataset`` may be a :class:`~repro.compute.partition.PartitionedDataset`
        of labelled partitions or a :class:`~repro.distdb.frame.FeatureFrame`
        carrying a ``label`` column, which is partitioned across the
        cluster's workers without a per-row conversion loop.
        """
        if hasattr(dataset, "to_matrix"):
            from repro.compute.partition import PartitionedDataset

            dataset = PartitionedDataset.from_frame(
                dataset, len(compute_cluster.workers), labels="label"
            )
        report = compute_cluster.run_map(
            dataset, _nb_partial_stats, backend=backend
        )
        merged = {}
        n_total = 0
        sum_total = None
        sq_total = None
        for per_class, (count, sums, squares) in report.result:
            n_total += count
            sum_total = sums if sum_total is None else sum_total + sums
            sq_total = squares if sq_total is None else sq_total + squares
            for cls, (c_count, c_sum, c_sq) in per_class.items():
                if cls in merged:
                    count0, sum0, sq0 = merged[cls]
                    merged[cls] = (count0 + c_count, sum0 + c_sum, sq0 + c_sq)
                else:
                    merged[cls] = (c_count, c_sum, c_sq)
        if len(merged) < 2:
            raise MLError("GaussianNaiveBayes needs at least two classes")
        self.classes = np.array(sorted(merged))
        n_classes, d = len(self.classes), len(sum_total)
        self.priors = np.empty(n_classes)
        self.means = np.empty((n_classes, d))
        self.variances = np.empty((n_classes, d))
        global_mean = sum_total / n_total
        global_var = np.maximum(sq_total / n_total - global_mean ** 2, 0.0)
        smoothing = 1e-9 * global_var.max() if n_total > 1 else _MIN_VARIANCE
        for idx, cls in enumerate(self.classes):
            count, sums, squares = merged[float(cls)]
            mean = sums / count
            self.priors[idx] = count / n_total
            self.means[idx] = mean
            self.variances[idx] = np.maximum(
                squares / count - mean ** 2, 0.0
            ) + max(smoothing, _MIN_VARIANCE)
        self.last_job_report = report
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        scores = np.empty((X.shape[0], len(self.classes)))
        for idx in range(len(self.classes)):
            var = self.variances[idx]
            diff = X - self.means[idx]
            scores[:, idx] = (
                np.log(self.priors[idx])
                - 0.5 * (np.log(2 * np.pi * var).sum() + ((diff ** 2) / var).sum(axis=1))
            )
        return scores

    def predict(self, X) -> np.ndarray:
        self._require_fitted("classes")
        X = as_matrix(X)
        return self.classes[np.argmax(self._joint_log_likelihood(X), axis=1)]

    def predict_proba(self, X) -> np.ndarray:
        self._require_fitted("classes")
        scores = self._joint_log_likelihood(as_matrix(X))
        scores -= scores.max(axis=1, keepdims=True)
        probabilities = np.exp(scores)
        return probabilities / probabilities.sum(axis=1, keepdims=True)

    def decision_scores(self, X) -> np.ndarray:
        """Probability of the highest class (1 when binary malicious)."""
        probabilities = self.predict_proba(X)
        if set(self.classes.tolist()) == {0.0, 1.0}:
            return probabilities[:, list(self.classes).index(1.0)]
        return probabilities.max(axis=1)
