"""Random forest classification.

Bootstrap-aggregated CART trees with random feature subspaces; prediction
averages the trees' leaf probabilities.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import MLError
from repro.ml.base import Estimator, as_matrix, as_vector
from repro.ml.tree import DecisionTreeClassifier


class RandomForestClassifier(Estimator):
    """An ensemble of bootstrapped decision trees."""

    def __init__(
        self,
        n_trees: int = 20,
        max_depth: int = 8,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if n_trees < 1:
            raise MLError(f"n_trees must be positive, got {n_trees}")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees: Optional[List[DecisionTreeClassifier]] = None

    def fit(self, X, y=None) -> "RandomForestClassifier":
        if y is None:
            raise MLError("RandomForestClassifier requires labels")
        X = as_matrix(X)
        y = as_vector(y, X.shape[0])
        n, d = X.shape
        max_features = self.max_features or max(1, int(np.sqrt(d)))
        rng = np.random.default_rng(self.seed)
        self.trees = []
        for tree_idx in range(self.n_trees):
            indices = rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                seed=self.seed + tree_idx + 1,
            )
            tree.fit(X[indices], y[indices])
            self.trees.append(tree)
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._require_fitted("trees")
        X = as_matrix(X)
        votes = np.zeros(X.shape[0])
        for tree in self.trees:
            votes += tree.predict_proba(X)
        return votes / len(self.trees)

    def predict(self, X) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(float)

    def decision_scores(self, X) -> np.ndarray:
        return self.predict_proba(X)
