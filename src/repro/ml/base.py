"""Estimator and model interfaces.

Every algorithm is an :class:`Estimator` whose ``fit`` returns ``self`` (the
fitted object doubles as the :class:`Model`), mirroring the familiar
fit/predict contract.  Clustering estimators additionally support cluster
labelling from *marked* (labelled-malicious) training entries, which is how
Athena turns unsupervised clusters into an anomaly verdict (the paper's
``Marking`` preprocessor).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import MLError


def as_matrix(X) -> np.ndarray:
    """Coerce input to a 2-D float matrix, validating shape.

    Accepts arrays, nested sequences, or anything frame-like exposing
    ``to_matrix()`` (a :class:`~repro.distdb.frame.FeatureFrame`), so
    estimators consume the columnar path without a conversion loop.
    """
    if hasattr(X, "to_matrix"):
        X = X.to_matrix()
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise MLError(f"expected 2-D feature matrix, got shape {X.shape}")
    return X


def as_vector(y, n_rows: Optional[int] = None) -> np.ndarray:
    """Coerce labels/targets to a 1-D float vector of matching length."""
    y = np.asarray(y, dtype=float).ravel()
    if n_rows is not None and len(y) != n_rows:
        raise MLError(f"label length {len(y)} != row count {n_rows}")
    return y


class Model:
    """A fitted model; subclasses implement :meth:`predict`."""

    def predict(self, X) -> np.ndarray:
        raise NotImplementedError

    def decision_scores(self, X) -> np.ndarray:
        """Continuous scores where available; defaults to predictions."""
        return self.predict(X).astype(float)


class Estimator(Model):
    """An unfitted algorithm; ``fit`` returns the fitted self."""

    def fit(self, X, y=None) -> "Estimator":
        raise NotImplementedError

    def _require_fitted(self, attribute: str) -> None:
        if getattr(self, attribute, None) is None:
            raise MLError(f"{type(self).__name__} is not fitted")


class ClusteringModel(Estimator):
    """Base for clustering algorithms with malicious-cluster labelling.

    After fitting, :meth:`label_clusters` uses marked training labels to
    decide, per cluster, whether membership implies *malicious* — a cluster
    is malicious when the marked fraction among its members exceeds
    ``malicious_threshold``.  :meth:`predict` then returns 0/1 anomaly
    verdicts, while :meth:`assign` returns raw cluster ids.
    """

    def __init__(self, malicious_threshold: float = 0.5) -> None:
        self.malicious_threshold = malicious_threshold
        self.cluster_is_malicious: Optional[Dict[int, bool]] = None

    def assign(self, X) -> np.ndarray:
        """Raw cluster ids for each row."""
        raise NotImplementedError

    def n_clusters_fitted(self) -> int:
        raise NotImplementedError

    def label_clusters(self, X, marks) -> Dict[int, bool]:
        """Decide which clusters are malicious from marked entries."""
        marks = as_vector(marks, len(as_matrix(X)))
        assignments = self.assign(X)
        labels: Dict[int, bool] = {}
        for cluster_id in range(self.n_clusters_fitted()):
            members = marks[assignments == cluster_id]
            if len(members) == 0:
                labels[cluster_id] = False
            else:
                labels[cluster_id] = float(members.mean()) >= self.malicious_threshold
        self.cluster_is_malicious = labels
        return labels

    def predict(self, X) -> np.ndarray:
        if self.cluster_is_malicious is None:
            raise MLError(
                f"{type(self).__name__}: call label_clusters before predict"
            )
        assignments = self.assign(X)
        verdicts = np.zeros(len(assignments))
        for cluster_id, is_malicious in self.cluster_is_malicious.items():
            if is_malicious:
                verdicts[assignments == cluster_id] = 1.0
        return verdicts

    def cluster_composition(self, X, marks) -> Dict[int, Dict[str, int]]:
        """Benign/malicious member counts per cluster (the Fig 6 report)."""
        marks = as_vector(marks, len(as_matrix(X)))
        assignments = self.assign(X)
        composition: Dict[int, Dict[str, int]] = {}
        for cluster_id in range(self.n_clusters_fitted()):
            members = marks[assignments == cluster_id]
            composition[cluster_id] = {
                "benign": int((members == 0).sum()),
                "malicious": int((members == 1).sum()),
            }
        return composition
