"""CART decision trees (classification and regression).

The classifier splits on Gini impurity, the regressor on variance
reduction.  Split search is vectorised per feature: candidate thresholds
are midpoints between consecutive sorted values, and impurities for every
candidate are computed from prefix sums in one pass.  ``max_features``
enables the random-subspace mode random forests and boosted trees use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import MLError
from repro.ml.base import Estimator, as_matrix, as_vector


@dataclass
class _Node:
    """A tree node; leaves carry ``value``, internals carry a split."""

    value: float = 0.0
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split_classification(X, y, feature_indices, min_leaf):
    """Return (feature, threshold, gain) minimising weighted Gini."""
    n = len(y)
    total_pos = y.sum()
    parent_gini = 1.0 - ((total_pos / n) ** 2 + ((n - total_pos) / n) ** 2)
    best = (None, 0.0, 0.0)
    for feature in feature_indices:
        order = np.argsort(X[:, feature], kind="stable")
        values = X[order, feature]
        labels = y[order]
        prefix_pos = np.cumsum(labels)
        counts_left = np.arange(1, n + 1)
        # Valid split positions: value changes and both sides >= min_leaf.
        boundary = values[:-1] < values[1:]
        positions = np.nonzero(boundary)[0]
        positions = positions[
            (positions + 1 >= min_leaf) & (n - positions - 1 >= min_leaf)
        ]
        if len(positions) == 0:
            continue
        left_n = counts_left[positions].astype(float)
        right_n = n - left_n
        left_pos = prefix_pos[positions]
        right_pos = total_pos - left_pos
        gini_left = 1.0 - ((left_pos / left_n) ** 2 + ((left_n - left_pos) / left_n) ** 2)
        gini_right = 1.0 - (
            (right_pos / right_n) ** 2 + ((right_n - right_pos) / right_n) ** 2
        )
        weighted = (left_n * gini_left + right_n * gini_right) / n
        idx = int(np.argmin(weighted))
        gain = parent_gini - weighted[idx]
        if gain > best[2]:
            pos = positions[idx]
            threshold = (values[pos] + values[pos + 1]) / 2.0
            best = (feature, threshold, gain)
    return best


def _best_split_regression(X, y, feature_indices, min_leaf):
    """Return (feature, threshold, gain) maximising variance reduction."""
    n = len(y)
    total_sum = y.sum()
    total_sq = (y ** 2).sum()
    parent_var = total_sq / n - (total_sum / n) ** 2
    best = (None, 0.0, 0.0)
    for feature in feature_indices:
        order = np.argsort(X[:, feature], kind="stable")
        values = X[order, feature]
        targets = y[order]
        prefix_sum = np.cumsum(targets)
        prefix_sq = np.cumsum(targets ** 2)
        boundary = values[:-1] < values[1:]
        positions = np.nonzero(boundary)[0]
        positions = positions[
            (positions + 1 >= min_leaf) & (n - positions - 1 >= min_leaf)
        ]
        if len(positions) == 0:
            continue
        left_n = (positions + 1).astype(float)
        right_n = n - left_n
        left_sum = prefix_sum[positions]
        left_sq = prefix_sq[positions]
        right_sum = total_sum - left_sum
        right_sq = total_sq - left_sq
        var_left = left_sq / left_n - (left_sum / left_n) ** 2
        var_right = right_sq / right_n - (right_sum / right_n) ** 2
        weighted = (left_n * var_left + right_n * var_right) / n
        idx = int(np.argmin(weighted))
        gain = parent_var - weighted[idx]
        if gain > best[2] + 1e-15:
            pos = positions[idx]
            threshold = (values[pos] + values[pos + 1]) / 2.0
            best = (feature, threshold, gain)
    return best


class _BaseTree(Estimator):
    """Shared recursive builder."""

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if max_depth < 1:
            raise MLError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.root: Optional[_Node] = None
        self.n_nodes = 0

    def _leaf_value(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _split(self, X, y, feature_indices):
        raise NotImplementedError

    def _build(self, X, y, depth, rng) -> _Node:
        self.n_nodes += 1
        node = _Node(value=self._leaf_value(y))
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or np.all(y == y[0])
        ):
            return node
        d = X.shape[1]
        if self.max_features is not None and self.max_features < d:
            feature_indices = rng.choice(d, size=self.max_features, replace=False)
        else:
            feature_indices = np.arange(d)
        feature, threshold, gain = self._split(X, y, feature_indices)
        if feature is None or gain <= 0:
            return node
        mask = X[:, feature] <= threshold
        if mask.all() or not mask.any():
            return node
        node.feature = int(feature)
        node.threshold = float(threshold)
        node.left = self._build(X[mask], y[mask], depth + 1, rng)
        node.right = self._build(X[~mask], y[~mask], depth + 1, rng)
        return node

    def fit(self, X, y=None) -> "_BaseTree":
        if y is None:
            raise MLError(f"{type(self).__name__} requires targets")
        X = as_matrix(X)
        y = as_vector(y, X.shape[0])
        if X.shape[0] == 0:
            raise MLError("cannot fit a tree on an empty dataset")
        self.n_nodes = 0
        rng = np.random.default_rng(self.seed)
        self.root = self._build(X, y, depth=0, rng=rng)
        return self

    def _predict_row(self, row: np.ndarray) -> float:
        node = self.root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    def _raw_predict(self, X) -> np.ndarray:
        self._require_fitted("root")
        X = as_matrix(X)
        return np.array([self._predict_row(row) for row in X])

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        self._require_fitted("root")
        return walk(self.root)


class DecisionTreeClassifier(_BaseTree):
    """Binary CART classifier (labels 0/1) on Gini impurity."""

    def _leaf_value(self, y: np.ndarray) -> float:
        return float(y.mean())

    def _split(self, X, y, feature_indices):
        return _best_split_classification(
            X, y, feature_indices, self.min_samples_leaf
        )

    def fit(self, X, y=None) -> "DecisionTreeClassifier":
        y_arr = np.asarray(y, dtype=float).ravel() if y is not None else None
        if y_arr is not None and not np.isin(np.unique(y_arr), (0.0, 1.0)).all():
            raise MLError("DecisionTreeClassifier labels must be 0/1")
        return super().fit(X, y)

    def predict_proba(self, X) -> np.ndarray:
        """P(malicious) per row (leaf positive fraction)."""
        return self._raw_predict(X)

    def predict(self, X) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(float)

    def decision_scores(self, X) -> np.ndarray:
        return self.predict_proba(X)


class DecisionTreeRegressor(_BaseTree):
    """CART regressor on variance reduction."""

    def _leaf_value(self, y: np.ndarray) -> float:
        return float(y.mean())

    def _split(self, X, y, feature_indices):
        return _best_split_regression(X, y, feature_indices, self.min_samples_leaf)

    def predict(self, X) -> np.ndarray:
        return self._raw_predict(X)
